/**
 * @file
 * F7 — data-driven cross-check: cluster the raw scaling vectors with
 * k-means and measure agreement with the hand-built taxonomy.  High
 * agreement means the taxonomy reflects real structure in the data
 * rather than threshold artefacts.
 */

#include "bench_common.hh"

#include "base/table.hh"
#include "scaling/cluster.hh"

namespace {

using namespace gpuscale;

std::vector<std::vector<double>>
features()
{
    const auto &c = bench::census();
    std::vector<std::vector<double>> out;
    out.reserve(c.surfaces.size());
    for (const auto &surface : c.surfaces)
        out.push_back(scaling::scalingFeatureVector(surface));
    return out;
}

void
BM_FeatureExtraction(benchmark::State &state)
{
    for (auto _ : state) {
        auto f = features();
        benchmark::DoNotOptimize(f.data());
    }
}
BENCHMARK(BM_FeatureExtraction);

void
BM_Kmeans8(benchmark::State &state)
{
    const auto f = features();
    for (auto _ : state) {
        auto result = scaling::kmeans(f, 8, 3);
        benchmark::DoNotOptimize(result.inertia);
    }
}
BENCHMARK(BM_Kmeans8)->Unit(benchmark::kMillisecond);

void
emit()
{
    const auto &c = bench::census();
    const auto f = features();

    bench::banner("F7", "k-means clustering vs taxonomy agreement");

    TextTable t;
    t.addColumn("k", TextTable::Align::Right);
    t.addColumn("inertia", TextTable::Align::Right);
    t.addColumn("purity", TextTable::Align::Right);
    t.addColumn("ARI", TextTable::Align::Right);
    t.addColumn("iterations", TextTable::Align::Right);
    for (int k = 2; k <= 12; ++k) {
        const auto result = scaling::kmeans(f, k, 3);
        t.row({strprintf("%d", k),
               strprintf("%.1f", result.inertia),
               strprintf("%.2f",
                         scaling::clusterPurity(result.assignment,
                                                c.classifications)),
               strprintf("%.2f",
                         scaling::adjustedRandIndex(
                             result.assignment, c.classifications)),
               strprintf("%d", result.iterations)});
    }
    std::fputs(t.render().c_str(), stdout);
    std::printf(
        "\nreading: purity near the taxonomy's class count (k = 8)\n"
        "well above the 0.45 majority-class baseline indicates the\n"
        "decision tree recovers unsupervised structure in the scaling\n"
        "vectors, as the paper's manual taxonomy did.\n");
}

} // namespace

GPUSCALE_BENCH_MAIN(emit)
