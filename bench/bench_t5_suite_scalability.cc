/**
 * @file
 * T5 — suite scalability: do the benchmark suites scale to modern
 * GPU sizes?  Reproduces the abstract's claim that "a number of
 * current benchmark suites do not scale to modern GPU sizes,
 * implying that either new benchmarks or new inputs are warranted."
 */

#include "bench_common.hh"

#include "scaling/report.hh"
#include "scaling/suite_analysis.hh"

namespace {

using namespace gpuscale;

void
BM_SuiteAnalysis(benchmark::State &state)
{
    const auto &c = bench::census();
    for (auto _ : state) {
        auto reports = scaling::analyzeSuites(c.classifications, 44);
        benchmark::DoNotOptimize(reports.size());
    }
}
BENCHMARK(BM_SuiteAnalysis);

void
emit()
{
    const auto &c = bench::census();
    const auto reports = scaling::analyzeSuites(c.classifications, 44);

    bench::banner("T5", "per-suite scalability to a 44-CU GPU");

    TextTable t;
    t.addColumn("suite");
    t.addColumn("kernels", TextTable::Align::Right);
    t.addColumn("median cu90", TextTable::Align::Right);
    t.addColumn("p90 cu90", TextTable::Align::Right);
    t.addColumn("saturate <44CU", TextTable::Align::Right);
    t.addColumn("non-scaling classes", TextTable::Align::Right);
    for (const auto &r : reports) {
        t.row({r.suite, strprintf("%zu", r.kernels),
               strprintf("%.0f", r.median_cu90),
               strprintf("%.0f", r.p90_cu90),
               strprintf("%.0f%%", 100.0 * r.frac_saturating),
               strprintf("%.0f%%", 100.0 * r.frac_non_scaling)});
    }
    std::fputs(t.render().c_str(), stdout);

    std::printf(
        "\ncu90 = CUs needed to reach 90%% of a kernel's best CU-curve\n"
        "performance.  A suite whose median cu90 sits far below 44\n"
        "is not exercising a modern GPU; 'non-scaling classes' counts\n"
        "parallelism-starved + launch-bound + cu-adverse kernels.\n");
}

} // namespace

GPUSCALE_BENCH_MAIN(emit)
