/**
 * @file
 * A5 — ablation: cross-fidelity taxonomy agreement.
 *
 * The taxonomy consumes only (config → runtime) samples, so its
 * verdicts should survive swapping the measurement substrate.  This
 * experiment sweeps archetype anchors with BOTH timing models over a
 * coarse grid and compares the resulting classifications — the
 * software analogue of re-running the paper's study on a different
 * card.
 */

#include "bench_common.hh"

#include "base/table.hh"
#include "gpu/timing/event_sim.hh"
#include "harness/sweep.hh"
#include "workloads/archetypes.hh"

namespace {

using namespace gpuscale;

std::vector<gpu::KernelDesc>
anchors()
{
    using namespace workloads;
    return {
        denseCompute("xf/dense/k", {.wgs = 1024, .wi_per_wg = 256}),
        streaming("xf/stream/k", {.wgs = 2048, .wi_per_wg = 256}),
        tiledLds("xf/lds/k", {.wgs = 1024, .wi_per_wg = 256}),
        stencil("xf/sten/k", {.wgs = 1024, .wi_per_wg = 256}, 20.0),
        cacheThrash("xf/thrash/k", {.wgs = 2048, .wi_per_wg = 256},
                    18.0),
        reduction("xf/red/k", {.wgs = 1024, .wi_per_wg = 256}, 0.9),
        graphTraversal("xf/graph/k", {.wgs = 256, .wi_per_wg = 256}),
        smallGridCompute("xf/small/k", {.wgs = 12, .wi_per_wg = 256}),
        tinyIterative("xf/tiny/k",
                      {.wgs = 2, .wi_per_wg = 64, .launches = 500,
                       .intensity = 0.05}),
    };
}

/**
 * A denser grid than ConfigSpace::testGrid() so curve shapes are
 * resolvable, but far smaller than the 891-point paper grid so the
 * event model stays affordable.
 */
scaling::ConfigSpace
coarseGrid()
{
    return scaling::ConfigSpace(
        {4, 12, 20, 28, 36, 44},
        {200.0, 400.0, 600.0, 800.0, 1000.0},
        {150.0, 425.0, 700.0, 975.0, 1250.0});
}

void
BM_EventSweepAnchor(benchmark::State &state)
{
    gpu::timing::EventSimParams params;
    params.max_simulated_waves = 4096;
    const gpu::timing::EventModel model(params);
    const auto kernel = anchors()[1]; // streaming
    const auto space = coarseGrid();
    for (auto _ : state) {
        auto surface = harness::sweepKernel(model, kernel, space);
        benchmark::DoNotOptimize(surface.runtimes().data());
    }
}
BENCHMARK(BM_EventSweepAnchor)->Unit(benchmark::kMillisecond);

void
emit()
{
    bench::banner("A5", "taxonomy agreement: analytic vs event model");

    const gpu::AnalyticModel analytic;
    gpu::timing::EventSimParams params;
    params.max_simulated_waves = 4096;
    const gpu::timing::EventModel event(params);
    const auto space = coarseGrid();

    TextTable t;
    t.addColumn("kernel");
    t.addColumn("analytic class");
    t.addColumn("event class");
    t.addColumn("agree");

    size_t agree = 0;
    const auto kernels = anchors();
    for (const auto &kernel : kernels) {
        const auto ca = scaling::classifySurface(
            harness::sweepKernel(analytic, kernel, space));
        const auto ce = scaling::classifySurface(
            harness::sweepKernel(event, kernel, space));
        const bool same = ca.cls == ce.cls;
        agree += same;
        t.row({kernel.name, scaling::taxonomyClassName(ca.cls),
               scaling::taxonomyClassName(ce.cls),
               same ? "yes" : "NO"});
    }
    std::fputs(t.render().c_str(), stdout);
    std::printf("\nagreement: %zu/%zu anchors\n", agree,
                kernels.size());
    std::printf(
        "\nreading: the classifier sees only (config, runtime)\n"
        "samples, so fidelity swaps change at most boundary verdicts\n"
        "— the property that lets the same code classify real\n"
        "hardware measurements (see `gpuscale classify`).\n");
}

} // namespace

GPUSCALE_BENCH_MAIN(emit)
