/**
 * @file
 * E1 — extension: energy efficiency across the configuration grid.
 *
 * The scaling taxonomy's power-management payoff: for each class
 * representative, find the performance-optimal and the
 * efficiency-optimal configuration.  Kernels that cannot use a knob
 * should shed it — and their efficiency-optimal machine is much
 * smaller/slower than the flagship.
 */

#include "bench_common.hh"

#include "base/table.hh"
#include "gpu/power_model.hh"
#include "workloads/registry.hh"

namespace {

using namespace gpuscale;

void
BM_PowerEvaluationGrid(benchmark::State &state)
{
    const gpu::AnalyticModel timing;
    const gpu::PowerModel power;
    const auto *kernel =
        workloads::WorkloadRegistry::instance().findKernel(
            "rodinia/hotspot/calculate_temp");
    const auto space = scaling::ConfigSpace::paperGrid();
    for (auto _ : state) {
        double acc = 0;
        for (size_t i = 0; i < space.size(); ++i) {
            const auto cfg = space.at(i);
            acc += power.evaluate(cfg, timing.estimate(*kernel, cfg))
                       .energy_j;
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            891);
}
BENCHMARK(BM_PowerEvaluationGrid)->Unit(benchmark::kMillisecond);

void
emit()
{
    const auto &census = bench::census();
    const gpu::AnalyticModel timing;
    const gpu::PowerModel power;
    const auto &registry = workloads::WorkloadRegistry::instance();

    bench::banner("E1", "performance-optimal vs efficiency-optimal "
                        "configurations");

    TextTable t;
    t.addColumn("class");
    t.addColumn("kernel");
    t.addColumn("perf-optimal");
    t.addColumn("eff-optimal");
    t.addColumn("eff gain", TextTable::Align::Right);
    t.addColumn("perf kept", TextTable::Align::Right);

    for (const auto *rep : harness::representativesPerClass(census)) {
        const auto *kernel = registry.findKernel(rep->kernel);

        size_t best_perf = 0, best_eff = 0;
        double best_time = 1e300, best_ppw = 0;
        std::vector<double> times(census.space.size());
        std::vector<double> ppws(census.space.size());
        for (size_t i = 0; i < census.space.size(); ++i) {
            const auto cfg = census.space.at(i);
            const auto perf = timing.estimate(*kernel, cfg);
            const auto pw = power.evaluate(cfg, perf);
            times[i] = perf.time_s;
            ppws[i] = pw.perf_per_watt;
            if (perf.time_s < best_time) {
                best_time = perf.time_s;
                best_perf = i;
            }
            if (pw.perf_per_watt > best_ppw) {
                best_ppw = pw.perf_per_watt;
                best_eff = i;
            }
        }

        t.row({scaling::taxonomyClassName(rep->cls),
               rep->kernel,
               census.space.at(best_perf).id(),
               census.space.at(best_eff).id(),
               strprintf("%.1fx", ppws[best_eff] / ppws[best_perf]),
               strprintf("%.0f%%",
                         100.0 * times[best_perf] / times[best_eff])});
    }
    std::fputs(t.render().c_str(), stdout);
    std::printf(
        "\n'eff gain' = perf/W at the efficiency-optimal point over\n"
        "perf/W at the performance-optimal point; 'perf kept' = share\n"
        "of peak performance the efficient point retains.  Kernels\n"
        "that cannot use a knob shed it entirely (launch-bound kernels\n"
        "drop to the smallest machine at large efficiency gains),\n"
        "while core-bound kernels keep the full shader array.\n");
}

} // namespace

GPUSCALE_BENCH_MAIN(emit)
