/**
 * @file
 * A2 — ablation: how sensitive are the taxonomy populations to the
 * shape-classifier thresholds?  A robust taxonomy should reshuffle
 * only boundary kernels as thresholds move.
 */

#include "bench_common.hh"

#include "base/table.hh"
#include "scaling/taxonomy.hh"

namespace {

using namespace gpuscale;

void
BM_ReclassifyAll(benchmark::State &state)
{
    const auto &c = bench::census();
    scaling::TaxonomyParams params;
    for (auto _ : state) {
        auto cls = scaling::classifyAll(c.surfaces, params);
        benchmark::DoNotOptimize(cls.data());
    }
}
BENCHMARK(BM_ReclassifyAll)->Unit(benchmark::kMicrosecond);

void
row(TextTable &t, const std::string &label,
    const scaling::TaxonomyParams &params)
{
    const auto &c = bench::census();
    const auto cls = scaling::classifyAll(c.surfaces, params);
    const auto hist = scaling::classHistogram(cls);
    t.beginRow();
    t.cell(label);
    for (const auto tax : scaling::allTaxonomyClasses())
        t.cell(strprintf("%zu", hist[static_cast<size_t>(tax)]));
}

void
emit()
{
    bench::banner("A2", "taxonomy sensitivity to shape thresholds");

    TextTable t;
    t.addColumn("variant");
    for (const auto tax : scaling::allTaxonomyClasses())
        t.addColumn(scaling::taxonomyClassName(tax),
                    TextTable::Align::Right);

    scaling::TaxonomyParams base;
    row(t, "default", base);

    scaling::TaxonomyParams strict_linear = base;
    strict_linear.shape.linear_fraction = 0.85;
    row(t, "linear_frac=0.85", strict_linear);

    scaling::TaxonomyParams loose_linear = base;
    loose_linear.shape.linear_fraction = 0.55;
    row(t, "linear_frac=0.55", loose_linear);

    scaling::TaxonomyParams strict_adverse = base;
    strict_adverse.shape.adverse_ratio = 0.75;
    row(t, "adverse=0.75", strict_adverse);

    scaling::TaxonomyParams loose_adverse = base;
    loose_adverse.shape.adverse_ratio = 0.95;
    row(t, "adverse=0.95", loose_adverse);

    scaling::TaxonomyParams tight_flat = base;
    tight_flat.shape.flat_gain = 1.05;
    row(t, "flat_gain=1.05", tight_flat);

    scaling::TaxonomyParams wide_flat = base;
    wide_flat.shape.flat_gain = 1.30;
    row(t, "flat_gain=1.30", wide_flat);

    scaling::TaxonomyParams responsive_2x = base;
    responsive_2x.responsive_gain = 2.0;
    row(t, "responsive=2.0", responsive_2x);

    scaling::TaxonomyParams insensitive_15 = base;
    insensitive_15.insensitive_range = 1.15;
    row(t, "insensitive=1.15", insensitive_15);

    std::fputs(t.render().c_str(), stdout);
    std::printf(
        "\nreading: the intuitive-class populations stay dominant and\n"
        "the non-obvious classes stay populated under every variant;\n"
        "only boundary kernels (a few percent) move between "
        "neighbouring\nclasses.\n");
}

} // namespace

GPUSCALE_BENCH_MAIN(emit)
