/**
 * @file
 * A3 — simulator throughput: estimates/second at both fidelities and
 * census wall time, the practical argument for the two-model design.
 */

#include "bench_common.hh"

#include "gpu/timing/event_sim.hh"
#include "harness/sweep_cache.hh"
#include "workloads/archetypes.hh"
#include "workloads/registry.hh"

namespace {

using namespace gpuscale;

void
BM_AnalyticThroughput(benchmark::State &state)
{
    const gpu::AnalyticModel model;
    const auto kernels =
        workloads::WorkloadRegistry::instance().allKernels();
    const auto cfg = gpu::makeMidConfig();
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.estimate(*kernels[i % kernels.size()], cfg).time_s);
        ++i;
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AnalyticThroughput);

void
BM_EventThroughputSmall(benchmark::State &state)
{
    const gpu::timing::EventModel model;
    const auto kernel = workloads::streaming(
        "a3/stream/k", {.wgs = 256, .wi_per_wg = 256});
    const auto cfg = gpu::makeMidConfig();
    for (auto _ : state)
        benchmark::DoNotOptimize(model.estimate(kernel, cfg).time_s);
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EventThroughputSmall)->Unit(benchmark::kMillisecond);

void
BM_FullCensusWallTime(benchmark::State &state)
{
    const gpu::AnalyticModel model;
    for (auto _ : state) {
        // Drop cached sweeps so every iteration measures the compute,
        // not a SweepCache hit.
        harness::SweepCache::instance().clear();
        auto census = harness::runCensus(model);
        benchmark::DoNotOptimize(census.classifications.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            267 * 891);
}
BENCHMARK(BM_FullCensusWallTime)->Unit(benchmark::kMillisecond);

void
emit()
{
    bench::banner("A3", "simulator throughput summary");

    // Direct measurement for the summary text: min-of-N with warmup
    // (one-shot numbers fold cold-start noise into the figure), with
    // the sweep cache dropped per run so compute is what gets timed.
    const gpu::AnalyticModel model;
    const auto census = harness::runCensus(model);
    const bench::TimingStats stats = bench::minOfN(1, 3, [&] {
        harness::SweepCache::instance().clear();
        auto repeat = harness::runCensus(model);
        benchmark::DoNotOptimize(repeat.classifications.data());
    });

    std::printf(
        "full census: %zu kernels x %zu configurations = %zu analytic\n"
        "estimates in %.2f s min-of-%d (%.0f estimates/s).\n",
        census.classifications.size(), census.space.size(),
        census.classifications.size() * census.space.size(),
        stats.min_s, stats.runs,
        static_cast<double>(census.classifications.size() *
                            census.space.size()) /
            stats.min_s);
    std::printf(
        "\nthe event-driven model (see timed section) runs one "
        "estimate in\nmilliseconds — usable for validation, three to "
        "four orders of\nmagnitude too slow for the census, matching "
        "the paper's choice of\nreal-hardware measurement over "
        "simulation for data collection.\n");
}

} // namespace

GPUSCALE_BENCH_MAIN(emit)
