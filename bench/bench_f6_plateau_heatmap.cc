/**
 * @file
 * F6 — frequency x bandwidth interaction heatmaps at 44 CUs: the
 * evidence for kernels that plateau as frequency and bandwidth are
 * increased, versus kernels that keep consuming one knob.
 */

#include "bench_common.hh"

#include "base/plot.hh"
#include "base/string_util.hh"
#include "scaling/taxonomy.hh"

namespace {

using namespace gpuscale;

void
BM_ClockPlaneExtraction(benchmark::State &state)
{
    const auto &c = bench::census();
    const size_t max_cu = c.space.numCu() - 1;
    for (auto _ : state) {
        double acc = 0;
        for (const auto &surface : c.surfaces)
            acc += surface.clockPlane(max_cu).back();
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_ClockPlaneExtraction);

void
printPlane(const harness::CensusResult &c, const std::string &kernel,
           const std::string &label)
{
    const auto *surface = findSurface(c, kernel);
    if (!surface)
        return;

    std::vector<std::string> rows, cols;
    for (const double clk : c.space.coreClks())
        rows.push_back(formatDouble(clk, 0));
    for (const double clk : c.space.memClks())
        cols.push_back(formatDouble(clk, 0));

    // Normalize to the plane's worst corner for readability.
    auto plane = surface->clockPlane(c.space.numCu() - 1);
    const double base =
        *std::min_element(plane.begin(), plane.end());
    for (double &v : plane)
        v /= base;

    Heatmap hm(strprintf("%s — %s (rows: core MHz, cols: mem MHz, "
                         "normalized perf)",
                         label.c_str(), kernel.c_str()),
               rows, cols, plane);
    std::printf("%s\n", hm.render().c_str());
}

void
emit()
{
    const auto &c = bench::census();
    bench::banner("F6", "frequency x bandwidth interaction at 44 CUs");

    // One plane per illustrative class: balanced (diagonal ridge),
    // latency-bound (plateaus in both), core-bound (rows only),
    // memory-bound (columns only).
    for (const auto *rep : harness::representativesPerClass(c)) {
        switch (rep->cls) {
          case scaling::TaxonomyClass::Balanced:
          case scaling::TaxonomyClass::LatencyBound:
          case scaling::TaxonomyClass::CoreBound:
          case scaling::TaxonomyClass::MemoryBound:
            printPlane(c, rep->kernel,
                       scaling::taxonomyClassName(rep->cls));
            break;
          default:
            break;
        }
    }
    std::printf(
        "paper shape: core-bound kernels vary along rows only,\n"
        "memory-bound along columns only; balanced kernels show a\n"
        "diagonal ridge; latency-bound kernels saturate toward the\n"
        "bottom-right plateau.\n");
}

} // namespace

GPUSCALE_BENCH_MAIN(emit)
