/**
 * @file
 * A1 — ablation: analytic vs discrete-event model.  Compares the two
 * fidelities on anchor kernels across the grid extremes and reports
 * runtime-ratio error plus the simulation-speed gap that justifies
 * using the analytic model for the 238k-point census.
 */

#include "bench_common.hh"

#include <cmath>

#include "base/math_util.hh"
#include "base/table.hh"
#include "gpu/timing/event_sim.hh"
#include "workloads/archetypes.hh"

namespace {

using namespace gpuscale;

std::vector<gpu::KernelDesc>
anchorKernels()
{
    using namespace workloads;
    return {
        denseCompute("anchor/dense/k", {.wgs = 1024, .wi_per_wg = 256}),
        streaming("anchor/stream/k", {.wgs = 1024, .wi_per_wg = 256}),
        tiledLds("anchor/lds/k", {.wgs = 1024, .wi_per_wg = 256}),
        stencil("anchor/sten/k", {.wgs = 1024, .wi_per_wg = 256},
                20.0),
        reduction("anchor/red/k", {.wgs = 512, .wi_per_wg = 256}, 0.5),
        graphTraversal("anchor/graph/k",
                       {.wgs = 256, .wi_per_wg = 256}),
        smallGridCompute("anchor/small/k", {.wgs = 16,
                                            .wi_per_wg = 256}),
    };
}

std::vector<gpu::GpuConfig>
probeConfigs()
{
    const auto space = scaling::ConfigSpace::paperGrid();
    return {space.minConfig(), space.at(5, 4, 4), space.maxConfig()};
}

void
BM_AnalyticEstimate(benchmark::State &state)
{
    const gpu::AnalyticModel model;
    const auto kernels = anchorKernels();
    const auto cfg = gpu::makeMaxConfig();
    for (auto _ : state) {
        for (const auto &k : kernels)
            benchmark::DoNotOptimize(model.estimate(k, cfg).time_s);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(kernels.size()));
}
BENCHMARK(BM_AnalyticEstimate);

void
BM_EventEstimate(benchmark::State &state)
{
    const gpu::timing::EventModel model;
    const auto kernels = anchorKernels();
    const auto cfg = gpu::makeMaxConfig();
    for (auto _ : state) {
        for (const auto &k : kernels)
            benchmark::DoNotOptimize(model.estimate(k, cfg).time_s);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(kernels.size()));
}
BENCHMARK(BM_EventEstimate)->Unit(benchmark::kMillisecond);

void
emit()
{
    const gpu::AnalyticModel analytic;
    const gpu::timing::EventModel event;

    bench::banner("A1", "analytic vs discrete-event model fidelity");

    TextTable t;
    t.addColumn("kernel");
    t.addColumn("config");
    t.addColumn("event (us)", TextTable::Align::Right);
    t.addColumn("analytic (us)", TextTable::Align::Right);
    t.addColumn("ratio", TextTable::Align::Right);

    std::vector<double> ratios;
    for (const auto &kernel : anchorKernels()) {
        for (const auto &cfg : probeConfigs()) {
            const double te = event.estimate(kernel, cfg).time_s;
            const double ta = analytic.estimate(kernel, cfg).time_s;
            ratios.push_back(te / ta);
            t.row({kernel.name, cfg.id(),
                   strprintf("%.2f", te * 1e6),
                   strprintf("%.2f", ta * 1e6),
                   strprintf("%.2f", te / ta)});
        }
    }
    std::fputs(t.render().c_str(), stdout);

    std::vector<double> abs_err;
    for (double r : ratios)
        abs_err.push_back(std::abs(std::log(r)));
    std::printf(
        "\nagreement: geomean |log-ratio| = %.3f "
        "(ratio spread %.2f .. %.2f)\n",
        mean(abs_err), *std::min_element(ratios.begin(), ratios.end()),
        *std::max_element(ratios.begin(), ratios.end()));
    std::printf(
        "the analytic model (see timed section) is ~10^3-10^4x faster,"
        "\nwhich is what makes the 267x891 census interactive.\n");
}

} // namespace

GPUSCALE_BENCH_MAIN(emit)
