/**
 * @file
 * T1 — the hardware configuration space.
 *
 * Reproduces the study-space table: 11 CU settings x 9 core clocks x
 * 9 memory clocks = 891 configurations (11x / 5x / 8.33x ranges, as
 * in the paper's abstract).  The benchmark times grid construction
 * and enumeration.
 */

#include "bench_common.hh"

#include "scaling/report.hh"

namespace {

using namespace gpuscale;

void
BM_BuildPaperGrid(benchmark::State &state)
{
    for (auto _ : state) {
        auto space = scaling::ConfigSpace::paperGrid();
        benchmark::DoNotOptimize(space.size());
    }
}
BENCHMARK(BM_BuildPaperGrid);

void
BM_EnumerateConfigs(benchmark::State &state)
{
    const auto space = scaling::ConfigSpace::paperGrid();
    for (auto _ : state) {
        double acc = 0;
        for (size_t i = 0; i < space.size(); ++i)
            acc += space.at(i).peakGflops();
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(space.size()));
}
BENCHMARK(BM_EnumerateConfigs);

void
emit()
{
    const auto space = scaling::ConfigSpace::paperGrid();
    bench::banner("T1", "hardware configuration space");
    std::fputs(scaling::configSpaceTable(space).render().c_str(),
               stdout);
    std::printf("\nextremes:\n  min: %s\n  max: %s\n",
                space.minConfig().describe().c_str(),
                space.maxConfig().describe().c_str());
}

} // namespace

GPUSCALE_BENCH_MAIN(emit)
