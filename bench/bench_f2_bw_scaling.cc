/**
 * @file
 * F2 — memory-bandwidth scaling curves (8.3x sweep at max CUs and
 * core clock) for one representative kernel per taxonomy class.
 */

#include "bench_common.hh"

#include "base/math_util.hh"
#include "base/plot.hh"
#include "scaling/taxonomy.hh"

namespace {

using namespace gpuscale;

void
BM_MemCurveExtraction(benchmark::State &state)
{
    const auto &c = bench::census();
    for (auto _ : state) {
        double acc = 0;
        for (const auto &surface : c.surfaces)
            acc += surface.memCurveAtMax().back();
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_MemCurveExtraction);

void
emit()
{
    const auto &c = bench::census();
    bench::banner("F2", "performance vs memory clock "
                        "(44 CUs, 1000 MHz core)");

    LineChart chart("speedup over 150 MHz", "memory clock (MHz)",
                    "normalized performance");
    chart.setSize(66, 18);

    std::printf("series (class: kernel, gain over the 8.3x sweep):\n");
    for (const auto *rep : harness::representativesPerClass(c)) {
        const auto *surface = findSurface(c, rep->kernel);
        const auto norm = normalizeToFirst(surface->memCurveAtMax());
        chart.addSeries({scaling::taxonomyClassName(rep->cls),
                         c.space.memClks(), norm});
        std::printf("  %-20s %s: %.2fx (%s)\n",
                    scaling::taxonomyClassName(rep->cls).c_str(),
                    rep->kernel.c_str(), rep->mem.total_gain,
                    scaling::shapeName(rep->mem.shape).c_str());
    }
    std::printf("\n%s\n", chart.render().c_str());
    std::printf("paper shape: bandwidth-bound kernels track the 8.3x "
                "range; compute-\nand launch-bound kernels are flat; "
                "latency-bound kernels saturate.\n");
}

} // namespace

GPUSCALE_BENCH_MAIN(emit)
