/**
 * @file
 * F1 — core-frequency scaling curves (5x sweep at max CUs and memory
 * clock) for one representative kernel per taxonomy class.
 */

#include "bench_common.hh"

#include "base/math_util.hh"
#include "base/plot.hh"
#include "scaling/taxonomy.hh"

namespace {

using namespace gpuscale;

void
BM_FreqCurveExtraction(benchmark::State &state)
{
    const auto &c = bench::census();
    for (auto _ : state) {
        double acc = 0;
        for (const auto &surface : c.surfaces)
            acc += surface.freqCurveAtMax().back();
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_FreqCurveExtraction);

void
emit()
{
    const auto &c = bench::census();
    bench::banner("F1", "performance vs core frequency "
                        "(44 CUs, 1250 MHz memory)");

    LineChart chart("speedup over 200 MHz", "core clock (MHz)",
                    "normalized performance");
    chart.setSize(66, 18);

    std::printf("series (class: kernel, gain over the 5x sweep):\n");
    for (const auto *rep : harness::representativesPerClass(c)) {
        const auto *surface = findSurface(c, rep->kernel);
        const auto curve = surface->freqCurveAtMax();
        const auto norm = normalizeToFirst(curve);
        chart.addSeries({scaling::taxonomyClassName(rep->cls),
                         c.space.coreClks(), norm});
        std::printf("  %-20s %s: %.2fx (%s)\n",
                    scaling::taxonomyClassName(rep->cls).c_str(),
                    rep->kernel.c_str(), rep->freq.total_gain,
                    scaling::shapeName(rep->freq.shape).c_str());
    }
    std::printf("\n%s\n", chart.render().c_str());
    std::printf("paper shape: compute-bound kernels track the 5x "
                "frequency range\nnearly linearly; latency- and "
                "launch-bound kernels plateau early.\n");
}

} // namespace

GPUSCALE_BENCH_MAIN(emit)
