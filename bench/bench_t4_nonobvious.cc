/**
 * @file
 * T4 — the non-obvious scalers: kernels that lose performance when
 * compute units are added, or that plateau as frequency and bandwidth
 * increase (the abstract's highlighted findings).
 */

#include "bench_common.hh"

#include <algorithm>
#include <vector>

#include "scaling/report.hh"

namespace {

using namespace gpuscale;

void
BM_NonObviousScan(benchmark::State &state)
{
    const auto &c = bench::census();
    for (auto _ : state) {
        size_t n = 0;
        for (const auto &k : c.classifications) {
            if (k.cls == scaling::TaxonomyClass::CuAdverse ||
                k.cls == scaling::TaxonomyClass::LatencyBound)
                ++n;
        }
        benchmark::DoNotOptimize(n);
    }
}
BENCHMARK(BM_NonObviousScan);

void
emit()
{
    const auto &c = bench::census();
    bench::banner("T4", "non-obvious scalers");

    // Worst CU-adverse kernels, sorted by end-to-peak loss.
    std::vector<const scaling::KernelClassification *> adverse;
    for (const auto &k : c.classifications) {
        if (k.cls == scaling::TaxonomyClass::CuAdverse)
            adverse.push_back(&k);
    }
    std::sort(adverse.begin(), adverse.end(),
              [](const auto *a, const auto *b) {
                  return a->cu.total_gain < b->cu.total_gain;
              });

    std::printf("kernels losing performance as CUs are added "
                "(%zu total):\n\n", adverse.size());
    TextTable t;
    t.addColumn("kernel");
    t.addColumn("perf @44CU vs @4CU", TextTable::Align::Right);
    t.addColumn("freq gain", TextTable::Align::Right);
    t.addColumn("mem gain", TextTable::Align::Right);
    for (const auto *k : adverse) {
        t.row({k->kernel, strprintf("%.2fx", k->cu.total_gain),
               strprintf("%.2fx", k->freq.total_gain),
               strprintf("%.2fx", k->mem.total_gain)});
    }
    std::fputs(t.render().c_str(), stdout);

    std::printf("\nfull non-obvious population (adverse, plateau, "
                "starved, launch-bound):\n\n");
    std::fputs(scaling::nonObviousTable(c.classifications, 40)
                   .render().c_str(),
               stdout);
}

} // namespace

GPUSCALE_BENCH_MAIN(emit)
