/**
 * @file
 * T3 — the headline result: taxonomy class populations across the
 * full census (267 kernels x 891 configurations).
 *
 * The benchmark times the end-to-end census (the paper's entire data
 * collection + classification pipeline) and a single-kernel sweep.
 */

#include "bench_common.hh"

#include "harness/sweep_cache.hh"
#include "scaling/report.hh"
#include "workloads/registry.hh"

namespace {

using namespace gpuscale;

void
BM_FullCensus(benchmark::State &state)
{
    const gpu::AnalyticModel model;
    for (auto _ : state) {
        // Measure the compute, not a SweepCache hit.
        harness::SweepCache::instance().clear();
        auto result = harness::runCensus(model);
        benchmark::DoNotOptimize(result.classifications.size());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            267 * 891);
}
BENCHMARK(BM_FullCensus)->Unit(benchmark::kMillisecond);

void
BM_SingleKernelSweep(benchmark::State &state)
{
    const gpu::AnalyticModel model;
    const auto space = scaling::ConfigSpace::paperGrid();
    const auto *kernel =
        workloads::WorkloadRegistry::instance().findKernel(
            "rodinia/hotspot/calculate_temp");
    for (auto _ : state) {
        harness::SweepCache::instance().clear();
        auto surface = harness::sweepKernel(model, *kernel, space);
        benchmark::DoNotOptimize(surface.runtimes().data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            891);
}
BENCHMARK(BM_SingleKernelSweep)->Unit(benchmark::kMicrosecond);

void
BM_ClassifyAll(benchmark::State &state)
{
    const auto &c = bench::census();
    for (auto _ : state) {
        auto classifications = scaling::classifyAll(c.surfaces);
        benchmark::DoNotOptimize(classifications.size());
    }
}
BENCHMARK(BM_ClassifyAll)->Unit(benchmark::kMicrosecond);

void
emit()
{
    const auto &c = bench::census();
    bench::banner("T3", "taxonomy class populations (267 kernels x "
                        "891 configurations)");
    std::fputs(
        scaling::classHistogramTable(c.classifications).render()
            .c_str(),
        stdout);
    std::printf(
        "\npaper shape: a majority of kernels scale intuitively with\n"
        "compute or bandwidth; 'a number of kernels' scale in\n"
        "non-obvious ways (CU-adverse, plateau, launch-bound).\n");
}

} // namespace

GPUSCALE_BENCH_MAIN(emit)
