/**
 * @file
 * F4 — the taxonomy distribution histogram over all 267 kernels.
 */

#include "bench_common.hh"

#include "base/plot.hh"
#include "scaling/report.hh"

namespace {

using namespace gpuscale;

void
BM_Histogram(benchmark::State &state)
{
    const auto &c = bench::census();
    for (auto _ : state) {
        auto hist = scaling::classHistogram(c.classifications);
        benchmark::DoNotOptimize(hist.data());
    }
}
BENCHMARK(BM_Histogram);

void
emit()
{
    const auto &c = bench::census();
    const auto hist = scaling::classHistogram(c.classifications);

    bench::banner("F4", "taxonomy distribution over 267 kernels");

    BarChart chart("kernels per taxonomy class");
    chart.setBarWidth(46);
    for (const auto cls : scaling::allTaxonomyClasses()) {
        chart.addBar(scaling::taxonomyClassName(cls),
                     static_cast<double>(
                         hist[static_cast<size_t>(cls)]));
    }
    std::printf("%s\n", chart.render().c_str());
    std::fputs(
        scaling::classHistogramTable(c.classifications).render()
            .c_str(),
        stdout);
}

} // namespace

GPUSCALE_BENCH_MAIN(emit)
