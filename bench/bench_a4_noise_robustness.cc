/**
 * @file
 * A4 — ablation: taxonomy robustness to measurement noise.
 *
 * Real studies time kernels on hardware; run-to-run noise perturbs
 * every sample.  This experiment re-runs the census under increasing
 * multiplicative lognormal noise and reports how many kernels keep
 * their clean-data class — and where the defectors go.
 */

#include "bench_common.hh"

#include "base/table.hh"
#include "harness/noise.hh"
#include "harness/sweep_cache.hh"
#include "scaling/taxonomy.hh"

namespace {

using namespace gpuscale;

void
BM_NoisyCensus(benchmark::State &state)
{
    const gpu::AnalyticModel inner;
    const harness::NoisyModel noisy(inner, 0.03, 1);
    for (auto _ : state) {
        // Measure the compute, not a SweepCache hit.
        harness::SweepCache::instance().clear();
        auto result = harness::runCensus(noisy);
        benchmark::DoNotOptimize(result.classifications.size());
    }
}
BENCHMARK(BM_NoisyCensus)->Unit(benchmark::kMillisecond);

void
emit()
{
    const auto &clean = bench::census();
    const gpu::AnalyticModel inner;

    bench::banner("A4", "taxonomy robustness to measurement noise");

    TextTable t;
    t.addColumn("noise sigma", TextTable::Align::Right);
    t.addColumn("stable kernels", TextTable::Align::Right);
    t.addColumn("stability", TextTable::Align::Right);
    t.addColumn("irregular", TextTable::Align::Right);
    t.addColumn("cu-adverse", TextTable::Align::Right);

    for (const double sigma : {0.0, 0.01, 0.02, 0.05, 0.10, 0.20}) {
        const harness::NoisyModel noisy(inner, sigma, 17);
        const auto census = harness::runCensus(noisy);

        size_t stable = 0;
        for (size_t i = 0; i < census.classifications.size(); ++i) {
            if (census.classifications[i].cls ==
                clean.classifications[i].cls) {
                ++stable;
            }
        }
        const auto hist =
            scaling::classHistogram(census.classifications);
        t.row({strprintf("%.2f", sigma),
               strprintf("%zu/267", stable),
               strprintf("%.0f%%", 100.0 * static_cast<double>(stable) /
                                       267.0),
               strprintf("%zu",
                         hist[static_cast<size_t>(
                             scaling::TaxonomyClass::Irregular)]),
               strprintf("%zu",
                         hist[static_cast<size_t>(
                             scaling::TaxonomyClass::CuAdverse)])});
    }
    std::fputs(t.render().c_str(), stdout);
    std::printf(
        "\nreading: at testbed-quality noise (sigma <= 0.02, i.e. ~2%%\n"
        "run-to-run) the taxonomy is essentially stable; heavy noise\n"
        "(>= 10%%) pushes borderline kernels into Irregular — which is\n"
        "exactly the role that class plays in a measurement study.\n");
}

} // namespace

GPUSCALE_BENCH_MAIN(emit)
