/**
 * @file
 * F5 — per-suite taxonomy breakdown (the stacked-bar view): which
 * suites contribute which scaling behaviours.
 */

#include "bench_common.hh"

#include "scaling/report.hh"
#include "scaling/suite_analysis.hh"

namespace {

using namespace gpuscale;

void
BM_SuiteBreakdown(benchmark::State &state)
{
    const auto &c = bench::census();
    for (auto _ : state) {
        auto reports = scaling::analyzeSuites(c.classifications, 44);
        benchmark::DoNotOptimize(reports.data());
    }
}
BENCHMARK(BM_SuiteBreakdown);

void
emit()
{
    const auto &c = bench::census();
    const auto reports = scaling::analyzeSuites(c.classifications, 44);

    bench::banner("F5", "per-suite taxonomy breakdown");
    std::fputs(scaling::suiteBreakdownTable(reports, 44).render()
                   .c_str(),
               stdout);

    // Per-suite composition as proportional text bars.
    std::printf("\nshare of non-scaling kernels per suite:\n");
    for (const auto &r : reports) {
        const auto bar_len = static_cast<size_t>(
            r.frac_non_scaling * 40.0 + 0.5);
        std::printf("  %-11s |%-40s| %.0f%%\n", r.suite.c_str(),
                    std::string(bar_len, '#').c_str(),
                    100.0 * r.frac_non_scaling);
    }
    std::printf(
        "\npaper shape: graph suites (pannotia) and tutorial suites\n"
        "(amdsdk) carry the largest share of kernels that cannot use\n"
        "a modern GPU; throughput suites (polybench, shoc) the least.\n");
}

} // namespace

GPUSCALE_BENCH_MAIN(emit)
