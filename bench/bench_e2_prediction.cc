/**
 * @file
 * E2 — extension: predict full scaling surfaces from sparse probes
 * using per-class templates (leave-one-out over the zoo).
 *
 * This quantifies the taxonomy's predictive content: if class
 * templates explain unseen kernels from six measurements instead of
 * 891, the taxonomy is a model, not just a catalogue — the direction
 * the authors took this dataset in follow-up work.
 */

#include "bench_common.hh"

#include "base/math_util.hh"
#include "base/table.hh"
#include "scaling/predictor.hh"

namespace {

using namespace gpuscale;

void
BM_TrainPredictor(benchmark::State &state)
{
    const auto &c = bench::census();
    for (auto _ : state) {
        scaling::ScalingPredictor predictor(c.surfaces,
                                            c.classifications);
        benchmark::DoNotOptimize(predictor.numTemplates());
    }
}
BENCHMARK(BM_TrainPredictor)->Unit(benchmark::kMillisecond);

void
BM_PredictOne(benchmark::State &state)
{
    const auto &c = bench::census();
    static const scaling::ScalingPredictor predictor(
        c.surfaces, c.classifications);
    const auto probes =
        scaling::ScalingPredictor::defaultProbes(c.space);
    std::vector<double> runtimes;
    for (size_t idx : probes)
        runtimes.push_back(c.surfaces.front().runtimes()[idx]);
    for (auto _ : state) {
        auto predicted = predictor.predict(probes, runtimes);
        benchmark::DoNotOptimize(predicted.data());
    }
}
BENCHMARK(BM_PredictOne)->Unit(benchmark::kMicrosecond);

void
emit()
{
    const auto &c = bench::census();
    bench::banner("E2", "surface prediction from 6 probes "
                        "(leave-one-out over 267 kernels)");

    const auto probes =
        scaling::ScalingPredictor::defaultProbes(c.space);

    // Leave-one-out: per class, accumulate errors.
    std::vector<std::vector<double>> mapes(
        scaling::kNumTaxonomyClasses);
    std::vector<double> all_mapes;
    size_t class_matches = 0;

    for (size_t leave = 0; leave < c.surfaces.size(); ++leave) {
        std::vector<scaling::ScalingSurface> train_s;
        std::vector<scaling::KernelClassification> train_c;
        train_s.reserve(c.surfaces.size() - 1);
        for (size_t i = 0; i < c.surfaces.size(); ++i) {
            if (i == leave)
                continue;
            train_s.push_back(c.surfaces[i]);
            train_c.push_back(c.classifications[i]);
        }
        const scaling::ScalingPredictor predictor(train_s, train_c);

        std::vector<double> runtimes;
        for (size_t idx : probes)
            runtimes.push_back(c.surfaces[leave].runtimes()[idx]);

        const auto predicted = predictor.predict(probes, runtimes);
        const auto err = scaling::evaluatePrediction(
            predicted, c.surfaces[leave].runtimes());
        const auto cls = c.classifications[leave].cls;
        mapes[static_cast<size_t>(cls)].push_back(err.mape);
        all_mapes.push_back(err.mape);
        if (predictor.matchClass(probes, runtimes) == cls)
            ++class_matches;
    }

    TextTable t;
    t.addColumn("class");
    t.addColumn("kernels", TextTable::Align::Right);
    t.addColumn("mean MAPE", TextTable::Align::Right);
    t.addColumn("p90 MAPE", TextTable::Align::Right);
    for (const auto cls : scaling::allTaxonomyClasses()) {
        const auto &errs = mapes[static_cast<size_t>(cls)];
        if (errs.empty())
            continue;
        t.row({scaling::taxonomyClassName(cls),
               strprintf("%zu", errs.size()),
               strprintf("%.1f%%", 100.0 * mean(errs)),
               strprintf("%.1f%%", 100.0 * percentile(errs, 90.0))});
    }
    t.row({"all", strprintf("%zu", all_mapes.size()),
           strprintf("%.1f%%", 100.0 * mean(all_mapes)),
           strprintf("%.1f%%", 100.0 * percentile(all_mapes, 90.0))});
    std::fputs(t.render().c_str(), stdout);

    std::printf(
        "\nprobe-only class identification: %zu/267 (%.0f%%)\n",
        class_matches,
        100.0 * static_cast<double>(class_matches) / 267.0);
    std::printf(
        "\nreading: 6 measurements out of 891 (0.7%% of the sweep)\n"
        "predict the remaining 885 within a mean error of the order\n"
        "above — the scaling classes carry real predictive signal.\n");
}

} // namespace

GPUSCALE_BENCH_MAIN(emit)
