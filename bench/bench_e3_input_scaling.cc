/**
 * @file
 * E3 — extension: are the non-scaling kernels fixable by bigger
 * inputs?  The paper's conclusion offers two remedies — "new
 * benchmarks or new inputs".  This experiment scales the launches of
 * every parallelism-starved and launch-bound kernel by up to 64x and
 * reports which remedy applies.
 */

#include "bench_common.hh"

#include "base/table.hh"
#include "scaling/input_scaling.hh"
#include "workloads/registry.hh"

namespace {

using namespace gpuscale;

void
BM_InputScalingStudy(benchmark::State &state)
{
    const gpu::AnalyticModel model;
    const auto *kernel =
        workloads::WorkloadRegistry::instance().findKernel(
            "rodinia/leukocyte/mgvf_kernel");
    const auto space = scaling::ConfigSpace::paperGrid();
    for (auto _ : state) {
        auto result =
            scaling::studyInputScaling(model, *kernel, space);
        benchmark::DoNotOptimize(result.points.data());
    }
}
BENCHMARK(BM_InputScalingStudy)->Unit(benchmark::kMillisecond);

void
emit()
{
    const auto &census = bench::census();
    const gpu::AnalyticModel model;
    const auto &registry = workloads::WorkloadRegistry::instance();

    bench::banner("E3", "new benchmarks or new inputs? input-scaling "
                        "the non-scaling kernels");

    TextTable t;
    t.addColumn("kernel");
    t.addColumn("class @1x");
    t.addColumn("cu90 @1x", TextTable::Align::Right);
    t.addColumn("@4x", TextTable::Align::Right);
    t.addColumn("@16x", TextTable::Align::Right);
    t.addColumn("@64x", TextTable::Align::Right);
    t.addColumn("verdict");

    size_t fixable = 0, partial = 0, algorithmic = 0, studied = 0;
    for (const auto &c : census.classifications) {
        if (c.cls != scaling::TaxonomyClass::ParallelismStarved &&
            c.cls != scaling::TaxonomyClass::LaunchBound) {
            continue;
        }
        const auto *kernel = registry.findKernel(c.kernel);
        const auto result =
            scaling::studyInputScaling(model, *kernel, census.space);
        ++studied;
        switch (result.verdict) {
          case scaling::InputVerdict::FixableByInput: ++fixable; break;
          case scaling::InputVerdict::PartiallyFixable:
            ++partial;
            break;
          case scaling::InputVerdict::AlgorithmLimited:
            ++algorithmic;
            break;
        }
        t.row({c.kernel, scaling::taxonomyClassName(c.cls),
               strprintf("%d", result.points[0].cu90),
               strprintf("%d", result.points[1].cu90),
               strprintf("%d", result.points[2].cu90),
               strprintf("%d", result.points[3].cu90),
               scaling::inputVerdictName(result.verdict)});
    }
    std::fputs(t.render().c_str(), stdout);

    std::printf(
        "\nof %zu non-scaling kernels: %zu fixable by bigger inputs,\n"
        "%zu partially fixable, %zu algorithm-limited (need new\n"
        "benchmarks, not new inputs) — the quantitative split behind\n"
        "the paper's closing sentence.\n",
        studied, fixable, partial, algorithmic);
}

} // namespace

GPUSCALE_BENCH_MAIN(emit)
