/**
 * @file
 * Census benchmark runner: the repo's perf gate.
 *
 * Times the batched, sharded census engine end to end (min-of-N with
 * warmup), the legacy scalar single-thread walk it replaced, the
 * single-thread SoA batched walk (the like-for-like >= 8x SIMD gate),
 * the per-stage split of the batched path (plan preparation vs the
 * vectorized clock-pair kernel), and a warm repeat that exercises the
 * sweep cache, then emits BENCH_census.json so CI can archive wall
 * time, estimates/s, thread count, speedups, and cache hit rate per
 * commit.
 *
 * Also times the census with a crash-safe checkpoint journal attached
 * and emits BENCH_resilience.json; the journal's write overhead vs
 * the unjournaled run is the resilience perf gate (<= 5%).
 *
 * Also times the hot sweep with the sharded telemetry instruments
 * quiesced vs recording and emits BENCH_telemetry.json; the recording
 * overhead is the instrumentation perf gate (<= 2%).
 *
 * Also sweeps the sparse census over a ladder of sample budgets for
 * both samplers and emits BENCH_sparse.json: classification-agreement
 * vs budget curves against the dense census, plus the
 * agreement_at_10pct_{lhs,active} fields the >= 0.95 accuracy gate
 * checks (docs/prediction.md).
 *
 * Usage: bench_runner [--runs=N] [--warmup=N] [--output=FILE]
 *                     [--resilience-output=FILE]
 *                     [--telemetry-output=FILE]
 *                     [--sparse-output=FILE] [--test-grid]
 *
 * --test-grid shrinks the sweep to the 27-point grid so smoke jobs
 * stay fast; the emitted JSON records which grid ran.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/logging.hh"
#include "base/string_util.hh"
#include "bench_common.hh"
#include "harness/checkpoint.hh"
#include "harness/experiment.hh"
#include "harness/sparse.hh"
#include "harness/sweep.hh"
#include "harness/sweep_cache.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/sharded.hh"
#include "workloads/registry.hh"

namespace {

using namespace gpuscale;

struct RunnerOptions {
    int runs = 5;
    int warmup = 1;
    std::string output = "BENCH_census.json";
    std::string resilience_output = "BENCH_resilience.json";
    std::string telemetry_output = "BENCH_telemetry.json";
    std::string sparse_output = "BENCH_sparse.json";
    bool test_grid = false;
};

using bench::writeTiming;

int
run(const RunnerOptions &opts)
{
    const gpu::AnalyticModel model;
    const auto space = opts.test_grid
                           ? scaling::ConfigSpace::testGrid()
                           : scaling::ConfigSpace::paperGrid();
    const gpu::ConfigGrid grid = space.grid();
    const auto kernels =
        workloads::WorkloadRegistry::instance().allKernels();
    const double estimates =
        static_cast<double>(kernels.size()) *
        static_cast<double>(space.size());
    const unsigned threads =
        std::max<unsigned>(1u, std::thread::hardware_concurrency());

    bench::banner("BENCH", "batched sharded census engine");
    std::printf("%zu kernels x %zu configs = %.0f estimates, "
                "%u hardware threads\n",
                kernels.size(), space.size(), estimates, threads);

    //
    // 1. The engine under test: batched evaluateGrid + kernel shards
    //    across the worker pool.  The cache is dropped per run so the
    //    number is compute, not lookups.
    //
    const bench::TimingStats batched =
        bench::minOfN(opts.warmup, opts.runs, [&] {
            harness::SweepCache::instance().clear();
            const auto surfaces =
                harness::sweepKernels(model, kernels, space);
            fatal_if(surfaces.size() != kernels.size(),
                     "census produced %zu surfaces for %zu kernels",
                     surfaces.size(), kernels.size());
        });
    std::printf("batched parallel census: %.4f s min-of-%d "
                "(%.0f estimates/s)\n",
                batched.min_s, batched.runs, estimates / batched.min_s);

    //
    // 2. The baseline it replaced: one scalar estimate() per point on
    //    the calling thread.
    //
    const bench::TimingStats scalar =
        bench::minOfN(std::min(opts.warmup, 1), opts.runs, [&] {
            double sink = 0.0;
            for (const auto *kernel : kernels) {
                for (size_t i = 0; i < space.size(); ++i)
                    sink += model.estimate(*kernel, space.at(i)).time_s;
            }
            fatal_if(sink <= 0, "scalar walk produced no time");
        });
    const double speedup =
        batched.min_s > 0 ? scalar.min_s / batched.min_s : 0.0;
    std::printf("scalar 1-thread census:  %.4f s min-of-%d "
                "(%.0f estimates/s)\n",
                scalar.min_s, scalar.runs, estimates / scalar.min_s);
    std::printf("speedup: %.2fx\n", speedup);

    //
    // 2b. The like-for-like SIMD gate: one thread, no cache, no pool —
    //     the SoA batched kernel against the scalar walk above.  This
    //     is the number the >= 8x CI gate checks; the parallel figure
    //     in section 1 folds thread scaling in on top and is reported
    //     separately.
    //
    const bench::TimingStats batched_single =
        bench::minOfN(std::min(opts.warmup, 1), opts.runs, [&] {
            double sink = 0.0;
            for (const auto *kernel : kernels)
                sink += model.evaluateGridRuntimes(*kernel, grid)[0];
            fatal_if(sink <= 0, "batched walk produced no time");
        });
    const double speedup_single_core =
        batched_single.min_s > 0 ? scalar.min_s / batched_single.min_s
                                 : 0.0;
    std::printf("batched 1-thread census: %.4f s min-of-%d "
                "(%.0f estimates/s)\n",
                batched_single.min_s, batched_single.runs,
                estimates / batched_single.min_s);
    std::printf("single-core speedup: %.2fx (gate: >= 8x)\n",
                speedup_single_core);

    //
    // 2c. Stage split: stages 1-2 hoist kernel invariants and per-CU
    //     state into the flat SoA plan (prepareBatch); stage 3 is the
    //     vectorized clock-pair loop (runBatch).  Timing them apart
    //     shows where a regression landed.
    //
    const bench::TimingStats stage12 =
        bench::minOfN(std::min(opts.warmup, 1), opts.runs, [&] {
            for (const auto *kernel : kernels) {
                const auto plan = model.prepareBatch(*kernel, grid);
                fatal_if(plan.cu.empty(), "empty batch plan");
            }
        });
    std::vector<gpu::batch::BatchPlan> plans;
    plans.reserve(kernels.size());
    for (const auto *kernel : kernels)
        plans.push_back(model.prepareBatch(*kernel, grid));
    std::vector<double> scratch(space.size());
    const bench::TimingStats stage3 =
        bench::minOfN(std::min(opts.warmup, 1), opts.runs, [&] {
            for (const auto &plan : plans)
                gpu::batch::runBatch(plan, scratch.data());
            fatal_if(scratch[0] <= 0,
                     "stage-3 kernel produced no time");
        });
    plans.clear();
    std::printf("  stage 1-2 (prepare):   %.4f s min-of-%d\n",
                stage12.min_s, stage12.runs);
    std::printf("  stage 3 (SIMD kernel): %.4f s min-of-%d "
                "(%.1f ns/point)\n",
                stage3.min_s, stage3.runs,
                stage3.min_s / estimates * 1e9);

    //
    // 3. Warm repeat: every sweep should be served by the cache the
    //    last timed run populated.
    //
    auto &registry = obs::Registry::instance();
    const double hits0 = static_cast<double>(
        registry.counter("sweep.cache.hits").value());
    const double misses0 = static_cast<double>(
        registry.counter("sweep.cache.misses").value());
    const auto warm = bench::minOfN(0, 1, [&] {
        const auto surfaces =
            harness::sweepKernels(model, kernels, space);
        fatal_if(surfaces.empty(), "warm census produced nothing");
    });
    const double hits = static_cast<double>(
        registry.counter("sweep.cache.hits").value()) - hits0;
    const double misses = static_cast<double>(
        registry.counter("sweep.cache.misses").value()) - misses0;
    const double lookups = hits + misses;
    const double hit_rate = lookups > 0 ? hits / lookups : 0.0;
    std::printf("warm repeat: %.4f s, cache hit rate %.3f "
                "(%.0f/%.0f)\n",
                warm.min_s, hit_rate, hits, lookups);

    //
    // 4. Resilience gate: the full census (sweep + classification —
    //    what `gpuscale census` runs and what a user checkpoints)
    //    with and without the crash-safe journal.  The journal's
    //    write overhead against its own unjournaled baseline must
    //    stay <= 5%.
    //
    const bench::TimingStats census_plain =
        bench::minOfN(opts.warmup, opts.runs, [&] {
            harness::SweepCache::instance().clear();
            const auto census = harness::runCensus(
                model, space, scaling::TaxonomyParams{});
            fatal_if(census.classifications.size() != kernels.size(),
                     "census classified %zu of %zu kernels",
                     census.classifications.size(), kernels.size());
        });
    const std::string journal_dir = "bench-checkpoint-journal";
    std::filesystem::remove_all(journal_dir);
    const uint64_t records0 =
        registry.counter("checkpoint.records").value();
    // A fresh journal per run (a pre-existing one would replay
    // instead of write), constructed up front: journal setup is
    // once-per-census, the gate measures steady-state record() write
    // overhead.
    std::vector<std::unique_ptr<harness::CensusJournal>> journals;
    for (int i = 0; i < opts.warmup + opts.runs; ++i) {
        journals.push_back(std::make_unique<harness::CensusJournal>(
            journal_dir + "/" + std::to_string(i),
            model.fingerprint(), space.grid().fingerprint()));
    }
    size_t ck_run = 0;
    const bench::TimingStats checkpointed =
        bench::minOfN(opts.warmup, opts.runs, [&] {
            harness::SweepCache::instance().clear();
            const auto census = harness::runCensus(
                model, space, scaling::TaxonomyParams{}, nullptr,
                journals[ck_run++].get());
            fatal_if(census.classifications.size() != kernels.size(),
                     "checkpointed census classified %zu of %zu "
                     "kernels",
                     census.classifications.size(), kernels.size());
        });
    journals.clear();
    std::filesystem::remove_all(journal_dir);
    const uint64_t journal_records =
        registry.counter("checkpoint.records").value() - records0;
    const double overhead_pct =
        census_plain.min_s > 0
            ? (checkpointed.min_s / census_plain.min_s - 1.0) * 100.0
            : 0.0;
    std::printf("census (no journal):     %.4f s min-of-%d\n",
                census_plain.min_s, census_plain.runs);
    std::printf("census (journaled):      %.4f s min-of-%d "
                "(journal overhead %+.2f%%)\n",
                checkpointed.min_s, checkpointed.runs, overhead_pct);

    std::ofstream os(opts.output);
    fatal_if(!os, "cannot write %s", opts.output.c_str());
    obs::JsonWriter w(os);
    w.beginObject();
    w.key("schema_version").value(1);
    w.key("benchmark").value("census");
    w.key("grid").value(opts.test_grid ? "test" : "paper");
    w.key("kernels").value(static_cast<uint64_t>(kernels.size()));
    w.key("configs").value(static_cast<uint64_t>(space.size()));
    w.key("estimates_per_run").value(estimates);
    w.key("threads").value(static_cast<uint64_t>(threads));
    w.key("warmup").value(opts.warmup);
    w.key("batched_parallel");
    writeTiming(w, batched, estimates);
    w.key("scalar_single_thread");
    writeTiming(w, scalar, estimates);
    w.key("speedup").value(speedup);
    w.key("batched_single_thread");
    writeTiming(w, batched_single, estimates);
    w.key("stage12_prepare");
    writeTiming(w, stage12, estimates);
    w.key("stage3_kernel");
    writeTiming(w, stage3, estimates);
    w.key("speedup_single_core").value(speedup_single_core);
    w.key("cache");
    w.beginObject();
    w.key("warm_run_s").value(warm.min_s);
    w.key("hits").value(hits);
    w.key("misses").value(misses);
    w.key("hit_rate").value(hit_rate);
    w.key("entries").value(static_cast<uint64_t>(
        harness::SweepCache::instance().entries()));
    w.endObject();
    // Registry counters carry the engine's own telemetry: estimate
    // counts, shard geometry, and cache traffic for the whole process.
    w.key("metrics");
    w.beginObject();
    w.key("sweep.estimates.count").value(static_cast<uint64_t>(
        registry.shardedCounter("sweep.estimates.count").value()));
    w.key("sweep.cache.hits").value(static_cast<uint64_t>(
        registry.counter("sweep.cache.hits").value()));
    w.key("sweep.cache.misses").value(static_cast<uint64_t>(
        registry.counter("sweep.cache.misses").value()));
    w.key("census.shard.count")
        .value(registry.gauge("census.shard.count").value());
    w.endObject();
    w.endObject();
    os << '\n';
    fatal_if(!w.complete(), "BENCH JSON incomplete");
    inform("wrote %s", opts.output.c_str());

    std::ofstream ros(opts.resilience_output);
    fatal_if(!ros, "cannot write %s", opts.resilience_output.c_str());
    obs::JsonWriter rw(ros);
    rw.beginObject();
    rw.key("schema_version").value(1);
    rw.key("benchmark").value("resilience");
    rw.key("grid").value(opts.test_grid ? "test" : "paper");
    rw.key("threads").value(static_cast<uint64_t>(threads));
    rw.key("checkpointed");
    writeTiming(rw, checkpointed, estimates);
    rw.key("baseline_min_s").value(census_plain.min_s);
    rw.key("overhead_pct").value(overhead_pct);
    rw.key("journal_records_per_run")
        .value(static_cast<uint64_t>(kernels.size()));
    rw.key("journal_records_total").value(journal_records);
    rw.endObject();
    ros << '\n';
    fatal_if(!rw.complete(), "resilience BENCH JSON incomplete");
    inform("wrote %s", opts.resilience_output.c_str());

    //
    // 5. Telemetry gate: the same hot sweep with the sharded
    //    instruments quiesced (inc()/record() return after one
    //    relaxed load — the zero-cost baseline) vs fully recording.
    //    The recording overhead must stay <= 2%.
    //
    obs::Registry::setQuiesced(true);
    const bench::TimingStats quiesced =
        bench::minOfN(opts.warmup, opts.runs, [&] {
            harness::SweepCache::instance().clear();
            const auto surfaces =
                harness::sweepKernels(model, kernels, space);
            fatal_if(surfaces.size() != kernels.size(),
                     "quiesced census produced %zu surfaces",
                     surfaces.size());
        });
    obs::Registry::setQuiesced(false);
    const bench::TimingStats instrumented =
        bench::minOfN(opts.warmup, opts.runs, [&] {
            harness::SweepCache::instance().clear();
            const auto surfaces =
                harness::sweepKernels(model, kernels, space);
            fatal_if(surfaces.size() != kernels.size(),
                     "instrumented census produced %zu surfaces",
                     surfaces.size());
        });
    const double telemetry_overhead_pct =
        quiesced.min_s > 0
            ? (instrumented.min_s / quiesced.min_s - 1.0) * 100.0
            : 0.0;
    std::printf("census (quiesced):       %.4f s min-of-%d\n",
                quiesced.min_s, quiesced.runs);
    std::printf("census (instrumented):   %.4f s min-of-%d "
                "(telemetry overhead %+.2f%%)\n",
                instrumented.min_s, instrumented.runs,
                telemetry_overhead_pct);

    const auto shard_values =
        registry.shardedCounter("sweep.estimates.count").shardValues();
    std::ofstream tos(opts.telemetry_output);
    fatal_if(!tos, "cannot write %s", opts.telemetry_output.c_str());
    obs::JsonWriter tw(tos);
    tw.beginObject();
    tw.key("schema_version").value(1);
    tw.key("benchmark").value("telemetry");
    tw.key("grid").value(opts.test_grid ? "test" : "paper");
    tw.key("threads").value(static_cast<uint64_t>(threads));
    tw.key("shard_count")
        .value(static_cast<uint64_t>(obs::shardCount()));
    tw.key("quiesced");
    writeTiming(tw, quiesced, estimates);
    tw.key("instrumented");
    writeTiming(tw, instrumented, estimates);
    tw.key("overhead_pct").value(telemetry_overhead_pct);
    tw.key("shard_values").beginArray();
    for (const uint64_t v : shard_values)
        tw.value(v);
    tw.endArray();
    tw.endObject();
    tos << '\n';
    fatal_if(!tw.complete(), "telemetry BENCH JSON incomplete");
    inform("wrote %s", opts.telemetry_output.c_str());

    //
    // 6. Sparse-census accuracy curves: reconstruct the census from a
    //    ladder of sample budgets with both samplers and score each
    //    against the dense census.  The 10%-budget agreement is the
    //    CI accuracy gate (>= 0.95); the curve around it shows how
    //    much margin the estimator has.
    //
    const auto dense = harness::runCensus(
        model, space, scaling::TaxonomyParams{});
    const scaling::SparsePredictor sparse_predictor(space);
    const std::vector<double> fractions =
        opts.test_grid ? std::vector<double>{0.35, 0.5, 0.8}
                       : std::vector<double>{0.04, 0.06, 0.08, 0.10,
                                             0.15};
    auto budgetFor = [&](double fraction) {
        const double raw =
            fraction * static_cast<double>(space.size());
        size_t k = static_cast<size_t>(raw + 0.5);
        k = std::max(k, sparse_predictor.minSamples());
        return std::min(k, space.size());
    };

    struct SparseCurvePoint {
        std::string sampler;
        size_t samples;
        double fraction;
        double agreement;
        double mean_confidence;
        uint64_t disagreements;
        uint64_t disagreements_banded;
        double wall_s;
    };
    std::vector<SparseCurvePoint> curve;
    double agreement_10pct_lhs = 0.0, agreement_10pct_active = 0.0;
    std::printf("\nsparse census accuracy vs budget:\n");
    for (const auto sampler :
         {scaling::SamplerKind::Lhs, scaling::SamplerKind::Active})
    {
        for (const double fraction : fractions) {
            harness::SparseCensusOptions so;
            so.samples = budgetFor(fraction);
            so.sampler = sampler;
            const auto timing = bench::minOfN(0, 1, [&] {
                harness::SweepCache::instance().clear();
                const auto sparse = harness::runSparseCensus(
                    model, space, so, scaling::TaxonomyParams{});
                const double agreement = harness::sparseAgreement(
                    sparse, dense.classifications);
                double mean_confidence = 0.0;
                uint64_t disagreements = 0, banded = 0;
                for (size_t k = 0;
                     k < sparse.classifications.size(); ++k)
                {
                    mean_confidence +=
                        sparse.reconstructions[k].confidence;
                    const auto *dc = harness::findClassification(
                        dense, sparse.classifications[k].kernel);
                    if (dc == nullptr ||
                        dc->cls == sparse.classifications[k].cls)
                    {
                        continue;
                    }
                    ++disagreements;
                    banded += sparse.reconstructions[k]
                                  .band_crosses_boundary;
                }
                if (!sparse.classifications.empty()) {
                    mean_confidence /= static_cast<double>(
                        sparse.classifications.size());
                }
                curve.push_back({scaling::samplerKindName(sampler),
                                 so.samples, fraction, agreement,
                                 mean_confidence, disagreements,
                                 banded, 0.0});
            });
            curve.back().wall_s = timing.min_s;
            if (fraction == 0.10 &&
                sampler == scaling::SamplerKind::Lhs)
            {
                agreement_10pct_lhs = curve.back().agreement;
            }
            if (fraction == 0.10 &&
                sampler == scaling::SamplerKind::Active)
            {
                agreement_10pct_active = curve.back().agreement;
            }
            std::printf("  %-6s k=%4zu (%4.1f%%): agreement %.4f, "
                        "confidence %.3f, %llu/%llu disagreements "
                        "banded, %.3f s\n",
                        curve.back().sampler.c_str(),
                        curve.back().samples, 100.0 * fraction,
                        curve.back().agreement,
                        curve.back().mean_confidence,
                        static_cast<unsigned long long>(
                            curve.back().disagreements_banded),
                        static_cast<unsigned long long>(
                            curve.back().disagreements),
                        curve.back().wall_s);
        }
    }

    std::ofstream sos(opts.sparse_output);
    fatal_if(!sos, "cannot write %s", opts.sparse_output.c_str());
    obs::JsonWriter sw(sos);
    sw.beginObject();
    sw.key("schema_version").value(1);
    sw.key("benchmark").value("sparse");
    sw.key("grid").value(opts.test_grid ? "test" : "paper");
    sw.key("kernels").value(static_cast<uint64_t>(kernels.size()));
    sw.key("configs").value(static_cast<uint64_t>(space.size()));
    sw.key("min_samples").value(
        static_cast<uint64_t>(sparse_predictor.minSamples()));
    sw.key("curves").beginArray();
    for (const auto &p : curve) {
        sw.beginObject();
        sw.key("sampler").value(p.sampler);
        sw.key("samples").value(static_cast<uint64_t>(p.samples));
        sw.key("fraction").value(p.fraction);
        sw.key("agreement").value(p.agreement);
        sw.key("mean_confidence").value(p.mean_confidence);
        sw.key("disagreements").value(p.disagreements);
        sw.key("disagreements_banded").value(p.disagreements_banded);
        sw.key("wall_s").value(p.wall_s);
        sw.endObject();
    }
    sw.endArray();
    // The jq gate's fields: agreement at the 10% budget (0 on the
    // test grid, whose ladder has no 10% point — the gate only runs
    // on the paper grid).
    sw.key("agreement_at_10pct_lhs").value(agreement_10pct_lhs);
    sw.key("agreement_at_10pct_active").value(agreement_10pct_active);
    sw.key("metrics");
    sw.beginObject();
    sw.key("sparse.samples.count").value(static_cast<uint64_t>(
        registry.shardedCounter("sparse.samples.count").value()));
    sw.endObject();
    sw.endObject();
    sos << '\n';
    fatal_if(!sw.complete(), "sparse BENCH JSON incomplete");
    inform("wrote %s", opts.sparse_output.c_str());

    bench::emitInstrumentation();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    RunnerOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto intFlag = [&](const char *prefix,
                           int &out) -> bool {
            const size_t n = std::strlen(prefix);
            if (arg.rfind(prefix, 0) != 0)
                return false;
            const auto parsed = parseDouble(arg.substr(n));
            fatal_if(!parsed || *parsed < 0 ||
                         *parsed != static_cast<int>(*parsed),
                     "bad value in '%s'", arg.c_str());
            out = static_cast<int>(*parsed);
            return true;
        };
        if (intFlag("--runs=", opts.runs)) {
            continue;
        } else if (intFlag("--warmup=", opts.warmup)) {
            continue;
        } else if (arg.rfind("--resilience-output=", 0) == 0) {
            opts.resilience_output = arg.substr(20);
        } else if (arg.rfind("--telemetry-output=", 0) == 0) {
            opts.telemetry_output = arg.substr(19);
        } else if (arg.rfind("--sparse-output=", 0) == 0) {
            opts.sparse_output = arg.substr(16);
        } else if (arg.rfind("--output=", 0) == 0) {
            opts.output = arg.substr(9);
        } else if (arg == "--test-grid") {
            opts.test_grid = true;
        } else {
            std::fprintf(
                stderr,
                "usage: bench_runner [--runs=N] [--warmup=N] "
                "[--output=FILE] [--resilience-output=FILE] "
                "[--telemetry-output=FILE] [--sparse-output=FILE] "
                "[--test-grid]\n");
            return 1;
        }
    }
    fatal_if(opts.runs < 1, "--runs must be >= 1");
    return run(opts);
}
