/**
 * @file
 * Census benchmark runner: the repo's perf gate.
 *
 * Times the batched, sharded census engine end to end (min-of-N with
 * warmup), the legacy scalar single-thread walk it replaced, the
 * single-thread SoA batched walk (the like-for-like >= 8x SIMD gate),
 * the per-stage split of the batched path (plan preparation vs the
 * vectorized clock-pair kernel), and a warm repeat that exercises the
 * sweep cache, then emits BENCH_census.json so CI can archive wall
 * time, estimates/s, thread count, speedups, and cache hit rate per
 * commit.
 *
 * Also times the census with a crash-safe checkpoint journal attached
 * and emits BENCH_resilience.json; the journal's write overhead vs
 * the unjournaled run is the resilience perf gate (<= 5%).
 *
 * Also times the hot sweep with the sharded telemetry instruments
 * quiesced vs recording and emits BENCH_telemetry.json; the recording
 * overhead is the instrumentation perf gate (<= 2%).
 *
 * Also sweeps the sparse census over a ladder of sample budgets for
 * both samplers and emits BENCH_sparse.json: classification-agreement
 * vs budget curves against the dense census, plus the
 * agreement_at_10pct_{lhs,active} fields the >= 0.95 accuracy gate
 * checks (docs/prediction.md).
 *
 * Also drives an in-process gpuscaled service over its Unix socket
 * (docs/service.md) and emits BENCH_service.json: a latency phase
 * (p50/p99/qps across concurrent clients) and a saturation phase
 * against a deliberately tiny admission bound, whose gates are
 * sheds > 0 (overload is shed, not queued) and stalls == 0 (no call
 * ever outlives its deadline plus grace).
 *
 * Usage: bench_runner [--runs=N] [--warmup=N] [--output=FILE]
 *                     [--resilience-output=FILE]
 *                     [--telemetry-output=FILE]
 *                     [--sparse-output=FILE]
 *                     [--service-output=FILE] [--test-grid]
 *
 * --test-grid shrinks the sweep to the 27-point grid so smoke jobs
 * stay fast; the emitted JSON records which grid ran.
 */

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/logging.hh"
#include "base/string_util.hh"
#include "bench_common.hh"
#include "harness/checkpoint.hh"
#include "harness/experiment.hh"
#include "harness/sparse.hh"
#include "harness/sweep.hh"
#include "harness/sweep_cache.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/sharded.hh"
#include "service/client.hh"
#include "service/server.hh"
#include "workloads/registry.hh"

namespace {

using namespace gpuscale;

struct RunnerOptions {
    int runs = 5;
    int warmup = 1;
    std::string output = "BENCH_census.json";
    std::string resilience_output = "BENCH_resilience.json";
    std::string telemetry_output = "BENCH_telemetry.json";
    std::string sparse_output = "BENCH_sparse.json";
    std::string service_output = "BENCH_service.json";
    bool test_grid = false;
};

using bench::writeTiming;

int
run(const RunnerOptions &opts)
{
    const gpu::AnalyticModel model;
    const auto space = opts.test_grid
                           ? scaling::ConfigSpace::testGrid()
                           : scaling::ConfigSpace::paperGrid();
    const gpu::ConfigGrid grid = space.grid();
    const auto kernels =
        workloads::WorkloadRegistry::instance().allKernels();
    const double estimates =
        static_cast<double>(kernels.size()) *
        static_cast<double>(space.size());
    const unsigned threads =
        std::max<unsigned>(1u, std::thread::hardware_concurrency());

    bench::banner("BENCH", "batched sharded census engine");
    std::printf("%zu kernels x %zu configs = %.0f estimates, "
                "%u hardware threads\n",
                kernels.size(), space.size(), estimates, threads);

    //
    // 1. The engine under test: batched evaluateGrid + kernel shards
    //    across the worker pool.  The cache is dropped per run so the
    //    number is compute, not lookups.
    //
    const bench::TimingStats batched =
        bench::minOfN(opts.warmup, opts.runs, [&] {
            harness::SweepCache::instance().clear();
            const auto surfaces =
                harness::sweepKernels(model, kernels, space);
            fatal_if(surfaces.size() != kernels.size(),
                     "census produced %zu surfaces for %zu kernels",
                     surfaces.size(), kernels.size());
        });
    std::printf("batched parallel census: %.4f s min-of-%d "
                "(%.0f estimates/s)\n",
                batched.min_s, batched.runs, estimates / batched.min_s);

    //
    // 2. The baseline it replaced: one scalar estimate() per point on
    //    the calling thread.
    //
    const bench::TimingStats scalar =
        bench::minOfN(std::min(opts.warmup, 1), opts.runs, [&] {
            double sink = 0.0;
            for (const auto *kernel : kernels) {
                for (size_t i = 0; i < space.size(); ++i)
                    sink += model.estimate(*kernel, space.at(i)).time_s;
            }
            fatal_if(sink <= 0, "scalar walk produced no time");
        });
    const double speedup =
        batched.min_s > 0 ? scalar.min_s / batched.min_s : 0.0;
    std::printf("scalar 1-thread census:  %.4f s min-of-%d "
                "(%.0f estimates/s)\n",
                scalar.min_s, scalar.runs, estimates / scalar.min_s);
    std::printf("speedup: %.2fx\n", speedup);

    //
    // 2b. The like-for-like SIMD gate: one thread, no cache, no pool —
    //     the SoA batched kernel against the scalar walk above.  This
    //     is the number the >= 8x CI gate checks; the parallel figure
    //     in section 1 folds thread scaling in on top and is reported
    //     separately.
    //
    const bench::TimingStats batched_single =
        bench::minOfN(std::min(opts.warmup, 1), opts.runs, [&] {
            double sink = 0.0;
            for (const auto *kernel : kernels)
                sink += model.evaluateGridRuntimes(*kernel, grid)[0];
            fatal_if(sink <= 0, "batched walk produced no time");
        });
    const double speedup_single_core =
        batched_single.min_s > 0 ? scalar.min_s / batched_single.min_s
                                 : 0.0;
    std::printf("batched 1-thread census: %.4f s min-of-%d "
                "(%.0f estimates/s)\n",
                batched_single.min_s, batched_single.runs,
                estimates / batched_single.min_s);
    std::printf("single-core speedup: %.2fx (gate: >= 8x)\n",
                speedup_single_core);

    //
    // 2c. Stage split: stages 1-2 hoist kernel invariants and per-CU
    //     state into the flat SoA plan (prepareBatch); stage 3 is the
    //     vectorized clock-pair loop (runBatch).  Timing them apart
    //     shows where a regression landed.
    //
    const bench::TimingStats stage12 =
        bench::minOfN(std::min(opts.warmup, 1), opts.runs, [&] {
            for (const auto *kernel : kernels) {
                const auto plan = model.prepareBatch(*kernel, grid);
                fatal_if(plan.cu.empty(), "empty batch plan");
            }
        });
    std::vector<gpu::batch::BatchPlan> plans;
    plans.reserve(kernels.size());
    for (const auto *kernel : kernels)
        plans.push_back(model.prepareBatch(*kernel, grid));
    std::vector<double> scratch(space.size());
    const bench::TimingStats stage3 =
        bench::minOfN(std::min(opts.warmup, 1), opts.runs, [&] {
            for (const auto &plan : plans)
                gpu::batch::runBatch(plan, scratch.data());
            fatal_if(scratch[0] <= 0,
                     "stage-3 kernel produced no time");
        });
    plans.clear();
    std::printf("  stage 1-2 (prepare):   %.4f s min-of-%d\n",
                stage12.min_s, stage12.runs);
    std::printf("  stage 3 (SIMD kernel): %.4f s min-of-%d "
                "(%.1f ns/point)\n",
                stage3.min_s, stage3.runs,
                stage3.min_s / estimates * 1e9);

    //
    // 3. Warm repeat: every sweep should be served by the cache the
    //    last timed run populated.
    //
    auto &registry = obs::Registry::instance();
    const double hits0 = static_cast<double>(
        registry.counter("sweep.cache.hits").value());
    const double misses0 = static_cast<double>(
        registry.counter("sweep.cache.misses").value());
    const auto warm = bench::minOfN(0, 1, [&] {
        const auto surfaces =
            harness::sweepKernels(model, kernels, space);
        fatal_if(surfaces.empty(), "warm census produced nothing");
    });
    const double hits = static_cast<double>(
        registry.counter("sweep.cache.hits").value()) - hits0;
    const double misses = static_cast<double>(
        registry.counter("sweep.cache.misses").value()) - misses0;
    const double lookups = hits + misses;
    const double hit_rate = lookups > 0 ? hits / lookups : 0.0;
    std::printf("warm repeat: %.4f s, cache hit rate %.3f "
                "(%.0f/%.0f)\n",
                warm.min_s, hit_rate, hits, lookups);

    //
    // 4. Resilience gate: the full census (sweep + classification —
    //    what `gpuscale census` runs and what a user checkpoints)
    //    with and without the crash-safe journal.  The journal's
    //    write overhead against its own unjournaled baseline must
    //    stay <= 5%.
    //
    const bench::TimingStats census_plain =
        bench::minOfN(opts.warmup, opts.runs, [&] {
            harness::SweepCache::instance().clear();
            const auto census = harness::runCensus(
                model, space, scaling::TaxonomyParams{});
            fatal_if(census.classifications.size() != kernels.size(),
                     "census classified %zu of %zu kernels",
                     census.classifications.size(), kernels.size());
        });
    const std::string journal_dir = "bench-checkpoint-journal";
    std::filesystem::remove_all(journal_dir);
    const uint64_t records0 =
        registry.counter("checkpoint.records").value();
    // A fresh journal per run (a pre-existing one would replay
    // instead of write), constructed up front: journal setup is
    // once-per-census, the gate measures steady-state record() write
    // overhead.
    std::vector<std::unique_ptr<harness::CensusJournal>> journals;
    for (int i = 0; i < opts.warmup + opts.runs; ++i) {
        journals.push_back(std::make_unique<harness::CensusJournal>(
            journal_dir + "/" + std::to_string(i),
            model.fingerprint(), space.grid().fingerprint()));
    }
    size_t ck_run = 0;
    const bench::TimingStats checkpointed =
        bench::minOfN(opts.warmup, opts.runs, [&] {
            harness::SweepCache::instance().clear();
            const auto census = harness::runCensus(
                model, space, scaling::TaxonomyParams{}, nullptr,
                journals[ck_run++].get());
            fatal_if(census.classifications.size() != kernels.size(),
                     "checkpointed census classified %zu of %zu "
                     "kernels",
                     census.classifications.size(), kernels.size());
        });
    journals.clear();
    std::filesystem::remove_all(journal_dir);
    const uint64_t journal_records =
        registry.counter("checkpoint.records").value() - records0;
    const double overhead_pct =
        census_plain.min_s > 0
            ? (checkpointed.min_s / census_plain.min_s - 1.0) * 100.0
            : 0.0;
    std::printf("census (no journal):     %.4f s min-of-%d\n",
                census_plain.min_s, census_plain.runs);
    std::printf("census (journaled):      %.4f s min-of-%d "
                "(journal overhead %+.2f%%)\n",
                checkpointed.min_s, checkpointed.runs, overhead_pct);

    std::ofstream os(opts.output);
    fatal_if(!os, "cannot write %s", opts.output.c_str());
    obs::JsonWriter w(os);
    w.beginObject();
    w.key("schema_version").value(1);
    w.key("benchmark").value("census");
    w.key("grid").value(opts.test_grid ? "test" : "paper");
    w.key("kernels").value(static_cast<uint64_t>(kernels.size()));
    w.key("configs").value(static_cast<uint64_t>(space.size()));
    w.key("estimates_per_run").value(estimates);
    w.key("threads").value(static_cast<uint64_t>(threads));
    w.key("warmup").value(opts.warmup);
    w.key("batched_parallel");
    writeTiming(w, batched, estimates);
    w.key("scalar_single_thread");
    writeTiming(w, scalar, estimates);
    w.key("speedup").value(speedup);
    w.key("batched_single_thread");
    writeTiming(w, batched_single, estimates);
    w.key("stage12_prepare");
    writeTiming(w, stage12, estimates);
    w.key("stage3_kernel");
    writeTiming(w, stage3, estimates);
    w.key("speedup_single_core").value(speedup_single_core);
    w.key("cache");
    w.beginObject();
    w.key("warm_run_s").value(warm.min_s);
    w.key("hits").value(hits);
    w.key("misses").value(misses);
    w.key("hit_rate").value(hit_rate);
    w.key("entries").value(static_cast<uint64_t>(
        harness::SweepCache::instance().entries()));
    w.endObject();
    // Registry counters carry the engine's own telemetry: estimate
    // counts, shard geometry, and cache traffic for the whole process.
    w.key("metrics");
    w.beginObject();
    w.key("sweep.estimates.count").value(static_cast<uint64_t>(
        registry.shardedCounter("sweep.estimates.count").value()));
    w.key("sweep.cache.hits").value(static_cast<uint64_t>(
        registry.counter("sweep.cache.hits").value()));
    w.key("sweep.cache.misses").value(static_cast<uint64_t>(
        registry.counter("sweep.cache.misses").value()));
    w.key("census.shard.count")
        .value(registry.gauge("census.shard.count").value());
    w.endObject();
    w.endObject();
    os << '\n';
    fatal_if(!w.complete(), "BENCH JSON incomplete");
    inform("wrote %s", opts.output.c_str());

    std::ofstream ros(opts.resilience_output);
    fatal_if(!ros, "cannot write %s", opts.resilience_output.c_str());
    obs::JsonWriter rw(ros);
    rw.beginObject();
    rw.key("schema_version").value(1);
    rw.key("benchmark").value("resilience");
    rw.key("grid").value(opts.test_grid ? "test" : "paper");
    rw.key("threads").value(static_cast<uint64_t>(threads));
    rw.key("checkpointed");
    writeTiming(rw, checkpointed, estimates);
    rw.key("baseline_min_s").value(census_plain.min_s);
    rw.key("overhead_pct").value(overhead_pct);
    rw.key("journal_records_per_run")
        .value(static_cast<uint64_t>(kernels.size()));
    rw.key("journal_records_total").value(journal_records);
    rw.endObject();
    ros << '\n';
    fatal_if(!rw.complete(), "resilience BENCH JSON incomplete");
    inform("wrote %s", opts.resilience_output.c_str());

    //
    // 5. Telemetry gate: the same hot sweep with the sharded
    //    instruments quiesced (inc()/record() return after one
    //    relaxed load — the zero-cost baseline) vs fully recording.
    //    The recording overhead must stay <= 2%.
    //
    obs::Registry::setQuiesced(true);
    const bench::TimingStats quiesced =
        bench::minOfN(opts.warmup, opts.runs, [&] {
            harness::SweepCache::instance().clear();
            const auto surfaces =
                harness::sweepKernels(model, kernels, space);
            fatal_if(surfaces.size() != kernels.size(),
                     "quiesced census produced %zu surfaces",
                     surfaces.size());
        });
    obs::Registry::setQuiesced(false);
    const bench::TimingStats instrumented =
        bench::minOfN(opts.warmup, opts.runs, [&] {
            harness::SweepCache::instance().clear();
            const auto surfaces =
                harness::sweepKernels(model, kernels, space);
            fatal_if(surfaces.size() != kernels.size(),
                     "instrumented census produced %zu surfaces",
                     surfaces.size());
        });
    const double telemetry_overhead_pct =
        quiesced.min_s > 0
            ? (instrumented.min_s / quiesced.min_s - 1.0) * 100.0
            : 0.0;
    std::printf("census (quiesced):       %.4f s min-of-%d\n",
                quiesced.min_s, quiesced.runs);
    std::printf("census (instrumented):   %.4f s min-of-%d "
                "(telemetry overhead %+.2f%%)\n",
                instrumented.min_s, instrumented.runs,
                telemetry_overhead_pct);

    const auto shard_values =
        registry.shardedCounter("sweep.estimates.count").shardValues();
    std::ofstream tos(opts.telemetry_output);
    fatal_if(!tos, "cannot write %s", opts.telemetry_output.c_str());
    obs::JsonWriter tw(tos);
    tw.beginObject();
    tw.key("schema_version").value(1);
    tw.key("benchmark").value("telemetry");
    tw.key("grid").value(opts.test_grid ? "test" : "paper");
    tw.key("threads").value(static_cast<uint64_t>(threads));
    tw.key("shard_count")
        .value(static_cast<uint64_t>(obs::shardCount()));
    tw.key("quiesced");
    writeTiming(tw, quiesced, estimates);
    tw.key("instrumented");
    writeTiming(tw, instrumented, estimates);
    tw.key("overhead_pct").value(telemetry_overhead_pct);
    tw.key("shard_values").beginArray();
    for (const uint64_t v : shard_values)
        tw.value(v);
    tw.endArray();
    tw.endObject();
    tos << '\n';
    fatal_if(!tw.complete(), "telemetry BENCH JSON incomplete");
    inform("wrote %s", opts.telemetry_output.c_str());

    //
    // 6. Sparse-census accuracy curves: reconstruct the census from a
    //    ladder of sample budgets with both samplers and score each
    //    against the dense census.  The 10%-budget agreement is the
    //    CI accuracy gate (>= 0.95); the curve around it shows how
    //    much margin the estimator has.
    //
    const auto dense = harness::runCensus(
        model, space, scaling::TaxonomyParams{});
    const scaling::SparsePredictor sparse_predictor(space);
    const std::vector<double> fractions =
        opts.test_grid ? std::vector<double>{0.35, 0.5, 0.8}
                       : std::vector<double>{0.04, 0.06, 0.08, 0.10,
                                             0.15};
    auto budgetFor = [&](double fraction) {
        const double raw =
            fraction * static_cast<double>(space.size());
        size_t k = static_cast<size_t>(raw + 0.5);
        k = std::max(k, sparse_predictor.minSamples());
        return std::min(k, space.size());
    };

    struct SparseCurvePoint {
        std::string sampler;
        size_t samples;
        double fraction;
        double agreement;
        double mean_confidence;
        uint64_t disagreements;
        uint64_t disagreements_banded;
        double wall_s;
    };
    std::vector<SparseCurvePoint> curve;
    double agreement_10pct_lhs = 0.0, agreement_10pct_active = 0.0;
    std::printf("\nsparse census accuracy vs budget:\n");
    for (const auto sampler :
         {scaling::SamplerKind::Lhs, scaling::SamplerKind::Active})
    {
        for (const double fraction : fractions) {
            harness::SparseCensusOptions so;
            so.samples = budgetFor(fraction);
            so.sampler = sampler;
            const auto timing = bench::minOfN(0, 1, [&] {
                harness::SweepCache::instance().clear();
                const auto sparse = harness::runSparseCensus(
                    model, space, so, scaling::TaxonomyParams{});
                const double agreement = harness::sparseAgreement(
                    sparse, dense.classifications);
                double mean_confidence = 0.0;
                uint64_t disagreements = 0, banded = 0;
                for (size_t k = 0;
                     k < sparse.classifications.size(); ++k)
                {
                    mean_confidence +=
                        sparse.reconstructions[k].confidence;
                    const auto *dc = harness::findClassification(
                        dense, sparse.classifications[k].kernel);
                    if (dc == nullptr ||
                        dc->cls == sparse.classifications[k].cls)
                    {
                        continue;
                    }
                    ++disagreements;
                    banded += sparse.reconstructions[k]
                                  .band_crosses_boundary;
                }
                if (!sparse.classifications.empty()) {
                    mean_confidence /= static_cast<double>(
                        sparse.classifications.size());
                }
                curve.push_back({scaling::samplerKindName(sampler),
                                 so.samples, fraction, agreement,
                                 mean_confidence, disagreements,
                                 banded, 0.0});
            });
            curve.back().wall_s = timing.min_s;
            if (fraction == 0.10 &&
                sampler == scaling::SamplerKind::Lhs)
            {
                agreement_10pct_lhs = curve.back().agreement;
            }
            if (fraction == 0.10 &&
                sampler == scaling::SamplerKind::Active)
            {
                agreement_10pct_active = curve.back().agreement;
            }
            std::printf("  %-6s k=%4zu (%4.1f%%): agreement %.4f, "
                        "confidence %.3f, %llu/%llu disagreements "
                        "banded, %.3f s\n",
                        curve.back().sampler.c_str(),
                        curve.back().samples, 100.0 * fraction,
                        curve.back().agreement,
                        curve.back().mean_confidence,
                        static_cast<unsigned long long>(
                            curve.back().disagreements_banded),
                        static_cast<unsigned long long>(
                            curve.back().disagreements),
                        curve.back().wall_s);
        }
    }

    std::ofstream sos(opts.sparse_output);
    fatal_if(!sos, "cannot write %s", opts.sparse_output.c_str());
    obs::JsonWriter sw(sos);
    sw.beginObject();
    sw.key("schema_version").value(1);
    sw.key("benchmark").value("sparse");
    sw.key("grid").value(opts.test_grid ? "test" : "paper");
    sw.key("kernels").value(static_cast<uint64_t>(kernels.size()));
    sw.key("configs").value(static_cast<uint64_t>(space.size()));
    sw.key("min_samples").value(
        static_cast<uint64_t>(sparse_predictor.minSamples()));
    sw.key("curves").beginArray();
    for (const auto &p : curve) {
        sw.beginObject();
        sw.key("sampler").value(p.sampler);
        sw.key("samples").value(static_cast<uint64_t>(p.samples));
        sw.key("fraction").value(p.fraction);
        sw.key("agreement").value(p.agreement);
        sw.key("mean_confidence").value(p.mean_confidence);
        sw.key("disagreements").value(p.disagreements);
        sw.key("disagreements_banded").value(p.disagreements_banded);
        sw.key("wall_s").value(p.wall_s);
        sw.endObject();
    }
    sw.endArray();
    // The jq gate's fields: agreement at the 10% budget (0 on the
    // test grid, whose ladder has no 10% point — the gate only runs
    // on the paper grid).
    sw.key("agreement_at_10pct_lhs").value(agreement_10pct_lhs);
    sw.key("agreement_at_10pct_active").value(agreement_10pct_active);
    sw.key("metrics");
    sw.beginObject();
    sw.key("sparse.samples.count").value(static_cast<uint64_t>(
        registry.shardedCounter("sparse.samples.count").value()));
    sw.endObject();
    sw.endObject();
    sos << '\n';
    fatal_if(!sw.complete(), "sparse BENCH JSON incomplete");
    inform("wrote %s", opts.sparse_output.c_str());

    //
    // 7. Service latency and saturation: gpuscaled in-process over its
    //    Unix socket.  The latency phase measures p50/p99/qps with the
    //    admission bound wide open; the saturation phase squeezes the
    //    bound to two slots under eight hammering clients and checks
    //    the robustness contract the CI gates enforce — overload is
    //    shed with typed RETRY_AFTER frames (sheds > 0) and no call
    //    ever outlives its deadline plus grace (stalls == 0).
    //
    struct ServicePhase {
        uint64_t calls = 0;
        uint64_t ok_frames = 0;
        uint64_t sheds = 0;
        uint64_t stalls = 0;
        uint64_t errors = 0;
        double wall_s = 0.0;
        std::vector<double> latencies_ms;
    };
    constexpr double kStallGraceMs = 500.0;

    const std::filesystem::path service_dir =
        std::filesystem::temp_directory_path() /
        ("gpuscaled-bench-" + std::to_string(::getpid()));
    std::filesystem::create_directories(service_dir);

    auto runServicePhase = [&](const service::ServiceOptions &sopts,
                               int nthreads, int per_thread,
                               double deadline_ms,
                               bool predict_only) {
        ServicePhase phase;
        service::Service svc(sopts, model);
        fatal_if(!svc.start(), "bench service failed to start on %s",
                 sopts.socket_path.c_str());
        std::thread server([&svc] {
            svc.loadCensus();
            svc.serve();
        });
        // Wait for the census so the numbers measure steady state.
        {
            service::Client warm(sopts.socket_path);
            fatal_if(!warm.connect(30000.0),
                     "bench client cannot connect");
            for (;;) {
                std::string resp;
                if (warm.call("{\"id\":1,\"op\":\"health\"}", 5000.0,
                              &resp) &&
                    resp.find("\"census_loaded\":true") !=
                        std::string::npos)
                {
                    break;
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
            }
        }

        std::mutex merge_mutex;
        std::atomic<uint64_t> ok_frames{0}, sheds{0}, stalls{0},
            errors{0};
        const auto phase_start = std::chrono::steady_clock::now();
        std::vector<std::thread> workers;
        for (int t = 0; t < nthreads; ++t) {
            workers.emplace_back([&, t] {
                const std::string client_name =
                    "bench-" + std::to_string(t);
                service::Client client(sopts.socket_path);
                client.connect(5000.0);
                std::vector<double> local;
                local.reserve(static_cast<size_t>(per_thread));
                for (int i = 0; i < per_thread; ++i) {
                    const gpu::KernelDesc *k =
                        kernels[(static_cast<size_t>(t) * 131 +
                                 static_cast<size_t>(i)) %
                                kernels.size()];
                    std::string req = "{\"id\":" + std::to_string(i) +
                                      ",\"client\":\"" + client_name +
                                      "\",\"deadline_ms\":" +
                                      std::to_string(deadline_ms);
                    switch (predict_only ? 1 : i % 4) {
                    case 0:
                        req += ",\"op\":\"classify\",\"params\":"
                               "{\"kernel\":\"" + k->name + "\"}}";
                        break;
                    case 1:
                        req += ",\"op\":\"predict\",\"params\":"
                               "{\"kernel\":\"" + k->name +
                               "\",\"cu\":8,\"core_clk_mhz\":800,"
                               "\"mem_clk_mhz\":1000}}";
                        break;
                    case 2:
                        req += ",\"op\":\"health\"}";
                        break;
                    default:
                        req += ",\"op\":\"stats\"}";
                        break;
                    }
                    const auto t0 = std::chrono::steady_clock::now();
                    std::string resp;
                    const bool transported = client.call(
                        req, deadline_ms + 2000.0, &resp);
                    const double ms =
                        std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
                    if (ms > deadline_ms + kStallGraceMs)
                        stalls.fetch_add(1);
                    if (!transported) {
                        errors.fetch_add(1);
                        client.close();
                        client.connect(5000.0);
                        continue;
                    }
                    local.push_back(ms);
                    try {
                        const obs::JsonValue doc = obs::parseJson(resp);
                        if (doc.at("ok").boolean) {
                            ok_frames.fetch_add(1);
                        } else if (doc.at("error").at("code").str ==
                                   "RETRY_AFTER") {
                            sheds.fetch_add(1);
                        }
                    } catch (const std::exception &) {
                        errors.fetch_add(1); // torn frame
                    }
                }
                std::lock_guard<std::mutex> lock(merge_mutex);
                phase.latencies_ms.insert(phase.latencies_ms.end(),
                                          local.begin(), local.end());
            });
        }
        for (auto &w : workers)
            w.join();
        phase.wall_s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() -
                           phase_start)
                           .count();
        svc.requestDrain();
        server.join();
        phase.calls = static_cast<uint64_t>(nthreads) *
                      static_cast<uint64_t>(per_thread);
        phase.ok_frames = ok_frames.load();
        phase.sheds = sheds.load();
        phase.stalls = stalls.load();
        phase.errors = errors.load();
        std::sort(phase.latencies_ms.begin(),
                  phase.latencies_ms.end());
        return phase;
    };
    auto percentile = [](const std::vector<double> &sorted,
                         double p) {
        if (sorted.empty())
            return 0.0;
        const size_t idx = std::min(
            sorted.size() - 1,
            static_cast<size_t>(p * static_cast<double>(
                                        sorted.size())));
        return sorted[idx];
    };

    service::ServiceOptions latency_opts;
    latency_opts.socket_path = (service_dir / "latency.sock").string();
    latency_opts.test_grid = opts.test_grid;
    latency_opts.max_inflight = 64;
    latency_opts.client_quota = 16;
    bench::banner("BENCH", "gpuscaled service latency");
    const ServicePhase latency =
        runServicePhase(latency_opts, 4, 200, 2000.0, false);
    const double p50 = percentile(latency.latencies_ms, 0.50);
    const double p99 = percentile(latency.latencies_ms, 0.99);
    const double qps =
        static_cast<double>(latency.calls) / latency.wall_s;
    std::printf("service latency: %" PRIu64 " calls, p50 %.3f ms, "
                "p99 %.3f ms, %.0f qps, %" PRIu64 " errors\n",
                latency.calls, p50, p99, qps, latency.errors);

    service::ServiceOptions sat_opts;
    sat_opts.socket_path = (service_dir / "saturate.sock").string();
    sat_opts.test_grid = opts.test_grid;
    sat_opts.max_inflight = 2;
    sat_opts.client_quota = 1;
    bench::banner("BENCH", "gpuscaled service saturation");
    const ServicePhase sat =
        runServicePhase(sat_opts, 8, 50, 1000.0, true);
    std::printf("service saturation: %" PRIu64 " calls, %" PRIu64
                " ok, %" PRIu64 " shed, %" PRIu64 " stalls, %" PRIu64
                " errors\n",
                sat.calls, sat.ok_frames, sat.sheds, sat.stalls,
                sat.errors);

    std::error_code cleanup_ec;
    std::filesystem::remove_all(service_dir, cleanup_ec);

    std::ofstream svos(opts.service_output);
    fatal_if(!svos, "cannot write %s", opts.service_output.c_str());
    obs::JsonWriter svw(svos);
    svw.beginObject();
    svw.key("schema_version").value(1);
    svw.key("benchmark").value("service");
    svw.key("grid").value(opts.test_grid ? "test" : "paper");
    svw.key("calls").value(latency.calls + sat.calls);
    svw.key("qps").value(qps);
    svw.key("p50_ms").value(p50);
    svw.key("p99_ms").value(p99);
    svw.key("sheds").value(latency.sheds + sat.sheds);
    svw.key("stalls").value(latency.stalls + sat.stalls);
    svw.key("errors").value(latency.errors + sat.errors);
    svw.key("latency");
    svw.beginObject();
    svw.key("threads").value(static_cast<uint64_t>(4));
    svw.key("calls").value(latency.calls);
    svw.key("ok_frames").value(latency.ok_frames);
    svw.key("sheds").value(latency.sheds);
    svw.key("stalls").value(latency.stalls);
    svw.key("errors").value(latency.errors);
    svw.key("wall_s").value(latency.wall_s);
    svw.endObject();
    svw.key("saturation");
    svw.beginObject();
    svw.key("threads").value(static_cast<uint64_t>(8));
    svw.key("max_inflight").value(static_cast<uint64_t>(2));
    svw.key("calls").value(sat.calls);
    svw.key("ok_frames").value(sat.ok_frames);
    svw.key("sheds").value(sat.sheds);
    svw.key("stalls").value(sat.stalls);
    svw.key("errors").value(sat.errors);
    svw.key("wall_s").value(sat.wall_s);
    svw.endObject();
    svw.key("metrics");
    svw.beginObject();
    svw.key("service.admitted").value(static_cast<uint64_t>(
        registry.counter("service.admitted").value()));
    svw.key("service.shed").value(static_cast<uint64_t>(
        registry.counter("service.shed").value()));
    svw.key("service.predict.batches").value(static_cast<uint64_t>(
        registry.counter("service.predict.batches").value()));
    svw.key("service.predict.coalesced").value(static_cast<uint64_t>(
        registry.counter("service.predict.coalesced").value()));
    svw.endObject();
    svw.endObject();
    svos << '\n';
    fatal_if(!svw.complete(), "service BENCH JSON incomplete");
    inform("wrote %s", opts.service_output.c_str());

    bench::emitInstrumentation();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    RunnerOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto intFlag = [&](const char *prefix,
                           int &out) -> bool {
            const size_t n = std::strlen(prefix);
            if (arg.rfind(prefix, 0) != 0)
                return false;
            const auto parsed = parseDouble(arg.substr(n));
            fatal_if(!parsed || *parsed < 0 ||
                         *parsed != static_cast<int>(*parsed),
                     "bad value in '%s'", arg.c_str());
            out = static_cast<int>(*parsed);
            return true;
        };
        if (intFlag("--runs=", opts.runs)) {
            continue;
        } else if (intFlag("--warmup=", opts.warmup)) {
            continue;
        } else if (arg.rfind("--resilience-output=", 0) == 0) {
            opts.resilience_output = arg.substr(20);
        } else if (arg.rfind("--telemetry-output=", 0) == 0) {
            opts.telemetry_output = arg.substr(19);
        } else if (arg.rfind("--sparse-output=", 0) == 0) {
            opts.sparse_output = arg.substr(16);
        } else if (arg.rfind("--service-output=", 0) == 0) {
            opts.service_output = arg.substr(17);
        } else if (arg.rfind("--output=", 0) == 0) {
            opts.output = arg.substr(9);
        } else if (arg == "--test-grid") {
            opts.test_grid = true;
        } else {
            std::fprintf(
                stderr,
                "usage: bench_runner [--runs=N] [--warmup=N] "
                "[--output=FILE] [--resilience-output=FILE] "
                "[--telemetry-output=FILE] [--sparse-output=FILE] "
                "[--service-output=FILE] [--test-grid]\n");
            return 1;
        }
    }
    fatal_if(opts.runs < 1, "--runs must be >= 1");
    return run(opts);
}
