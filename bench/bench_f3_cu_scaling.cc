/**
 * @file
 * F3 — compute-unit scaling curves (11x sweep at max clocks),
 * including the kernels that *lose* performance as CUs are added.
 */

#include "bench_common.hh"

#include <algorithm>

#include "base/math_util.hh"
#include "base/plot.hh"
#include "scaling/taxonomy.hh"

namespace {

using namespace gpuscale;

void
BM_CuCurveExtraction(benchmark::State &state)
{
    const auto &c = bench::census();
    for (auto _ : state) {
        double acc = 0;
        for (const auto &surface : c.surfaces)
            acc += surface.cuCurveAtMax().back();
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_CuCurveExtraction);

void
emit()
{
    const auto &c = bench::census();
    bench::banner("F3", "performance vs compute units "
                        "(1000 MHz core, 1250 MHz memory)");

    std::vector<double> cu_knob(c.space.cuValues().begin(),
                                c.space.cuValues().end());

    LineChart chart("speedup over 4 CUs", "compute units",
                    "normalized performance");
    chart.setSize(66, 18);

    std::printf("series (class: kernel, gain over the 11x sweep):\n");
    for (const auto *rep : harness::representativesPerClass(c)) {
        const auto *surface = findSurface(c, rep->kernel);
        const auto norm = normalizeToFirst(surface->cuCurveAtMax());
        chart.addSeries({scaling::taxonomyClassName(rep->cls), cu_knob,
                         norm});
        std::printf("  %-20s %s: %.2fx (%s, cu90 = %d)\n",
                    scaling::taxonomyClassName(rep->cls).c_str(),
                    rep->kernel.c_str(), rep->cu.total_gain,
                    scaling::shapeName(rep->cu.shape).c_str(),
                    rep->cu90);
    }
    std::printf("\n%s\n", chart.render().c_str());

    // Zoom on the single most adverse kernel, full resolution.
    const scaling::KernelClassification *worst = nullptr;
    for (const auto &k : c.classifications) {
        if (k.cls == scaling::TaxonomyClass::CuAdverse &&
            (!worst || k.cu.total_gain < worst->cu.total_gain)) {
            worst = &k;
        }
    }
    if (worst) {
        const auto *surface = findSurface(c, worst->kernel);
        LineChart zoom(
            strprintf("most CU-adverse kernel: %s",
                      worst->kernel.c_str()),
            "compute units", "normalized performance");
        zoom.setSize(66, 12);
        zoom.addSeries({"perf", cu_knob,
                        normalizeToFirst(surface->cuCurveAtMax())});
        std::printf("%s\n", zoom.render().c_str());
    }
    std::printf("paper shape: intuitive kernels gain ~11x or saturate "
                "at bandwidth;\nsmall launches plateau at their "
                "workgroup count; cache-contended and\natomic-heavy "
                "kernels peak early and then lose performance.\n");
}

} // namespace

GPUSCALE_BENCH_MAIN(emit)
