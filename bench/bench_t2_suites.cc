/**
 * @file
 * T2 — benchmark inventory: 97 programs / 267 kernels per suite.
 *
 * Reproduces the population table the abstract quotes.  The benchmark
 * times registry construction and full-zoo validation.
 */

#include "bench_common.hh"

#include "base/table.hh"
#include "workloads/registry.hh"

namespace {

using namespace gpuscale;

void
BM_RegistryIteration(benchmark::State &state)
{
    const auto &reg = workloads::WorkloadRegistry::instance();
    for (auto _ : state) {
        size_t waves = 0;
        for (const auto *k : reg.allKernels())
            waves += static_cast<size_t>(k->num_workgroups);
        benchmark::DoNotOptimize(waves);
    }
}
BENCHMARK(BM_RegistryIteration);

void
BM_ValidateAllKernels(benchmark::State &state)
{
    const auto &reg = workloads::WorkloadRegistry::instance();
    for (auto _ : state) {
        for (const auto *k : reg.allKernels())
            k->validate();
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            267);
}
BENCHMARK(BM_ValidateAllKernels);

void
emit()
{
    const auto &reg = workloads::WorkloadRegistry::instance();
    bench::banner("T2", "benchmark suites and kernel census");

    TextTable t;
    t.addColumn("suite");
    t.addColumn("programs", TextTable::Align::Right);
    t.addColumn("kernels", TextTable::Align::Right);
    for (const auto &row : reg.census()) {
        t.row({row.suite, strprintf("%zu", row.programs),
               strprintf("%zu", row.kernels)});
    }
    std::fputs(t.render().c_str(), stdout);
    std::printf("\npaper abstract: 267 kernels from 97 programs.\n");
}

} // namespace

GPUSCALE_BENCH_MAIN(emit)
