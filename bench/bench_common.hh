/**
 * @file
 * Shared plumbing for the per-experiment bench binaries.
 *
 * Every binary under bench/ regenerates one table or figure from
 * DESIGN.md's per-experiment index: google-benchmark times the
 * underlying computation, then main() prints the reproduced artifact
 * so EXPERIMENTS.md can quote it verbatim.
 */

#ifndef GPUSCALE_BENCH_BENCH_COMMON_HH
#define GPUSCALE_BENCH_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "base/logging.hh"
#include "gpu/analytic_model.hh"
#include "harness/experiment.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace gpuscale {
namespace bench {

/** The full paper census, computed once per binary. */
inline const harness::CensusResult &
census()
{
    static const harness::CensusResult result =
        harness::runCensus(gpu::AnalyticModel{});
    return result;
}

/** Banner separating the timed section from the reproduced artifact. */
inline void
banner(const std::string &id, const std::string &title)
{
    std::printf("\n==================================================="
                "=====================\n");
    std::printf("%s: %s\n", id.c_str(), title.c_str());
    std::printf("====================================================="
                "===================\n");
}

/**
 * Print the telemetry gathered while the binary ran, so every bench
 * report carries its own instrumented timings (estimate counts and
 * latency percentiles, worker balance).  Honors:
 *   GPUSCALE_METRICS=FILE  also write the JSON snapshot to FILE.
 */
inline void
emitInstrumentation()
{
    auto &registry = obs::Registry::instance();
    if (registry.empty())
        return;
    banner("OBS", "run telemetry (see docs/observability.md)");
    std::printf("%s", registry.snapshotTable().render().c_str());
    if (const char *path = std::getenv("GPUSCALE_METRICS")) {
        std::ofstream os(path);
        fatal_if(!os, "cannot write metrics file %s", path);
        os << registry.snapshotJson() << '\n';
    }
}

/**
 * Standard main: run benchmarks, then emit the artifact and the
 * telemetry gathered along the way.  Honors:
 *   GPUSCALE_TRACE=FILE  capture a Chrome/Perfetto span trace.
 *
 * @param emit callback printing the reproduced table/figure.
 */
inline int
benchMain(int argc, char **argv, void (*emit)())
{
    if (const char *trace = std::getenv("GPUSCALE_TRACE"))
        obs::TraceSession::start(trace);
    ::benchmark::Initialize(&argc, argv);
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    emit();
    emitInstrumentation();
    obs::TraceSession::stop();
    return 0;
}

} // namespace bench
} // namespace gpuscale

#define GPUSCALE_BENCH_MAIN(emit_fn)                                   \
    int                                                                \
    main(int argc, char **argv)                                        \
    {                                                                  \
        return ::gpuscale::bench::benchMain(argc, argv, emit_fn);      \
    }

#endif // GPUSCALE_BENCH_BENCH_COMMON_HH
