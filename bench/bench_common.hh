/**
 * @file
 * Shared plumbing for the per-experiment bench binaries.
 *
 * Every binary under bench/ regenerates one table or figure from
 * DESIGN.md's per-experiment index: google-benchmark times the
 * underlying computation, then main() prints the reproduced artifact
 * so EXPERIMENTS.md can quote it verbatim.
 */

#ifndef GPUSCALE_BENCH_BENCH_COMMON_HH
#define GPUSCALE_BENCH_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "base/logging.hh"
#include "gpu/analytic_model.hh"
#include "harness/experiment.hh"

namespace gpuscale {
namespace bench {

/** The full paper census, computed once per binary. */
inline const harness::CensusResult &
census()
{
    static const harness::CensusResult result =
        harness::runCensus(gpu::AnalyticModel{});
    return result;
}

/** Banner separating the timed section from the reproduced artifact. */
inline void
banner(const std::string &id, const std::string &title)
{
    std::printf("\n==================================================="
                "=====================\n");
    std::printf("%s: %s\n", id.c_str(), title.c_str());
    std::printf("====================================================="
                "===================\n");
}

/**
 * Standard main: run benchmarks, then emit the artifact.
 *
 * @param emit callback printing the reproduced table/figure.
 */
inline int
benchMain(int argc, char **argv, void (*emit)())
{
    ::benchmark::Initialize(&argc, argv);
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    emit();
    return 0;
}

} // namespace bench
} // namespace gpuscale

#define GPUSCALE_BENCH_MAIN(emit_fn)                                   \
    int                                                                \
    main(int argc, char **argv)                                        \
    {                                                                  \
        return ::gpuscale::bench::benchMain(argc, argv, emit_fn);      \
    }

#endif // GPUSCALE_BENCH_BENCH_COMMON_HH
