/**
 * @file
 * Shared plumbing for the per-experiment bench binaries.
 *
 * Every binary under bench/ regenerates one table or figure from
 * DESIGN.md's per-experiment index: google-benchmark times the
 * underlying computation, then main() prints the reproduced artifact
 * so EXPERIMENTS.md can quote it verbatim.
 */

#ifndef GPUSCALE_BENCH_BENCH_COMMON_HH
#define GPUSCALE_BENCH_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "base/logging.hh"
#include "gpu/analytic_model.hh"
#include "harness/experiment.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace gpuscale {
namespace bench {

/** Wall-time summary of a repeated measurement. */
struct TimingStats {
    double min_s = 0.0;
    double mean_s = 0.0;
    double max_s = 0.0;
    int runs = 0;
};

/**
 * Time fn() `runs` times after `warmup` untimed calls and keep the
 * minimum (plus mean/max for dispersion).  Min-of-N is the standard
 * estimator for "how fast is this code": one-shot timings fold cold
 * caches, page faults, and scheduler noise into the number, and every
 * perturbation only ever makes a run *slower*, so the minimum is the
 * cleanest observation.
 */
template <typename Fn>
inline TimingStats
minOfN(int warmup, int runs, Fn &&fn)
{
    fatal_if(runs < 1, "minOfN needs at least one timed run");
    for (int i = 0; i < warmup; ++i)
        fn();

    TimingStats stats;
    stats.runs = runs;
    double total = 0.0;
    for (int i = 0; i < runs; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        const double dt = std::chrono::duration<double>(t1 - t0).count();
        total += dt;
        if (i == 0 || dt < stats.min_s)
            stats.min_s = dt;
        if (i == 0 || dt > stats.max_s)
            stats.max_s = dt;
    }
    stats.mean_s = total / runs;
    return stats;
}

/**
 * Emit a TimingStats as a JSON object, with throughput derived from
 * the minimum (the same estimator the printed report quotes).
 * `estimates` is the work per run, so estimates_per_s is comparable
 * across sections regardless of how many runs each took.
 */
inline void
writeTiming(obs::JsonWriter &w, const TimingStats &stats,
            double estimates)
{
    w.beginObject();
    w.key("min_s").value(stats.min_s);
    w.key("mean_s").value(stats.mean_s);
    w.key("max_s").value(stats.max_s);
    w.key("runs").value(stats.runs);
    w.key("estimates_per_s")
        .value(stats.min_s > 0 ? estimates / stats.min_s : 0.0);
    w.endObject();
}

/** The full paper census, computed once per binary. */
inline const harness::CensusResult &
census()
{
    static const harness::CensusResult result =
        harness::runCensus(gpu::AnalyticModel{});
    return result;
}

/** Banner separating the timed section from the reproduced artifact. */
inline void
banner(const std::string &id, const std::string &title)
{
    std::printf("\n==================================================="
                "=====================\n");
    std::printf("%s: %s\n", id.c_str(), title.c_str());
    std::printf("====================================================="
                "===================\n");
}

/**
 * Print the telemetry gathered while the binary ran, so every bench
 * report carries its own instrumented timings (estimate counts and
 * latency percentiles, worker balance).  Honors:
 *   GPUSCALE_METRICS=FILE  also write the JSON snapshot to FILE.
 */
inline void
emitInstrumentation()
{
    auto &registry = obs::Registry::instance();
    if (registry.empty())
        return;
    banner("OBS", "run telemetry (see docs/observability.md)");
    std::printf("%s", registry.snapshotTable().render().c_str());
    if (const char *path = std::getenv("GPUSCALE_METRICS")) {
        std::ofstream os(path);
        fatal_if(!os, "cannot write metrics file %s", path);
        os << registry.snapshotJson() << '\n';
    }
}

/**
 * Standard main: run benchmarks, then emit the artifact and the
 * telemetry gathered along the way.  Honors:
 *   GPUSCALE_TRACE=FILE  capture a Chrome/Perfetto span trace.
 *
 * @param emit callback printing the reproduced table/figure.
 */
inline int
benchMain(int argc, char **argv, void (*emit)())
{
    if (const char *trace = std::getenv("GPUSCALE_TRACE"))
        obs::TraceSession::start(trace);
    ::benchmark::Initialize(&argc, argv);
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    emit();
    emitInstrumentation();
    obs::TraceSession::stop();
    return 0;
}

} // namespace bench
} // namespace gpuscale

#define GPUSCALE_BENCH_MAIN(emit_fn)                                   \
    int                                                                \
    main(int argc, char **argv)                                        \
    {                                                                  \
        return ::gpuscale::bench::benchMain(argc, argv, emit_fn);      \
    }

#endif // GPUSCALE_BENCH_BENCH_COMMON_HH
