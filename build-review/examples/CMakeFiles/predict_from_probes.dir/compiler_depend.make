# Empty compiler generated dependencies file for predict_from_probes.
# This may be replaced when dependencies are built.
