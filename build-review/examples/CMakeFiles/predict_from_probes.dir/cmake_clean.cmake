file(REMOVE_RECURSE
  "CMakeFiles/predict_from_probes.dir/predict_from_probes.cpp.o"
  "CMakeFiles/predict_from_probes.dir/predict_from_probes.cpp.o.d"
  "predict_from_probes"
  "predict_from_probes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predict_from_probes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
