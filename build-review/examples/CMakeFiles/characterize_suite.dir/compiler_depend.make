# Empty compiler generated dependencies file for characterize_suite.
# This may be replaced when dependencies are built.
