file(REMOVE_RECURSE
  "CMakeFiles/characterize_suite.dir/characterize_suite.cpp.o"
  "CMakeFiles/characterize_suite.dir/characterize_suite.cpp.o.d"
  "characterize_suite"
  "characterize_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/characterize_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
