file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_desc.dir/gpu/test_kernel_desc.cc.o"
  "CMakeFiles/test_kernel_desc.dir/gpu/test_kernel_desc.cc.o.d"
  "test_kernel_desc"
  "test_kernel_desc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_desc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
