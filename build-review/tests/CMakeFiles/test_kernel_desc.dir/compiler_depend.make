# Empty compiler generated dependencies file for test_kernel_desc.
# This may be replaced when dependencies are built.
