file(REMOVE_RECURSE
  "CMakeFiles/test_perf_result.dir/gpu/test_perf_result.cc.o"
  "CMakeFiles/test_perf_result.dir/gpu/test_perf_result.cc.o.d"
  "test_perf_result"
  "test_perf_result.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf_result.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
