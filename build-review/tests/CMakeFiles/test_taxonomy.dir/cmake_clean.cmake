file(REMOVE_RECURSE
  "CMakeFiles/test_taxonomy.dir/scaling/test_taxonomy.cc.o"
  "CMakeFiles/test_taxonomy.dir/scaling/test_taxonomy.cc.o.d"
  "test_taxonomy"
  "test_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
