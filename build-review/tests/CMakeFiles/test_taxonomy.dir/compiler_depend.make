# Empty compiler generated dependencies file for test_taxonomy.
# This may be replaced when dependencies are built.
