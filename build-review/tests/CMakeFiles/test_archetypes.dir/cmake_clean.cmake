file(REMOVE_RECURSE
  "CMakeFiles/test_archetypes.dir/workloads/test_archetypes.cc.o"
  "CMakeFiles/test_archetypes.dir/workloads/test_archetypes.cc.o.d"
  "test_archetypes"
  "test_archetypes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_archetypes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
