# Empty dependencies file for test_archetypes.
# This may be replaced when dependencies are built.
