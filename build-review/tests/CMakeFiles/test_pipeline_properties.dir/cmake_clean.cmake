file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_properties.dir/integration/test_pipeline_properties.cc.o"
  "CMakeFiles/test_pipeline_properties.dir/integration/test_pipeline_properties.cc.o.d"
  "test_pipeline_properties"
  "test_pipeline_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
