# Empty compiler generated dependencies file for test_run_manifest.
# This may be replaced when dependencies are built.
