file(REMOVE_RECURSE
  "CMakeFiles/test_run_manifest.dir/obs/test_run_manifest.cc.o"
  "CMakeFiles/test_run_manifest.dir/obs/test_run_manifest.cc.o.d"
  "test_run_manifest"
  "test_run_manifest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_run_manifest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
