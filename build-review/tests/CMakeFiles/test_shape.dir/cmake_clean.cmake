file(REMOVE_RECURSE
  "CMakeFiles/test_shape.dir/scaling/test_shape.cc.o"
  "CMakeFiles/test_shape.dir/scaling/test_shape.cc.o.d"
  "test_shape"
  "test_shape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
