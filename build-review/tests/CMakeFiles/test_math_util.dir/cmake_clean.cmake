file(REMOVE_RECURSE
  "CMakeFiles/test_math_util.dir/base/test_math_util.cc.o"
  "CMakeFiles/test_math_util.dir/base/test_math_util.cc.o.d"
  "test_math_util"
  "test_math_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_math_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
