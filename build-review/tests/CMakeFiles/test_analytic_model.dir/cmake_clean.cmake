file(REMOVE_RECURSE
  "CMakeFiles/test_analytic_model.dir/gpu/test_analytic_model.cc.o"
  "CMakeFiles/test_analytic_model.dir/gpu/test_analytic_model.cc.o.d"
  "test_analytic_model"
  "test_analytic_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analytic_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
