# Empty dependencies file for test_analytic_model.
# This may be replaced when dependencies are built.
