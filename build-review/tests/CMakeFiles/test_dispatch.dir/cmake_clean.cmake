file(REMOVE_RECURSE
  "CMakeFiles/test_dispatch.dir/gpu/test_dispatch.cc.o"
  "CMakeFiles/test_dispatch.dir/gpu/test_dispatch.cc.o.d"
  "test_dispatch"
  "test_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
