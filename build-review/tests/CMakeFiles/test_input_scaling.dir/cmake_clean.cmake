file(REMOVE_RECURSE
  "CMakeFiles/test_input_scaling.dir/scaling/test_input_scaling.cc.o"
  "CMakeFiles/test_input_scaling.dir/scaling/test_input_scaling.cc.o.d"
  "test_input_scaling"
  "test_input_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_input_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
