# Empty dependencies file for test_input_scaling.
# This may be replaced when dependencies are built.
