# Empty compiler generated dependencies file for test_suite_analysis.
# This may be replaced when dependencies are built.
