file(REMOVE_RECURSE
  "CMakeFiles/test_suite_analysis.dir/scaling/test_suite_analysis.cc.o"
  "CMakeFiles/test_suite_analysis.dir/scaling/test_suite_analysis.cc.o.d"
  "test_suite_analysis"
  "test_suite_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_suite_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
