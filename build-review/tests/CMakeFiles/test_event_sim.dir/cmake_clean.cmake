file(REMOVE_RECURSE
  "CMakeFiles/test_event_sim.dir/gpu/test_event_sim.cc.o"
  "CMakeFiles/test_event_sim.dir/gpu/test_event_sim.cc.o.d"
  "test_event_sim"
  "test_event_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_event_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
