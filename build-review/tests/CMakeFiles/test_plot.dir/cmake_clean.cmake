file(REMOVE_RECURSE
  "CMakeFiles/test_plot.dir/base/test_plot.cc.o"
  "CMakeFiles/test_plot.dir/base/test_plot.cc.o.d"
  "test_plot"
  "test_plot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
