file(REMOVE_RECURSE
  "CMakeFiles/test_surface.dir/scaling/test_surface.cc.o"
  "CMakeFiles/test_surface.dir/scaling/test_surface.cc.o.d"
  "test_surface"
  "test_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
