file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_prediction.dir/bench_e2_prediction.cc.o"
  "CMakeFiles/bench_e2_prediction.dir/bench_e2_prediction.cc.o.d"
  "bench_e2_prediction"
  "bench_e2_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
