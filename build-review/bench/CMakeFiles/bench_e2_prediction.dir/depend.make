# Empty dependencies file for bench_e2_prediction.
# This may be replaced when dependencies are built.
