file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_cu_scaling.dir/bench_f3_cu_scaling.cc.o"
  "CMakeFiles/bench_f3_cu_scaling.dir/bench_f3_cu_scaling.cc.o.d"
  "bench_f3_cu_scaling"
  "bench_f3_cu_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_cu_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
