# Empty dependencies file for bench_f3_cu_scaling.
# This may be replaced when dependencies are built.
