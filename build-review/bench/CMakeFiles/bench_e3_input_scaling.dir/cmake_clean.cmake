file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_input_scaling.dir/bench_e3_input_scaling.cc.o"
  "CMakeFiles/bench_e3_input_scaling.dir/bench_e3_input_scaling.cc.o.d"
  "bench_e3_input_scaling"
  "bench_e3_input_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_input_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
