# Empty compiler generated dependencies file for bench_e3_input_scaling.
# This may be replaced when dependencies are built.
