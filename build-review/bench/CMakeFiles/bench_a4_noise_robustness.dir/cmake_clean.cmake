file(REMOVE_RECURSE
  "CMakeFiles/bench_a4_noise_robustness.dir/bench_a4_noise_robustness.cc.o"
  "CMakeFiles/bench_a4_noise_robustness.dir/bench_a4_noise_robustness.cc.o.d"
  "bench_a4_noise_robustness"
  "bench_a4_noise_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_noise_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
