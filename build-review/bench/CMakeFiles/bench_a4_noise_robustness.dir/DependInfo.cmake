
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_a4_noise_robustness.cc" "bench/CMakeFiles/bench_a4_noise_robustness.dir/bench_a4_noise_robustness.cc.o" "gcc" "bench/CMakeFiles/bench_a4_noise_robustness.dir/bench_a4_noise_robustness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/harness/CMakeFiles/gpuscale_harness.dir/DependInfo.cmake"
  "/root/repo/build-review/src/scaling/CMakeFiles/gpuscale_scaling.dir/DependInfo.cmake"
  "/root/repo/build-review/src/workloads/CMakeFiles/gpuscale_workloads.dir/DependInfo.cmake"
  "/root/repo/build-review/src/gpu/CMakeFiles/gpuscale_gpu.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/gpuscale_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/base/CMakeFiles/gpuscale_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
