# Empty dependencies file for bench_a4_noise_robustness.
# This may be replaced when dependencies are built.
