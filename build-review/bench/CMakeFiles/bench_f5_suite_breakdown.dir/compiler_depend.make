# Empty compiler generated dependencies file for bench_f5_suite_breakdown.
# This may be replaced when dependencies are built.
