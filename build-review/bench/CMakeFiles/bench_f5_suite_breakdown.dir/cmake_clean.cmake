file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_suite_breakdown.dir/bench_f5_suite_breakdown.cc.o"
  "CMakeFiles/bench_f5_suite_breakdown.dir/bench_f5_suite_breakdown.cc.o.d"
  "bench_f5_suite_breakdown"
  "bench_f5_suite_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_suite_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
