file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_freq_scaling.dir/bench_f1_freq_scaling.cc.o"
  "CMakeFiles/bench_f1_freq_scaling.dir/bench_f1_freq_scaling.cc.o.d"
  "bench_f1_freq_scaling"
  "bench_f1_freq_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_freq_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
