# Empty compiler generated dependencies file for bench_f1_freq_scaling.
# This may be replaced when dependencies are built.
