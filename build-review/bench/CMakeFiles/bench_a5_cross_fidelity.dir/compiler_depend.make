# Empty compiler generated dependencies file for bench_a5_cross_fidelity.
# This may be replaced when dependencies are built.
