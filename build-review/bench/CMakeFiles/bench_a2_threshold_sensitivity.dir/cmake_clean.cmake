file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_threshold_sensitivity.dir/bench_a2_threshold_sensitivity.cc.o"
  "CMakeFiles/bench_a2_threshold_sensitivity.dir/bench_a2_threshold_sensitivity.cc.o.d"
  "bench_a2_threshold_sensitivity"
  "bench_a2_threshold_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_threshold_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
