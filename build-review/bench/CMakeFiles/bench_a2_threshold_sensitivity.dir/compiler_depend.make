# Empty compiler generated dependencies file for bench_a2_threshold_sensitivity.
# This may be replaced when dependencies are built.
