# Empty dependencies file for bench_e1_energy.
# This may be replaced when dependencies are built.
