file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_energy.dir/bench_e1_energy.cc.o"
  "CMakeFiles/bench_e1_energy.dir/bench_e1_energy.cc.o.d"
  "bench_e1_energy"
  "bench_e1_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
