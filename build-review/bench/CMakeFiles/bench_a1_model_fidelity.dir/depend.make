# Empty dependencies file for bench_a1_model_fidelity.
# This may be replaced when dependencies are built.
