file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_model_fidelity.dir/bench_a1_model_fidelity.cc.o"
  "CMakeFiles/bench_a1_model_fidelity.dir/bench_a1_model_fidelity.cc.o.d"
  "bench_a1_model_fidelity"
  "bench_a1_model_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_model_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
