file(REMOVE_RECURSE
  "CMakeFiles/bench_t4_nonobvious.dir/bench_t4_nonobvious.cc.o"
  "CMakeFiles/bench_t4_nonobvious.dir/bench_t4_nonobvious.cc.o.d"
  "bench_t4_nonobvious"
  "bench_t4_nonobvious.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t4_nonobvious.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
