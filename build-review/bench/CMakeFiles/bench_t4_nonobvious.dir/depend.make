# Empty dependencies file for bench_t4_nonobvious.
# This may be replaced when dependencies are built.
