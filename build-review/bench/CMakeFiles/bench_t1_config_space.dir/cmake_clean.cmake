file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_config_space.dir/bench_t1_config_space.cc.o"
  "CMakeFiles/bench_t1_config_space.dir/bench_t1_config_space.cc.o.d"
  "bench_t1_config_space"
  "bench_t1_config_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_config_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
