# Empty dependencies file for bench_t1_config_space.
# This may be replaced when dependencies are built.
