file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_bw_scaling.dir/bench_f2_bw_scaling.cc.o"
  "CMakeFiles/bench_f2_bw_scaling.dir/bench_f2_bw_scaling.cc.o.d"
  "bench_f2_bw_scaling"
  "bench_f2_bw_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_bw_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
