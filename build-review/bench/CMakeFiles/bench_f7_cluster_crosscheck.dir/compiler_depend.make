# Empty compiler generated dependencies file for bench_f7_cluster_crosscheck.
# This may be replaced when dependencies are built.
