file(REMOVE_RECURSE
  "CMakeFiles/bench_f7_cluster_crosscheck.dir/bench_f7_cluster_crosscheck.cc.o"
  "CMakeFiles/bench_f7_cluster_crosscheck.dir/bench_f7_cluster_crosscheck.cc.o.d"
  "bench_f7_cluster_crosscheck"
  "bench_f7_cluster_crosscheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f7_cluster_crosscheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
