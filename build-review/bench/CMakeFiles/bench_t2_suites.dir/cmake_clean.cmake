file(REMOVE_RECURSE
  "CMakeFiles/bench_t2_suites.dir/bench_t2_suites.cc.o"
  "CMakeFiles/bench_t2_suites.dir/bench_t2_suites.cc.o.d"
  "bench_t2_suites"
  "bench_t2_suites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_suites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
