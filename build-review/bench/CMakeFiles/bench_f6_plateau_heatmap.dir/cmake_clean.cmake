file(REMOVE_RECURSE
  "CMakeFiles/bench_f6_plateau_heatmap.dir/bench_f6_plateau_heatmap.cc.o"
  "CMakeFiles/bench_f6_plateau_heatmap.dir/bench_f6_plateau_heatmap.cc.o.d"
  "bench_f6_plateau_heatmap"
  "bench_f6_plateau_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_plateau_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
