# Empty dependencies file for bench_f6_plateau_heatmap.
# This may be replaced when dependencies are built.
