file(REMOVE_RECURSE
  "CMakeFiles/bench_t5_suite_scalability.dir/bench_t5_suite_scalability.cc.o"
  "CMakeFiles/bench_t5_suite_scalability.dir/bench_t5_suite_scalability.cc.o.d"
  "bench_t5_suite_scalability"
  "bench_t5_suite_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t5_suite_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
