# Empty compiler generated dependencies file for bench_t5_suite_scalability.
# This may be replaced when dependencies are built.
