file(REMOVE_RECURSE
  "CMakeFiles/bench_t3_taxonomy_census.dir/bench_t3_taxonomy_census.cc.o"
  "CMakeFiles/bench_t3_taxonomy_census.dir/bench_t3_taxonomy_census.cc.o.d"
  "bench_t3_taxonomy_census"
  "bench_t3_taxonomy_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_taxonomy_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
