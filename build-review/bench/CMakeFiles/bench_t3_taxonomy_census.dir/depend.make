# Empty dependencies file for bench_t3_taxonomy_census.
# This may be replaced when dependencies are built.
