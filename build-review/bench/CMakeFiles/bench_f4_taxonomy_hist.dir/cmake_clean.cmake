file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_taxonomy_hist.dir/bench_f4_taxonomy_hist.cc.o"
  "CMakeFiles/bench_f4_taxonomy_hist.dir/bench_f4_taxonomy_hist.cc.o.d"
  "bench_f4_taxonomy_hist"
  "bench_f4_taxonomy_hist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_taxonomy_hist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
