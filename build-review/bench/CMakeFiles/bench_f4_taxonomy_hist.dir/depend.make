# Empty dependencies file for bench_f4_taxonomy_hist.
# This may be replaced when dependencies are built.
