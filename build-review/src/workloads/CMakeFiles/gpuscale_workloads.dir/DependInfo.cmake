
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/archetypes.cc" "src/workloads/CMakeFiles/gpuscale_workloads.dir/archetypes.cc.o" "gcc" "src/workloads/CMakeFiles/gpuscale_workloads.dir/archetypes.cc.o.d"
  "/root/repo/src/workloads/generator.cc" "src/workloads/CMakeFiles/gpuscale_workloads.dir/generator.cc.o" "gcc" "src/workloads/CMakeFiles/gpuscale_workloads.dir/generator.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/gpuscale_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/gpuscale_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/suite_amdsdk.cc" "src/workloads/CMakeFiles/gpuscale_workloads.dir/suite_amdsdk.cc.o" "gcc" "src/workloads/CMakeFiles/gpuscale_workloads.dir/suite_amdsdk.cc.o.d"
  "/root/repo/src/workloads/suite_opendwarfs.cc" "src/workloads/CMakeFiles/gpuscale_workloads.dir/suite_opendwarfs.cc.o" "gcc" "src/workloads/CMakeFiles/gpuscale_workloads.dir/suite_opendwarfs.cc.o.d"
  "/root/repo/src/workloads/suite_pannotia.cc" "src/workloads/CMakeFiles/gpuscale_workloads.dir/suite_pannotia.cc.o" "gcc" "src/workloads/CMakeFiles/gpuscale_workloads.dir/suite_pannotia.cc.o.d"
  "/root/repo/src/workloads/suite_parboil.cc" "src/workloads/CMakeFiles/gpuscale_workloads.dir/suite_parboil.cc.o" "gcc" "src/workloads/CMakeFiles/gpuscale_workloads.dir/suite_parboil.cc.o.d"
  "/root/repo/src/workloads/suite_polybench.cc" "src/workloads/CMakeFiles/gpuscale_workloads.dir/suite_polybench.cc.o" "gcc" "src/workloads/CMakeFiles/gpuscale_workloads.dir/suite_polybench.cc.o.d"
  "/root/repo/src/workloads/suite_rodinia.cc" "src/workloads/CMakeFiles/gpuscale_workloads.dir/suite_rodinia.cc.o" "gcc" "src/workloads/CMakeFiles/gpuscale_workloads.dir/suite_rodinia.cc.o.d"
  "/root/repo/src/workloads/suite_shoc.cc" "src/workloads/CMakeFiles/gpuscale_workloads.dir/suite_shoc.cc.o" "gcc" "src/workloads/CMakeFiles/gpuscale_workloads.dir/suite_shoc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/gpu/CMakeFiles/gpuscale_gpu.dir/DependInfo.cmake"
  "/root/repo/build-review/src/base/CMakeFiles/gpuscale_base.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/gpuscale_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
