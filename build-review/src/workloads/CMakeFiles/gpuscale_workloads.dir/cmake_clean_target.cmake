file(REMOVE_RECURSE
  "libgpuscale_workloads.a"
)
