# Empty dependencies file for gpuscale_workloads.
# This may be replaced when dependencies are built.
