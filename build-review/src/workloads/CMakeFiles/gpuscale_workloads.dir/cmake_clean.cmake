file(REMOVE_RECURSE
  "CMakeFiles/gpuscale_workloads.dir/archetypes.cc.o"
  "CMakeFiles/gpuscale_workloads.dir/archetypes.cc.o.d"
  "CMakeFiles/gpuscale_workloads.dir/generator.cc.o"
  "CMakeFiles/gpuscale_workloads.dir/generator.cc.o.d"
  "CMakeFiles/gpuscale_workloads.dir/registry.cc.o"
  "CMakeFiles/gpuscale_workloads.dir/registry.cc.o.d"
  "CMakeFiles/gpuscale_workloads.dir/suite_amdsdk.cc.o"
  "CMakeFiles/gpuscale_workloads.dir/suite_amdsdk.cc.o.d"
  "CMakeFiles/gpuscale_workloads.dir/suite_opendwarfs.cc.o"
  "CMakeFiles/gpuscale_workloads.dir/suite_opendwarfs.cc.o.d"
  "CMakeFiles/gpuscale_workloads.dir/suite_pannotia.cc.o"
  "CMakeFiles/gpuscale_workloads.dir/suite_pannotia.cc.o.d"
  "CMakeFiles/gpuscale_workloads.dir/suite_parboil.cc.o"
  "CMakeFiles/gpuscale_workloads.dir/suite_parboil.cc.o.d"
  "CMakeFiles/gpuscale_workloads.dir/suite_polybench.cc.o"
  "CMakeFiles/gpuscale_workloads.dir/suite_polybench.cc.o.d"
  "CMakeFiles/gpuscale_workloads.dir/suite_rodinia.cc.o"
  "CMakeFiles/gpuscale_workloads.dir/suite_rodinia.cc.o.d"
  "CMakeFiles/gpuscale_workloads.dir/suite_shoc.cc.o"
  "CMakeFiles/gpuscale_workloads.dir/suite_shoc.cc.o.d"
  "libgpuscale_workloads.a"
  "libgpuscale_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuscale_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
