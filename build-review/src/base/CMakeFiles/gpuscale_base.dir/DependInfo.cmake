
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/csv.cc" "src/base/CMakeFiles/gpuscale_base.dir/csv.cc.o" "gcc" "src/base/CMakeFiles/gpuscale_base.dir/csv.cc.o.d"
  "/root/repo/src/base/logging.cc" "src/base/CMakeFiles/gpuscale_base.dir/logging.cc.o" "gcc" "src/base/CMakeFiles/gpuscale_base.dir/logging.cc.o.d"
  "/root/repo/src/base/math_util.cc" "src/base/CMakeFiles/gpuscale_base.dir/math_util.cc.o" "gcc" "src/base/CMakeFiles/gpuscale_base.dir/math_util.cc.o.d"
  "/root/repo/src/base/plot.cc" "src/base/CMakeFiles/gpuscale_base.dir/plot.cc.o" "gcc" "src/base/CMakeFiles/gpuscale_base.dir/plot.cc.o.d"
  "/root/repo/src/base/random.cc" "src/base/CMakeFiles/gpuscale_base.dir/random.cc.o" "gcc" "src/base/CMakeFiles/gpuscale_base.dir/random.cc.o.d"
  "/root/repo/src/base/stats.cc" "src/base/CMakeFiles/gpuscale_base.dir/stats.cc.o" "gcc" "src/base/CMakeFiles/gpuscale_base.dir/stats.cc.o.d"
  "/root/repo/src/base/string_util.cc" "src/base/CMakeFiles/gpuscale_base.dir/string_util.cc.o" "gcc" "src/base/CMakeFiles/gpuscale_base.dir/string_util.cc.o.d"
  "/root/repo/src/base/table.cc" "src/base/CMakeFiles/gpuscale_base.dir/table.cc.o" "gcc" "src/base/CMakeFiles/gpuscale_base.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
