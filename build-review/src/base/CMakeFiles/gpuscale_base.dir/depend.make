# Empty dependencies file for gpuscale_base.
# This may be replaced when dependencies are built.
