file(REMOVE_RECURSE
  "CMakeFiles/gpuscale_base.dir/csv.cc.o"
  "CMakeFiles/gpuscale_base.dir/csv.cc.o.d"
  "CMakeFiles/gpuscale_base.dir/logging.cc.o"
  "CMakeFiles/gpuscale_base.dir/logging.cc.o.d"
  "CMakeFiles/gpuscale_base.dir/math_util.cc.o"
  "CMakeFiles/gpuscale_base.dir/math_util.cc.o.d"
  "CMakeFiles/gpuscale_base.dir/plot.cc.o"
  "CMakeFiles/gpuscale_base.dir/plot.cc.o.d"
  "CMakeFiles/gpuscale_base.dir/random.cc.o"
  "CMakeFiles/gpuscale_base.dir/random.cc.o.d"
  "CMakeFiles/gpuscale_base.dir/stats.cc.o"
  "CMakeFiles/gpuscale_base.dir/stats.cc.o.d"
  "CMakeFiles/gpuscale_base.dir/string_util.cc.o"
  "CMakeFiles/gpuscale_base.dir/string_util.cc.o.d"
  "CMakeFiles/gpuscale_base.dir/table.cc.o"
  "CMakeFiles/gpuscale_base.dir/table.cc.o.d"
  "libgpuscale_base.a"
  "libgpuscale_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuscale_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
