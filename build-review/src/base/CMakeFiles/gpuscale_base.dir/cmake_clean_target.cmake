file(REMOVE_RECURSE
  "libgpuscale_base.a"
)
