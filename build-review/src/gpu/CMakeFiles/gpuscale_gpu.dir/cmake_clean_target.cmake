file(REMOVE_RECURSE
  "libgpuscale_gpu.a"
)
