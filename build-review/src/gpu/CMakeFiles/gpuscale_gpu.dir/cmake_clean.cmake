file(REMOVE_RECURSE
  "CMakeFiles/gpuscale_gpu.dir/analytic_model.cc.o"
  "CMakeFiles/gpuscale_gpu.dir/analytic_model.cc.o.d"
  "CMakeFiles/gpuscale_gpu.dir/cache_model.cc.o"
  "CMakeFiles/gpuscale_gpu.dir/cache_model.cc.o.d"
  "CMakeFiles/gpuscale_gpu.dir/dispatch.cc.o"
  "CMakeFiles/gpuscale_gpu.dir/dispatch.cc.o.d"
  "CMakeFiles/gpuscale_gpu.dir/gpu_config.cc.o"
  "CMakeFiles/gpuscale_gpu.dir/gpu_config.cc.o.d"
  "CMakeFiles/gpuscale_gpu.dir/interconnect.cc.o"
  "CMakeFiles/gpuscale_gpu.dir/interconnect.cc.o.d"
  "CMakeFiles/gpuscale_gpu.dir/kernel_desc.cc.o"
  "CMakeFiles/gpuscale_gpu.dir/kernel_desc.cc.o.d"
  "CMakeFiles/gpuscale_gpu.dir/memory_system.cc.o"
  "CMakeFiles/gpuscale_gpu.dir/memory_system.cc.o.d"
  "CMakeFiles/gpuscale_gpu.dir/occupancy.cc.o"
  "CMakeFiles/gpuscale_gpu.dir/occupancy.cc.o.d"
  "CMakeFiles/gpuscale_gpu.dir/power_model.cc.o"
  "CMakeFiles/gpuscale_gpu.dir/power_model.cc.o.d"
  "CMakeFiles/gpuscale_gpu.dir/timing/event_sim.cc.o"
  "CMakeFiles/gpuscale_gpu.dir/timing/event_sim.cc.o.d"
  "CMakeFiles/gpuscale_gpu.dir/timing/resource.cc.o"
  "CMakeFiles/gpuscale_gpu.dir/timing/resource.cc.o.d"
  "libgpuscale_gpu.a"
  "libgpuscale_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuscale_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
