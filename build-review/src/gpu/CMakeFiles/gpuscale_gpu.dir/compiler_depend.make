# Empty compiler generated dependencies file for gpuscale_gpu.
# This may be replaced when dependencies are built.
