
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/analytic_model.cc" "src/gpu/CMakeFiles/gpuscale_gpu.dir/analytic_model.cc.o" "gcc" "src/gpu/CMakeFiles/gpuscale_gpu.dir/analytic_model.cc.o.d"
  "/root/repo/src/gpu/cache_model.cc" "src/gpu/CMakeFiles/gpuscale_gpu.dir/cache_model.cc.o" "gcc" "src/gpu/CMakeFiles/gpuscale_gpu.dir/cache_model.cc.o.d"
  "/root/repo/src/gpu/dispatch.cc" "src/gpu/CMakeFiles/gpuscale_gpu.dir/dispatch.cc.o" "gcc" "src/gpu/CMakeFiles/gpuscale_gpu.dir/dispatch.cc.o.d"
  "/root/repo/src/gpu/gpu_config.cc" "src/gpu/CMakeFiles/gpuscale_gpu.dir/gpu_config.cc.o" "gcc" "src/gpu/CMakeFiles/gpuscale_gpu.dir/gpu_config.cc.o.d"
  "/root/repo/src/gpu/interconnect.cc" "src/gpu/CMakeFiles/gpuscale_gpu.dir/interconnect.cc.o" "gcc" "src/gpu/CMakeFiles/gpuscale_gpu.dir/interconnect.cc.o.d"
  "/root/repo/src/gpu/kernel_desc.cc" "src/gpu/CMakeFiles/gpuscale_gpu.dir/kernel_desc.cc.o" "gcc" "src/gpu/CMakeFiles/gpuscale_gpu.dir/kernel_desc.cc.o.d"
  "/root/repo/src/gpu/memory_system.cc" "src/gpu/CMakeFiles/gpuscale_gpu.dir/memory_system.cc.o" "gcc" "src/gpu/CMakeFiles/gpuscale_gpu.dir/memory_system.cc.o.d"
  "/root/repo/src/gpu/occupancy.cc" "src/gpu/CMakeFiles/gpuscale_gpu.dir/occupancy.cc.o" "gcc" "src/gpu/CMakeFiles/gpuscale_gpu.dir/occupancy.cc.o.d"
  "/root/repo/src/gpu/power_model.cc" "src/gpu/CMakeFiles/gpuscale_gpu.dir/power_model.cc.o" "gcc" "src/gpu/CMakeFiles/gpuscale_gpu.dir/power_model.cc.o.d"
  "/root/repo/src/gpu/timing/event_sim.cc" "src/gpu/CMakeFiles/gpuscale_gpu.dir/timing/event_sim.cc.o" "gcc" "src/gpu/CMakeFiles/gpuscale_gpu.dir/timing/event_sim.cc.o.d"
  "/root/repo/src/gpu/timing/resource.cc" "src/gpu/CMakeFiles/gpuscale_gpu.dir/timing/resource.cc.o" "gcc" "src/gpu/CMakeFiles/gpuscale_gpu.dir/timing/resource.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/obs/CMakeFiles/gpuscale_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/base/CMakeFiles/gpuscale_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
