file(REMOVE_RECURSE
  "CMakeFiles/gpuscale_obs.dir/json.cc.o"
  "CMakeFiles/gpuscale_obs.dir/json.cc.o.d"
  "CMakeFiles/gpuscale_obs.dir/metrics.cc.o"
  "CMakeFiles/gpuscale_obs.dir/metrics.cc.o.d"
  "CMakeFiles/gpuscale_obs.dir/progress.cc.o"
  "CMakeFiles/gpuscale_obs.dir/progress.cc.o.d"
  "CMakeFiles/gpuscale_obs.dir/run_manifest.cc.o"
  "CMakeFiles/gpuscale_obs.dir/run_manifest.cc.o.d"
  "CMakeFiles/gpuscale_obs.dir/trace.cc.o"
  "CMakeFiles/gpuscale_obs.dir/trace.cc.o.d"
  "libgpuscale_obs.a"
  "libgpuscale_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuscale_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
