# Empty compiler generated dependencies file for gpuscale_obs.
# This may be replaced when dependencies are built.
