file(REMOVE_RECURSE
  "libgpuscale_obs.a"
)
