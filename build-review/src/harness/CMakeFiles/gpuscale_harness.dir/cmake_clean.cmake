file(REMOVE_RECURSE
  "CMakeFiles/gpuscale_harness.dir/experiment.cc.o"
  "CMakeFiles/gpuscale_harness.dir/experiment.cc.o.d"
  "CMakeFiles/gpuscale_harness.dir/noise.cc.o"
  "CMakeFiles/gpuscale_harness.dir/noise.cc.o.d"
  "CMakeFiles/gpuscale_harness.dir/parallel.cc.o"
  "CMakeFiles/gpuscale_harness.dir/parallel.cc.o.d"
  "CMakeFiles/gpuscale_harness.dir/sweep.cc.o"
  "CMakeFiles/gpuscale_harness.dir/sweep.cc.o.d"
  "libgpuscale_harness.a"
  "libgpuscale_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuscale_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
