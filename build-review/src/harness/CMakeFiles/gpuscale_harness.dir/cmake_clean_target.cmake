file(REMOVE_RECURSE
  "libgpuscale_harness.a"
)
