# Empty compiler generated dependencies file for gpuscale_harness.
# This may be replaced when dependencies are built.
