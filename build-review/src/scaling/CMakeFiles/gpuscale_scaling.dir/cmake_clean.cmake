file(REMOVE_RECURSE
  "CMakeFiles/gpuscale_scaling.dir/cluster.cc.o"
  "CMakeFiles/gpuscale_scaling.dir/cluster.cc.o.d"
  "CMakeFiles/gpuscale_scaling.dir/config_space.cc.o"
  "CMakeFiles/gpuscale_scaling.dir/config_space.cc.o.d"
  "CMakeFiles/gpuscale_scaling.dir/input_scaling.cc.o"
  "CMakeFiles/gpuscale_scaling.dir/input_scaling.cc.o.d"
  "CMakeFiles/gpuscale_scaling.dir/predictor.cc.o"
  "CMakeFiles/gpuscale_scaling.dir/predictor.cc.o.d"
  "CMakeFiles/gpuscale_scaling.dir/report.cc.o"
  "CMakeFiles/gpuscale_scaling.dir/report.cc.o.d"
  "CMakeFiles/gpuscale_scaling.dir/shape.cc.o"
  "CMakeFiles/gpuscale_scaling.dir/shape.cc.o.d"
  "CMakeFiles/gpuscale_scaling.dir/suite_analysis.cc.o"
  "CMakeFiles/gpuscale_scaling.dir/suite_analysis.cc.o.d"
  "CMakeFiles/gpuscale_scaling.dir/surface.cc.o"
  "CMakeFiles/gpuscale_scaling.dir/surface.cc.o.d"
  "CMakeFiles/gpuscale_scaling.dir/taxonomy.cc.o"
  "CMakeFiles/gpuscale_scaling.dir/taxonomy.cc.o.d"
  "libgpuscale_scaling.a"
  "libgpuscale_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuscale_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
