# Empty dependencies file for gpuscale_scaling.
# This may be replaced when dependencies are built.
