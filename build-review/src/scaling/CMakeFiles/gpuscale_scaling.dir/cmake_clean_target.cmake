file(REMOVE_RECURSE
  "libgpuscale_scaling.a"
)
