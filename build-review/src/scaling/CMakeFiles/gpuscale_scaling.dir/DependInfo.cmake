
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scaling/cluster.cc" "src/scaling/CMakeFiles/gpuscale_scaling.dir/cluster.cc.o" "gcc" "src/scaling/CMakeFiles/gpuscale_scaling.dir/cluster.cc.o.d"
  "/root/repo/src/scaling/config_space.cc" "src/scaling/CMakeFiles/gpuscale_scaling.dir/config_space.cc.o" "gcc" "src/scaling/CMakeFiles/gpuscale_scaling.dir/config_space.cc.o.d"
  "/root/repo/src/scaling/input_scaling.cc" "src/scaling/CMakeFiles/gpuscale_scaling.dir/input_scaling.cc.o" "gcc" "src/scaling/CMakeFiles/gpuscale_scaling.dir/input_scaling.cc.o.d"
  "/root/repo/src/scaling/predictor.cc" "src/scaling/CMakeFiles/gpuscale_scaling.dir/predictor.cc.o" "gcc" "src/scaling/CMakeFiles/gpuscale_scaling.dir/predictor.cc.o.d"
  "/root/repo/src/scaling/report.cc" "src/scaling/CMakeFiles/gpuscale_scaling.dir/report.cc.o" "gcc" "src/scaling/CMakeFiles/gpuscale_scaling.dir/report.cc.o.d"
  "/root/repo/src/scaling/shape.cc" "src/scaling/CMakeFiles/gpuscale_scaling.dir/shape.cc.o" "gcc" "src/scaling/CMakeFiles/gpuscale_scaling.dir/shape.cc.o.d"
  "/root/repo/src/scaling/suite_analysis.cc" "src/scaling/CMakeFiles/gpuscale_scaling.dir/suite_analysis.cc.o" "gcc" "src/scaling/CMakeFiles/gpuscale_scaling.dir/suite_analysis.cc.o.d"
  "/root/repo/src/scaling/surface.cc" "src/scaling/CMakeFiles/gpuscale_scaling.dir/surface.cc.o" "gcc" "src/scaling/CMakeFiles/gpuscale_scaling.dir/surface.cc.o.d"
  "/root/repo/src/scaling/taxonomy.cc" "src/scaling/CMakeFiles/gpuscale_scaling.dir/taxonomy.cc.o" "gcc" "src/scaling/CMakeFiles/gpuscale_scaling.dir/taxonomy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/gpu/CMakeFiles/gpuscale_gpu.dir/DependInfo.cmake"
  "/root/repo/build-review/src/base/CMakeFiles/gpuscale_base.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/gpuscale_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
