# Empty dependencies file for gpuscale_cli.
# This may be replaced when dependencies are built.
