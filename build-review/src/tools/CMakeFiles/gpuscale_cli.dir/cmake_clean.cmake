file(REMOVE_RECURSE
  "CMakeFiles/gpuscale_cli.dir/gpuscale_cli.cc.o"
  "CMakeFiles/gpuscale_cli.dir/gpuscale_cli.cc.o.d"
  "gpuscale"
  "gpuscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuscale_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
