/**
 * @file
 * Predict a kernel's full 891-point scaling surface from six probe
 * measurements, using templates learned from the zoo census — the
 * workflow a practitioner uses to avoid a week of sweeps per kernel.
 *
 *   $ ./predict_from_probes
 */

#include <cstdio>

#include "base/math_util.hh"
#include "gpu/analytic_model.hh"
#include "harness/experiment.hh"
#include "harness/sweep.hh"
#include "scaling/predictor.hh"
#include "workloads/archetypes.hh"

int
main()
{
    using namespace gpuscale;

    // 1. Train per-class templates on the zoo census (one-off cost).
    const gpu::AnalyticModel model;
    const auto census = harness::runCensus(model);
    const scaling::ScalingPredictor predictor(census.surfaces,
                                              census.classifications);
    std::printf("trained %zu class templates from %zu kernels\n\n",
                predictor.numTemplates(), census.surfaces.size());

    // 2. A new application kernel the census has never seen.
    auto kernel = workloads::stencil(
        "myapp/solver/jacobi", {.wgs = 3500, .wi_per_wg = 256,
                                .launches = 200, .intensity = 1.1},
        28.0);
    kernel.l2_reuse = 0.5;

    // 3. "Measure" it at the six probe configurations only.
    const auto probes =
        scaling::ScalingPredictor::defaultProbes(census.space);
    std::vector<double> measured;
    std::printf("probe measurements:\n");
    for (const size_t idx : probes) {
        const auto cfg = census.space.at(idx);
        const double t = model.estimate(kernel, cfg).time_s;
        measured.push_back(t);
        std::printf("  %-18s %10.1f us\n", cfg.id().c_str(), t * 1e6);
    }

    // 4. Predict the other 885 points and identify the class.
    const auto predicted = predictor.predict(probes, measured);
    std::printf("\nidentified class: %s\n",
                scaling::taxonomyClassName(
                    predictor.matchClass(probes, measured))
                    .c_str());

    // 5. Score against the (normally unknown) ground truth.
    const auto truth =
        harness::sweepKernel(model, kernel, census.space);
    const auto err =
        scaling::evaluatePrediction(predicted, truth.runtimes());
    std::printf(
        "prediction error over all 891 configurations:\n"
        "  mean   %5.1f%%\n  median %5.1f%%\n  p90    %5.1f%%\n",
        100.0 * err.mape, 100.0 * err.median_ape, 100.0 * err.p90_ape);

    std::printf("\nspot check (predicted vs actual):\n");
    for (const size_t flat : {40ul, 300ul, 600ul, 880ul}) {
        std::printf("  %-18s %9.1f us vs %9.1f us\n",
                    census.space.at(flat).id().c_str(),
                    predicted[flat] * 1e6,
                    truth.runtimes()[flat] * 1e6);
    }
    return 0;
}
