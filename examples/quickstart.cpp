/**
 * @file
 * Quickstart: estimate one kernel on two machines, then sweep the
 * full 891-configuration study grid and classify its scaling.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "gpu/analytic_model.hh"
#include "gpu/gpu_config.hh"
#include "gpu/kernel_desc.hh"
#include "harness/sweep.hh"
#include "scaling/taxonomy.hh"

int
main()
{
    using namespace gpuscale;

    // 1. Describe a kernel: a bandwidth-hungry streaming pass.
    gpu::KernelDesc kernel;
    kernel.name = "demo/quickstart/stream_copy";
    kernel.num_workgroups = 8192;
    kernel.work_items_per_wg = 256;
    kernel.valu_ops = 20;
    kernel.mem_loads = 8;
    kernel.mem_stores = 4;
    kernel.l1_reuse = 0.05;
    kernel.l2_reuse = 0.05;
    kernel.mlp = 8;

    // 2. Estimate it on the extremes of the studied hardware range.
    const gpu::AnalyticModel model;
    for (const auto &cfg : {gpu::makeMinConfig(), gpu::makeMaxConfig()}) {
        const gpu::KernelPerf perf = model.estimate(kernel, cfg);
        std::printf("%-34s %8.1f us  bound by %-8s %.0f GB/s DRAM\n",
                    cfg.describe().c_str(), perf.time_s * 1e6,
                    gpu::boundResourceName(perf.bound).c_str(),
                    perf.achieved_dram_bw / 1e9);
    }

    // 3. Sweep the full 891-point grid and classify the scaling.
    const auto space = scaling::ConfigSpace::paperGrid();
    const auto surface = harness::sweepKernel(model, kernel, space);
    const auto cls = scaling::classifySurface(surface);

    std::printf("\nclassification: %s\n",
                scaling::taxonomyClassName(cls.cls).c_str());
    std::printf("  core-frequency response: %-9s (%.2fx over 5x)\n",
                scaling::shapeName(cls.freq.shape).c_str(),
                cls.freq.total_gain);
    std::printf("  memory-clock response:   %-9s (%.2fx over 8.3x)\n",
                scaling::shapeName(cls.mem.shape).c_str(),
                cls.mem.total_gain);
    std::printf("  compute-unit response:   %-9s (%.2fx over 11x, "
                "90%% of peak at %d CUs)\n",
                scaling::shapeName(cls.cu.shape).c_str(),
                cls.cu.total_gain, cls.cu90);
    return 0;
}
