/**
 * @file
 * Classify a user-described kernel and export its scaling surface.
 *
 * Kernel properties are given as key=value arguments; anything not
 * specified keeps the KernelDesc default.  The full 891-point surface
 * is written as CSV (for plotting elsewhere) and the three scaling
 * curves are drawn in the terminal.
 *
 *   $ ./custom_kernel wgs=64 valu=4000 loads=2 [out=surface.csv]
 *
 * Keys: wgs, wi, launches, valu, sfu, loads, stores, bytes, coalesce,
 *       lds_ops, lds_bytes, vgprs, divergence, barriers, l1, l2,
 *       footprint, shared, mlp, serial, atomics, contention,
 *       overhead_us, out.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "base/logging.hh"
#include "base/math_util.hh"
#include "base/plot.hh"
#include "base/string_util.hh"
#include "gpu/analytic_model.hh"
#include "gpu/kernel_desc.hh"
#include "harness/sweep.hh"
#include "scaling/report.hh"
#include "scaling/taxonomy.hh"

namespace {

using namespace gpuscale;

bool
applyKey(gpu::KernelDesc &k, const std::string &key, double v)
{
    if (key == "wgs") k.num_workgroups = static_cast<int64_t>(v);
    else if (key == "wi") k.work_items_per_wg = static_cast<int>(v);
    else if (key == "launches") k.launches = static_cast<int64_t>(v);
    else if (key == "valu") k.valu_ops = v;
    else if (key == "sfu") k.sfu_ops = v;
    else if (key == "loads") k.mem_loads = v;
    else if (key == "stores") k.mem_stores = v;
    else if (key == "bytes") k.bytes_per_access = v;
    else if (key == "coalesce") k.coalescing = v;
    else if (key == "lds_ops") k.lds_ops = v;
    else if (key == "lds_bytes") k.lds_bytes_per_wg = v;
    else if (key == "vgprs") k.vgprs = static_cast<int>(v);
    else if (key == "divergence") k.branch_divergence = v;
    else if (key == "barriers") k.barriers = v;
    else if (key == "l1") k.l1_reuse = v;
    else if (key == "l2") k.l2_reuse = v;
    else if (key == "footprint") k.footprint_bytes_per_wg = v;
    else if (key == "shared") k.shared_footprint_bytes = v;
    else if (key == "mlp") k.mlp = v;
    else if (key == "serial") k.serial_fraction = v;
    else if (key == "atomics") k.atomic_ops = v;
    else if (key == "contention") k.atomic_contention = v;
    else if (key == "overhead_us") k.host_overhead_us = v;
    else return false;
    return true;
}

void
drawCurve(const char *title, const char *x_label,
          const std::vector<double> &knob,
          const std::vector<double> &perf)
{
    LineChart chart(title, x_label, "speedup");
    chart.setSize(60, 12);
    chart.addSeries({"perf", knob, normalizeToFirst(perf)});
    std::printf("%s\n", chart.render().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    gpu::KernelDesc kernel;
    kernel.name = "user/custom/kernel";

    std::string out_path;
    for (int i = 1; i < argc; ++i) {
        const auto parts = split(argv[i], '=');
        if (parts.size() != 2) {
            std::fprintf(stderr, "expected key=value, got '%s'\n",
                         argv[i]);
            return 1;
        }
        if (parts[0] == "out") {
            out_path = parts[1];
            continue;
        }
        if (!applyKey(kernel, parts[0], std::atof(parts[1].c_str()))) {
            std::fprintf(stderr, "unknown key '%s'\n",
                         parts[0].c_str());
            return 1;
        }
    }
    kernel.validate();
    std::printf("%s\n\n", kernel.describe().c_str());

    const gpu::AnalyticModel model;
    const auto space = scaling::ConfigSpace::paperGrid();
    const auto surface = harness::sweepKernel(model, kernel, space);
    const auto cls = scaling::classifySurface(surface);

    std::printf("classification: %s  (grid-wide range %.1fx)\n\n",
                scaling::taxonomyClassName(cls.cls).c_str(),
                cls.perf_range);

    drawCurve("vs core clock (44 CU, 1250 MHz mem)", "MHz",
              space.coreClks(), surface.freqCurveAtMax());
    drawCurve("vs memory clock (44 CU, 1000 MHz core)", "MHz",
              space.memClks(), surface.memCurveAtMax());
    drawCurve("vs compute units (1000 MHz, 1250 MHz)", "CUs",
              std::vector<double>(space.cuValues().begin(),
                                  space.cuValues().end()),
              surface.cuCurveAtMax());

    if (!out_path.empty()) {
        std::ofstream os(out_path);
        if (!os) {
            std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
            return 1;
        }
        scaling::writeSurfaceCsv(os, surface);
        std::printf("surface written to %s (%zu rows)\n",
                    out_path.c_str(), space.size());
    }
    return 0;
}
