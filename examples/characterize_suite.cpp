/**
 * @file
 * Characterize one benchmark suite: sweep every kernel over the study
 * grid, print the per-kernel classification, and summarize whether the
 * suite scales to a modern GPU — the per-suite slice of the paper's
 * analysis.
 *
 *   $ ./characterize_suite [suite]     (default: pannotia)
 */

#include <cstdio>
#include <string>

#include "base/logging.hh"
#include "base/table.hh"
#include "gpu/analytic_model.hh"
#include "harness/sweep.hh"
#include "scaling/suite_analysis.hh"
#include "scaling/taxonomy.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace gpuscale;

    const std::string suite = argc > 1 ? argv[1] : "pannotia";
    const auto &registry = workloads::WorkloadRegistry::instance();
    const auto kernels = registry.kernelsInSuite(suite);
    if (kernels.empty()) {
        std::fprintf(stderr, "unknown suite '%s'; available:",
                     suite.c_str());
        for (const auto &name : registry.suiteNames())
            std::fprintf(stderr, " %s", name.c_str());
        std::fprintf(stderr, "\n");
        return 1;
    }

    const gpu::AnalyticModel model;
    const auto space = scaling::ConfigSpace::paperGrid();
    const auto surfaces = harness::sweepKernels(model, kernels, space);
    const auto classifications = scaling::classifyAll(surfaces);

    std::printf("suite '%s': %zu kernels x %zu configurations\n\n",
                suite.c_str(), kernels.size(), space.size());

    TextTable t;
    t.addColumn("kernel");
    t.addColumn("class");
    t.addColumn("freq", TextTable::Align::Right);
    t.addColumn("mem", TextTable::Align::Right);
    t.addColumn("cu", TextTable::Align::Right);
    t.addColumn("cu90", TextTable::Align::Right);
    for (const auto &c : classifications) {
        t.row({c.kernel.substr(suite.size() + 1),
               scaling::taxonomyClassName(c.cls),
               strprintf("%.2fx", c.freq.total_gain),
               strprintf("%.2fx", c.mem.total_gain),
               strprintf("%.2fx", c.cu.total_gain),
               strprintf("%d", c.cu90)});
    }
    std::fputs(t.render().c_str(), stdout);

    const auto reports = scaling::analyzeSuites(classifications, 44);
    const auto &r = reports.front();
    std::printf(
        "\nsummary: median cu90 = %.0f of 44 CUs; %.0f%% of kernels\n"
        "saturate below the full machine; %.0f%% sit in classes that\n"
        "cannot use a bigger GPU at all.\n",
        r.median_cu90, 100.0 * r.frac_saturating,
        100.0 * r.frac_non_scaling);
    return 0;
}
