/**
 * @file
 * Hardware what-if: given a workload mix, which configuration gives
 * the best throughput under a cost budget?  This is the design
 * question the paper's scaling data exists to answer — a vendor
 * sizing a part for a market needs to know which kernels reward CUs,
 * which reward clocks, and which reward neither.
 *
 * Cost proxy: num_cus x core_clk acts as the area-power product of
 * the shader array, plus a memory-interface term from the memory
 * clock.  The knee of the throughput/cost curve is reported per
 * workload mix.
 *
 *   $ ./hardware_whatif [suite-or-all]   (default: all)
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/math_util.hh"
#include "base/table.hh"
#include "gpu/analytic_model.hh"
#include "harness/sweep.hh"
#include "scaling/config_space.hh"
#include "workloads/registry.hh"

namespace {

using namespace gpuscale;

/** Relative cost of a configuration (max config = 1.0). */
double
configCost(const gpu::GpuConfig &cfg)
{
    const double shader = cfg.num_cus * cfg.core_clk_mhz;
    const double memory = cfg.mem_clk_mhz;
    return 0.7 * shader / (44.0 * 1000.0) + 0.3 * memory / 1250.0;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string selection = argc > 1 ? argv[1] : "all";
    const auto &registry = workloads::WorkloadRegistry::instance();
    const auto kernels = selection == "all"
                             ? registry.allKernels()
                             : registry.kernelsInSuite(selection);
    if (kernels.empty()) {
        std::fprintf(stderr, "unknown suite '%s'\n", selection.c_str());
        return 1;
    }

    std::printf("workload mix: %s (%zu kernels)\n\n", selection.c_str(),
                kernels.size());

    const gpu::AnalyticModel model;
    const auto space = scaling::ConfigSpace::paperGrid();
    const auto surfaces = harness::sweepKernels(model, kernels, space);

    // Geomean speedup over the minimum configuration, per config.
    std::vector<double> speedup(space.size());
    for (size_t i = 0; i < space.size(); ++i) {
        std::vector<double> ratios;
        ratios.reserve(surfaces.size());
        for (const auto &surface : surfaces) {
            ratios.push_back(surface.runtimes()[0] /
                             surface.runtimes()[i]);
        }
        speedup[i] = geomean(ratios);
    }

    // Best configuration under each budget.
    TextTable t;
    t.addColumn("budget", TextTable::Align::Right);
    t.addColumn("best configuration");
    t.addColumn("geomean speedup", TextTable::Align::Right);
    t.addColumn("speedup/cost", TextTable::Align::Right);
    for (const double budget : {0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0}) {
        size_t best = 0;
        for (size_t i = 0; i < space.size(); ++i) {
            if (configCost(space.at(i)) <= budget &&
                speedup[i] > speedup[best]) {
                best = i;
            }
        }
        const auto cfg = space.at(best);
        t.row({strprintf("%.1f", budget), cfg.describe(),
               strprintf("%.2fx", speedup[best]),
               strprintf("%.2f", speedup[best] / configCost(cfg))});
    }
    std::fputs(t.render().c_str(), stdout);

    // The efficiency-optimal point over the whole space.
    size_t knee = 0;
    for (size_t i = 0; i < space.size(); ++i) {
        if (speedup[i] / configCost(space.at(i)) >
            speedup[knee] / configCost(space.at(knee))) {
            knee = i;
        }
    }
    std::printf("\nefficiency knee: %s (%.2fx speedup at %.2f cost)\n",
                space.at(knee).describe().c_str(), speedup[knee],
                configCost(space.at(knee)));
    std::printf(
        "\nreading: when the mix is dominated by kernels that do not\n"
        "scale past a mid-size GPU, the knee sits well below the\n"
        "flagship configuration — the quantitative form of the "
        "paper's\n\"new benchmarks or new inputs are warranted\".\n");
    return 0;
}
