#!/usr/bin/env bash
# Drift guard for the tracked census artifacts: regenerate the census
# with the freshly built binary and fail if the committed
# classifications.csv / classifications.manifest.json no longer match
# what the code actually produces.
#
# usage: ci/check_census_drift.sh [path-to-gpuscale-binary]
#
# The CSV must match byte for byte.  The manifest is compared on its
# reproducibility-relevant fields only — timestamps, durations, argv,
# thread counts, and the embedded metrics snapshot legitimately vary
# per run and per machine.
#
# Exit codes: 0 in sync, 1 drift, 77 jq unavailable (skip).
set -euo pipefail

root=$(cd "$(dirname "$0")/.." && pwd)
gpuscale=${1:-"$root/build/src/tools/gpuscale"}

if ! command -v jq > /dev/null; then
    echo "check_census_drift: jq not found; skipping" >&2
    exit 77
fi
if [ ! -x "$gpuscale" ]; then
    echo "check_census_drift: no gpuscale binary at $gpuscale" >&2
    exit 1
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

(cd "$tmp" && "$gpuscale" census > /dev/null)

if ! diff -u "$root/classifications.csv" "$tmp/classifications.csv"
then
    echo "error: classifications.csv drifted from the code;" \
         "regenerate with './build/src/tools/gpuscale census' from" \
         "the repo root and commit the result" >&2
    exit 1
fi

stable='{schema_version, tool, command, model, seed, config_space,
         workload, extra}'
if ! diff -u \
    <(jq -S "$stable" "$root/classifications.manifest.json") \
    <(jq -S "$stable" "$tmp/classifications.manifest.json")
then
    echo "error: classifications.manifest.json drifted from the" \
         "code (stable fields above); regenerate and commit" >&2
    exit 1
fi

echo "census artifacts in sync with the code"
