#!/usr/bin/env bash
# Service smoke: boot gpuscaled on the test grid, exercise one call of
# every op over its Unix socket with the bundled one-shot client, then
# drain with SIGTERM and require a clean exit 0 (docs/service.md).
#
# usage: ci/service_smoke.sh [path-to-gpuscaled-binary]
#
# Exit codes: 0 service served and drained cleanly, 1 any call failed,
# the daemon never loaded its census, or the drain did not exit 0.
set -euo pipefail

root=$(cd "$(dirname "$0")/.." && pwd)
gpuscaled=${1:-"$root/build/src/tools/gpuscaled"}

if [ ! -x "$gpuscaled" ]; then
    echo "service_smoke: no gpuscaled binary at $gpuscaled" >&2
    exit 1
fi
# The daemon launches from a temp cwd, so a relative argument must be
# pinned to an absolute path first.
gpuscaled=$(cd "$(dirname "$gpuscaled")" && pwd)/$(basename "$gpuscaled")

tmp=$(mktemp -d)
sock="$tmp/gpuscaled.sock"
cleanup() {
    [ -n "${pid:-}" ] && kill -9 "$pid" 2> /dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

(cd "$tmp" && exec "$gpuscaled" --socket="$sock" \
    --pidfile="$tmp/gpuscaled.pid" --test-grid --checkpoint="$tmp" \
    serve) &
pid=$!

# Wait for the census to come hot; the test grid loads in well under
# a second, so 30 s is pure scheduling slack.
for i in $(seq 1 150); do
    if "$gpuscaled" --socket="$sock" call health 2> /dev/null |
        grep -q '"census_loaded":true'; then
        break
    fi
    if ! kill -0 "$pid" 2> /dev/null; then
        echo "service_smoke: daemon died during startup" >&2
        exit 1
    fi
    [ "$i" -eq 150 ] && { echo "service_smoke: census never loaded" >&2
                          exit 1; }
    sleep 0.2
done

kernels=$("$gpuscaled" --socket="$sock" call census |
    sed -n 's/.*"kernels":\([0-9]*\).*/\1/p')
echo "service_smoke: census reports ${kernels:-0} kernels"
[ "${kernels:-0}" -gt 0 ] || { echo "service_smoke: empty census" >&2
                               exit 1; }

"$gpuscaled" --socket="$sock" --client=smoke call classify \
    kernel=rodinia/hotspot/calculate_temp | grep -q '"ok":true'
"$gpuscaled" --socket="$sock" --client=smoke call predict \
    kernel=rodinia/hotspot/calculate_temp cu=8 core_clk_mhz=800 \
    mem_clk_mhz=1000 | grep -q '"runtime_s"'
"$gpuscaled" --socket="$sock" --client=smoke call stats |
    grep -q '"ok":true'

# A typed error, not a dropped connection, for an unknown kernel
# (the client exits 1 on an ok:false frame, hence the capture).
notfound=$("$gpuscaled" --socket="$sock" call classify \
    kernel=no/such/kernel || true)
echo "$notfound" | grep -q '"NOT_FOUND"'

# Drain: SIGTERM must finish in-flight work and exit 0.
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "service_smoke: drain exited $rc, want 0" >&2
    exit 1
fi
pid=
[ -S "$sock" ] && { echo "service_smoke: socket left behind" >&2
                    exit 1; }

echo "service_smoke: all ops answered, drain exited clean"
