#!/usr/bin/env bash
# Vectorization gate for the batched census kernel: compile
# src/gpu/analytic_batch.cc standalone with GCC's vectorization
# report and fail if the marked stage-3 clock-pair loop (the
# GPUSCALE_STAGE3_LOOP marker) did not vectorize.  The >=8x
# single-core speedup in BENCH_census.json rests on that loop; a
# change that quietly devectorizes it (a function call, a non-affine
# access, an early exit in the inner loop) must fail CI, not surface
# as an unexplained perf regression later.
#
# usage: ci/check_vectorization.sh [compiler]
#        (defaults to $CXX, then g++)
#
# Exit codes: 0 vectorized, 1 devectorized or marker missing,
#             77 no GCC available (-fopt-info is a GCC flag; skip).
set -euo pipefail

root=$(cd "$(dirname "$0")/.." && pwd)
cxx=${1:-${CXX:-g++}}
src="$root/src/gpu/analytic_batch.cc"

if ! command -v "$cxx" > /dev/null; then
    echo "check_vectorization: no compiler '$cxx'; skipping" >&2
    exit 77
fi
if ! "$cxx" --version 2> /dev/null | head -n1 | grep -qE 'g\+\+|GCC'; then
    echo "check_vectorization: $cxx is not GCC; skipping" >&2
    exit 77
fi

marker_line=$(grep -n 'GPUSCALE_STAGE3_LOOP' "$src" |
              head -n1 | cut -d: -f1)
if [ -z "$marker_line" ]; then
    echo "error: GPUSCALE_STAGE3_LOOP marker missing from $src;" \
         "restore it above the inner memory-clock loop" >&2
    exit 1
fi
# The marker is a comment block; the loop it marks is the first
# `for (` after it.
loop_line=$(awk -v start="$marker_line" \
    'NR > start && /for \(/ { print NR; exit }' "$src")
if [ -z "$loop_line" ]; then
    echo "error: no loop found after the GPUSCALE_STAGE3_LOOP" \
         "marker (line $marker_line) in $src" >&2
    exit 1
fi

report=$(mktemp)
trap 'rm -f "$report"' EXIT

# Same standard and optimization level as the Release build; the
# report flags are the only addition.
"$cxx" -std=c++20 -O3 -Wall -Wextra -I "$root/src" \
    -fopt-info-vec-optimized -fopt-info-vec-missed \
    -c "$src" -o /dev/null 2> "$report"

if grep -qE "analytic_batch\.cc:$loop_line:[0-9]+: optimized: loop vectorized" \
    "$report"
then
    echo "stage-3 loop (analytic_batch.cc:$loop_line) vectorized:"
    grep -E "analytic_batch\.cc:$loop_line:.*optimized:" "$report"
    exit 0
fi

echo "error: the stage-3 census loop (analytic_batch.cc:$loop_line)" \
     "no longer vectorizes; compiler report for that line:" >&2
grep -E "analytic_batch\.cc:$loop_line:" "$report" >&2 || true
echo "(see docs/performance.md for how to read the report)" >&2
exit 1
