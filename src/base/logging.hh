/**
 * @file
 * Error-reporting and status-message primitives.
 *
 * Follows the gem5 discipline:
 *  - panic():  an internal invariant was violated — a gpuscale bug.
 *              Aborts so a debugger/core dump can inspect the state.
 *  - fatal():  the *user* asked for something impossible (bad
 *              configuration, invalid kernel descriptor).  Exits with a
 *              nonzero status but does not abort.
 *  - warn():   something is suspicious but the run can continue.
 *  - inform(): plain status output.
 */

#ifndef GPUSCALE_BASE_LOGGING_HH
#define GPUSCALE_BASE_LOGGING_HH

#include <cstdarg>
#include <string>

namespace gpuscale {

/** Severity levels understood by the logging backend. */
enum class LogLevel {
    Inform,
    Warn,
    Fatal,
    Panic,
};

/**
 * Render a printf-style format string into a std::string.
 *
 * @param fmt printf-style format string.
 * @return the formatted message.
 */
std::string vstrprintf(const char *fmt, va_list args);

/** printf-style formatting convenience wrapper around vstrprintf(). */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Emit a log message at the given level.
 *
 * Fatal exits the process with status 1; Panic aborts.  Both are marked
 * by the [[noreturn]] wrappers below — this function itself returns for
 * the non-terminating levels.
 */
void logMessage(LogLevel level, const char *file, int line,
                const std::string &message);

/** Internal invariant violated: report and abort. */
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Unrecoverable user error: report and exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Suspicious condition: report and continue. */
void warnImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Plain status message. */
void informImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/**
 * Install a message sink for tests (captures instead of writing to
 * stderr).  Passing nullptr restores the default sink.  The sink
 * receives the already-formatted single-line message and its level.
 * Terminating levels still terminate unless test hooks are enabled.
 */
using LogSink = void (*)(LogLevel, const std::string &);
void setLogSink(LogSink sink);

/**
 * Test hook: when enabled, panic/fatal throw std::runtime_error instead
 * of terminating, so death paths can be unit tested without forking.
 */
void setLogThrowOnTerminate(bool enable);

} // namespace gpuscale

#define panic(...) \
    ::gpuscale::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) \
    ::gpuscale::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) \
    ::gpuscale::warnImpl(__FILE__, __LINE__, __VA_ARGS__)
#define inform(...) \
    ::gpuscale::informImpl(__FILE__, __LINE__, __VA_ARGS__)

/** panic() unless the condition holds. */
#define panic_if(cond, ...)                                            \
    do {                                                               \
        if (cond)                                                      \
            panic(__VA_ARGS__);                                        \
    } while (0)

/** fatal() if the condition holds. */
#define fatal_if(cond, ...)                                            \
    do {                                                               \
        if (cond)                                                      \
            fatal(__VA_ARGS__);                                        \
    } while (0)

#endif // GPUSCALE_BASE_LOGGING_HH
