/**
 * @file
 * Error-reporting and status-message primitives.
 *
 * Follows the gem5 discipline:
 *  - panic():  an internal invariant was violated — a gpuscale bug.
 *              Aborts so a debugger/core dump can inspect the state.
 *  - fatal():  the *user* asked for something impossible (bad
 *              configuration, invalid kernel descriptor).  Exits with a
 *              nonzero status but does not abort.
 *  - warn():   something is suspicious but the run can continue.
 *  - inform(): plain status output.
 *  - debuglog(): developer diagnostics, hidden by default.
 *
 * Verbosity is a ladder: messages below the minimum level (default
 * Inform) are dropped before formatting reaches the sink.  The
 * minimum comes from the GPUSCALE_LOG environment variable ("debug",
 * "info", "warn", or "quiet") and can be overridden programmatically
 * with setLogLevel().  Fatal/Panic always emit.
 *
 * All entry points are thread-safe: parallelFor workers may warn()
 * concurrently, and emitted lines carry a monotonic [seconds-since-
 * start] timestamp so interleaved output stays attributable.
 */

#ifndef GPUSCALE_BASE_LOGGING_HH
#define GPUSCALE_BASE_LOGGING_HH

#include <cstdarg>
#include <string>

namespace gpuscale {

/** Severity levels understood by the logging backend. */
enum class LogLevel {
    Debug,
    Inform,
    Warn,
    Fatal,
    Panic,
};

/**
 * Set the minimum level that is emitted (Fatal/Panic always are).
 * Overrides the GPUSCALE_LOG environment variable.
 */
void setLogLevel(LogLevel min_level);

/** The current minimum emitted level. */
LogLevel logLevel();

/** Would a message at this level be emitted right now? */
bool logLevelEnabled(LogLevel level);

/** Monotonic seconds since the process started logging. */
double logElapsedSeconds();

/**
 * Render a printf-style format string into a std::string.
 *
 * @param fmt printf-style format string.
 * @return the formatted message.
 */
std::string vstrprintf(const char *fmt, va_list args);

/** printf-style formatting convenience wrapper around vstrprintf(). */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Emit a log message at the given level.
 *
 * Fatal exits the process with status 1; Panic aborts.  Both are marked
 * by the [[noreturn]] wrappers below — this function itself returns for
 * the non-terminating levels.
 */
void logMessage(LogLevel level, const char *file, int line,
                const std::string &message);

/** Internal invariant violated: report and abort. */
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Unrecoverable user error: report and exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Suspicious condition: report and continue. */
void warnImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Plain status message. */
void informImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Developer diagnostic; dropped unless the Debug level is enabled. */
void debugImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/**
 * Install a message sink for tests (captures instead of writing to
 * stderr).  Passing nullptr restores the default sink.  The sink
 * receives the already-formatted single-line message and its level;
 * messages filtered out by the verbosity ladder never reach it.
 * Terminating levels still terminate unless test hooks are enabled.
 * Installation and invocation are mutex-serialized, so workers may
 * log while another thread swaps the sink.
 */
using LogSink = void (*)(LogLevel, const std::string &);
void setLogSink(LogSink sink);

/**
 * Test hook: when enabled, panic/fatal throw std::runtime_error instead
 * of terminating, so death paths can be unit tested without forking.
 */
void setLogThrowOnTerminate(bool enable);

} // namespace gpuscale

#define panic(...) \
    ::gpuscale::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) \
    ::gpuscale::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) \
    ::gpuscale::warnImpl(__FILE__, __LINE__, __VA_ARGS__)
#define inform(...) \
    ::gpuscale::informImpl(__FILE__, __LINE__, __VA_ARGS__)
#define debuglog(...) \
    ::gpuscale::debugImpl(__FILE__, __LINE__, __VA_ARGS__)

/** panic() unless the condition holds. */
#define panic_if(cond, ...)                                            \
    do {                                                               \
        if (cond)                                                      \
            panic(__VA_ARGS__);                                        \
    } while (0)

/** fatal() if the condition holds. */
#define fatal_if(cond, ...)                                            \
    do {                                                               \
        if (cond)                                                      \
            fatal(__VA_ARGS__);                                        \
    } while (0)

#endif // GPUSCALE_BASE_LOGGING_HH
