/**
 * @file
 * Minimal CSV reading/writing used for sweep caching and report
 * emission.  Fields containing commas, quotes, or newlines are quoted
 * per RFC 4180.
 */

#ifndef GPUSCALE_BASE_CSV_HH
#define GPUSCALE_BASE_CSV_HH

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace gpuscale {

/**
 * Streaming CSV writer.
 *
 * Rows are buffered cell-by-cell and flushed with endRow().  The
 * writer does not own the output stream.
 */
class CsvWriter
{
  public:
    explicit CsvWriter(std::ostream &os);

    /** Append one string cell to the current row. */
    CsvWriter &cell(std::string_view value);

    /** Append one numeric cell (full double precision). */
    CsvWriter &cell(double value);

    /** Append one integer cell. */
    CsvWriter &cell(int64_t value);

    /** Write the buffered row and start a new one. */
    void endRow();

    /** Convenience: write an entire row of strings. */
    void row(const std::vector<std::string> &cells);

    /** Number of complete rows written so far. */
    size_t rowsWritten() const { return rows_written_; }

  private:
    std::ostream &os_;
    std::vector<std::string> current_;
    size_t rows_written_ = 0;
};

/** A fully parsed CSV document. */
struct CsvDocument {
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;

    /**
     * 1-based source line where each row starts (parallel to rows);
     * what makes "row 17 is malformed" warnings actionable when a
     * consumer skips bad rows instead of aborting.
     */
    std::vector<size_t> row_lines;

    /** Column index for a header name; fatal() if absent. */
    size_t columnIndex(std::string_view name) const;
};

/**
 * Parse CSV text.  The first record becomes the header.  Handles
 * quoted fields, embedded commas/quotes/newlines, and both \n and
 * \r\n terminators.  Malformed input (unterminated quote) is a
 * fatal() user error.
 */
CsvDocument parseCsv(std::string_view text);

/** Escape one cell per RFC 4180 (adds quotes only when needed). */
std::string csvEscape(std::string_view value);

} // namespace gpuscale

#endif // GPUSCALE_BASE_CSV_HH
