/**
 * @file
 * Terminal table rendering for the reproduced tables.
 */

#ifndef GPUSCALE_BASE_TABLE_HH
#define GPUSCALE_BASE_TABLE_HH

#include <string>
#include <vector>

namespace gpuscale {

/**
 * A simple column-aligned text table.
 *
 * Columns are declared with an alignment; rows are added as string
 * cells (numeric convenience overloads provided).  render() produces
 * a GitHub-markdown-compatible table so the bench output can be pasted
 * directly into EXPERIMENTS.md.
 */
class TextTable
{
  public:
    enum class Align { Left, Right };

    /** Declare a column; call before adding rows. */
    void addColumn(const std::string &header, Align align = Align::Left);

    /** Begin a new row. */
    void beginRow();

    /** Append a cell to the current row (excess cells are a panic). */
    void cell(const std::string &value);
    void cell(double value, int decimals = 3);
    void cell(int64_t value);

    /** Convenience: add a full row at once. */
    void row(const std::vector<std::string> &cells);

    size_t numRows() const { return rows_.size(); }
    size_t numColumns() const { return headers_.size(); }

    /** Render as a markdown-style table. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<Align> aligns_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace gpuscale

#endif // GPUSCALE_BASE_TABLE_HH
