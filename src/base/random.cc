/**
 * @file
 * xoshiro256** implementation.
 */

#include "random.hh"

#include <cmath>

#include "logging.hh"

namespace gpuscale {

namespace {

/** SplitMix64 step used for seeding and stream splitting. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    panic_if(lo > hi, "uniform(%f, %f): inverted range", lo, hi);
    return lo + (hi - lo) * uniform();
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    panic_if(lo > hi, "uniformInt(%lld, %lld): inverted range",
             static_cast<long long>(lo), static_cast<long long>(hi));
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) {
        // Full 64-bit range requested.
        return static_cast<int64_t>(next());
    }
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return lo + static_cast<int64_t>(v % span);
}

double
Rng::normal()
{
    // Box-Muller; discard the second variate for simplicity.
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300)
        u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * M_PI * u2);
}

double
Rng::normal(double mean, double sigma)
{
    return mean + sigma * normal();
}

double
Rng::logUniform(double lo, double hi)
{
    panic_if(lo <= 0 || lo > hi, "logUniform(%f, %f): invalid range",
             lo, hi);
    return std::exp(uniform(std::log(lo), std::log(hi)));
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ull);
}

} // namespace gpuscale
