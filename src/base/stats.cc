/**
 * @file
 * Statistics framework implementation.
 */

#include "stats.hh"

#include <cmath>
#include <iomanip>
#include <limits>

#include "logging.hh"

namespace gpuscale {
namespace stats {

StatBase::StatBase(std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
}

void
Scalar::print(std::ostream &os, const std::string &prefix) const
{
    os << prefix << '.' << name() << ' ' << value_
       << "  # " << desc() << '\n';
}

Distribution::Distribution(std::string name, std::string desc,
                           double lo, double hi, size_t num_buckets)
    : StatBase(std::move(name), std::move(desc)),
      lo_(lo), hi_(hi), buckets_(num_buckets, 0)
{
    panic_if(num_buckets < 1, "Distribution needs >= 1 bucket");
    panic_if(hi <= lo, "Distribution range [%g, %g) is empty", lo, hi);
}

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
    sum_sq_ += v * v;

    if (v < lo_) {
        ++underflow_;
    } else if (v >= hi_) {
        ++overflow_;
    } else {
        const double width =
            (hi_ - lo_) / static_cast<double>(buckets_.size());
        auto idx = static_cast<size_t>((v - lo_) / width);
        if (idx >= buckets_.size())
            idx = buckets_.size() - 1;
        ++buckets_[idx];
    }
}

double
Distribution::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Distribution::stddev() const
{
    if (count_ < 2)
        return 0.0;
    const double n = static_cast<double>(count_);
    const double var = std::max(0.0, sum_sq_ / n - (sum_ / n) * (sum_ / n));
    return std::sqrt(var);
}

void
Distribution::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = overflow_ = count_ = 0;
    sum_ = sum_sq_ = min_ = max_ = 0.0;
}

void
Distribution::print(std::ostream &os, const std::string &prefix) const
{
    os << prefix << '.' << name() << "::count " << count_
       << "  # " << desc() << '\n';
    os << prefix << '.' << name() << "::mean " << mean() << '\n';
    os << prefix << '.' << name() << "::stdev " << stddev() << '\n';
    os << prefix << '.' << name() << "::min " << min_ << '\n';
    os << prefix << '.' << name() << "::max " << max_ << '\n';
}

Formula::Formula(std::string name, std::string desc,
                 std::function<double()> fn)
    : StatBase(std::move(name), std::move(desc)), fn_(std::move(fn))
{
}

void
Formula::print(std::ostream &os, const std::string &prefix) const
{
    os << prefix << '.' << name() << ' ' << value()
       << "  # " << desc() << '\n';
}

StatGroup::StatGroup(std::string prefix)
    : prefix_(std::move(prefix))
{
}

Scalar &
StatGroup::addScalar(const std::string &name, const std::string &desc)
{
    auto stat = std::make_unique<Scalar>(name, desc);
    Scalar &ref = *stat;
    stats_.push_back(std::move(stat));
    return ref;
}

Distribution &
StatGroup::addDistribution(const std::string &name, const std::string &desc,
                           double lo, double hi, size_t num_buckets)
{
    auto stat =
        std::make_unique<Distribution>(name, desc, lo, hi, num_buckets);
    Distribution &ref = *stat;
    stats_.push_back(std::move(stat));
    return ref;
}

Formula &
StatGroup::addFormula(const std::string &name, const std::string &desc,
                      std::function<double()> fn)
{
    auto stat = std::make_unique<Formula>(name, desc, std::move(fn));
    Formula &ref = *stat;
    stats_.push_back(std::move(stat));
    return ref;
}

void
StatGroup::resetAll()
{
    for (auto &stat : stats_)
        stat->reset();
}

void
StatGroup::printAll(std::ostream &os) const
{
    for (const auto &stat : stats_)
        stat->print(os, prefix_);
}

} // namespace stats
} // namespace gpuscale
