/**
 * @file
 * FaultInjector implementation.
 */

#include "fault.hh"

#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "logging.hh"
#include "random.hh"
#include "string_util.hh"

namespace gpuscale {

namespace {

/**
 * True when `site` is covered by `pattern` — an exact match, or a
 * prefix match when the pattern ends in '*'.
 */
bool
siteMatches(const std::string &pattern, const char *site)
{
    if (!pattern.empty() && pattern.back() == '*') {
        return std::string_view(site).substr(0, pattern.size() - 1) ==
               std::string_view(pattern).substr(0, pattern.size() - 1);
    }
    return pattern == site;
}

std::optional<FaultKind>
parseFaultKind(std::string_view name)
{
    if (name == "throw")
        return FaultKind::Exception;
    if (name == "io")
        return FaultKind::IoError;
    if (name == "delay")
        return FaultKind::Delay;
    return std::nullopt;
}

} // namespace

std::string
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Exception:
        return "throw";
      case FaultKind::IoError:
        return "io";
      case FaultKind::Delay:
        return "delay";
    }
    return "?";
}

std::optional<std::vector<FaultSpec>>
parseFaultPlan(const std::string &text, std::string *error)
{
    auto fail = [&](std::string why) {
        if (error != nullptr)
            *error = std::move(why);
        return std::nullopt;
    };

    std::vector<FaultSpec> plan;
    for (const std::string &entry : split(text, ',')) {
        const std::string_view trimmed = trim(entry);
        if (trimmed.empty())
            continue;
        const auto fields = split(trimmed, ':');
        if (fields.size() < 2 || fields.size() > 4) {
            return fail(strprintf(
                "fault entry '%s' is not site:rate[:kind[:delay_ms]]",
                std::string(trimmed).c_str()));
        }

        FaultSpec spec;
        spec.site = std::string(trim(fields[0]));
        if (spec.site.empty())
            return fail("fault entry has an empty site name");

        const std::optional<double> rate = parseDouble(fields[1]);
        if (!rate || *rate < 0.0 || *rate > 1.0) {
            return fail(strprintf(
                "fault rate '%s' for site %s is not in [0, 1]",
                fields[1].c_str(), spec.site.c_str()));
        }
        spec.rate = *rate;

        if (fields.size() >= 3) {
            const auto kind = parseFaultKind(trim(fields[2]));
            if (!kind) {
                return fail(strprintf(
                    "fault kind '%s' for site %s is not "
                    "throw/io/delay",
                    fields[2].c_str(), spec.site.c_str()));
            }
            spec.kind = *kind;
        }

        if (fields.size() == 4) {
            if (spec.kind != FaultKind::Delay) {
                return fail(strprintf(
                    "site %s: delay_ms only applies to kind 'delay'",
                    spec.site.c_str()));
            }
            const std::optional<double> delay = parseDouble(fields[3]);
            if (!delay || *delay < 0.0) {
                return fail(strprintf(
                    "fault delay '%s' for site %s is not a "
                    "non-negative number of milliseconds",
                    fields[3].c_str(), spec.site.c_str()));
            }
            spec.delay_ms = *delay;
        }
        plan.push_back(std::move(spec));
    }
    return plan;
}

/** One armed spec plus its private, seeded draw stream. */
struct FaultInjector::ArmedSpec {
    FaultSpec spec;
    Rng rng{0};
};

/**
 * All mutable injector state, behind one mutex.  Probes take the lock
 * only after the relaxed armed_ gate passed, i.e. only during an
 * injection campaign, where determinism matters more than scaling.
 */
class FaultInjector::Impl
{
  public:
    static Impl &
    instance()
    {
        static Impl impl;
        return impl;
    }

    // gpuscale-lint: allow(concurrency): serializes the per-site draw
    // streams; probes from parallelFor workers race otherwise.
    std::mutex mutex;
    std::vector<ArmedSpec> plan;
    std::array<std::atomic<uint64_t>, 3> fired_by_kind{};
    std::atomic<FaultObserver> observer{nullptr};
};

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::arm(const std::vector<FaultSpec> &plan, uint64_t seed)
{
    Impl &impl = Impl::instance();
    std::lock_guard<std::mutex> lock(impl.mutex);
    impl.plan.clear();
    impl.plan.reserve(plan.size());
    // Seed streams by spec index so each site's pattern is
    // independent of the others and stable across runs.
    Rng root(seed ^ 0x6661756c74ull); // "fault"
    for (const FaultSpec &spec : plan) {
        ArmedSpec armed;
        armed.spec = spec;
        armed.rng = root.split();
        impl.plan.push_back(std::move(armed));
    }
    for (auto &count : impl.fired_by_kind)
        count.store(0, std::memory_order_relaxed);
    armed_.store(!impl.plan.empty(), std::memory_order_relaxed);
}

void
FaultInjector::armFromEnv()
{
    const char *text = std::getenv("GPUSCALE_FAULTS");
    if (text == nullptr || *text == '\0')
        return;

    std::string error;
    const auto plan = parseFaultPlan(text, &error);
    if (!plan) {
        std::fprintf(stderr, "GPUSCALE_FAULTS: %s\n", error.c_str());
        std::exit(2);
    }

    uint64_t seed = 0;
    if (const char *seed_text = std::getenv("GPUSCALE_FAULT_SEED")) {
        const std::optional<double> parsed = parseDouble(seed_text);
        if (!parsed || *parsed < 0 ||
            *parsed != static_cast<uint64_t>(*parsed)) {
            std::fprintf(stderr,
                         "GPUSCALE_FAULT_SEED: '%s' is not a "
                         "non-negative integer\n",
                         seed_text);
            std::exit(2);
        }
        seed = static_cast<uint64_t>(*parsed);
    }

    arm(*plan, seed);
    inform("fault injection armed: %zu spec(s), seed %llu",
           plan->size(), static_cast<unsigned long long>(seed));
}

void
FaultInjector::disarm()
{
    Impl &impl = Impl::instance();
    std::lock_guard<std::mutex> lock(impl.mutex);
    impl.plan.clear();
    armed_.store(false, std::memory_order_relaxed);
}

bool
FaultInjector::fire(const char *site)
{
    Impl &impl = Impl::instance();
    bool io_error = false;
    double sleep_ms = 0.0;
    const FaultSpec *thrown = nullptr;

    {
        std::lock_guard<std::mutex> lock(impl.mutex);
        for (ArmedSpec &armed : impl.plan) {
            if (!siteMatches(armed.spec.site, site))
                continue;
            // Every matching probe consumes exactly one draw, fired
            // or not, so the pattern depends only on the probe
            // ordinal within this site's stream.
            if (armed.rng.uniform() >= armed.spec.rate)
                continue;
            impl.fired_by_kind[static_cast<size_t>(armed.spec.kind)]
                .fetch_add(1, std::memory_order_relaxed);
            if (FaultObserver obs =
                    impl.observer.load(std::memory_order_acquire))
                obs(armed.spec.kind, site);
            switch (armed.spec.kind) {
              case FaultKind::Exception:
                thrown = &armed.spec;
                break;
              case FaultKind::IoError:
                io_error = true;
                break;
              case FaultKind::Delay:
                sleep_ms += armed.spec.delay_ms;
                break;
            }
            if (thrown != nullptr)
                break;
        }
    }

    // Act outside the lock: a sleeping or throwing probe must not
    // stall every other worker's draws.
    if (sleep_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(sleep_ms));
    }
    if (thrown != nullptr) {
        throw FaultInjectedError(strprintf(
            "injected fault at %s (site %s)", site,
            thrown->site.c_str()));
    }
    return io_error;
}

uint64_t
FaultInjector::fired(FaultKind kind) const
{
    return Impl::instance()
        .fired_by_kind[static_cast<size_t>(kind)]
        .load(std::memory_order_relaxed);
}

uint64_t
FaultInjector::firedTotal() const
{
    uint64_t total = 0;
    for (const auto &count : Impl::instance().fired_by_kind)
        total += count.load(std::memory_order_relaxed);
    return total;
}

void
FaultInjector::setObserver(FaultObserver observer)
{
    Impl::instance().observer.store(observer,
                                    std::memory_order_release);
}

} // namespace gpuscale
