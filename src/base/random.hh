/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic choices in gpuscale (kernel-zoo parameter jitter,
 * random kernel generation for property tests, k-means seeding) flow
 * through Rng so that every run of the toolkit is bit-reproducible for
 * a given seed.  The generator is xoshiro256** (public domain, Blackman
 * & Vigna), which is fast and passes BigCrush.
 */

#ifndef GPUSCALE_BASE_RANDOM_HH
#define GPUSCALE_BASE_RANDOM_HH

#include <cstdint>

namespace gpuscale {

/**
 * A small, seedable, copyable PRNG.
 *
 * Copying an Rng forks the stream: both copies produce the same future
 * sequence.  Use split() to derive an independent stream.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via SplitMix64 state expansion. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). Requires lo <= hi. */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Standard normal via Box-Muller (uses two uniforms). */
    double normal();

    /** Normal with given mean and standard deviation. */
    double normal(double mean, double sigma);

    /**
     * Log-uniform sample in [lo, hi]: uniform in log space, useful for
     * sampling quantities that span orders of magnitude (bytes,
     * iteration counts).  Requires 0 < lo <= hi.
     */
    double logUniform(double lo, double hi);

    /** Bernoulli trial with probability p of true. */
    bool chance(double p);

    /**
     * Derive an independent child stream.  Deterministic: the i-th
     * split of a given Rng state is always the same stream.
     */
    Rng split();

  private:
    uint64_t s_[4];
};

} // namespace gpuscale

#endif // GPUSCALE_BASE_RANDOM_HH
