/**
 * @file
 * ASCII figure rendering: line charts, horizontal bar charts, and
 * heatmaps.  These back the reproduced paper figures so results can be
 * inspected in a terminal and recorded verbatim in EXPERIMENTS.md.
 */

#ifndef GPUSCALE_BASE_PLOT_HH
#define GPUSCALE_BASE_PLOT_HH

#include <string>
#include <vector>

namespace gpuscale {

/** One line-chart series: a name plus (x, y) samples. */
struct Series {
    std::string name;
    std::vector<double> x;
    std::vector<double> y;
};

/**
 * Multi-series ASCII line chart.
 *
 * Each series is drawn with a distinct marker character; a legend maps
 * markers to series names.  Axes are linear and auto-scaled to the data
 * (optionally anchored at y = 0).
 */
class LineChart
{
  public:
    LineChart(std::string title, std::string x_label, std::string y_label);

    /** Add a series; x and y must be the same non-zero length. */
    void addSeries(Series series);

    /** Force the y axis to start at zero (default: true). */
    void setYFromZero(bool v) { y_from_zero_ = v; }

    /** Plot area size in character cells. */
    void setSize(size_t width, size_t height);

    /** Render the chart (title, grid, axes, legend). */
    std::string render() const;

  private:
    std::string title_;
    std::string x_label_;
    std::string y_label_;
    std::vector<Series> series_;
    bool y_from_zero_ = true;
    size_t width_ = 64;
    size_t height_ = 16;
};

/** One bar in a horizontal bar chart. */
struct Bar {
    std::string label;
    double value = 0.0;
};

/**
 * Horizontal ASCII bar chart (used for class-population histograms).
 */
class BarChart
{
  public:
    explicit BarChart(std::string title);

    void addBar(std::string label, double value);

    /** Maximum bar length in character cells (default 50). */
    void setBarWidth(size_t width) { bar_width_ = width; }

    std::string render() const;

  private:
    std::string title_;
    std::vector<Bar> bars_;
    size_t bar_width_ = 50;
};

/**
 * ASCII heatmap over a dense row-major matrix, rendered with a ramp of
 * intensity characters plus row/column labels.
 */
class Heatmap
{
  public:
    /**
     * @param values row-major matrix, rows x cols.
     */
    Heatmap(std::string title,
            std::vector<std::string> row_labels,
            std::vector<std::string> col_labels,
            std::vector<double> values);

    std::string render() const;

  private:
    std::string title_;
    std::vector<std::string> row_labels_;
    std::vector<std::string> col_labels_;
    std::vector<double> values_;
};

} // namespace gpuscale

#endif // GPUSCALE_BASE_PLOT_HH
