/**
 * @file
 * A light-weight, gem5-inspired statistics framework.
 *
 * Simulator components declare named statistics inside a StatGroup.
 * Each statistic carries a description so a stat dump is self-
 * documenting.  Three kinds are provided:
 *
 *  - Scalar:       a single accumulating value (counter or level).
 *  - Distribution: min/max/mean/stddev plus fixed-width buckets.
 *  - Formula:      a value computed from other stats at dump time.
 */

#ifndef GPUSCALE_BASE_STATS_HH
#define GPUSCALE_BASE_STATS_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace gpuscale {
namespace stats {

/** Common interface for every named statistic. */
class StatBase
{
  public:
    StatBase(std::string name, std::string desc);
    virtual ~StatBase() = default;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Reset to the just-constructed state. */
    virtual void reset() = 0;

    /** Append one or more "name value # desc" lines to the stream. */
    virtual void print(std::ostream &os,
                       const std::string &prefix) const = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** A single accumulating scalar. */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator++() { value_ += 1.0; return *this; }
    void set(double v) { value_ = v; }
    double value() const { return value_; }

    void reset() override { value_ = 0.0; }
    void print(std::ostream &os, const std::string &prefix) const override;

  private:
    double value_ = 0.0;
};

/** Sampled distribution with fixed-width buckets. */
class Distribution : public StatBase
{
  public:
    /**
     * @param lo lower edge of the first bucket.
     * @param hi upper edge of the last bucket (samples above are
     *           counted in the overflow bin).
     * @param num_buckets number of equal-width buckets; must be >= 1.
     */
    Distribution(std::string name, std::string desc,
                 double lo, double hi, size_t num_buckets);

    void sample(double v);

    uint64_t count() const { return count_; }
    double minSample() const { return min_; }
    double maxSample() const { return max_; }
    double mean() const;
    double stddev() const;
    const std::vector<uint64_t> &buckets() const { return buckets_; }
    uint64_t underflow() const { return underflow_; }
    uint64_t overflow() const { return overflow_; }

    void reset() override;
    void print(std::ostream &os, const std::string &prefix) const override;

  private:
    double lo_;
    double hi_;
    std::vector<uint64_t> buckets_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double sum_sq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** A derived value evaluated lazily at dump time. */
class Formula : public StatBase
{
  public:
    Formula(std::string name, std::string desc,
            std::function<double()> fn);

    double value() const { return fn_ ? fn_() : 0.0; }

    void reset() override {}
    void print(std::ostream &os, const std::string &prefix) const override;

  private:
    std::function<double()> fn_;
};

/**
 * Owner of a set of statistics sharing a dotted name prefix.
 *
 * Components embed a StatGroup and register their stats against it;
 * the group owns the stat objects and can reset/print them together.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string prefix);

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Create and register a Scalar; the group retains ownership. */
    Scalar &addScalar(const std::string &name, const std::string &desc);

    /** Create and register a Distribution. */
    Distribution &addDistribution(const std::string &name,
                                  const std::string &desc,
                                  double lo, double hi,
                                  size_t num_buckets);

    /** Create and register a Formula. */
    Formula &addFormula(const std::string &name, const std::string &desc,
                        std::function<double()> fn);

    const std::string &prefix() const { return prefix_; }

    /** Reset every stat in the group. */
    void resetAll();

    /** Print every stat in registration order. */
    void printAll(std::ostream &os) const;

    size_t size() const { return stats_.size(); }

  private:
    std::string prefix_;
    std::vector<std::unique_ptr<StatBase>> stats_;
};

} // namespace stats
} // namespace gpuscale

#endif // GPUSCALE_BASE_STATS_HH
