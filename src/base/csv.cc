/**
 * @file
 * CSV implementation.
 */

#include "csv.hh"

#include "logging.hh"
#include "string_util.hh"

namespace gpuscale {

CsvWriter::CsvWriter(std::ostream &os)
    : os_(os)
{
}

CsvWriter &
CsvWriter::cell(std::string_view value)
{
    current_.emplace_back(csvEscape(value));
    return *this;
}

CsvWriter &
CsvWriter::cell(double value)
{
    // Shortest round-trip via to_chars: exact under from_chars and
    // immune to the global locale's decimal separator.
    current_.emplace_back(formatDoubleShortest(value));
    return *this;
}

CsvWriter &
CsvWriter::cell(int64_t value)
{
    current_.emplace_back(
        strprintf("%lld", static_cast<long long>(value)));
    return *this;
}

void
CsvWriter::endRow()
{
    os_ << join(current_, ",") << '\n';
    current_.clear();
    ++rows_written_;
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    for (const auto &c : cells)
        cell(c);
    endRow();
}

size_t
CsvDocument::columnIndex(std::string_view name) const
{
    for (size_t i = 0; i < header.size(); ++i) {
        if (header[i] == name)
            return i;
    }
    fatal("CSV column '%.*s' not found",
          static_cast<int>(name.size()), name.data());
}

std::string
csvEscape(std::string_view value)
{
    const bool needs_quotes =
        value.find_first_of(",\"\n\r") != std::string_view::npos;
    if (!needs_quotes)
        return std::string(value);
    std::string out = "\"";
    for (char c : value) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

CsvDocument
parseCsv(std::string_view text)
{
    CsvDocument doc;
    std::vector<std::string> record;
    std::string field;
    bool in_quotes = false;
    bool field_started = false;
    size_t line = 1;
    size_t record_start_line = 1;

    auto end_field = [&]() {
        record.push_back(field);
        field.clear();
        field_started = false;
    };
    auto end_record = [&]() {
        end_field();
        // Skip records that are entirely empty (trailing newline).
        if (record.size() == 1 && record[0].empty()) {
            record.clear();
            return;
        }
        if (doc.header.empty()) {
            doc.header = record;
        } else {
            doc.rows.push_back(record);
            doc.row_lines.push_back(record_start_line);
        }
        record.clear();
    };

    for (size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < text.size() && text[i + 1] == '"') {
                    field += '"';
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                // A quoted newline advances the line count but does
                // not end the record.
                if (c == '\n')
                    ++line;
                field += c;
            }
            continue;
        }
        switch (c) {
          case '"':
            // Leading quote opens a quoted field; a quote in the middle
            // of an unquoted field is taken literally.
            if (!field_started && field.empty())
                in_quotes = true;
            else
                field += c;
            field_started = true;
            break;
          case ',':
            end_field();
            break;
          case '\r':
            // Swallow; the following \n (if any) ends the record.
            break;
          case '\n':
            end_record();
            ++line;
            record_start_line = line;
            break;
          default:
            field += c;
            field_started = true;
            break;
        }
    }
    fatal_if(in_quotes, "CSV parse error: unterminated quoted field");
    if (field_started || !field.empty() || !record.empty())
        end_record();
    return doc;
}

} // namespace gpuscale
