/**
 * @file
 * String helper implementations.
 */

#include "string_util.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "logging.hh"

namespace gpuscale {

std::vector<std::string>
split(std::string_view s, char delim)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        const size_t pos = s.find(delim, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(s.substr(start));
            break;
        }
        out.emplace_back(s.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::string_view
trim(std::string_view s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::string
join(const std::vector<std::string> &pieces, std::string_view sep)
{
    std::string out;
    for (size_t i = 0; i < pieces.size(); ++i) {
        if (i)
            out += sep;
        out += pieces[i];
    }
    return out;
}

std::string
padLeft(std::string_view s, size_t width)
{
    std::string out(s);
    if (out.size() < width)
        out.insert(0, width - out.size(), ' ');
    return out;
}

std::string
padRight(std::string_view s, size_t width)
{
    std::string out(s);
    if (out.size() < width)
        out.append(width - out.size(), ' ');
    return out;
}

std::string
formatDouble(double v, int decimals)
{
    return strprintf("%.*f", decimals, v);
}

std::string
formatSi(double v, int decimals)
{
    static const struct { double scale; const char *suffix; } kUnits[] = {
        { 1e12, "T" }, { 1e9, "G" }, { 1e6, "M" }, { 1e3, "k" },
    };
    const double mag = std::abs(v);
    for (const auto &unit : kUnits) {
        if (mag >= unit.scale) {
            return strprintf("%.*f%s", decimals, v / unit.scale,
                             unit.suffix);
        }
    }
    return strprintf("%.*f", decimals, v);
}

namespace {

/** Shared to_chars driver; fmt/precision as in std::to_chars. */
template <typename... Spec>
std::string
toCharsString(double v, Spec... spec)
{
    // Worst case for shortest round-trip is well under 32 chars;
    // general format with clamped precision fits too.
    char buf[64];
    const auto res =
        std::to_chars(buf, buf + sizeof(buf), v, spec...);
    panic_if(res.ec != std::errc(),
             "to_chars failed for a finite-sized buffer");
    return std::string(buf, res.ptr);
}

} // namespace

std::string
formatDoubleShortest(double v)
{
    return toCharsString(v);
}

std::string
formatDoubleGeneral(double v, int sig_digits)
{
    panic_if(sig_digits < 1 || sig_digits > 17,
             "formatDoubleGeneral: %d significant digits out of "
             "[1, 17]",
             sig_digits);
    return toCharsString(v, std::chars_format::general, sig_digits);
}

std::optional<double>
parseDouble(std::string_view s)
{
    const std::string_view t = trim(s);
    if (t.empty())
        return std::nullopt;
    double v = 0.0;
    const auto res =
        std::from_chars(t.data(), t.data() + t.size(), v);
    if (res.ec != std::errc() || res.ptr != t.data() + t.size())
        return std::nullopt;
    return v;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

} // namespace gpuscale
