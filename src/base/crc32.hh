/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
 *
 * Used to checksum individual census-journal records so a torn tail
 * (the process was SIGKILLed mid-append) or a corrupted middle record
 * is detected and skipped on replay instead of poisoning a resumed
 * run.  Not cryptographic — it guards against accidents, not
 * adversaries.
 */

#ifndef GPUSCALE_BASE_CRC32_HH
#define GPUSCALE_BASE_CRC32_HH

#include <cstdint>
#include <string_view>

namespace gpuscale {

/** CRC-32 of the given bytes (standard init/final xor of ~0). */
uint32_t crc32(std::string_view data);

/**
 * Fast 64-bit rotate-xor checksum for bulk payloads.
 *
 * Consumes the input a word at a time (~10x the throughput of the
 * byte-wise CRC above), folds the length in up front, and finishes
 * with a multiplicative mix.  Order-sensitive and sensitive to any
 * single-word change; the census journal uses it for multi-kilobyte
 * binary record bodies where CRC-32 would dominate the append cost.
 */
uint64_t chk64(std::string_view data);

} // namespace gpuscale

#endif // GPUSCALE_BASE_CRC32_HH
