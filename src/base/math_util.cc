/**
 * @file
 * Implementation of numerical utilities.
 */

#include "math_util.hh"

#include <algorithm>
#include <cmath>

#include "logging.hh"

namespace gpuscale {

LinearFit
linearFit(std::span<const double> x, std::span<const double> y)
{
    panic_if(x.size() != y.size(),
             "linearFit: size mismatch (%zu vs %zu)", x.size(), y.size());
    panic_if(x.size() < 2, "linearFit: need at least 2 samples");

    const double n = static_cast<double>(x.size());
    double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
    for (size_t i = 0; i < x.size(); ++i) {
        sx += x[i];
        sy += y[i];
        sxx += x[i] * x[i];
        sxy += x[i] * y[i];
        syy += y[i] * y[i];
    }

    const double denom = n * sxx - sx * sx;
    LinearFit fit;
    if (std::abs(denom) < 1e-300) {
        // All x identical: degenerate; report a flat line through the mean.
        fit.slope = 0.0;
        fit.intercept = sy / n;
        fit.r2 = 0.0;
        return fit;
    }

    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;

    const double ss_tot = syy - sy * sy / n;
    if (ss_tot < 1e-300) {
        // y is constant; the flat fit explains it perfectly.
        fit.r2 = 1.0;
        return fit;
    }
    double ss_res = 0;
    for (size_t i = 0; i < x.size(); ++i) {
        const double e = y[i] - (fit.slope * x[i] + fit.intercept);
        ss_res += e * e;
    }
    fit.r2 = std::max(0.0, 1.0 - ss_res / ss_tot);
    return fit;
}

LinearFit
logLogFit(std::span<const double> x, std::span<const double> y)
{
    panic_if(x.size() != y.size(),
             "logLogFit: size mismatch (%zu vs %zu)", x.size(), y.size());
    std::vector<double> lx(x.size()), ly(y.size());
    for (size_t i = 0; i < x.size(); ++i) {
        panic_if(x[i] <= 0 || y[i] <= 0,
                 "logLogFit: non-positive sample at %zu (%g, %g)",
                 i, x[i], y[i]);
        lx[i] = std::log(x[i]);
        ly[i] = std::log(y[i]);
    }
    return linearFit(lx, ly);
}

double
mean(std::span<const double> v)
{
    if (v.empty())
        return 0.0;
    double s = 0;
    for (double e : v)
        s += e;
    return s / static_cast<double>(v.size());
}

double
stddev(std::span<const double> v)
{
    if (v.size() < 2)
        return 0.0;
    const double m = mean(v);
    double s = 0;
    for (double e : v)
        s += (e - m) * (e - m);
    return std::sqrt(s / static_cast<double>(v.size()));
}

double
geomean(std::span<const double> v)
{
    if (v.empty())
        return 0.0;
    double s = 0;
    for (double e : v) {
        panic_if(e <= 0, "geomean: non-positive sample %g", e);
        s += std::log(e);
    }
    return std::exp(s / static_cast<double>(v.size()));
}

double
percentile(std::span<const double> v, double p)
{
    panic_if(v.empty(), "percentile of empty span");
    panic_if(p < 0 || p > 100, "percentile %g out of [0,100]", p);
    std::vector<double> sorted(v.begin(), v.end());
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1)
        return sorted[0];
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(std::floor(rank));
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double
pearson(std::span<const double> x, std::span<const double> y)
{
    panic_if(x.size() != y.size(),
             "pearson: size mismatch (%zu vs %zu)", x.size(), y.size());
    if (x.size() < 2)
        return 0.0;
    const double mx = mean(x);
    const double my = mean(y);
    double sxy = 0, sxx = 0, syy = 0;
    for (size_t i = 0; i < x.size(); ++i) {
        sxy += (x[i] - mx) * (y[i] - my);
        sxx += (x[i] - mx) * (x[i] - mx);
        syy += (y[i] - my) * (y[i] - my);
    }
    if (sxx < 1e-300 || syy < 1e-300)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

double
monotoneIncreasingFraction(std::span<const double> v, double tol)
{
    if (v.size() < 2)
        return 1.0;
    size_t good = 0;
    for (size_t i = 1; i < v.size(); ++i) {
        // Tolerance is relative to the local magnitude so curves of
        // any scale (seconds vs. 1/seconds) are treated alike.
        const double scale =
            std::max(std::abs(v[i]), std::abs(v[i - 1]));
        if (v[i] >= v[i - 1] - tol * scale)
            ++good;
    }
    return static_cast<double>(good) / static_cast<double>(v.size() - 1);
}

std::vector<double>
normalizeToFirst(std::span<const double> v)
{
    panic_if(v.empty(), "normalizeToFirst of empty span");
    panic_if(v[0] == 0.0, "normalizeToFirst: first element is zero");
    std::vector<double> out(v.size());
    for (size_t i = 0; i < v.size(); ++i)
        out[i] = v[i] / v[0];
    return out;
}

std::vector<double>
normalize01(std::span<const double> v)
{
    std::vector<double> out(v.size(), 0.0);
    if (v.empty())
        return out;
    const auto [mn_it, mx_it] = std::minmax_element(v.begin(), v.end());
    const double mn = *mn_it, mx = *mx_it;
    if (mx - mn < 1e-300)
        return out;
    for (size_t i = 0; i < v.size(); ++i)
        out[i] = (v[i] - mn) / (mx - mn);
    return out;
}

std::vector<double>
medianFilter3(std::span<const double> v)
{
    std::vector<double> out(v.begin(), v.end());
    if (v.size() < 3)
        return out;
    for (size_t i = 1; i + 1 < v.size(); ++i) {
        const double a = v[i - 1], b = v[i], c = v[i + 1];
        out[i] = std::max(std::min(a, b),
                          std::min(std::max(a, b), c));
    }
    return out;
}

size_t
argmax(std::span<const double> v)
{
    panic_if(v.empty(), "argmax of empty span");
    return static_cast<size_t>(
        std::max_element(v.begin(), v.end()) - v.begin());
}

size_t
argmin(std::span<const double> v)
{
    panic_if(v.empty(), "argmin of empty span");
    return static_cast<size_t>(
        std::min_element(v.begin(), v.end()) - v.begin());
}

double
clamp01(double v)
{
    return std::clamp(v, 0.0, 1.0);
}

bool
nearlyEqual(double a, double b, double tol)
{
    return std::abs(a - b) <=
           tol * std::max({1.0, std::abs(a), std::abs(b)});
}

} // namespace gpuscale
