/**
 * @file
 * CRC-32 implementation (byte-at-a-time table).
 */

#include "crc32.hh"

#include <array>
#include <cstring>

namespace gpuscale {

namespace {

std::array<uint32_t, 256>
buildTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
        table[i] = c;
    }
    return table;
}

} // namespace

uint32_t
crc32(std::string_view data)
{
    static const std::array<uint32_t, 256> table = buildTable();
    uint32_t crc = 0xFFFFFFFFu;
    for (char ch : data) {
        crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^
              (crc >> 8);
    }
    return crc ^ 0xFFFFFFFFu;
}

uint64_t
chk64(std::string_view data)
{
    // Length folded in up front so "payload" and "payload + zero
    // tail" cannot collide even though the word loop pads the final
    // partial word with zeros.
    uint64_t h = 0x9e3779b97f4a7c15ull ^
                 (data.size() * 0x100000001b3ull);
    const char *p = data.data();
    size_t n = data.size();
    while (n >= 8) {
        uint64_t w;
        std::memcpy(&w, p, 8);
        h = (h << 7 | h >> 57) ^ w;
        p += 8;
        n -= 8;
    }
    uint64_t tail = 0;
    std::memcpy(&tail, p, n);
    h = (h << 7 | h >> 57) ^ tail;
    return h * 0xff51afd7ed558ccdull;
}

} // namespace gpuscale
