/**
 * @file
 * Small numerical utilities: regression fits, summary statistics, and
 * curve diagnostics used by the scaling-shape classifier.
 */

#ifndef GPUSCALE_BASE_MATH_UTIL_HH
#define GPUSCALE_BASE_MATH_UTIL_HH

#include <cstddef>
#include <span>
#include <vector>

namespace gpuscale {

/** Result of an ordinary least-squares line fit y = slope*x + intercept. */
struct LinearFit {
    double slope = 0.0;
    double intercept = 0.0;
    /** Coefficient of determination in [0, 1]; 1 means a perfect fit. */
    double r2 = 0.0;
};

/**
 * Ordinary least-squares fit of y against x.
 *
 * @param x sample abscissae; must have the same size as y and >= 2
 *          distinct values.
 * @param y sample ordinates.
 */
LinearFit linearFit(std::span<const double> x, std::span<const double> y);

/**
 * Power-law fit y = a * x^b computed as a line fit in log-log space.
 * All inputs must be strictly positive.  Returned slope is the exponent
 * b, intercept is ln(a), r2 is measured in log space.
 */
LinearFit logLogFit(std::span<const double> x, std::span<const double> y);

/** Arithmetic mean; 0 for an empty span. */
double mean(std::span<const double> v);

/** Population standard deviation; 0 for spans of size < 2. */
double stddev(std::span<const double> v);

/** Geometric mean; all inputs must be > 0; 0 for an empty span. */
double geomean(std::span<const double> v);

/**
 * Linear-interpolated percentile, p in [0, 100].  The span is copied
 * and sorted internally.
 */
double percentile(std::span<const double> v, double p);

/** Pearson correlation coefficient; 0 if either side is constant. */
double pearson(std::span<const double> x, std::span<const double> y);

/**
 * Fraction of adjacent steps that are non-decreasing, treating steps
 * within +/- tol (relative to the larger magnitude) as flat and
 * counting them as non-decreasing.  1.0 means fully monotone
 * non-decreasing; 0.0 fully decreasing.
 */
double monotoneIncreasingFraction(std::span<const double> v,
                                  double tol = 1e-9);

/**
 * Scale a curve so its first element is 1.0 (speedup-normalization).
 * The first element must be nonzero.
 */
std::vector<double> normalizeToFirst(std::span<const double> v);

/** Scale values into [0, 1] by min/max; constant input maps to 0. */
std::vector<double> normalize01(std::span<const double> v);

/**
 * 3-point median filter with copied endpoints; the standard light
 * smoothing for measured curves (kills single-sample outliers without
 * moving plateaus or knees).  Inputs shorter than 3 are returned
 * unchanged.
 */
std::vector<double> medianFilter3(std::span<const double> v);

/** Index of the maximum element; requires a non-empty span. */
size_t argmax(std::span<const double> v);

/** Index of the minimum element; requires a non-empty span. */
size_t argmin(std::span<const double> v);

/** Clamp helper kept for readability at call sites. */
double clamp01(double v);

/** True when |a-b| <= tol * max(1, |a|, |b|). */
bool nearlyEqual(double a, double b, double tol = 1e-9);

} // namespace gpuscale

#endif // GPUSCALE_BASE_MATH_UTIL_HH
