/**
 * @file
 * ASCII figure rendering implementation.
 */

#include "plot.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "logging.hh"
#include "string_util.hh"

namespace gpuscale {

namespace {

/** Marker characters assigned to series in declaration order. */
const char kMarkers[] = "*o+x#@%&";

/** Intensity ramp for heatmaps, from low to high. */
const char kRamp[] = " .:-=+*#%@";

} // namespace

LineChart::LineChart(std::string title, std::string x_label,
                     std::string y_label)
    : title_(std::move(title)), x_label_(std::move(x_label)),
      y_label_(std::move(y_label))
{
}

void
LineChart::addSeries(Series series)
{
    panic_if(series.x.size() != series.y.size(),
             "series '%s': %zu x vs %zu y samples",
             series.name.c_str(), series.x.size(), series.y.size());
    panic_if(series.x.empty(), "series '%s' is empty",
             series.name.c_str());
    series_.push_back(std::move(series));
}

void
LineChart::setSize(size_t width, size_t height)
{
    panic_if(width < 8 || height < 4, "chart size %zux%zu too small",
             width, height);
    width_ = width;
    height_ = height;
}

std::string
LineChart::render() const
{
    panic_if(series_.empty(), "rendering a chart with no series");

    double xmin = std::numeric_limits<double>::infinity();
    double xmax = -xmin;
    double ymin = y_from_zero_ ? 0.0
                               : std::numeric_limits<double>::infinity();
    double ymax = -std::numeric_limits<double>::infinity();
    for (const auto &s : series_) {
        for (size_t i = 0; i < s.x.size(); ++i) {
            xmin = std::min(xmin, s.x[i]);
            xmax = std::max(xmax, s.x[i]);
            ymin = std::min(ymin, s.y[i]);
            ymax = std::max(ymax, s.y[i]);
        }
    }
    if (xmax - xmin < 1e-12)
        xmax = xmin + 1.0;
    if (ymax - ymin < 1e-12)
        ymax = ymin + 1.0;

    std::vector<std::string> grid(height_, std::string(width_, ' '));
    for (size_t si = 0; si < series_.size(); ++si) {
        const auto &s = series_[si];
        const char mark = kMarkers[si % (sizeof(kMarkers) - 1)];
        for (size_t i = 0; i < s.x.size(); ++i) {
            const double fx = (s.x[i] - xmin) / (xmax - xmin);
            const double fy = (s.y[i] - ymin) / (ymax - ymin);
            auto cx = static_cast<size_t>(
                std::lround(fx * static_cast<double>(width_ - 1)));
            auto cy = static_cast<size_t>(
                std::lround(fy * static_cast<double>(height_ - 1)));
            cx = std::min(cx, width_ - 1);
            cy = std::min(cy, height_ - 1);
            grid[height_ - 1 - cy][cx] = mark;
        }
    }

    const size_t label_width = 10;
    std::string out;
    out += title_ + "\n";
    out += "  y: " + y_label_ + "\n";
    for (size_t r = 0; r < height_; ++r) {
        std::string label;
        if (r == 0) {
            label = formatDouble(ymax, 2);
        } else if (r == height_ - 1) {
            label = formatDouble(ymin, 2);
        }
        out += padLeft(label, label_width) + " |" + grid[r] + "\n";
    }
    out += std::string(label_width + 1, ' ') + '+' +
           std::string(width_, '-') + "\n";
    out += padLeft(formatDouble(xmin, 2), label_width + 2) +
           padLeft(formatDouble(xmax, 2) + "  x: " + x_label_,
                   width_ - 1) + "\n";
    out += "  legend:";
    for (size_t si = 0; si < series_.size(); ++si) {
        out += strprintf("  %c=%s",
                         kMarkers[si % (sizeof(kMarkers) - 1)],
                         series_[si].name.c_str());
    }
    out += "\n";
    return out;
}

BarChart::BarChart(std::string title)
    : title_(std::move(title))
{
}

void
BarChart::addBar(std::string label, double value)
{
    panic_if(value < 0, "bar '%s' has negative value %g",
             label.c_str(), value);
    bars_.push_back({std::move(label), value});
}

std::string
BarChart::render() const
{
    panic_if(bars_.empty(), "rendering a bar chart with no bars");

    size_t label_width = 0;
    double max_value = 0.0;
    for (const auto &b : bars_) {
        label_width = std::max(label_width, b.label.size());
        max_value = std::max(max_value, b.value);
    }
    if (max_value <= 0)
        max_value = 1.0;

    std::string out = title_ + "\n";
    for (const auto &b : bars_) {
        const auto len = static_cast<size_t>(
            std::lround(b.value / max_value *
                        static_cast<double>(bar_width_)));
        out += "  " + padRight(b.label, label_width) + " |" +
               std::string(len, '#') + " " +
               formatDoubleGeneral(b.value, 6) + "\n";
    }
    return out;
}

Heatmap::Heatmap(std::string title,
                 std::vector<std::string> row_labels,
                 std::vector<std::string> col_labels,
                 std::vector<double> values)
    : title_(std::move(title)), row_labels_(std::move(row_labels)),
      col_labels_(std::move(col_labels)), values_(std::move(values))
{
    panic_if(values_.size() != row_labels_.size() * col_labels_.size(),
             "heatmap: %zu values for %zu x %zu grid", values_.size(),
             row_labels_.size(), col_labels_.size());
    panic_if(values_.empty(), "heatmap: empty grid");
}

std::string
Heatmap::render() const
{
    const auto [mn_it, mx_it] =
        std::minmax_element(values_.begin(), values_.end());
    const double mn = *mn_it;
    const double mx = *mx_it;
    const double range = mx - mn < 1e-300 ? 1.0 : mx - mn;
    const size_t ramp_levels = sizeof(kRamp) - 2;

    size_t label_width = 0;
    for (const auto &l : row_labels_)
        label_width = std::max(label_width, l.size());

    size_t cell_width = 3;
    for (const auto &c : col_labels_)
        cell_width = std::max(cell_width, c.size() + 1);

    std::string out = title_ + "\n";
    out += std::string(label_width + 3, ' ');
    for (const auto &c : col_labels_)
        out += padLeft(c, cell_width);
    out += "\n";

    for (size_t r = 0; r < row_labels_.size(); ++r) {
        out += "  " + padLeft(row_labels_[r], label_width) + " ";
        for (size_t c = 0; c < col_labels_.size(); ++c) {
            const double v = values_[r * col_labels_.size() + c];
            const auto level = static_cast<size_t>(
                std::lround((v - mn) / range *
                            static_cast<double>(ramp_levels)));
            out += padLeft(std::string(
                               2, kRamp[std::min(level, ramp_levels)]),
                           cell_width);
        }
        out += "\n";
    }
    out += strprintf("  scale: '%c' = %s .. '%c' = %s\n", kRamp[0],
                     formatDoubleGeneral(mn, 4).c_str(),
                     kRamp[ramp_levels],
                     formatDoubleGeneral(mx, 4).c_str());
    return out;
}

} // namespace gpuscale
