/**
 * @file
 * Implementation of the logging/error primitives.
 */

#include "logging.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace gpuscale {

namespace {

/**
 * Serializes sink installation and message emission: parallelFor
 * workers may warn() while a test thread swaps the sink.
 */
// gpuscale-lint: allow(concurrency): the sink mutex IS the logging
// thread-safety contract; routing it through the pool would invert
// the base -> harness layering.
std::mutex g_log_mu;
LogSink g_sink = nullptr;
std::atomic<bool> g_throw_on_terminate{false};

/** Minimum emitted level; initialized once from GPUSCALE_LOG. */
LogLevel
levelFromEnv()
{
    const char *env = std::getenv("GPUSCALE_LOG");
    if (env == nullptr)
        return LogLevel::Inform;
    if (std::strcmp(env, "debug") == 0)
        return LogLevel::Debug;
    if (std::strcmp(env, "info") == 0 || std::strcmp(env, "inform") == 0)
        return LogLevel::Inform;
    if (std::strcmp(env, "warn") == 0)
        return LogLevel::Warn;
    if (std::strcmp(env, "quiet") == 0)
        return LogLevel::Fatal;
    std::fprintf(stderr,
                 "warn: unknown GPUSCALE_LOG level '%s' "
                 "(want debug|info|warn|quiet)\n",
                 env);
    return LogLevel::Inform;
}

std::atomic<int> &
minLevel()
{
    static std::atomic<int> level{static_cast<int>(levelFromEnv())};
    return level;
}

/**
 * Force the GPUSCALE_LOG parse (and its unknown-value warning) at
 * startup; lazy init would swallow the warning in runs that only hit
 * Fatal/Panic, which bypass the minimum-level load.
 */
const int g_env_level_init = static_cast<int>(
    minLevel().load(std::memory_order_relaxed));

/** Epoch for the monotonic timestamps; fixed at first logging use. */
std::chrono::steady_clock::time_point
logEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug:  return "debug";
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

} // namespace

void
setLogLevel(LogLevel min_level)
{
    minLevel().store(static_cast<int>(min_level),
                     std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return static_cast<LogLevel>(
        minLevel().load(std::memory_order_relaxed));
}

bool
logLevelEnabled(LogLevel level)
{
    // Terminating levels always emit.
    if (level == LogLevel::Fatal || level == LogLevel::Panic)
        return true;
    return static_cast<int>(level) >=
           minLevel().load(std::memory_order_relaxed);
}

double
logElapsedSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - logEpoch())
        .count();
}

std::string
vstrprintf(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return std::string(fmt);

    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string out = vstrprintf(fmt, args);
    va_end(args);
    return out;
}

void
setLogSink(LogSink sink)
{
    std::lock_guard<std::mutex> lock(g_log_mu);
    g_sink = sink;
}

void
setLogThrowOnTerminate(bool enable)
{
    g_throw_on_terminate.store(enable, std::memory_order_relaxed);
}

void
logMessage(LogLevel level, const char *file, int line,
           const std::string &message)
{
    if (!logLevelEnabled(level))
        return;

    const double elapsed = logElapsedSeconds();
    std::lock_guard<std::mutex> lock(g_log_mu);
    if (g_sink) {
        g_sink(level, message);
        return;
    }
    if (level == LogLevel::Inform) {
        std::fprintf(stdout, "[%9.4f] %s: %s\n", elapsed,
                     levelTag(level), message.c_str());
    } else {
        std::fprintf(stderr, "[%9.4f] %s: %s (%s:%d)\n", elapsed,
                     levelTag(level), message.c_str(), file, line);
    }
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    logMessage(LogLevel::Panic, file, line, msg);
    if (g_throw_on_terminate.load(std::memory_order_relaxed))
        throw std::runtime_error("panic: " + msg);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    logMessage(LogLevel::Fatal, file, line, msg);
    if (g_throw_on_terminate.load(std::memory_order_relaxed))
        throw std::runtime_error("fatal: " + msg);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const char *fmt, ...)
{
    if (!logLevelEnabled(LogLevel::Warn))
        return;
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    logMessage(LogLevel::Warn, file, line, msg);
}

void
informImpl(const char *file, int line, const char *fmt, ...)
{
    if (!logLevelEnabled(LogLevel::Inform))
        return;
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    logMessage(LogLevel::Inform, file, line, msg);
}

void
debugImpl(const char *file, int line, const char *fmt, ...)
{
    // Check before formatting: debuglog() in hot paths must cost a
    // single relaxed load when disabled.
    if (!logLevelEnabled(LogLevel::Debug))
        return;
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    logMessage(LogLevel::Debug, file, line, msg);
}

} // namespace gpuscale
