/**
 * @file
 * Implementation of the logging/error primitives.
 */

#include "logging.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <vector>

namespace gpuscale {

namespace {

LogSink g_sink = nullptr;
bool g_throw_on_terminate = false;

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

} // namespace

std::string
vstrprintf(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return std::string(fmt);

    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string out = vstrprintf(fmt, args);
    va_end(args);
    return out;
}

void
setLogSink(LogSink sink)
{
    g_sink = sink;
}

void
setLogThrowOnTerminate(bool enable)
{
    g_throw_on_terminate = enable;
}

void
logMessage(LogLevel level, const char *file, int line,
           const std::string &message)
{
    if (g_sink) {
        g_sink(level, message);
        return;
    }
    if (level == LogLevel::Inform) {
        std::fprintf(stdout, "%s: %s\n", levelTag(level), message.c_str());
    } else {
        std::fprintf(stderr, "%s: %s (%s:%d)\n", levelTag(level),
                     message.c_str(), file, line);
    }
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    logMessage(LogLevel::Panic, file, line, msg);
    if (g_throw_on_terminate)
        throw std::runtime_error("panic: " + msg);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    logMessage(LogLevel::Fatal, file, line, msg);
    if (g_throw_on_terminate)
        throw std::runtime_error("fatal: " + msg);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    logMessage(LogLevel::Warn, file, line, msg);
}

void
informImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    logMessage(LogLevel::Inform, file, line, msg);
}

} // namespace gpuscale
