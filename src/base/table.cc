/**
 * @file
 * TextTable implementation.
 */

#include "table.hh"

#include <algorithm>

#include "logging.hh"
#include "string_util.hh"

namespace gpuscale {

void
TextTable::addColumn(const std::string &header, Align align)
{
    panic_if(!rows_.empty(), "addColumn after rows were added");
    headers_.push_back(header);
    aligns_.push_back(align);
}

void
TextTable::beginRow()
{
    panic_if(headers_.empty(), "table has no columns");
    if (!rows_.empty()) {
        panic_if(rows_.back().size() != headers_.size(),
                 "previous row has %zu cells, expected %zu",
                 rows_.back().size(), headers_.size());
    }
    rows_.emplace_back();
}

void
TextTable::cell(const std::string &value)
{
    panic_if(rows_.empty(), "cell() before beginRow()");
    panic_if(rows_.back().size() >= headers_.size(),
             "row overflow: table has %zu columns", headers_.size());
    rows_.back().push_back(value);
}

void
TextTable::cell(double value, int decimals)
{
    cell(formatDouble(value, decimals));
}

void
TextTable::cell(int64_t value)
{
    cell(strprintf("%lld", static_cast<long long>(value)));
}

void
TextTable::row(const std::vector<std::string> &cells)
{
    panic_if(cells.size() != headers_.size(),
             "row has %zu cells, expected %zu",
             cells.size(), headers_.size());
    beginRow();
    for (const auto &c : cells)
        cell(c);
}

std::string
TextTable::render() const
{
    panic_if(headers_.empty(), "rendering a table with no columns");

    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &r : rows_) {
        for (size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());
    }

    auto render_row = [&](const std::vector<std::string> &cells) {
        std::string line = "|";
        for (size_t c = 0; c < headers_.size(); ++c) {
            const std::string &v = c < cells.size() ? cells[c] : "";
            line += ' ';
            line += aligns_[c] == Align::Right
                        ? padLeft(v, widths[c])
                        : padRight(v, widths[c]);
            line += " |";
        }
        line += '\n';
        return line;
    };

    std::string out = render_row(headers_);
    out += "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
        out += aligns_[c] == Align::Right
                   ? std::string(widths[c] + 1, '-') + ":|"
                   : std::string(widths[c] + 2, '-') + "|";
    }
    out += '\n';
    for (const auto &r : rows_)
        out += render_row(r);
    return out;
}

} // namespace gpuscale
