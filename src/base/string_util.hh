/**
 * @file
 * String helpers shared by the CSV, table, and report modules.
 */

#ifndef GPUSCALE_BASE_STRING_UTIL_HH
#define GPUSCALE_BASE_STRING_UTIL_HH

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gpuscale {

/** Split on a single-character delimiter; keeps empty fields. */
std::vector<std::string> split(std::string_view s, char delim);

/** Strip leading/trailing ASCII whitespace. */
std::string_view trim(std::string_view s);

/** Join pieces with a separator. */
std::string join(const std::vector<std::string> &pieces,
                 std::string_view sep);

/** Left-pad with spaces to at least width characters. */
std::string padLeft(std::string_view s, size_t width);

/** Right-pad with spaces to at least width characters. */
std::string padRight(std::string_view s, size_t width);

/** Fixed-notation double with the given number of decimals. */
std::string formatDouble(double v, int decimals = 3);

/**
 * Human-friendly SI rendering: 1234567 -> "1.23M".  Used in tables
 * where raw magnitudes would be unreadable.
 */
std::string formatSi(double v, int decimals = 2);

/**
 * Locale-independent shortest round-trip rendering of a double
 * (std::to_chars): "0.05" stays "0.05" in every locale, and parsing
 * the result with parseDouble() returns the exact same value.  Use
 * this — never %g/%e — for anything serialized (CSV, JSON,
 * manifests).
 */
std::string formatDoubleShortest(double v);

/**
 * Locale-independent %.*g equivalent (std::to_chars, general
 * format): at most sig_digits significant digits.  For human-facing
 * tables and charts where shortest-round-trip is too noisy.
 */
std::string formatDoubleGeneral(double v, int sig_digits);

/**
 * Locale-independent double parse (std::from_chars).  Leading and
 * trailing ASCII whitespace is tolerated; anything else unconsumed
 * makes the parse fail.  Returns nullopt on failure.
 */
std::optional<double> parseDouble(std::string_view s);

/** True if s starts with the given prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view s);

} // namespace gpuscale

#endif // GPUSCALE_BASE_STRING_UTIL_HH
