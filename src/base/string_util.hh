/**
 * @file
 * String helpers shared by the CSV, table, and report modules.
 */

#ifndef GPUSCALE_BASE_STRING_UTIL_HH
#define GPUSCALE_BASE_STRING_UTIL_HH

#include <string>
#include <string_view>
#include <vector>

namespace gpuscale {

/** Split on a single-character delimiter; keeps empty fields. */
std::vector<std::string> split(std::string_view s, char delim);

/** Strip leading/trailing ASCII whitespace. */
std::string_view trim(std::string_view s);

/** Join pieces with a separator. */
std::string join(const std::vector<std::string> &pieces,
                 std::string_view sep);

/** Left-pad with spaces to at least width characters. */
std::string padLeft(std::string_view s, size_t width);

/** Right-pad with spaces to at least width characters. */
std::string padRight(std::string_view s, size_t width);

/** Fixed-notation double with the given number of decimals. */
std::string formatDouble(double v, int decimals = 3);

/**
 * Human-friendly SI rendering: 1234567 -> "1.23M".  Used in tables
 * where raw magnitudes would be unreadable.
 */
std::string formatSi(double v, int decimals = 2);

/** True if s starts with the given prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view s);

} // namespace gpuscale

#endif // GPUSCALE_BASE_STRING_UTIL_HH
