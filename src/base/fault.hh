/**
 * @file
 * Deterministic, site-keyed fault injection.
 *
 * Robustness code that only runs when the disk actually corrupts a
 * file is untested code.  The FaultInjector lets tests (and operators
 * chasing a flaky deployment) fire three kinds of faults at named
 * probe points — "sites" — sprinkled through the I/O and dispatch
 * paths:
 *
 *  - Exception:  faultPoint() throws FaultInjectedError, modelling a
 *                crashing worker or a library throwing mid-operation.
 *  - IoError:    faultPoint() returns true; the caller treats the
 *                operation as failed (a transient I/O error) and runs
 *                its retry/degradation policy.
 *  - Delay:      faultPoint() sleeps, modelling a slow disk or a
 *                stalled NFS mount; the operation then proceeds.
 *
 * Plans are armed programmatically (arm()) or from the environment
 * (GPUSCALE_FAULTS="site:rate[:kind[:delay_ms]],..." — see
 * parseFaultPlan()).  Draws are seeded per site, so a given
 * (plan, seed) fires at exactly the same probe ordinals on every run:
 * fault tests are reproducible, never "flaky by design".
 *
 * The injector is compiled in always; when no plan is armed a probe
 * is one relaxed atomic load, so production paths pay nothing.
 */

#ifndef GPUSCALE_BASE_FAULT_HH
#define GPUSCALE_BASE_FAULT_HH

#include <atomic>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace gpuscale {

/** What an armed fault does when its site's draw fires. */
enum class FaultKind {
    Exception, ///< throw FaultInjectedError from the probe
    IoError,   ///< report the operation as failed (probe returns true)
    Delay,     ///< sleep delay_ms, then let the operation proceed
};

/** Human-readable kind name ("throw", "io", "delay"). */
std::string faultKindName(FaultKind kind);

/** One armed fault: where, how often, and what happens. */
struct FaultSpec {
    /**
     * Site name, or a prefix glob ("sweep_cache.*") matching every
     * site under that prefix.
     */
    std::string site;
    double rate = 0.0;       ///< firing probability per probe, [0, 1]
    FaultKind kind = FaultKind::Exception;
    double delay_ms = 0.0;   ///< sleep length for FaultKind::Delay
};

/** The exception FaultKind::Exception probes throw. */
class FaultInjectedError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Observer notified once per fired fault.  base cannot depend on the
 * obs metrics registry (layering), so telemetry registers itself from
 * above; see obs/fault_telemetry.hh.
 */
using FaultObserver = void (*)(FaultKind kind, const char *site);

/**
 * Parse a GPUSCALE_FAULTS plan string.
 *
 * Grammar: `site:rate[:kind[:delay_ms]]` entries separated by commas;
 * kind is `throw` (default), `io`, or `delay`.  Example:
 *
 *     sweep_cache.disk.read:0.1:io,sweep.kernel:1:delay:20
 *
 * @return the specs, or nullopt with a diagnostic in *error.
 */
std::optional<std::vector<FaultSpec>> parseFaultPlan(
    const std::string &text, std::string *error);

/** Process-wide fault injector. */
class FaultInjector
{
  public:
    static FaultInjector &instance();

    /**
     * Arm a plan.  Each spec gets an independent draw stream derived
     * from (seed, spec index), so the firing pattern is a pure
     * function of the plan and the seed.  Replaces any previous plan
     * and resets the fired counters.
     */
    void arm(const std::vector<FaultSpec> &plan, uint64_t seed);

    /**
     * Arm from GPUSCALE_FAULTS / GPUSCALE_FAULT_SEED (seed defaults
     * to 0).  A malformed plan is a configuration error: the
     * diagnostic goes to stderr and the process exits with code 2,
     * so a typo'd injection campaign can never masquerade as a clean
     * run.  No-op when GPUSCALE_FAULTS is unset or empty.
     */
    void armFromEnv();

    /** Drop the plan; probes return to the zero-cost path. */
    void disarm();

    /** True when a plan is armed (single relaxed load). */
    bool
    armed() const
    {
        return armed_.load(std::memory_order_relaxed);
    }

    /**
     * Probe slow path — use the faultPoint() wrapper instead.  Draws
     * every spec matching `site`; fires per kind (throws, sleeps, or
     * returns true for IoError).
     */
    bool fire(const char *site);

    /** Faults fired since the last arm(), by kind and in total. */
    uint64_t fired(FaultKind kind) const;
    uint64_t firedTotal() const;

    /** Install (or clear, with nullptr) the fired-fault observer. */
    void setObserver(FaultObserver observer);

  private:
    FaultInjector() = default;

    struct ArmedSpec;
    class Impl;

    /** Non-zero only while armed; probes gate on armed_ first. */
    std::atomic<bool> armed_{false};
};

/**
 * The probe: returns true when the caller must treat the operation as
 * failed (an injected I/O error).  Zero-cost when nothing is armed.
 */
inline bool
faultPoint(const char *site)
{
    FaultInjector &inj = FaultInjector::instance();
    if (!inj.armed())
        return false;
    return inj.fire(site);
}

} // namespace gpuscale

#endif // GPUSCALE_BASE_FAULT_HH
