/**
 * @file
 * Locale-safety rule: serialized numbers must round-trip through
 * std::to_chars / std::from_chars, which are locale-independent by
 * construction.  Two locale-dependent habits are findings:
 *
 *  - C parsing: atof/strtod/strtof/strtold/std::stod/std::stof and
 *    the scanf family read "1,5" instead of "1.5" under e.g. de_DE
 *    and silently truncate.
 *  - %g/%e/%a conversions handed to the string-producing formatters
 *    (strprintf/snprintf/sprintf): those strings feed CSV, JSON, and
 *    manifest files.  Fixed %f in human-facing tables is tolerated —
 *    tables are read, not parsed.
 *
 * base/logging hosts the formatting engine itself and is exempt.
 */

#include <cctype>
#include <string>
#include <vector>

#include "analysis/rules.hh"
#include "base/logging.hh"

namespace gpuscale {
namespace analysis {

namespace {

bool
isFormattingHost(const std::string &path)
{
    return path == "src/base/logging.cc" ||
           path == "src/base/logging.hh";
}

/** True if fmt contains a %g/%e/%a-family conversion. */
bool
hasFloatSerializationConversion(const std::string &fmt)
{
    for (size_t i = 0; i + 1 < fmt.size(); ++i) {
        if (fmt[i] != '%')
            continue;
        size_t j = i + 1;
        if (fmt[j] == '%') {
            i = j;
            continue;
        }
        // Skip flags, width, precision, and length modifiers.
        while (j < fmt.size() &&
               (std::isdigit(static_cast<unsigned char>(fmt[j])) ||
                fmt[j] == '.' || fmt[j] == '*' || fmt[j] == '-' ||
                fmt[j] == '+' || fmt[j] == ' ' || fmt[j] == '#' ||
                fmt[j] == 'l' || fmt[j] == 'L' || fmt[j] == 'h'))
            ++j;
        if (j < fmt.size() &&
            (fmt[j] == 'g' || fmt[j] == 'G' || fmt[j] == 'e' ||
             fmt[j] == 'E' || fmt[j] == 'a' || fmt[j] == 'A'))
            return true;
    }
    return false;
}

class LocaleRule : public Rule
{
  public:
    std::string name() const override { return "locale"; }

    std::string
    description() const override
    {
        return "serialized numbers use to_chars/from_chars, not "
               "atof/strtod or %g-family formatting";
    }

    void
    run(const SourceRepo &repo, const LintOptions &,
        Report &report) const override
    {
        for (const auto &file : repo.files) {
            if (!file.isCpp() || isFormattingHost(file.path()))
                continue;
            checkParsers(file, report);
            checkFormatters(file, report);
        }
    }

  private:
    void
    checkParsers(const SourceFile &file, Report &report) const
    {
        static const std::vector<std::string> kParsers = {
            "atof",  "strtod", "strtof", "strtold", "stod",
            "stof",  "sscanf", "fscanf", "vsscanf", "setlocale",
        };
        for (const auto &fn : kParsers) {
            for (size_t off : findTokens(file, fn)) {
                const size_t after = off + fn.size();
                if (after >= file.code().size() ||
                    file.code()[after] != '(')
                    continue;
                emit(file, file.lineOf(off), Severity::Error,
                     strprintf("%s() parses numbers under the global "
                               "C locale; use std::from_chars (see "
                               "parseDouble in base/string_util.hh)",
                               fn.c_str()),
                     report);
            }
        }
    }

    void
    checkFormatters(const SourceFile &file, Report &report) const
    {
        static const std::vector<std::string> kFormatters = {
            "strprintf", "snprintf", "sprintf", "vsnprintf",
        };
        for (const auto &fn : kFormatters) {
            for (size_t off : findTokens(file, fn)) {
                const size_t after = off + fn.size();
                if (after >= file.code().size() ||
                    file.code()[after] != '(')
                    continue;
                const StringLiteral *fmt =
                    file.literalAtOrAfter(off);
                if (!fmt)
                    continue;
                // The format string must belong to this call: no
                // statement boundary between the call and it.
                const auto semi =
                    file.code().find(';', off);
                if (semi != std::string::npos && semi < fmt->offset)
                    continue;
                if (!hasFloatSerializationConversion(fmt->text))
                    continue;
                emit(file, file.lineOf(off), Severity::Error,
                     strprintf("%s() with a %%g/%%e-family "
                               "conversion is locale-dependent; use "
                               "std::to_chars (see "
                               "formatDoubleShortest in "
                               "base/string_util.hh)",
                               fn.c_str()),
                     report);
            }
        }
    }
};

} // namespace

std::unique_ptr<Rule>
makeLocaleRule()
{
    return std::make_unique<LocaleRule>();
}

} // namespace analysis
} // namespace gpuscale
