/**
 * @file
 * SARIF 2.1.0 rendering for gpuscale-lint.
 *
 * SARIF (Static Analysis Results Interchange Format) is the schema
 * GitHub code scanning and most IDE lint panels ingest.  The CI lint
 * job uploads the file produced by `gpuscale-lint --sarif=out.sarif`
 * so findings annotate the PR diff instead of hiding in a log.
 *
 * We emit the minimal valid document: one run, the tool driver with
 * per-rule metadata, and one result per finding with a physical
 * location.  Fix-it hints ride in the result's property bag.
 */

#ifndef GPUSCALE_ANALYSIS_SARIF_HH
#define GPUSCALE_ANALYSIS_SARIF_HH

#include <string>
#include <vector>

#include "analysis/findings.hh"

namespace gpuscale {
namespace analysis {

/** Rule metadata included in the SARIF tool.driver.rules array. */
struct SarifRuleInfo {
    std::string name;
    std::string description;
};

/**
 * Render findings as a complete SARIF 2.1.0 document.
 *
 * @param findings findings in report order.
 * @param rules    every registered rule (also the ones with no
 *                 findings — the driver metadata is the rule list).
 */
std::string renderSarif(const std::vector<Finding> &findings,
                        const std::vector<SarifRuleInfo> &rules);

} // namespace analysis
} // namespace gpuscale

#endif // GPUSCALE_ANALYSIS_SARIF_HH
