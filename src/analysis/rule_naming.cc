/**
 * @file
 * Telemetry-naming rule: every key that ends up in a metrics
 * snapshot, a trace file, or a run manifest follows one convention,
 * so dashboards and jq filters never chase case or separator
 * variants:
 *
 *  - metric names (Registry counter/gauge/histogram) and manifest
 *    extra keys: lowercase dotted, e.g. "parallel.pool.size".
 *  - trace-span names (GPUSCALE_TRACE_SCOPE / TraceScope): lowercase
 *    dotted with '/' allowed as a hierarchy separator; a literal
 *    ending in '/' ("sweep/") is a prefix completed with a runtime
 *    name.
 *
 * Only the leading string literal of a call is checked — runtime
 * suffixes (kernel names) are free-form.
 */

#include <string>

#include "analysis/rules.hh"
#include "base/logging.hh"

namespace gpuscale {
namespace analysis {

namespace {

class NamingRule : public Rule
{
  public:
    std::string name() const override { return "naming"; }

    std::string
    description() const override
    {
        return "metric, trace-span, and manifest keys are lowercase "
               "dotted";
    }

    void
    run(const SourceRepo &repo, const LintOptions &,
        Report &report) const override
    {
        for (const auto &file : repo.files) {
            if (!file.isCpp())
                continue;
            checkRegistryCalls(file, report);
            checkTraceSpans(file, report);
            checkManifestKeys(file, report);
        }
    }

  private:
    /**
     * The string literal opening a call at `off` (offset of the
     * call token), or nullptr when the argument is not a literal in
     * this statement.
     */
    const StringLiteral *
    callKeyLiteral(const SourceFile &file, size_t off,
                   size_t token_len) const
    {
        const StringLiteral *lit =
            file.literalAtOrAfter(off + token_len);
        if (!lit)
            return nullptr;
        const auto semi = file.code().find(';', off);
        if (semi != std::string::npos && semi < lit->offset)
            return nullptr;
        return lit;
    }

    void
    checkRegistryCalls(const SourceFile &file, Report &report) const
    {
        for (const auto &method :
             {std::string("counter"), std::string("gauge"),
              std::string("histogram"), std::string("shardedCounter"),
              std::string("shardedHistogram")})
        {
            for (size_t off : findTokens(file, method)) {
                const std::string &code = file.code();
                // Only method calls (".counter(") are registrations;
                // "Registry::counter(" is the definition itself.
                if (off == 0 || code[off - 1] != '.')
                    continue;
                const size_t after = off + method.size();
                if (after >= code.size() || code[after] != '(')
                    continue;
                const StringLiteral *lit =
                    callKeyLiteral(file, off, method.size());
                if (!lit)
                    continue;
                if (!isLowercaseDottedKey(lit->text)) {
                    emit(file, lit->line, Severity::Error,
                         strprintf("metric name \"%s\" breaks the "
                                   "lowercase dotted convention "
                                   "(e.g. \"sweep.kernels.count\")",
                                   lit->text.c_str()),
                         report);
                }
            }
        }
    }

    void
    checkTraceSpans(const SourceFile &file, Report &report) const
    {
        for (const auto &token :
             {std::string("GPUSCALE_TRACE_SCOPE"),
              std::string("TraceScope")})
        {
            for (size_t off : findTokens(file, token)) {
                const std::string &code = file.code();
                const size_t after = off + token.size();
                if (after >= code.size() || code[after] != '(')
                    continue;
                // Skip the macro's own definition in trace.hh.
                if (off > 0 && code[off - 1] == '#')
                    continue;
                const StringLiteral *lit =
                    callKeyLiteral(file, off, token.size());
                if (!lit)
                    continue;
                // The literal must open the argument list (allowing
                // whitespace), otherwise this is a declaration or a
                // computed name.
                bool opens = true;
                for (size_t p = after + 1; p < lit->offset; ++p) {
                    const char c = code[p];
                    if (c != ' ' && c != '\n' && c != '\t')
                        opens = false;
                }
                if (!opens)
                    continue;
                if (!isLowercaseSpanName(lit->text)) {
                    emit(file, lit->line, Severity::Error,
                         strprintf("trace span \"%s\" breaks the "
                                   "lowercase dotted/slashed "
                                   "convention (e.g. "
                                   "\"parallel_for.worker\")",
                                   lit->text.c_str()),
                         report);
                }
            }
        }
    }

    void
    checkManifestKeys(const SourceFile &file, Report &report) const
    {
        static const std::string kToken = "extra[";
        const std::string &code = file.code();
        size_t pos = 0;
        while ((pos = code.find(kToken, pos)) != std::string::npos) {
            const size_t off = pos;
            pos += kToken.size();
            if (off == 0 || code[off - 1] != '.')
                continue;
            const StringLiteral *lit =
                file.literalAtOrAfter(off + kToken.size());
            if (!lit || lit->offset != off + kToken.size())
                continue;
            if (!isLowercaseDottedKey(lit->text)) {
                emit(file, lit->line, Severity::Error,
                     strprintf("manifest extra key \"%s\" breaks the "
                               "lowercase dotted convention",
                               lit->text.c_str()),
                     report);
            }
        }
    }
};

} // namespace

std::unique_ptr<Rule>
makeNamingRule()
{
    return std::make_unique<NamingRule>();
}

} // namespace analysis
} // namespace gpuscale
