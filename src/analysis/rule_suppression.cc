/**
 * @file
 * suppression rule: allow() markers are load-bearing — a typo like
 * `allow(locl)` parses fine, suppresses nothing, and leaves the
 * author believing the finding is waived.  This rule makes the
 * marker itself checkable: every `gpuscale-lint:` comment must parse
 * as `allow(rule-a, rule-b): reason`, and every rule it names must
 * be a real rule.
 */

#include <set>
#include <string>

#include "analysis/rules.hh"
#include "base/logging.hh"

namespace gpuscale {
namespace analysis {

namespace {

class SuppressionRule : public Rule
{
  public:
    std::string name() const override { return "suppression"; }

    std::string
    description() const override
    {
        return "gpuscale-lint: allow() markers parse and name real "
               "rules";
    }

    void
    run(const SourceRepo &repo, const LintOptions &opts,
        Report &report) const override
    {
        const std::set<std::string> known = knownRules(opts);
        for (const auto &file : repo.files) {
            for (const auto &note : file.suppressionNotes()) {
                if (note.malformed) {
                    emit(file, note.line, Severity::Error,
                         "malformed gpuscale-lint marker (expected "
                         "'gpuscale-lint: allow(rule, ...): "
                         "reason')",
                         report,
                         "fix the marker or delete it; an "
                         "unparseable marker suppresses nothing");
                    continue;
                }
                for (const auto &rule : note.rules) {
                    if (known.count(rule))
                        continue;
                    emit(file, note.line, Severity::Error,
                         strprintf("allow() names unknown rule "
                                   "'%s'; it suppresses nothing",
                                   rule.c_str()),
                         report,
                         "run gpuscale-lint --list-rules for the "
                         "valid names");
                }
            }
        }
    }

  private:
    std::set<std::string>
    knownRules(const LintOptions &opts) const
    {
        std::set<std::string> known(opts.known_rules.begin(),
                                    opts.known_rules.end());
        if (known.empty())
            for (const auto &rule : allRules())
                known.insert(rule->name());
        return known;
    }
};

} // namespace

std::unique_ptr<Rule>
makeSuppressionRule()
{
    return std::make_unique<SuppressionRule>();
}

} // namespace analysis
} // namespace gpuscale
