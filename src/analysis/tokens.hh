/**
 * @file
 * Token stream and lexical scope tree for gpuscale-lint.
 *
 * The first analyzer generation worked on the comment-stripped
 * code() view with substring searches; that is fine for "this token
 * must not appear" rules but cannot answer "is this call inside a
 * scope that also calls faultPoint()?" or "which function body am I
 * in?".  This engine closes that gap while staying dependency-free:
 *
 *  - TokenStream: the code() view lexed into identifiers, numbers,
 *    string/char literals, and (longest-match) punctuators.
 *    Preprocessor directive lines are skipped, digit separators
 *    (1'000'000) stay part of their number, and a raw string is one
 *    String token.
 *  - ScopeTree: every brace pair classified as namespace, type,
 *    function body, control block, initializer, or plain block, with
 *    parent links — enough lexical structure for scope-sensitive
 *    rules (fault-coverage, lock-discipline) without a real parser.
 *
 * Both are built once per file during the repo scan and shared by
 * all rules.
 */

#ifndef GPUSCALE_ANALYSIS_TOKENS_HH
#define GPUSCALE_ANALYSIS_TOKENS_HH

#include <cstddef>
#include <string>
#include <vector>

namespace gpuscale {
namespace analysis {

enum class TokKind {
    Identifier, ///< [A-Za-z_][A-Za-z0-9_]*
    Number,     ///< pp-number, digit separators included
    String,     ///< one string literal, quotes included
    CharLit,    ///< one character literal
    Punct,      ///< longest-match operator or punctuator
};

/** One lexed token over the code() view. */
struct Token {
    TokKind kind;
    std::string text; ///< literal spellings are "\"" / "'" only
    size_t offset;    ///< offset of the first character in code()
    int line;         ///< 1-based line of the first character
};

/**
 * The token sequence of one file's code() view.
 *
 * @param code the comment-stripped, literal-blanked view
 *             (SourceFile::code()); literal *contents* are spaces
 *             but delimiters survive, which is what the lexer keys
 *             on.
 */
class TokenStream
{
  public:
    explicit TokenStream(const std::string &code);
    TokenStream() = default;

    const std::vector<Token> &tokens() const { return tokens_; }

    /** Index of the first token at or after offset; size() if none. */
    size_t indexAtOrAfter(size_t offset) const;

    /**
     * For the token at index i (a "(", "[", or "{"), the index of its
     * matching closer — or, for a closer, its opener.  npos when
     * unbalanced (e.g. a brace hidden behind an #if).
     */
    size_t match(size_t i) const;

    static constexpr size_t npos = static_cast<size_t>(-1);

  private:
    std::vector<Token> tokens_;
    std::vector<size_t> match_; ///< parallel to tokens_
};

enum class ScopeKind {
    Namespace, ///< namespace x { ... }
    Type,      ///< class/struct/union/enum body
    Function,  ///< function, method, or lambda body
    Control,   ///< if/else/for/while/switch/do/try/catch block
    Init,      ///< braced initializer / init-list
    Block,     ///< bare { ... }
};

/** One brace pair; offsets are of the '{' and '}' in code(). */
struct Scope {
    ScopeKind kind;
    size_t open_offset;
    size_t close_offset; ///< offset of '}', or end of file if torn
    int parent;          ///< index into scopes(), -1 for top level
    int depth;           ///< 0 for top-level scopes
    /**
     * For Function scopes: the name token before the parameter list
     * ("sweepOne", "~SweepCache", "operator()", "" for lambdas).
     */
    std::string name;
};

/** The nested brace structure of one token stream. */
class ScopeTree
{
  public:
    explicit ScopeTree(const TokenStream &ts);
    ScopeTree() = default;

    const std::vector<Scope> &scopes() const { return scopes_; }

    /** Innermost scope containing offset, or -1 (top level). */
    int innermostAt(size_t offset) const;

    /**
     * Innermost enclosing Function scope at offset, or -1 when the
     * offset sits outside every function body (file scope, a class
     * member declaration, a constructor init-list).
     */
    int enclosingFunction(size_t offset) const;

    /**
     * Outermost enclosing Function scope at offset, or -1.  For code
     * inside a lambda this is the named function the lambda sits in.
     */
    int outermostFunction(size_t offset) const;

    /** True if scope `anc` is `scope` or one of its ancestors. */
    bool isAncestorOrSelf(int anc, int scope) const;

    /** True if offset falls inside the given scope's braces. */
    bool contains(int scope, size_t offset) const;

  private:
    std::vector<Scope> scopes_;
};

} // namespace analysis
} // namespace gpuscale

#endif // GPUSCALE_ANALYSIS_TOKENS_HH
