#include "rules.hh"

#include <cctype>

namespace gpuscale {
namespace analysis {

namespace {

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
isKeySegment(const std::string &s, size_t begin, size_t end,
             bool allow_empty)
{
    if (begin == end)
        return allow_empty;
    for (size_t i = begin; i < end; ++i) {
        const char c = s[i];
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= '0' && c <= '9') || c == '_';
        if (!ok)
            return false;
    }
    return true;
}

} // namespace

void
Rule::emit(const SourceFile &file, int line, Severity severity,
           std::string message, Report &report,
           std::string hint) const
{
    if (file.suppressed(line, name())) {
        report.noteSuppressed(name());
        return;
    }
    report.add(Finding{name(), severity, file.path(), line,
                       std::move(message), std::move(hint)});
}

std::vector<std::unique_ptr<Rule>>
allRules()
{
    std::vector<std::unique_ptr<Rule>> rules;
    rules.push_back(makeLayeringRule());
    rules.push_back(makeConcurrencyRule());
    rules.push_back(makeLocaleRule());
    rules.push_back(makeNamingRule());
    rules.push_back(makeCensusRule());
    rules.push_back(makeErrorCodeRule());
    rules.push_back(makeDescriptionRule());
    rules.push_back(makeFpDeterminismRule());
    rules.push_back(makeFaultCoverageRule());
    rules.push_back(makeLockDisciplineRule());
    rules.push_back(makeSuppressionRule());
    return rules;
}

std::vector<size_t>
findTokens(const SourceFile &file, const std::string &token)
{
    std::vector<size_t> hits;
    const std::string &code = file.code();
    size_t pos = 0;
    while ((pos = code.find(token, pos)) != std::string::npos) {
        const bool boundary =
            pos == 0 || !isIdentChar(code[pos - 1]);
        if (boundary)
            hits.push_back(pos);
        pos += 1;
    }
    return hits;
}

bool
isLowercaseDottedKey(const std::string &s)
{
    if (s.empty() || !(s[0] >= 'a' && s[0] <= 'z'))
        return false;
    size_t begin = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == '.') {
            if (!isKeySegment(s, begin, i, false))
                return false;
            begin = i + 1;
        }
    }
    return true;
}

bool
isLowercaseSpanName(const std::string &s)
{
    if (s.empty() || !(s[0] >= 'a' && s[0] <= 'z'))
        return false;
    size_t begin = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == '.' || s[i] == '/') {
            // Only the final segment may be empty (a runtime-
            // completed prefix like "sweep/").
            if (!isKeySegment(s, begin, i, i == s.size()))
                return false;
            begin = i + 1;
        }
    }
    return true;
}

} // namespace analysis
} // namespace gpuscale
