/**
 * @file
 * Rule interface and registry for gpuscale-lint.
 *
 * Eleven rule families keep the repo honest as it grows
 * (docs/static_analysis.md describes each in depth):
 *
 *  - layering:    includes must respect the layer order
 *                 base -> obs -> gpu -> workloads -> scaling ->
 *                 harness -> analysis -> tools, and the header
 *                 include graph must be acyclic.
 *  - concurrency: thread creation and raw mutexes belong to
 *                 harness/thread_pool + harness/parallel; everything
 *                 else goes through parallelFor, is governed by
 *                 guarded_by() annotations (lock-discipline), or
 *                 carries an explicit allow() with a reason.
 *  - locale:      serialized numbers must use to_chars/from_chars;
 *                 atof/strtod and %g/%e-style strprintf formatting
 *                 are locale-dependent and banned outside
 *                 base/logging.
 *  - naming:      metric, trace-span, and manifest-extra keys follow
 *                 the lowercase dotted convention.
 *  - census:      kernel/program registrations across the suite
 *                 sources must add up to the paper's 267 kernels /
 *                 97 programs, and each suite file's header comment
 *                 must match its actual counts.
 *  - error-code:  a declared `std::error_code` must be inspected
 *                 afterwards; a silently dropped error code swallows
 *                 filesystem failures.
 *  - description: instruments registered via counter()/gauge()/
 *                 histogram() (and the sharded variants) must carry a
 *                 non-empty description — it becomes the "# HELP"
 *                 line and the metrics-table entry operators read.
 *  - fp-determinism: reassociation-prone float patterns (accumulate/
 *                 reduce over doubles, unordered-container iteration
 *                 feeding arithmetic or serialization, fast-math
 *                 compiler flags) stay out of the census paths, and
 *                 arithmetic helpers shared by the scalar and batched
 *                 models are defined once, in a shared header.
 *  - fault-coverage: every raw I/O call outside base/fault and
 *                 obs/retry must sit in a scope that calls
 *                 faultPoint() or retryWithBackoff(), so the
 *                 resilience layer cannot be bypassed.
 *  - lock-discipline: fields annotated // guarded_by(mu) may only be
 *                 touched in scopes that constructed a lock on mu
 *                 (or in *Locked helpers whose callers hold it).
 *  - suppression: allow() markers must name real rules; a typoed
 *                 allow(locl) that silently suppresses nothing is
 *                 itself a finding.
 */

#ifndef GPUSCALE_ANALYSIS_RULES_HH
#define GPUSCALE_ANALYSIS_RULES_HH

#include <memory>
#include <string>
#include <vector>

#include "analysis/findings.hh"
#include "analysis/source_repo.hh"

namespace gpuscale {
namespace analysis {

/** Paper ground truth the census rule re-derives from the sources. */
struct CensusExpectation {
    size_t kernels = 267;
    size_t programs = 97;
};

/** Knobs for one lint run (tests override the census numbers). */
struct LintOptions {
    CensusExpectation census;
    /**
     * Valid rule names for the suppression rule; when empty (the
     * default) the rule derives the set from allRules() itself.
     */
    std::vector<std::string> known_rules;
};

/** One self-contained invariant checker. */
class Rule
{
  public:
    virtual ~Rule() = default;

    /** Stable identifier used by --rule= and allow() comments. */
    virtual std::string name() const = 0;

    /** One-line summary for --list-rules. */
    virtual std::string description() const = 0;

    virtual void run(const SourceRepo &repo, const LintOptions &opts,
                     Report &report) const = 0;

  protected:
    /**
     * Add a finding unless an allow(<rule-name>) comment covers the
     * line; suppressions are still tallied in the report.  The
     * optional hint becomes the rendered "(fix: ...)" suffix and the
     * SARIF fix-it property.
     */
    void emit(const SourceFile &file, int line, Severity severity,
              std::string message, Report &report,
              std::string hint = "") const;
};

std::unique_ptr<Rule> makeLayeringRule();
std::unique_ptr<Rule> makeConcurrencyRule();
std::unique_ptr<Rule> makeLocaleRule();
std::unique_ptr<Rule> makeNamingRule();
std::unique_ptr<Rule> makeCensusRule();
std::unique_ptr<Rule> makeErrorCodeRule();
std::unique_ptr<Rule> makeDescriptionRule();
std::unique_ptr<Rule> makeFpDeterminismRule();
std::unique_ptr<Rule> makeFaultCoverageRule();
std::unique_ptr<Rule> makeLockDisciplineRule();
std::unique_ptr<Rule> makeSuppressionRule();

/** Every rule, in documentation order. */
std::vector<std::unique_ptr<Rule>> allRules();

/**
 * Offsets of every occurrence of token in the file's code() view
 * whose preceding character is not an identifier character — i.e.
 * `atof(` matches but `myatof(` does not.
 */
std::vector<size_t> findTokens(const SourceFile &file,
                               const std::string &token);

/** True iff s matches [a-z][a-z0-9_]*(\.[a-z0-9_]+)* (metric keys). */
bool isLowercaseDottedKey(const std::string &s);

/**
 * True iff s is a valid trace-span name or prefix: dotted or
 * slash-separated lowercase segments, where a trailing empty segment
 * ("sweep/") marks a prefix completed at runtime.
 */
bool isLowercaseSpanName(const std::string &s);

} // namespace analysis
} // namespace gpuscale

#endif // GPUSCALE_ANALYSIS_RULES_HH
