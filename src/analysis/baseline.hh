/**
 * @file
 * Findings baseline for gpuscale-lint.
 *
 * A baseline is the committed list of findings a tree is allowed to
 * carry (ci/lint_baseline.txt).  With `--baseline=FILE --diff`, CI
 * fails only on findings *not* in the baseline, so a new rule can
 * land with its pre-existing debt recorded instead of blocking every
 * PR until the whole tree is clean.
 *
 * Keys are `rule|file|message` — deliberately line-agnostic, so an
 * unrelated edit that shifts a baselined finding by a few lines does
 * not resurrect it.  The file format is one key per line; `#` lines
 * and blank lines are comments.
 */

#ifndef GPUSCALE_ANALYSIS_BASELINE_HH
#define GPUSCALE_ANALYSIS_BASELINE_HH

#include <set>
#include <string>
#include <vector>

#include "analysis/findings.hh"

namespace gpuscale {
namespace analysis {

/** Stable identity of a finding: "rule|file|message". */
std::string baselineKey(const Finding &f);

/** Parse a baseline file's contents into its key set. */
std::set<std::string> parseBaseline(const std::string &text);

/** Render findings as a sorted, deduplicated baseline file. */
std::string renderBaseline(const std::vector<Finding> &findings);

/** Findings whose key is absent from the baseline, in input order. */
std::vector<Finding>
diffAgainstBaseline(const std::vector<Finding> &findings,
                    const std::set<std::string> &baseline);

} // namespace analysis
} // namespace gpuscale

#endif // GPUSCALE_ANALYSIS_BASELINE_HH
