/**
 * @file
 * fp-determinism rule: the census's headline contract is that the
 * scalar, batched, and runtimes paths are *bitwise* identical
 * (docs/performance.md), which only holds while every path performs
 * the same floating-point operations in the same order.  This rule
 * keeps the three classic order-breakers out of the tree:
 *
 *  1. `std::accumulate` / `std::reduce` over floating values — the
 *     reduction order is an implementation detail (and for reduce,
 *     deliberately unspecified), so two call sites can disagree in
 *     the last ulp.  Explicitly-ordered loops or the blessed helpers
 *     in base/stats are the sanctioned forms.
 *  2. Range-for over an unordered container feeding arithmetic
 *     (`+=`, `<<`, serialization calls) — iteration order depends on
 *     the hash seed and load factor, so the sum (or the output file)
 *     differs between runs and standard libraries.
 *  3. Fast-math compiler flags (-ffast-math, -Ofast, /fp:fast,
 *     -funsafe-math-optimizations, -ffp-contract=fast) anywhere in
 *     the CMake lists — these license the compiler to reassociate
 *     globally, which silently breaks the differential tests.
 *
 * It also enforces the shared-helper contract between the scalar and
 * batched census paths: any function referenced from both
 * src/gpu/analytic_model.cc and src/gpu/analytic_batch.cc must be
 * defined once, in a shared header — two private copies of one
 * arithmetic helper is exactly how the bitwise contract rots.
 */

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/rules.hh"
#include "base/logging.hh"

namespace gpuscale {
namespace analysis {

namespace {

/** Files where ordered reductions legitimately live. */
bool
isBlessedHelperFile(const std::string &path)
{
    return path == "src/base/stats.cc" ||
           path == "src/base/stats.hh" ||
           path == "src/base/math_util.cc" ||
           path == "src/base/math_util.hh" ||
           path == "src/gpu/analytic_batch.hh" ||
           path == "src/gpu/config_grid.hh";
}

const char *const kScalarTu = "src/gpu/analytic_model.cc";
const char *const kBatchTu = "src/gpu/analytic_batch.cc";

bool
isKeyword(const std::string &s)
{
    static const std::set<std::string> kw = {
        "if",      "while",  "for",      "switch", "return",
        "sizeof",  "catch",  "throw",    "new",    "delete",
        "static",  "const",  "constexpr", "auto",  "case",
        "default", "else",   "do",       "break",  "continue",
        "typeid",  "alignof", "noexcept", "assert", "decltype",
    };
    return kw.count(s) != 0;
}

/** Token text that looks like a floating-point literal. */
bool
isFloatLiteral(const Token &t)
{
    if (t.kind != TokKind::Number)
        return false;
    if (t.text.rfind("0x", 0) == 0 || t.text.rfind("0X", 0) == 0)
        return t.text.find('p') != std::string::npos ||
               t.text.find('P') != std::string::npos;
    return t.text.find('.') != std::string::npos ||
           t.text.find('e') != std::string::npos ||
           t.text.find('E') != std::string::npos ||
           t.text.back() == 'f' || t.text.back() == 'F';
}

class FpDeterminismRule : public Rule
{
  public:
    std::string name() const override { return "fp-determinism"; }

    std::string
    description() const override
    {
        return "no reassociation-prone float patterns: unordered "
               "reductions, unordered-container arithmetic, "
               "fast-math flags, or duplicated census helpers";
    }

    void
    run(const SourceRepo &repo, const LintOptions &,
        Report &report) const override
    {
        for (const auto &file : repo.files) {
            if (!file.isCpp()) {
                checkCMakeFlags(file, report);
                continue;
            }
            if (!isBlessedHelperFile(file.path())) {
                checkReductions(file, report);
                checkUnorderedIteration(file, report);
            }
        }
        checkSharedHelpers(repo, report);
    }

  private:
    void
    checkCMakeFlags(const SourceFile &file, Report &report) const
    {
        static const char *const kFlags[] = {
            "-ffast-math",
            "-Ofast",
            "fp:fast",
            "-funsafe-math-optimizations",
            "-ffp-contract=fast",
        };
        const std::string &code = file.code();
        for (const char *flag : kFlags) {
            size_t pos = 0;
            while ((pos = code.find(flag, pos)) != std::string::npos) {
                emit(file, file.lineOf(pos), Severity::Error,
                     strprintf("fast-math flag '%s' licenses global "
                               "reassociation and breaks the bitwise "
                               "scalar/batched census contract",
                               flag),
                     report,
                     "build with plain -O3; the SoA layout, not "
                     "fast-math, is where the census speed comes "
                     "from (docs/performance.md)");
                pos += 1;
            }
        }
    }

    void
    checkReductions(const SourceFile &file, Report &report) const
    {
        const auto &toks = file.tokens().tokens();
        for (size_t i = 0; i < toks.size(); ++i) {
            if (toks[i].kind != TokKind::Identifier ||
                (toks[i].text != "accumulate" &&
                 toks[i].text != "reduce"))
                continue;
            if (i + 1 >= toks.size() || toks[i + 1].text != "(")
                continue;
            // Member calls (x.reduce()) are someone else's API.
            if (i >= 1 &&
                (toks[i - 1].text == "." || toks[i - 1].text == "->"))
                continue;
            const size_t close = file.tokens().match(i + 1);
            if (close == TokenStream::npos)
                continue;
            bool floating = false;
            for (size_t j = i + 2; j < close; ++j) {
                if (isFloatLiteral(toks[j]) ||
                    (toks[j].kind == TokKind::Identifier &&
                     (toks[j].text == "double" ||
                      toks[j].text == "float")))
                    floating = true;
            }
            if (!floating)
                continue;
            emit(file, toks[i].line, Severity::Error,
                 strprintf("std::%s over floating values has an "
                           "unspecified reduction order; results can "
                           "differ in the last ulp between call "
                           "sites",
                           toks[i].text.c_str()),
                 report,
                 "write an explicitly-ordered loop, or use the "
                 "blessed helpers in src/base/stats.hh");
        }
    }

    void
    checkUnorderedIteration(const SourceFile &file,
                            Report &report) const
    {
        const auto &ts = file.tokens();
        const auto &toks = ts.tokens();

        // Names declared with an unordered container type anywhere
        // in this file (fields and locals alike).
        std::set<std::string> unordered;
        for (size_t i = 0; i < toks.size(); ++i) {
            if (toks[i].kind != TokKind::Identifier)
                continue;
            const std::string &t = toks[i].text;
            if (t != "unordered_map" && t != "unordered_set" &&
                t != "unordered_multimap" &&
                t != "unordered_multiset")
                continue;
            if (i + 1 >= toks.size() || toks[i + 1].text != "<")
                continue;
            int depth = 0;
            size_t j = i + 1;
            for (; j < toks.size(); ++j) {
                if (toks[j].text == "<")
                    ++depth;
                else if (toks[j].text == ">")
                    --depth;
                else if (toks[j].text == ">>")
                    depth -= 2;
                if (depth <= 0)
                    break;
            }
            size_t k = j + 1;
            while (k < toks.size() &&
                   (toks[k].text == "&" || toks[k].text == "*" ||
                    toks[k].text == "&&" || toks[k].text == "const"))
                ++k;
            if (k < toks.size() &&
                toks[k].kind == TokKind::Identifier)
                unordered.insert(toks[k].text);
        }
        if (unordered.empty())
            return;

        for (size_t i = 0; i + 1 < toks.size(); ++i) {
            if (toks[i].kind != TokKind::Identifier ||
                toks[i].text != "for" || toks[i + 1].text != "(")
                continue;
            const size_t close = ts.match(i + 1);
            if (close == TokenStream::npos)
                continue;
            // Range-for: a ':' inside the parens, with the range
            // expression after it naming an unordered container.
            size_t colon = TokenStream::npos;
            for (size_t j = i + 2; j < close; ++j) {
                if (toks[j].kind == TokKind::Punct &&
                    toks[j].text == ":") {
                    colon = j;
                    break;
                }
            }
            if (colon == TokenStream::npos)
                continue;
            bool over_unordered = false;
            for (size_t j = colon + 1; j < close; ++j) {
                if (toks[j].kind == TokKind::Identifier &&
                    unordered.count(toks[j].text))
                    over_unordered = true;
            }
            if (!over_unordered)
                continue;

            // Body range: braces or the single statement.
            size_t body_begin = close + 1;
            size_t body_end;
            if (body_begin < toks.size() &&
                toks[body_begin].text == "{") {
                body_end = ts.match(body_begin);
                if (body_end == TokenStream::npos)
                    body_end = toks.size() - 1;
            } else {
                body_end = body_begin;
                while (body_end < toks.size() &&
                       toks[body_end].text != ";")
                    ++body_end;
            }

            if (!bodyFeedsOrderSensitiveSink(toks, body_begin,
                                             body_end))
                continue;
            emit(file, toks[i].line, Severity::Error,
                 "iterating an unordered container into arithmetic "
                 "or serialized output makes the result depend on "
                 "hash seed and load factor",
                 report,
                 "iterate a sorted view (std::map / sorted keys), or "
                 "restrict the loop body to order-independent "
                 "updates");
        }
    }

    /**
     * True when the loop body accumulates (compound float-ish
     * assignment) or serializes (stream insertion, writer calls).
     */
    bool
    bodyFeedsOrderSensitiveSink(const std::vector<Token> &toks,
                                size_t begin, size_t end) const
    {
        for (size_t j = begin; j < end && j < toks.size(); ++j) {
            const Token &t = toks[j];
            if (t.kind == TokKind::Punct &&
                (t.text == "+=" || t.text == "-=" || t.text == "*=" ||
                 t.text == "/=" || t.text == "<<"))
                return true;
            if (t.kind == TokKind::Identifier &&
                (t.text.find("write") != std::string::npos ||
                 t.text.find("serial") != std::string::npos ||
                 t.text.find("print") != std::string::npos ||
                 t.text.find("append") != std::string::npos ||
                 t.text == "key" || t.text == "value"))
                return true;
        }
        return false;
    }

    /**
     * Function names referenced as calls (identifier followed by
     * '(' that is not a member access) in the given file.
     */
    std::set<std::string>
    referencedCalls(const SourceFile &file) const
    {
        std::set<std::string> out;
        const auto &toks = file.tokens().tokens();
        for (size_t i = 0; i + 1 < toks.size(); ++i) {
            if (toks[i].kind != TokKind::Identifier ||
                toks[i + 1].text != "(")
                continue;
            if (i >= 1 &&
                (toks[i - 1].text == "." || toks[i - 1].text == "->"))
                continue;
            if (isKeyword(toks[i].text))
                continue;
            out.insert(toks[i].text);
        }
        return out;
    }

    /** True when the header mentions `fn(` — a declaration. */
    bool
    declaresFunction(const SourceFile &hh, const std::string &fn) const
    {
        const auto &toks = hh.tokens().tokens();
        for (size_t i = 0; i + 1 < toks.size(); ++i)
            if (toks[i].kind == TokKind::Identifier &&
                toks[i].text == fn && toks[i + 1].text == "(")
                return true;
        return false;
    }

    /** Function-body scope names defined in the given file. */
    std::map<std::string, int>
    definedFunctions(const SourceFile &file) const
    {
        std::map<std::string, int> out;
        for (const Scope &s : file.scopes().scopes()) {
            if (s.kind == ScopeKind::Function && !s.name.empty())
                out.emplace(s.name,
                            file.lineOf(s.open_offset));
        }
        return out;
    }

    void
    checkSharedHelpers(const SourceRepo &repo, Report &report) const
    {
        const SourceFile *scalar = repo.find(kScalarTu);
        const SourceFile *batch = repo.find(kBatchTu);
        if (!scalar || !batch)
            return;

        const auto scalar_refs = referencedCalls(*scalar);
        const auto batch_refs = referencedCalls(*batch);

        for (const SourceFile *tu : {scalar, batch}) {
            const std::string header =
                tu->path().substr(0, tu->path().size() - 3) + ".hh";
            const SourceFile *hh = repo.find(header);
            for (const auto &[fn, line] : definedFunctions(*tu)) {
                if (!scalar_refs.count(fn) || !batch_refs.count(fn))
                    continue;
                // Declared in the TU's own header => a published
                // API both paths share, not a private copy.
                if (hh && declaresFunction(*hh, fn))
                    continue;
                emit(*tu, line, Severity::Error,
                     strprintf("'%s' is referenced from both the "
                               "scalar and batched census paths but "
                               "defined in a .cc; a second private "
                               "copy would silently fork the "
                               "rounding order",
                               fn.c_str()),
                     report,
                     "move the definition to a shared header "
                     "(analytic_batch.hh / config_grid.hh) so one "
                     "arithmetic ordering serves both paths");
            }
        }
    }
};

} // namespace

std::unique_ptr<Rule>
makeFpDeterminismRule()
{
    return std::make_unique<FpDeterminismRule>();
}

} // namespace analysis
} // namespace gpuscale
