#include "findings.hh"

#include <algorithm>
#include <tuple>

#include "base/logging.hh"

namespace gpuscale {
namespace analysis {

std::string
severityName(Severity s)
{
    switch (s) {
      case Severity::Error:
        return "error";
      case Severity::Warning:
        return "warning";
    }
    panic("unreachable severity %d", static_cast<int>(s));
}

std::string
Finding::render() const
{
    std::string out;
    if (file.empty())
        out = strprintf("%s: [%s] %s", severityName(severity).c_str(),
                        rule.c_str(), message.c_str());
    else
        out = strprintf("%s:%d: %s: [%s] %s", file.c_str(), line,
                        severityName(severity).c_str(), rule.c_str(),
                        message.c_str());
    if (!hint.empty())
        out += strprintf(" (fix: %s)", hint.c_str());
    return out;
}

void
Report::add(Finding f)
{
    findings_.push_back(std::move(f));
    sorted_ = false;
}

void
Report::noteSuppressed(const std::string &rule)
{
    ++suppressed_[rule];
}

const std::vector<Finding> &
Report::findings() const
{
    if (!sorted_) {
        std::stable_sort(findings_.begin(), findings_.end(),
                         [](const Finding &a, const Finding &b) {
                             return std::tie(a.file, a.line, a.rule) <
                                    std::tie(b.file, b.line, b.rule);
                         });
        sorted_ = true;
    }
    return findings_;
}

size_t
Report::errorCount() const
{
    return std::count_if(findings_.begin(), findings_.end(),
                         [](const Finding &f) {
                             return f.severity == Severity::Error;
                         });
}

size_t
Report::warningCount() const
{
    return findings_.size() - errorCount();
}

size_t
Report::suppressedCount() const
{
    size_t n = 0;
    for (const auto &[rule, count] : suppressed_)
        n += count;
    return n;
}

std::string
Report::render() const
{
    std::string out;
    for (const auto &f : findings()) {
        out += f.render();
        out += '\n';
    }
    return out;
}

} // namespace analysis
} // namespace gpuscale
