#include "sarif.hh"

#include <sstream>

#include "obs/json.hh"

namespace gpuscale {
namespace analysis {

std::string
renderSarif(const std::vector<Finding> &findings,
            const std::vector<SarifRuleInfo> &rules)
{
    std::ostringstream os;
    obs::JsonWriter w(os);

    w.beginObject();
    w.key("$schema")
        .value("https://json.schemastore.org/sarif-2.1.0.json");
    w.key("version").value("2.1.0");
    w.key("runs").beginArray().beginObject();

    w.key("tool").beginObject().key("driver").beginObject();
    w.key("name").value("gpuscale-lint");
    w.key("informationUri")
        .value("https://example.invalid/gpuscale/docs/"
               "static_analysis.md");
    w.key("rules").beginArray();
    for (const auto &rule : rules) {
        w.beginObject();
        w.key("id").value(rule.name);
        w.key("shortDescription").beginObject();
        w.key("text").value(rule.description);
        w.endObject();
        w.endObject();
    }
    w.endArray();    // rules
    w.endObject();   // driver
    w.endObject();   // tool

    w.key("results").beginArray();
    for (const auto &f : findings) {
        w.beginObject();
        w.key("ruleId").value(f.rule);
        w.key("level").value(f.severity == Severity::Error
                                 ? "error"
                                 : "warning");
        w.key("message").beginObject();
        w.key("text").value(f.message);
        w.endObject();
        // Repo-wide findings (census totals) carry no location.
        if (!f.file.empty()) {
            w.key("locations").beginArray().beginObject();
            w.key("physicalLocation").beginObject();
            w.key("artifactLocation").beginObject();
            w.key("uri").value(f.file);
            w.endObject(); // artifactLocation
            if (f.line > 0) {
                w.key("region").beginObject();
                w.key("startLine").value(f.line);
                w.endObject();
            }
            w.endObject(); // physicalLocation
            w.endObject().endArray(); // locations
        }
        if (!f.hint.empty()) {
            w.key("properties").beginObject();
            w.key("hint").value(f.hint);
            w.endObject();
        }
        w.endObject();
    }
    w.endArray(); // results

    w.endObject(); // run
    w.endArray();  // runs
    w.endObject();

    std::string out = os.str();
    out += '\n';
    return out;
}

} // namespace analysis
} // namespace gpuscale
