/**
 * @file
 * lock-discipline rule: fields annotated `// guarded_by(mu)` may only
 * be touched inside a scope that constructed a std::lock_guard /
 * unique_lock / scoped_lock on `mu`.  Helpers whose name ends in
 * "Locked" are exempt — the suffix is this repo's convention for
 * "caller already holds the lock" — as are touches outside any
 * function body (the declaration itself, member-init lists).
 *
 * The annotation lives on the field declaration in the header; the
 * rule checks touches both in that header and in its sibling .cc,
 * where the method bodies live.  Compared to a blanket
 * allow(concurrency) comment on the mutex, this actually ties every
 * access back to the lock, so a new method that forgets the guard is
 * caught the day it is written.
 */

#include <string>
#include <vector>

#include "analysis/rules.hh"
#include "base/logging.hh"

namespace gpuscale {
namespace analysis {

namespace {

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

/** "src/x/y.hh" <-> "src/x/y.cc"; "" when no sibling naming fits. */
std::string
siblingPath(const std::string &path)
{
    if (endsWith(path, ".hh"))
        return path.substr(0, path.size() - 3) + ".cc";
    if (endsWith(path, ".cc"))
        return path.substr(0, path.size() - 3) + ".hh";
    return "";
}

bool
isLockType(const std::string &t)
{
    return t == "lock_guard" || t == "unique_lock" ||
           t == "scoped_lock";
}

class LockDisciplineRule : public Rule
{
  public:
    std::string name() const override { return "lock-discipline"; }

    std::string
    description() const override
    {
        return "fields annotated // guarded_by(mu) are only touched "
               "under a lock on mu (or in *Locked helpers)";
    }

    void
    run(const SourceRepo &repo, const LintOptions &,
        Report &report) const override
    {
        for (const auto &file : repo.files) {
            if (!file.isCpp())
                continue;
            for (const auto &guard : file.guardAnnotations())
                checkGuard(repo, file, guard, report);
        }
    }

  private:
    void
    checkGuard(const SourceRepo &repo, const SourceFile &file,
               const GuardAnnotation &guard, Report &report) const
    {
        if (guard.mutex.empty()) {
            emit(file, guard.line, Severity::Error,
                 "malformed guarded_by annotation (expected "
                 "// guarded_by(mutex_name))",
                 report, "name the mutex: // guarded_by(mu_)");
            return;
        }
        if (guard.field.empty()) {
            emit(file, guard.line, Severity::Error,
                 strprintf("guarded_by(%s) does not attach to a "
                           "field declaration",
                           guard.mutex.c_str()),
                 report,
                 "place the comment on the field's own line or the "
                 "line above it");
            return;
        }
        if (!fileNamesIdentifier(file, guard.mutex)) {
            emit(file, guard.line, Severity::Error,
                 strprintf("guarded_by(%s) names a mutex that does "
                           "not appear in this file",
                           guard.mutex.c_str()),
                 report, "fix the mutex name in the annotation");
            return;
        }

        checkTouches(file, file, guard, report);
        const std::string sibling = siblingPath(file.path());
        if (const SourceFile *sib = repo.find(sibling))
            checkTouches(file, *sib, guard, report);
    }

    bool
    fileNamesIdentifier(const SourceFile &file,
                        const std::string &name) const
    {
        for (const Token &t : file.tokens().tokens())
            if (t.kind == TokKind::Identifier && t.text == name)
                return true;
        return false;
    }

    void
    checkTouches(const SourceFile &decl_file, const SourceFile &file,
                 const GuardAnnotation &guard, Report &report) const
    {
        const auto &toks = file.tokens().tokens();
        for (size_t i = 0; i < toks.size(); ++i) {
            const Token &t = toks[i];
            if (t.kind != TokKind::Identifier ||
                t.text != guard.field)
                continue;
            // The annotated declaration itself.
            if (&file == &decl_file && t.line == guard.line)
                continue;
            // `other.map_` touches a different instance's member;
            // only unqualified and this-> accesses are in scope.
            if (i >= 2 &&
                (toks[i - 1].text == "." ||
                 toks[i - 1].text == "->") &&
                toks[i - 2].kind == TokKind::Identifier &&
                toks[i - 2].text != "this")
                continue;

            const int fn =
                file.scopes().enclosingFunction(t.offset);
            if (fn < 0)
                continue; // declaration, member-init list, ...
            const Scope &fscope = file.scopes().scopes()[fn];
            if (endsWith(fscope.name, "Locked"))
                continue; // caller holds the lock by convention
            if (lockCovers(file, guard.mutex, t.offset))
                continue;

            emit(file, t.line, Severity::Error,
                 strprintf("'%s' is guarded_by(%s) but touched "
                           "without a lock on it",
                           guard.field.c_str(),
                           guard.mutex.c_str()),
                 report,
                 strprintf("take std::lock_guard<std::mutex> "
                           "lock(%s) in this scope, or rename the "
                           "helper to *Locked if the caller holds "
                           "it",
                           guard.mutex.c_str()));
        }
    }

    /**
     * True when a lock_guard/unique_lock/scoped_lock naming the
     * mutex is constructed before `offset` in a scope that encloses
     * (or is) the touch's scope.
     */
    bool
    lockCovers(const SourceFile &file, const std::string &mutex,
               size_t offset) const
    {
        const auto &toks = file.tokens().tokens();
        const int touch_scope = file.scopes().innermostAt(offset);
        for (size_t i = 0; i < toks.size(); ++i) {
            if (toks[i].kind != TokKind::Identifier ||
                !isLockType(toks[i].text) ||
                toks[i].offset >= offset)
                continue;
            // Does the lock's declaration statement name the mutex?
            bool names_mutex = false;
            for (size_t j = i + 1;
                 j < toks.size() && toks[j].text != ";"; ++j) {
                if (toks[j].kind == TokKind::Identifier &&
                    toks[j].text == mutex) {
                    names_mutex = true;
                    break;
                }
            }
            if (!names_mutex)
                continue;
            const int lock_scope =
                file.scopes().innermostAt(toks[i].offset);
            if (lock_scope >= 0 && touch_scope >= 0 &&
                file.scopes().isAncestorOrSelf(lock_scope,
                                               touch_scope))
                return true;
        }
        return false;
    }
};

} // namespace

std::unique_ptr<Rule>
makeLockDisciplineRule()
{
    return std::make_unique<LockDisciplineRule>();
}

} // namespace analysis
} // namespace gpuscale
