/**
 * @file
 * Instrument-description rule: every instrument registered through
 * Registry::counter/gauge/histogram (and the sharded variants) must
 * carry a non-empty description.
 *
 * The description is what `gpuscale --metrics` tables, the Prometheus
 * exposition's "# HELP" lines, and docs/observability.md's metric-key
 * table show to operators; an instrument registered without one is a
 * bare number a dashboard cannot explain.  Call sites whose name or
 * description is computed at runtime are left alone — the rule only
 * judges what it can read.
 */

#include <string>

#include "analysis/rules.hh"
#include "base/logging.hh"

namespace gpuscale {
namespace analysis {

namespace {

class DescriptionRule : public Rule
{
  public:
    std::string name() const override { return "description"; }

    std::string
    description() const override
    {
        return "registered instruments carry a non-empty description";
    }

    void
    run(const SourceRepo &repo, const LintOptions &,
        Report &report) const override
    {
        for (const auto &file : repo.files)
            if (file.isCpp())
                checkRegistrations(file, report);
    }

  private:
    static bool
    isSpace(char c)
    {
        return c == ' ' || c == '\n' || c == '\t';
    }

    /** First non-whitespace offset at or after `p` in code(). */
    static size_t
    skipSpace(const std::string &code, size_t p)
    {
        while (p < code.size() && isSpace(code[p]))
            ++p;
        return p;
    }

    /**
     * Total text length of the literal at `lit` plus any adjacent
     * literals concatenated after it ("operations " "retried"), and
     * the offset just past the final closing quote.
     */
    static void
    concatenatedLiteral(const SourceFile &file,
                        const StringLiteral *lit, size_t &text_len,
                        size_t &end)
    {
        const std::string &code = file.code();
        text_len = 0;
        // Literal text keeps escapes unprocessed, so its size equals
        // the source span between the quotes.
        end = lit->offset + 1 + lit->text.size() + 1;
        text_len += lit->text.size();
        for (;;) {
            const size_t next = skipSpace(code, end);
            if (next >= code.size() || code[next] != '"')
                break;
            const StringLiteral *cont = file.literalAtOrAfter(next);
            if (!cont || cont->offset != next)
                break;
            text_len += cont->text.size();
            end = cont->offset + 1 + cont->text.size() + 1;
        }
    }

    void
    checkRegistrations(const SourceFile &file, Report &report) const
    {
        for (const auto &method :
             {std::string("counter"), std::string("gauge"),
              std::string("histogram"), std::string("shardedCounter"),
              std::string("shardedHistogram")})
        {
            for (size_t off : findTokens(file, method)) {
                const std::string &code = file.code();
                // Only method calls (".counter(") are registrations;
                // "Registry::counter(" is the definition itself.
                if (off == 0 || code[off - 1] != '.')
                    continue;
                const size_t after = off + method.size();
                if (after >= code.size() || code[after] != '(')
                    continue;
                const StringLiteral *name_lit =
                    file.literalAtOrAfter(after + 1);
                if (!name_lit ||
                    name_lit->offset != skipSpace(code, after + 1))
                {
                    continue; // Computed name: out of scope.
                }

                // Step past the (possibly concatenated) name literal
                // to the character deciding the call's shape.
                size_t name_len = 0, p = 0;
                concatenatedLiteral(file, name_lit, name_len, p);
                p = skipSpace(code, p);
                if (p >= code.size())
                    continue;

                if (code[p] == ')') {
                    emit(file, name_lit->line, Severity::Error,
                         strprintf("instrument \"%s\" is registered "
                                   "without a description",
                                   name_lit->text.c_str()),
                         report);
                    continue;
                }
                if (code[p] != ',')
                    continue; // Not a shape this rule understands.

                const size_t q = skipSpace(code, p + 1);
                if (q >= code.size() || code[q] != '"')
                    continue; // Computed description: accepted.
                const StringLiteral *desc_lit =
                    file.literalAtOrAfter(q);
                if (!desc_lit || desc_lit->offset != q)
                    continue;
                size_t desc_len = 0, desc_end = 0;
                concatenatedLiteral(file, desc_lit, desc_len,
                                    desc_end);
                if (desc_len == 0) {
                    emit(file, desc_lit->line, Severity::Error,
                         strprintf("instrument \"%s\" is registered "
                                   "with an empty description",
                                   name_lit->text.c_str()),
                         report);
                }
            }
        }
    }
};

} // namespace

std::unique_ptr<Rule>
makeDescriptionRule()
{
    return std::make_unique<DescriptionRule>();
}

} // namespace analysis
} // namespace gpuscale
