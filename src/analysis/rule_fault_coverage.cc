/**
 * @file
 * fault-coverage rule: the fault-injection harness (base/fault) and
 * the retry envelope (obs/retry) only prove resilience for I/O that
 * actually passes through them.  A raw fopen() or rename() added in
 * a hurry is invisible to `gpuscale-census --fault-profile` runs and
 * becomes the one code path that never survived a crash test.
 *
 * The rule walks every token stream for raw I/O operations — stdio
 * opens, fstream opens, rename/remove/unlink, POSIX ::write/::read,
 * socket-plane calls (socket/bind/listen/accept/connect and the
 * send/recv family, which back the gpuscaled service protocol), and
 * std::filesystem mutators — and requires each to appear inside
 * a function whose body (including nested lambdas) calls
 * faultPoint() or retryWithBackoff().  base/fault and obs/retry
 * themselves are exempt: they are the envelope.  Deliberate
 * exceptions (pure readers, best-effort telemetry) carry
 * `allow(fault-coverage)` with a reason.
 */

#include <set>
#include <string>

#include "analysis/rules.hh"
#include "base/logging.hh"

namespace gpuscale {
namespace analysis {

namespace {

bool
isEnvelopeFile(const std::string &path)
{
    return path == "src/base/fault.cc" || path == "src/base/fault.hh" ||
           path == "src/obs/retry.cc" || path == "src/obs/retry.hh";
}

/** Operation names that open, mutate, or destroy files when called. */
const std::set<std::string> &
ioCallNames()
{
    static const std::set<std::string> names = {
        "fopen", "freopen",
        "rename", "remove", "unlink",
        "create_directory", "create_directories", "remove_all",
        "resize_file", "copy_file",
        // Service plane: socket setup and per-connection I/O must sit
        // inside the fault/retry envelope so crash tests can reach
        // the accept/read/write/admit paths (docs/service.md).
        "socket", "bind", "listen", "accept", "connect",
        "recv", "send", "recvfrom", "sendto",
    };
    return names;
}

class FaultCoverageRule : public Rule
{
  public:
    std::string name() const override { return "fault-coverage"; }

    std::string
    description() const override
    {
        return "raw I/O outside base/fault and obs/retry must sit in "
               "a scope that calls faultPoint() or retryWithBackoff()";
    }

    void
    run(const SourceRepo &repo, const LintOptions &,
        Report &report) const override
    {
        for (const auto &file : repo.files) {
            if (!file.isCpp() || isEnvelopeFile(file.path()))
                continue;
            checkFile(file, report);
        }
    }

  private:
    void
    checkFile(const SourceFile &file, Report &report) const
    {
        const auto &ts = file.tokens();
        const auto &toks = ts.tokens();
        for (size_t i = 0; i < toks.size(); ++i) {
            const Token &t = toks[i];
            if (t.kind != TokKind::Identifier)
                continue;

            std::string what;
            if (ioCallNames().count(t.text) &&
                isFreeCall(toks, i)) {
                what = t.text + "()";
            } else if ((t.text == "ofstream" || t.text == "fstream" ||
                        t.text == "ifstream") &&
                       streamOpensInline(ts, i)) {
                what = "std::" + t.text + " open";
            } else if (t.text == "open" && isMemberCall(toks, i)) {
                what = ".open()";
            } else if ((t.text == "write" || t.text == "read") &&
                       isGlobalQualifiedCall(toks, i)) {
                what = "::" + t.text + "()";
            }
            if (what.empty())
                continue;

            if (scopeIsCovered(file, t.offset))
                continue;
            emit(file, t.line, Severity::Error,
                 strprintf("raw %s is outside the fault/retry "
                           "envelope; crash tests cannot reach it",
                           what.c_str()),
                 report,
                 "wrap the operation in retryWithBackoff() or add a "
                 "faultPoint(\"<site>\") probe to the enclosing "
                 "function; a deliberate exception needs "
                 "allow(fault-coverage) with a reason");
        }
    }

    /** identifier followed by '(' and not preceded by . or ->. */
    bool
    isFreeCall(const std::vector<Token> &toks, size_t i) const
    {
        if (i + 1 >= toks.size() || toks[i + 1].text != "(")
            return false;
        if (i >= 1 &&
            (toks[i - 1].text == "." || toks[i - 1].text == "->"))
            return false;
        // `Client::connect(` is a member definition or a class-scoped
        // wrapper call, never the raw free function — but std:: /
        // filesystem:: / fs:: qualifiers still name the real library
        // (std::rename, fs::remove_all).
        if (i >= 2 && toks[i - 1].text == "::" &&
            toks[i - 2].kind == TokKind::Identifier &&
            toks[i - 2].text != "std" && toks[i - 2].text != "fs" &&
            toks[i - 2].text != "filesystem")
            return false;
        return true;
    }

    bool
    isMemberCall(const std::vector<Token> &toks, size_t i) const
    {
        return i >= 1 && i + 1 < toks.size() &&
               toks[i + 1].text == "(" &&
               (toks[i - 1].text == "." || toks[i - 1].text == "->");
    }

    /** `::write(...)` with nothing (or a non-identifier) before the
     *  `::` — i.e. a global-namespace POSIX call, not obs::write. */
    bool
    isGlobalQualifiedCall(const std::vector<Token> &toks,
                          size_t i) const
    {
        if (i < 1 || toks[i - 1].text != "::")
            return false;
        if (i + 1 >= toks.size() || toks[i + 1].text != "(")
            return false;
        return i < 2 || toks[i - 2].kind != TokKind::Identifier;
    }

    /**
     * True when an ofstream/ifstream/fstream token at index i opens a
     * file right at construction: `ofstream os(path)`, `ofstream
     * os{path}`, or a temporary `ofstream(path)`.  A bare declaration
     * (`std::ofstream out;`) defers to a later .open(), which the
     * member-call check catches instead.
     */
    bool
    streamOpensInline(const TokenStream &ts, size_t i) const
    {
        const auto &toks = ts.tokens();
        size_t j = i + 1;
        if (j < toks.size() && toks[j].kind == TokKind::Identifier)
            ++j; // declared variable name
        if (j >= toks.size())
            return false;
        if (toks[j].text != "(" && toks[j].text != "{")
            return false;
        const size_t close = ts.match(j);
        // Non-empty argument list => a path is being opened.
        return close != TokenStream::npos && close > j + 1;
    }

    /**
     * The outermost function enclosing `offset` (so a lambda inside
     * a covered function counts as covered) contains a faultPoint or
     * retryWithBackoff call.
     */
    bool
    scopeIsCovered(const SourceFile &file, size_t offset) const
    {
        const int fn = file.scopes().outermostFunction(offset);
        if (fn < 0)
            return false;
        const Scope &s = file.scopes().scopes()[fn];
        const auto &ts = file.tokens();
        const auto &toks = ts.tokens();
        for (size_t i = ts.indexAtOrAfter(s.open_offset);
             i < toks.size() && toks[i].offset < s.close_offset; ++i) {
            if (toks[i].kind == TokKind::Identifier &&
                (toks[i].text == "faultPoint" ||
                 toks[i].text == "retryWithBackoff"))
                return true;
        }
        return false;
    }
};

} // namespace

std::unique_ptr<Rule>
makeFaultCoverageRule()
{
    return std::make_unique<FaultCoverageRule>();
}

} // namespace analysis
} // namespace gpuscale
