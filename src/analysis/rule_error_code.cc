/**
 * @file
 * Error-code rule: a default-constructed `std::error_code ec;` whose
 * value is never inspected turns every failure on that path into a
 * silent no-op.  The non-throwing std::filesystem overloads make this
 * easy to write by accident: the call "succeeds" and the error sits
 * unread in a local.  The repo convention is that such declarations
 * must either be checked (fatal_if(ec, ...), if (ec) ...) or carry an
 * explicit allow() with a reason for the fire-and-forget.
 *
 * This is a heuristic, not a dataflow analysis.  A declaration counts
 * as inspected if the name later appears (a) ahead of `.` (member
 * access like ec.message()), (b) behind `!` or beside ==/!=/<<,
 * (c) as the first argument of a conditional or assertion — if,
 * while, switch, assert, fatal_if, panic_if, or an EXPECT_/ASSERT_
 * test macro — or (d) in a return statement.  Any inspected use
 * anywhere later in the
 * file clears every earlier declaration of that name, so the rule errs
 * toward silence in files that reuse one name across scopes.
 */

#include <cctype>
#include <string>

#include "analysis/rules.hh"
#include "base/logging.hh"

namespace gpuscale {
namespace analysis {

namespace {

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

size_t
skipWs(const std::string &s, size_t i)
{
    while (i < s.size() &&
           std::isspace(static_cast<unsigned char>(s[i])))
        ++i;
    return i;
}

/** Index of the last non-whitespace character before i, or npos. */
size_t
prevNonWs(const std::string &s, size_t i)
{
    while (i > 0) {
        --i;
        if (!std::isspace(static_cast<unsigned char>(s[i])))
            return i;
    }
    return std::string::npos;
}

/** Identifier ending at s[end] (inclusive), walking back. */
std::string
identEndingAt(const std::string &s, size_t end)
{
    if (!identChar(s[end]))
        return "";
    size_t begin = end;
    while (begin > 0 && identChar(s[begin - 1]))
        --begin;
    return s.substr(begin, end - begin + 1);
}

/** True if the '(' at open belongs to a conditional or assertion. */
bool
inspectingCallee(const std::string &code, size_t open)
{
    const size_t end = prevNonWs(code, open);
    if (end == std::string::npos)
        return false;
    const std::string callee = identEndingAt(code, end);
    if (callee == "if" || callee == "while" || callee == "switch" ||
        callee == "assert" || callee == "fatal_if" ||
        callee == "panic_if")
        return true;
    return callee.rfind("EXPECT_", 0) == 0 ||
           callee.rfind("ASSERT_", 0) == 0;
}

/** True if the use of name at [pos, pos+len) reads its value. */
bool
inspectedUse(const std::string &code, size_t pos, size_t len)
{
    const size_t after = skipWs(code, pos + len);
    if (after < code.size()) {
        if (code[after] == '.')
            return true;
        if (code.compare(after, 2, "==") == 0 ||
            code.compare(after, 2, "!=") == 0)
            return true;
    }
    const size_t before = prevNonWs(code, pos);
    if (before == std::string::npos)
        return false;
    const char c = code[before];
    if (c == '!')
        return true;
    if (c == '=' && before > 0 &&
        (code[before - 1] == '=' || code[before - 1] == '!'))
        return true;
    if (c == '<' && before > 0 && code[before - 1] == '<')
        return true;
    if (c == '(')
        return inspectingCallee(code, before);
    return identEndingAt(code, before) == "return";
}

class ErrorCodeRule : public Rule
{
  public:
    std::string name() const override { return "error-code"; }

    std::string
    description() const override
    {
        return "a declared std::error_code must be inspected, not "
               "silently dropped";
    }

    void
    run(const SourceRepo &repo, const LintOptions &,
        Report &report) const override
    {
        static const std::string kType = "std::error_code";
        for (const auto &file : repo.files) {
            if (!file.isCpp())
                continue;
            const std::string &code = file.code();
            for (size_t off : findTokens(file, kType)) {
                // Match a bare declaration `std::error_code NAME ;`
                // (references, parameters, and initialized copies
                // are someone else's value and not this rule's
                // business).
                size_t j = off + kType.size();
                if (j >= code.size() ||
                    !std::isspace(static_cast<unsigned char>(code[j])))
                    continue;
                j = skipWs(code, j);
                const size_t name_begin = j;
                while (j < code.size() && identChar(code[j]))
                    ++j;
                if (j == name_begin)
                    continue;
                const std::string var =
                    code.substr(name_begin, j - name_begin);
                const size_t semi = skipWs(code, j);
                if (semi >= code.size() || code[semi] != ';')
                    continue;

                if (!everInspected(code, var, semi))
                    emit(file, file.lineOf(off), Severity::Error,
                         strprintf(
                             "std::error_code '%s' is declared but "
                             "never inspected; a swallowed error is a "
                             "silent failure -- check it "
                             "(fatal_if(%s, ...)) or allow() the "
                             "fire-and-forget with a reason",
                             var.c_str(), var.c_str()),
                         report);
            }
        }
    }

  private:
    /** Any value-reading use of var after the declaration's ';'. */
    bool
    everInspected(const std::string &code, const std::string &var,
                  size_t from) const
    {
        size_t pos = from;
        while ((pos = code.find(var, pos + 1)) != std::string::npos) {
            const bool boundary =
                !identChar(code[pos - 1]) &&
                (pos + var.size() >= code.size() ||
                 !identChar(code[pos + var.size()]));
            if (boundary && inspectedUse(code, pos, var.size()))
                return true;
        }
        return false;
    }
};

} // namespace

std::unique_ptr<Rule>
makeErrorCodeRule()
{
    return std::make_unique<ErrorCodeRule>();
}

} // namespace analysis
} // namespace gpuscale
