/**
 * @file
 * Source model for gpuscale-lint.
 *
 * A SourceFile owns two synchronized views of one translation unit:
 *  - raw():  the bytes on disk, untouched.
 *  - code(): the same bytes with comments and the *contents* of
 *            string/character literals blanked to spaces (newlines
 *            preserved), so rules can match tokens without tripping
 *            over prose or quoted examples.  The literal delimiters
 *            themselves survive, and every literal's text is kept in
 *            a side table for rules that inspect names.
 *
 * Offsets are shared between the views, so a match found in code()
 * can be mapped to a line number or to the nearest string literal.
 *
 * Suppressions: a comment of the form
 *
 *     // gpuscale-lint: allow(rule-a, rule-b): why this is fine
 *
 * disables the named rules on the comment's own line and on the line
 * after it (covering both trailing and standalone placement).
 */

#ifndef GPUSCALE_ANALYSIS_SOURCE_REPO_HH
#define GPUSCALE_ANALYSIS_SOURCE_REPO_HH

#include <map>
#include <set>
#include <string>
#include <vector>

namespace gpuscale {
namespace analysis {

/** One string literal found while scanning; text excludes quotes. */
struct StringLiteral {
    size_t offset;    ///< offset of the opening quote in code()/raw()
    int line;         ///< 1-based line of the opening quote
    std::string text; ///< contents, escapes left unprocessed
};

/** One source file with its comment-stripped companion view. */
class SourceFile
{
  public:
    /**
     * @param rel_path repo-relative path with '/' separators
     *                 (e.g. "src/base/csv.cc").
     * @param raw      full file contents.
     */
    SourceFile(std::string rel_path, std::string raw);

    const std::string &path() const { return path_; }
    const std::string &raw() const { return raw_; }
    const std::string &code() const { return code_; }

    /** 1-based line containing the given offset. */
    int lineOf(size_t offset) const;

    /** All string literals in file order. */
    const std::vector<StringLiteral> &literals() const
    {
        return literals_;
    }

    /**
     * The first string literal whose opening quote sits at or after
     * the given offset, or nullptr if none.
     */
    const StringLiteral *literalAtOrAfter(size_t offset) const;

    /** True if a gpuscale-lint: allow(...) covers rule on this line. */
    bool suppressed(int line, const std::string &rule) const;

    /**
     * Layer directory under src/ ("base", "gpu", ...; "gpu" also for
     * src/gpu/timing/...), or "" if the file is not under src/.
     */
    std::string layer() const;

    bool isHeader() const;

  private:
    void scan();
    void recordSuppression(const std::string &comment, int first_line,
                           int last_line);

    /** Pending run of consecutive // lines, merged into one block. */
    struct PendingComment {
        bool active = false;
        int first_line = 0;
        int last_line = 0;
        std::string text;
    };

    void appendLineComment(PendingComment &pending,
                           const std::string &text, int line);
    void flushLineComments(PendingComment &pending);

    std::string path_;
    std::string raw_;
    std::string code_;
    std::vector<size_t> line_offsets_;
    std::vector<StringLiteral> literals_;
    /** line -> rules allowed on that line. */
    std::map<int, std::set<std::string>> suppressions_;
};

/** Every scanned file of one repository checkout. */
struct SourceRepo {
    std::string root;              ///< absolute repo root
    std::vector<SourceFile> files; ///< sorted by path

    /** Find by repo-relative path; nullptr if absent. */
    const SourceFile *find(const std::string &rel_path) const;
};

/**
 * Load every .cc/.hh file under root/src into a SourceRepo.
 *
 * @param root repository root directory (must contain src/).
 */
SourceRepo loadRepo(const std::string &root);

} // namespace analysis
} // namespace gpuscale

#endif // GPUSCALE_ANALYSIS_SOURCE_REPO_HH
