/**
 * @file
 * Source model for gpuscale-lint.
 *
 * A SourceFile owns synchronized views of one translation unit:
 *  - raw():    the bytes on disk, untouched.
 *  - code():   the same bytes with comments and the *contents* of
 *              string/character literals blanked to spaces (newlines
 *              preserved), so rules can match tokens without tripping
 *              over prose or quoted examples.  The literal delimiters
 *              themselves survive, and every literal's text is kept
 *              in a side table for rules that inspect names.
 *  - tokens(): the code() view lexed into a TokenStream, and
 *  - scopes(): its brace pairs classified into a ScopeTree
 *              (tokens.hh) — the shared engine scope-sensitive rules
 *              build on.
 *
 * Offsets are shared between the views, so a match found in code()
 * can be mapped to a line number, a token, a scope, or the nearest
 * string literal.
 *
 * Two file kinds are scanned: C++ sources (.cc/.hh) get the full
 * treatment; CMake lists (fp-determinism checks compiler flags) get
 * `#` comments blanked and no token stream.
 *
 * Comment markers:
 *
 *     // gpuscale-lint: allow(rule-a, rule-b): why this is fine
 *
 * disables the named rules on the comment's own line and on the line
 * after it (covering both trailing and standalone placement).  Every
 * marker — including ones that fail to parse — is kept in
 * suppressionNotes() so the suppression rule can flag typos.
 *
 *     // guarded_by(mutex_name)
 *
 * attaches to the field declared on the same line (or the line
 * below, for standalone comments) and is enforced by the
 * lock-discipline rule: every touch of that field must sit in a
 * scope that constructed a lock on the named mutex.
 */

#ifndef GPUSCALE_ANALYSIS_SOURCE_REPO_HH
#define GPUSCALE_ANALYSIS_SOURCE_REPO_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/tokens.hh"

namespace gpuscale {
namespace analysis {

/** One string literal found while scanning; text excludes quotes. */
struct StringLiteral {
    size_t offset;    ///< offset of the opening quote in code()/raw()
    int line;         ///< 1-based line of the opening quote
    std::string text; ///< contents, escapes left unprocessed
};

/** One gpuscale-lint marker comment, parseable or not. */
struct SuppressionNote {
    int line = 0; ///< first line of the comment block
    std::vector<std::string> rules;
    bool malformed = false; ///< marker present but unparseable
};

/** One // guarded_by(mutex) annotation, resolved to its field. */
struct GuardAnnotation {
    int line = 0;      ///< line the annotation binds to
    std::string field; ///< annotated field name ("" if unresolved)
    std::string mutex; ///< the guarding mutex's identifier
};

/** One source file with its companion views. */
class SourceFile
{
  public:
    enum class Kind {
        Cpp,   ///< .cc / .hh translation unit
        CMake, ///< CMakeLists.txt / *.cmake
    };

    /**
     * @param rel_path repo-relative path with '/' separators
     *                 (e.g. "src/base/csv.cc").
     * @param raw      full file contents.
     */
    SourceFile(std::string rel_path, std::string raw);

    /** Deferred-scan constructor; loadRepo() scans in parallel. */
    struct DeferScan {};
    SourceFile(std::string rel_path, std::string raw, DeferScan);

    /** Build the code view, literals, tokens, and scopes (idempotent,
     *  not concurrency-safe on the same instance). */
    void ensureScanned();

    const std::string &path() const { return path_; }
    const std::string &raw() const { return raw_; }
    const std::string &code() const { return code_; }

    Kind kind() const { return kind_; }
    bool isCpp() const { return kind_ == Kind::Cpp; }

    /** 1-based line containing the given offset. */
    int lineOf(size_t offset) const;

    /** All string literals in file order. */
    const std::vector<StringLiteral> &literals() const
    {
        return literals_;
    }

    /**
     * The first string literal whose opening quote sits at or after
     * the given offset, or nullptr if none.
     */
    const StringLiteral *literalAtOrAfter(size_t offset) const;

    /** True if a gpuscale-lint: allow(...) covers rule on this line. */
    bool suppressed(int line, const std::string &rule) const;

    /** Every marker comment, for the suppression rule. */
    const std::vector<SuppressionNote> &suppressionNotes() const
    {
        return notes_;
    }

    /** Every guarded_by annotation, for the lock-discipline rule. */
    const std::vector<GuardAnnotation> &guardAnnotations() const
    {
        return guards_;
    }

    /** Lexed code() view; empty for CMake files. */
    const TokenStream &tokens() const { return tokens_; }

    /** Brace-scope structure; empty for CMake files. */
    const ScopeTree &scopes() const { return scopes_; }

    /**
     * Layer directory under src/ ("base", "gpu", ...; "gpu" also for
     * src/gpu/timing/...), or "" if the file is not under src/.
     */
    std::string layer() const;

    bool isHeader() const;

  private:
    void scan();
    void scanCMake();
    void recordSuppression(const std::string &comment, int first_line,
                           int last_line);
    void recordGuards(const std::string &comment, int first_line,
                      int last_line);
    void resolveGuardFields();

    /** Pending run of consecutive // lines, merged into one block. */
    struct PendingComment {
        bool active = false;
        int first_line = 0;
        int last_line = 0;
        std::string text;
    };

    void appendLineComment(PendingComment &pending,
                           const std::string &text, int line);
    void flushLineComments(PendingComment &pending);

    std::string path_;
    std::string raw_;
    std::string code_;
    Kind kind_ = Kind::Cpp;
    bool scanned_ = false;
    std::vector<size_t> line_offsets_;
    std::vector<StringLiteral> literals_;
    std::vector<SuppressionNote> notes_;
    std::vector<GuardAnnotation> guards_;
    /** (first_line, last_line) of each guard's comment block. */
    std::vector<std::pair<int, int>> guard_spans_;
    TokenStream tokens_;
    ScopeTree scopes_;
    /** line -> rules allowed on that line. */
    std::map<int, std::set<std::string>> suppressions_;
};

/** Every scanned file of one repository checkout. */
struct SourceRepo {
    std::string root;              ///< absolute repo root
    std::vector<SourceFile> files; ///< sorted by path

    /** Find by repo-relative path; nullptr if absent. */
    const SourceFile *find(const std::string &rel_path) const;
};

/**
 * Load every .cc/.hh file under root/src — plus the checkout's
 * CMake lists (root CMakeLists.txt and any under src/, tests/,
 * bench/) for the flag-checking rules — into a SourceRepo.  Files
 * are read serially and scanned in parallel through the harness
 * pool.
 *
 * @param root repository root directory (must contain src/).
 */
SourceRepo loadRepo(const std::string &root);

} // namespace analysis
} // namespace gpuscale

#endif // GPUSCALE_ANALYSIS_SOURCE_REPO_HH
