/**
 * @file
 * Layering rule: quoted includes must flow downward through the
 * layer order base -> obs -> gpu -> workloads -> scaling -> harness
 * -> service -> analysis -> tools, and the header include graph must be
 * acyclic.  Local includes ("registry.hh") resolve to the includer's
 * own directory and are always same-layer; path includes resolve
 * against src/ (or the includer's directory for nested dirs like
 * gpu/timing/).
 */

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/rules.hh"
#include "base/logging.hh"

namespace gpuscale {
namespace analysis {

namespace {

/** Lower layers may not include higher ones. */
const std::map<std::string, int> &
layerRanks()
{
    static const std::map<std::string, int> ranks = {
        {"base", 0},     {"obs", 1},     {"gpu", 2},
        {"workloads", 3}, {"scaling", 4}, {"harness", 5},
        {"service", 6},  {"analysis", 7}, {"tools", 8},
    };
    return ranks;
}

/** One parsed #include "..." directive. */
struct Include {
    size_t offset;    ///< offset of the '#' in code()
    int line;
    std::string path; ///< the quoted string, verbatim
};

std::vector<Include>
parseIncludes(const SourceFile &file)
{
    std::vector<Include> out;
    const std::string &code = file.code();
    size_t pos = 0;
    while ((pos = code.find('#', pos)) != std::string::npos) {
        const size_t hash = pos;
        ++pos;
        size_t p = hash + 1;
        while (p < code.size() && (code[p] == ' ' || code[p] == '\t'))
            ++p;
        static const std::string kWord = "include";
        if (code.compare(p, kWord.size(), kWord) != 0)
            continue;
        p += kWord.size();
        while (p < code.size() && (code[p] == ' ' || code[p] == '\t'))
            ++p;
        if (p >= code.size() || code[p] != '"')
            continue;
        const StringLiteral *lit = file.literalAtOrAfter(p);
        if (!lit || lit->offset != p)
            continue;
        out.push_back({hash, file.lineOf(hash), lit->text});
    }
    return out;
}

/** Directory part of a repo-relative path ("src/base"). */
std::string
dirOf(const std::string &path)
{
    const size_t slash = path.rfind('/');
    return slash == std::string::npos ? "" : path.substr(0, slash);
}

class LayeringRule : public Rule
{
  public:
    std::string name() const override { return "layering"; }

    std::string
    description() const override
    {
        return "includes respect the base->...->tools layer order "
               "and the header graph is acyclic";
    }

    void
    run(const SourceRepo &repo, const LintOptions &,
        Report &report) const override
    {
        // path -> included header paths, for cycle detection.
        std::map<std::string, std::vector<std::string>> graph;

        for (const auto &file : repo.files) {
            if (!file.isCpp())
                continue;
            const std::string layer = file.layer();
            if (layer.empty())
                continue;
            const auto layer_it = layerRanks().find(layer);
            if (layer_it == layerRanks().end()) {
                emit(file, 1, Severity::Error,
                     strprintf("file lives in unknown layer '%s'; "
                               "add it to the layering rule's order",
                               layer.c_str()),
                     report);
                continue;
            }

            for (const auto &inc : parseIncludes(file)) {
                checkInclude(repo, file, layer_it->second, inc, graph,
                             report);
            }
        }

        reportCycles(repo, graph, report);
    }

  private:
    void
    checkInclude(const SourceRepo &repo, const SourceFile &file,
                 int rank, const Include &inc,
                 std::map<std::string, std::vector<std::string>> &graph,
                 Report &report) const
    {
        // Local include: same directory, same layer by construction.
        const std::string local = dirOf(file.path()) + "/" + inc.path;
        if (inc.path.find('/') == std::string::npos ||
            repo.find(local)) {
            if (repo.find(local))
                graph[file.path()].push_back(local);
            else
                emit(file, inc.line, Severity::Error,
                     strprintf("local include \"%s\" not found next "
                               "to %s",
                               inc.path.c_str(), file.path().c_str()),
                     report);
            return;
        }

        // Layer-qualified include: "layer/rest.hh" rooted at src/.
        const std::string top =
            inc.path.substr(0, inc.path.find('/'));
        const auto it = layerRanks().find(top);
        if (it == layerRanks().end()) {
            emit(file, inc.line, Severity::Error,
                 strprintf("include \"%s\" is neither a local header "
                           "nor rooted at a known layer",
                           inc.path.c_str()),
                 report);
            return;
        }
        if (it->second > rank) {
            emit(file, inc.line, Severity::Error,
                 strprintf("layer '%s' must not include '%s' "
                           "(\"%s\"): the layer order is base -> obs "
                           "-> gpu -> workloads -> scaling -> "
                           "harness -> service -> analysis -> tools",
                           file.layer().c_str(), top.c_str(),
                           inc.path.c_str()),
                 report);
        }
        const std::string resolved = "src/" + inc.path;
        if (repo.find(resolved))
            graph[file.path()].push_back(resolved);
        else
            emit(file, inc.line, Severity::Error,
                 strprintf("include \"%s\" does not resolve to a "
                           "file under src/",
                           inc.path.c_str()),
                 report);
    }

    void
    reportCycles(const SourceRepo &repo,
                 const std::map<std::string,
                                std::vector<std::string>> &graph,
                 Report &report) const
    {
        // Iterative three-color DFS over headers only (a .cc cannot
        // be included, so it cannot close a cycle).
        std::map<std::string, int> color; // 0 white 1 grey 2 black
        std::vector<std::string> stack;
        std::set<std::string> reported;

        for (const auto &[node, edges] : graph) {
            if (color[node] == 0)
                dfs(repo, node, graph, color, stack, reported,
                    report);
        }
    }

    void
    dfs(const SourceRepo &repo, const std::string &node,
        const std::map<std::string, std::vector<std::string>> &graph,
        std::map<std::string, int> &color,
        std::vector<std::string> &stack,
        std::set<std::string> &reported, Report &report) const
    {
        color[node] = 1;
        stack.push_back(node);
        const auto it = graph.find(node);
        if (it != graph.end()) {
            for (const auto &next : it->second) {
                if (!repo.find(next) ||
                    !repo.find(next)->isHeader())
                    continue;
                if (color[next] == 1) {
                    reportCycle(repo, stack, next, reported, report);
                } else if (color[next] == 0) {
                    dfs(repo, next, graph, color, stack, reported,
                        report);
                }
            }
        }
        stack.pop_back();
        color[node] = 2;
    }

    void
    reportCycle(const SourceRepo &repo,
                const std::vector<std::string> &stack,
                const std::string &entry,
                std::set<std::string> &reported,
                Report &report) const
    {
        std::vector<std::string> cycle;
        bool in_cycle = false;
        for (const auto &n : stack) {
            if (n == entry)
                in_cycle = true;
            if (in_cycle)
                cycle.push_back(n);
        }
        // Canonical key so the same loop is reported once however
        // the DFS enters it.
        std::vector<std::string> key(cycle);
        std::sort(key.begin(), key.end());
        std::string joined;
        for (const auto &n : key)
            joined += n + "|";
        if (!reported.insert(joined).second)
            return;

        std::string path;
        for (const auto &n : cycle)
            path += n + " -> ";
        path += entry;
        const SourceFile *head = repo.find(entry);
        emit(*head, 1, Severity::Error,
             strprintf("header include cycle: %s", path.c_str()),
             report);
    }
};

} // namespace

std::unique_ptr<Rule>
makeLayeringRule()
{
    return std::make_unique<LayeringRule>();
}

} // namespace analysis
} // namespace gpuscale
