/**
 * @file
 * Census-conformance rule: the paper's workload census (267 kernels
 * from 97 programs — Majumdar et al., IISWC 2015, Table 1) is
 * re-derived *statically* from the suite sources, without running
 * the registry.  A `Program(...)` construction registers a program
 * and each chained `.add(...)` registers one kernel, so counting
 * those tokens across src/workloads/suite_*.cc gives the ground
 * truth the binary will exhibit.
 *
 * Two layers of checking:
 *  - each suite file's doc header advertises "<N> programs,
 *    <M> kernels" and must match that file's actual registrations;
 *  - the totals across all suite files must match the paper.
 */

#include <cctype>
#include <string>

#include "analysis/rules.hh"
#include "base/logging.hh"

namespace gpuscale {
namespace analysis {

namespace {

bool
isSuiteFile(const std::string &path)
{
    return path.rfind("src/workloads/suite_", 0) == 0 &&
           path.size() >= 3 &&
           path.compare(path.size() - 3, 3, ".cc") == 0;
}

/** Registration counts for one suite translation unit. */
struct SuiteCounts {
    size_t programs = 0;
    size_t kernels = 0;
};

SuiteCounts
countRegistrations(const SourceFile &file)
{
    SuiteCounts c;
    for (size_t off : findTokens(file, "Program")) {
        const size_t after = off + std::string("Program").size();
        if (after < file.code().size() && file.code()[after] == '(')
            ++c.programs;
    }
    const std::string &code = file.code();
    size_t pos = 0;
    while ((pos = code.find(".add(", pos)) != std::string::npos) {
        ++c.kernels;
        pos += 1;
    }
    return c;
}

/**
 * Parse "<N> programs, <M> kernels" from the file's doc header;
 * returns false if the header makes no such claim.
 */
bool
parseHeaderClaim(const SourceFile &file, SuiteCounts &claim)
{
    const std::string &raw = file.raw();
    static const std::string kProg = " programs, ";
    const size_t p = raw.find(kProg);
    if (p == std::string::npos)
        return false;

    // Digits immediately before " programs, ".
    size_t ds = p;
    while (ds > 0 &&
           std::isdigit(static_cast<unsigned char>(raw[ds - 1])))
        --ds;
    if (ds == p)
        return false;
    claim.programs = std::stoul(raw.substr(ds, p - ds));

    // Digits immediately after ", ", before " kernels".
    size_t ke = p + kProg.size();
    size_t ks = ke;
    while (ke < raw.size() &&
           std::isdigit(static_cast<unsigned char>(raw[ke])))
        ++ke;
    if (ke == ks || raw.compare(ke, 8, " kernels") != 0)
        return false;
    claim.kernels = std::stoul(raw.substr(ks, ke - ks));
    return true;
}

class CensusRule : public Rule
{
  public:
    std::string name() const override { return "census"; }

    std::string
    description() const override
    {
        return "suite sources register exactly the paper's 267 "
               "kernels across 97 programs";
    }

    void
    run(const SourceRepo &repo, const LintOptions &opts,
        Report &report) const override
    {
        SuiteCounts total;
        size_t suite_files = 0;
        const SourceFile *anchor = nullptr;

        for (const auto &file : repo.files) {
            if (!isSuiteFile(file.path()))
                continue;
            ++suite_files;
            anchor = &file;

            const SuiteCounts c = countRegistrations(file);
            total.programs += c.programs;
            total.kernels += c.kernels;

            if (c.programs == 0) {
                emit(file, 1, Severity::Error,
                     "suite file registers no programs",
                     report);
            }

            SuiteCounts claim;
            if (!parseHeaderClaim(file, claim)) {
                emit(file, 1, Severity::Error,
                     "suite header must advertise \"<N> programs, "
                     "<M> kernels\" so readers can trust the file "
                     "without counting",
                     report);
            } else if (claim.programs != c.programs ||
                       claim.kernels != c.kernels) {
                emit(file, 1, Severity::Error,
                     strprintf("suite header claims %zu programs / "
                               "%zu kernels but the file registers "
                               "%zu / %zu",
                               claim.programs, claim.kernels,
                               c.programs, c.kernels),
                     report);
            }
        }

        if (suite_files == 0) {
            report.add(Finding{name(), Severity::Error, "", 0,
                               "no src/workloads/suite_*.cc files "
                               "found; the census cannot be "
                               "derived"});
            return;
        }

        if (total.kernels != opts.census.kernels ||
            total.programs != opts.census.programs) {
            emit(*anchor, 1, Severity::Error,
                 strprintf("census drift: suite sources register "
                           "%zu kernels across %zu programs, but "
                           "the paper requires %zu kernels / %zu "
                           "programs",
                           total.kernels, total.programs,
                           opts.census.kernels,
                           opts.census.programs),
                 report);
        }
    }
};

} // namespace

std::unique_ptr<Rule>
makeCensusRule()
{
    return std::make_unique<CensusRule>();
}

} // namespace analysis
} // namespace gpuscale
