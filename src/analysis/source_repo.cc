#include "source_repo.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "base/logging.hh"

namespace gpuscale {
namespace analysis {

SourceFile::SourceFile(std::string rel_path, std::string raw)
    : path_(std::move(rel_path)), raw_(std::move(raw))
{
    scan();
}

namespace {

/** True for characters that may appear in a lint rule name. */
bool
isRuleChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
           c == '_';
}

} // namespace

void
SourceFile::recordSuppression(const std::string &comment,
                              int first_line, int last_line)
{
    static const std::string kMarker = "gpuscale-lint: allow(";
    size_t pos = comment.find(kMarker);
    if (pos == std::string::npos)
        return;
    pos += kMarker.size();
    const size_t close = comment.find(')', pos);
    if (close == std::string::npos)
        return;

    std::set<std::string> rules;
    std::string cur;
    for (size_t i = pos; i <= close; ++i) {
        const char c = comment[i];
        if (i < close && isRuleChar(c)) {
            cur += c;
        } else if (!cur.empty()) {
            rules.insert(cur);
            cur.clear();
        }
    }
    // The comment's own lines plus the one after it, so the marker
    // works both trailing a statement and on its own line above one.
    for (int line = first_line; line <= last_line + 1; ++line)
        suppressions_[line].insert(rules.begin(), rules.end());
}

void
SourceFile::appendLineComment(PendingComment &pending,
                              const std::string &text, int line)
{
    // Consecutive // lines form one logical block, so an allow()
    // marker inside a wrapped comment still covers the statement
    // right below the block.
    if (pending.active && line == pending.last_line + 1) {
        pending.text += '\n';
        pending.text += text;
        pending.last_line = line;
        return;
    }
    flushLineComments(pending);
    pending = {true, line, line, text};
}

void
SourceFile::flushLineComments(PendingComment &pending)
{
    if (!pending.active)
        return;
    recordSuppression(pending.text, pending.first_line,
                      pending.last_line);
    pending.active = false;
}

void
SourceFile::scan()
{
    enum class State {
        Normal,
        LineComment,
        BlockComment,
        String,
        Char,
        RawString,
    };

    code_.assign(raw_.size(), ' ');
    line_offsets_.push_back(0);

    State state = State::Normal;
    int line = 1;
    int comment_start_line = 1;
    std::string comment_text;
    PendingComment pending;
    std::string literal_text;
    std::string raw_delim; // raw string closing delimiter: )delim"
    size_t literal_offset = 0;
    int literal_line = 1;

    const size_t n = raw_.size();
    for (size_t i = 0; i < n; ++i) {
        const char c = raw_[i];
        const char next = i + 1 < n ? raw_[i + 1] : '\0';
        if (c == '\n') {
            code_[i] = '\n';
            ++line;
            line_offsets_.push_back(i + 1);
        }

        switch (state) {
          case State::Normal:
            if (c == '/' && next == '/') {
                state = State::LineComment;
                comment_start_line = line;
                comment_text.clear();
            } else if (c == '/' && next == '*') {
                state = State::BlockComment;
                comment_start_line = line;
                comment_text.clear();
                ++i; // consume '*' so "/*/" is not a full comment
            } else if (c == '"') {
                // R"delim( ... )delim" — check for a raw prefix.
                if (i > 0 && raw_[i - 1] == 'R') {
                    size_t p = i + 1;
                    std::string delim;
                    while (p < n && raw_[p] != '(' &&
                           delim.size() < 16) {
                        delim += raw_[p];
                        ++p;
                    }
                    if (p < n && raw_[p] == '(') {
                        state = State::RawString;
                        raw_delim = ")" + delim + "\"";
                        literal_offset = i;
                        literal_line = line;
                        literal_text.clear();
                        code_[i] = '"';
                        // Skip the delimiter and '('.
                        i = p;
                        break;
                    }
                }
                state = State::String;
                literal_offset = i;
                literal_line = line;
                literal_text.clear();
                code_[i] = '"';
            } else if (c == '\'') {
                state = State::Char;
                code_[i] = '\'';
            } else if (c != '\n') {
                code_[i] = c;
            }
            break;

          case State::LineComment:
            if (c == '\n') {
                appendLineComment(pending, comment_text,
                                  comment_start_line);
                state = State::Normal;
            } else {
                comment_text += c;
            }
            break;

          case State::BlockComment:
            if (c == '*' && next == '/') {
                recordSuppression(comment_text, comment_start_line,
                                  line);
                state = State::Normal;
                ++i;
            } else {
                comment_text += c;
            }
            break;

          case State::String:
            if (c == '\\' && i + 1 < n) {
                literal_text += c;
                literal_text += next;
                ++i;
                if (next == '\n') {
                    ++line;
                    line_offsets_.push_back(i + 1);
                    code_[i] = '\n';
                }
            } else if (c == '"') {
                code_[i] = '"';
                literals_.push_back(
                    {literal_offset, literal_line, literal_text});
                state = State::Normal;
            } else if (c != '\n') {
                literal_text += c;
            }
            break;

          case State::Char:
            if (c == '\\' && i + 1 < n) {
                ++i;
            } else if (c == '\'') {
                code_[i] = '\'';
                state = State::Normal;
            }
            break;

          case State::RawString:
            if (c == ')' && raw_.compare(i, raw_delim.size(),
                                         raw_delim) == 0) {
                i += raw_delim.size() - 1;
                code_[i] = '"';
                literals_.push_back(
                    {literal_offset, literal_line, literal_text});
                state = State::Normal;
            } else if (c != '\n') {
                literal_text += c;
            }
            break;
        }
    }
    if (state == State::LineComment)
        appendLineComment(pending, comment_text, comment_start_line);
    flushLineComments(pending);
}

int
SourceFile::lineOf(size_t offset) const
{
    const auto it = std::upper_bound(line_offsets_.begin(),
                                     line_offsets_.end(), offset);
    return static_cast<int>(it - line_offsets_.begin());
}

const StringLiteral *
SourceFile::literalAtOrAfter(size_t offset) const
{
    for (const auto &lit : literals_) {
        if (lit.offset >= offset)
            return &lit;
    }
    return nullptr;
}

bool
SourceFile::suppressed(int line, const std::string &rule) const
{
    const auto it = suppressions_.find(line);
    return it != suppressions_.end() && it->second.count(rule) > 0;
}

std::string
SourceFile::layer() const
{
    static const std::string kPrefix = "src/";
    if (path_.rfind(kPrefix, 0) != 0)
        return "";
    const size_t start = kPrefix.size();
    const size_t slash = path_.find('/', start);
    if (slash == std::string::npos)
        return "";
    return path_.substr(start, slash - start);
}

bool
SourceFile::isHeader() const
{
    return path_.size() >= 3 &&
           path_.compare(path_.size() - 3, 3, ".hh") == 0;
}

const SourceFile *
SourceRepo::find(const std::string &rel_path) const
{
    for (const auto &f : files) {
        if (f.path() == rel_path)
            return &f;
    }
    return nullptr;
}

SourceRepo
loadRepo(const std::string &root)
{
    namespace fs = std::filesystem;

    SourceRepo repo;
    repo.root = root;

    const fs::path src = fs::path(root) / "src";
    fatal_if(!fs::is_directory(src),
             "gpuscale-lint: no src/ directory under %s",
             root.c_str());

    std::vector<fs::path> paths;
    for (const auto &entry : fs::recursive_directory_iterator(src)) {
        if (!entry.is_regular_file())
            continue;
        const std::string ext = entry.path().extension().string();
        if (ext == ".cc" || ext == ".hh")
            paths.push_back(entry.path());
    }
    std::sort(paths.begin(), paths.end());

    for (const auto &p : paths) {
        std::ifstream is(p);
        fatal_if(!is, "gpuscale-lint: cannot read %s",
                 p.string().c_str());
        std::stringstream buffer;
        buffer << is.rdbuf();
        const std::string rel =
            fs::relative(p, root).generic_string();
        repo.files.emplace_back(rel, buffer.str());
    }
    return repo;
}

} // namespace analysis
} // namespace gpuscale
