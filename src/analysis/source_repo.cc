#include "source_repo.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "base/logging.hh"
#include "harness/parallel.hh"

namespace gpuscale {
namespace analysis {

namespace {

bool
isCMakePath(const std::string &path)
{
    const auto ends_with = [&](const char *suffix) {
        const size_t n = std::char_traits<char>::length(suffix);
        return path.size() >= n &&
               path.compare(path.size() - n, n, suffix) == 0;
    };
    return ends_with("CMakeLists.txt") || ends_with(".cmake");
}

} // namespace

SourceFile::SourceFile(std::string rel_path, std::string raw)
    : path_(std::move(rel_path)), raw_(std::move(raw))
{
    kind_ = isCMakePath(path_) ? Kind::CMake : Kind::Cpp;
    ensureScanned();
}

SourceFile::SourceFile(std::string rel_path, std::string raw,
                       DeferScan)
    : path_(std::move(rel_path)), raw_(std::move(raw))
{
    kind_ = isCMakePath(path_) ? Kind::CMake : Kind::Cpp;
}

void
SourceFile::ensureScanned()
{
    if (scanned_)
        return;
    scanned_ = true;
    if (kind_ == Kind::CMake)
        scanCMake();
    else
        scan();
}

namespace {

/** True for characters that may appear in a lint rule name. */
bool
isRuleChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
           c == '_';
}

bool
isIdentCh(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * First occurrence of marker that starts a comment line (only
 * whitespace before it since the previous newline), or npos.  Keeps
 * prose that merely *mentions* a marker — docs, rule messages — from
 * being parsed as one.
 */
size_t
anchoredFind(const std::string &text, const std::string &marker)
{
    size_t pos = 0;
    while ((pos = text.find(marker, pos)) != std::string::npos) {
        size_t bol = text.rfind('\n', pos);
        bol = bol == std::string::npos ? 0 : bol + 1;
        // whitespace, the comment's own slashes, whitespace — then
        // the marker must start.
        size_t i = bol;
        while (i < pos && (text[i] == ' ' || text[i] == '\t'))
            ++i;
        while (i < pos && text[i] == '/')
            ++i;
        while (i < pos && (text[i] == ' ' || text[i] == '\t'))
            ++i;
        if (i == pos)
            return pos;
        ++pos;
    }
    return std::string::npos;
}

} // namespace

void
SourceFile::recordSuppression(const std::string &comment,
                              int first_line, int last_line)
{
    static const std::string kTag = "gpuscale-lint:";
    static const std::string kMarker = "gpuscale-lint: allow(";
    const size_t tag = anchoredFind(comment, kTag);
    if (tag == std::string::npos)
        return;

    SuppressionNote note;
    note.line = first_line;

    size_t pos =
        comment.compare(tag, kMarker.size(), kMarker) == 0
            ? tag
            : std::string::npos;
    const size_t close = pos == std::string::npos
                             ? std::string::npos
                             : comment.find(')', pos + kMarker.size());
    if (pos == std::string::npos || close == std::string::npos) {
        note.malformed = true;
        notes_.push_back(std::move(note));
        return;
    }
    pos += kMarker.size();

    std::set<std::string> rules;
    std::string cur;
    for (size_t i = pos; i <= close; ++i) {
        const char c = comment[i];
        if (i < close && isRuleChar(c)) {
            cur += c;
        } else if (!cur.empty()) {
            rules.insert(cur);
            note.rules.push_back(cur);
            cur.clear();
        }
    }
    if (rules.empty())
        note.malformed = true;
    notes_.push_back(std::move(note));

    // The comment's own lines plus the one after it, so the marker
    // works both trailing a statement and on its own line above one.
    for (int line = first_line; line <= last_line + 1; ++line)
        suppressions_[line].insert(rules.begin(), rules.end());
}

void
SourceFile::recordGuards(const std::string &comment, int first_line,
                         int last_line)
{
    static const std::string kMarker = "guarded_by(";
    size_t pos = anchoredFind(comment, kMarker);
    if (pos == std::string::npos)
        return;
    pos += kMarker.size();
    std::string mutex;
    while (pos < comment.size() && isIdentCh(comment[pos])) {
        mutex += comment[pos];
        ++pos;
    }
    // A truncated or empty marker still records (with an empty mutex)
    // so the lock-discipline rule can flag it instead of silently
    // checking nothing.
    if (pos >= comment.size() || comment[pos] != ')')
        mutex.clear();

    GuardAnnotation g;
    g.line = first_line;
    g.mutex = std::move(mutex);
    guards_.push_back(std::move(g));
    guard_spans_.push_back({first_line, last_line});
}

void
SourceFile::resolveGuardFields()
{
    // The annotation binds to the field declared on the comment's own
    // (first) line — the trailing form — or, for a standalone
    // comment, on the line right below the block.  The field is the
    // identifier immediately before the declaration's first ';', '=',
    // or '{' on that line.
    const auto fieldOnLine = [&](int line) -> std::string {
        const Token *prev = nullptr;
        for (const Token &t : tokens_.tokens()) {
            if (t.line < line)
                continue;
            if (t.line > line)
                break;
            if (t.kind == TokKind::Punct &&
                (t.text == ";" || t.text == "=" || t.text == "{")) {
                if (prev && prev->kind == TokKind::Identifier)
                    return prev->text;
                return "";
            }
            prev = &t;
        }
        return "";
    };

    for (size_t i = 0; i < guards_.size(); ++i) {
        std::string field = fieldOnLine(guard_spans_[i].first);
        int line = guard_spans_[i].first;
        if (field.empty()) {
            line = guard_spans_[i].second + 1;
            field = fieldOnLine(line);
        }
        guards_[i].field = std::move(field);
        guards_[i].line = line;
    }
}

void
SourceFile::appendLineComment(PendingComment &pending,
                              const std::string &text, int line)
{
    // Consecutive // lines form one logical block, so an allow()
    // marker inside a wrapped comment still covers the statement
    // right below the block.
    if (pending.active && line == pending.last_line + 1) {
        pending.text += '\n';
        pending.text += text;
        pending.last_line = line;
        return;
    }
    flushLineComments(pending);
    pending = {true, line, line, text};
}

void
SourceFile::flushLineComments(PendingComment &pending)
{
    if (!pending.active)
        return;
    recordSuppression(pending.text, pending.first_line,
                      pending.last_line);
    recordGuards(pending.text, pending.first_line, pending.last_line);
    pending.active = false;
}

void
SourceFile::scan()
{
    enum class State {
        Normal,
        LineComment,
        BlockComment,
        String,
        Char,
        RawString,
    };

    code_.assign(raw_.size(), ' ');
    line_offsets_.push_back(0);

    State state = State::Normal;
    int line = 1;
    int comment_start_line = 1;
    std::string comment_text;
    PendingComment pending;
    std::string literal_text;
    std::string raw_delim; // raw string closing delimiter: )delim"
    size_t literal_offset = 0;
    int literal_line = 1;

    const size_t n = raw_.size();
    for (size_t i = 0; i < n; ++i) {
        const char c = raw_[i];
        const char next = i + 1 < n ? raw_[i + 1] : '\0';
        if (c == '\n') {
            code_[i] = '\n';
            ++line;
            line_offsets_.push_back(i + 1);
        }

        switch (state) {
          case State::Normal:
            if (c == '/' && next == '/') {
                state = State::LineComment;
                comment_start_line = line;
                comment_text.clear();
            } else if (c == '/' && next == '*') {
                state = State::BlockComment;
                comment_start_line = line;
                comment_text.clear();
                ++i; // consume '*' so "/*/" is not a full comment
            } else if (c == '"') {
                // R"delim( ... )delim" — check for a raw prefix.
                if (i > 0 && raw_[i - 1] == 'R') {
                    size_t p = i + 1;
                    std::string delim;
                    while (p < n && raw_[p] != '(' &&
                           delim.size() < 16) {
                        delim += raw_[p];
                        ++p;
                    }
                    if (p < n && raw_[p] == '(') {
                        state = State::RawString;
                        raw_delim = ")" + delim + "\"";
                        literal_offset = i;
                        literal_line = line;
                        literal_text.clear();
                        code_[i] = '"';
                        // Skip the delimiter and '('.
                        i = p;
                        break;
                    }
                }
                state = State::String;
                literal_offset = i;
                literal_line = line;
                literal_text.clear();
                code_[i] = '"';
            } else if (c == '\'') {
                // A digit separator (1'000'000, 0xFF'FF) is part of
                // its number, not the start of a char literal: the
                // preceding alnum run must begin with a digit.  A
                // char-literal prefix (L'a', u8'a') begins with a
                // letter, so it still lexes as a literal.
                size_t run = i;
                while (run > 0 && (isIdentCh(raw_[run - 1]) ||
                                   raw_[run - 1] == '\''))
                    --run;
                const bool separator =
                    run < i && raw_[run] >= '0' && raw_[run] <= '9';
                if (separator) {
                    code_[i] = '\'';
                } else {
                    state = State::Char;
                    code_[i] = '\'';
                }
            } else if (c != '\n') {
                code_[i] = c;
            }
            break;

          case State::LineComment:
            if (c == '\n') {
                appendLineComment(pending, comment_text,
                                  comment_start_line);
                state = State::Normal;
            } else {
                comment_text += c;
            }
            break;

          case State::BlockComment:
            // Markers live in // comments only; block comments are
            // documentation and may *mention* markers as prose.
            if (c == '*' && next == '/') {
                state = State::Normal;
                ++i;
            } else {
                comment_text += c;
            }
            break;

          case State::String:
            if (c == '\\' && i + 1 < n) {
                literal_text += c;
                literal_text += next;
                ++i;
                if (next == '\n') {
                    ++line;
                    line_offsets_.push_back(i + 1);
                    code_[i] = '\n';
                }
            } else if (c == '"') {
                code_[i] = '"';
                literals_.push_back(
                    {literal_offset, literal_line, literal_text});
                state = State::Normal;
            } else if (c != '\n') {
                literal_text += c;
            }
            break;

          case State::Char:
            if (c == '\\' && i + 1 < n) {
                ++i;
            } else if (c == '\'') {
                code_[i] = '\'';
                state = State::Normal;
            }
            break;

          case State::RawString:
            if (c == ')' && raw_.compare(i, raw_delim.size(),
                                         raw_delim) == 0) {
                i += raw_delim.size() - 1;
                code_[i] = '"';
                literals_.push_back(
                    {literal_offset, literal_line, literal_text});
                state = State::Normal;
            } else if (c != '\n') {
                literal_text += c;
            }
            break;
        }
    }
    if (state == State::LineComment)
        appendLineComment(pending, comment_text, comment_start_line);
    flushLineComments(pending);

    tokens_ = TokenStream(code_);
    scopes_ = ScopeTree(tokens_);
    resolveGuardFields();
}

void
SourceFile::scanCMake()
{
    // CMake's lexical grammar is simple enough here: '#' starts a
    // comment outside a double-quoted argument.  Comments are
    // blanked so flag checks (-ffast-math) don't trip on prose;
    // bracket comments #[[...]] are rare and treated as line
    // comments, which errs toward scanning too much, not too little.
    code_.assign(raw_.size(), ' ');
    line_offsets_.push_back(0);

    bool in_string = false;
    bool in_comment = false;
    int line = 1;
    const size_t n = raw_.size();
    for (size_t i = 0; i < n; ++i) {
        const char c = raw_[i];
        if (c == '\n') {
            code_[i] = '\n';
            ++line;
            line_offsets_.push_back(i + 1);
            in_comment = false;
            in_string = false; // CMake strings don't span lines here
            continue;
        }
        if (in_comment)
            continue;
        if (c == '"' && (i == 0 || raw_[i - 1] != '\\'))
            in_string = !in_string;
        if (c == '#' && !in_string) {
            in_comment = true;
            continue;
        }
        code_[i] = c;
    }
    (void)line;
}

int
SourceFile::lineOf(size_t offset) const
{
    const auto it = std::upper_bound(line_offsets_.begin(),
                                     line_offsets_.end(), offset);
    return static_cast<int>(it - line_offsets_.begin());
}

const StringLiteral *
SourceFile::literalAtOrAfter(size_t offset) const
{
    for (const auto &lit : literals_) {
        if (lit.offset >= offset)
            return &lit;
    }
    return nullptr;
}

bool
SourceFile::suppressed(int line, const std::string &rule) const
{
    const auto it = suppressions_.find(line);
    return it != suppressions_.end() && it->second.count(rule) > 0;
}

std::string
SourceFile::layer() const
{
    static const std::string kPrefix = "src/";
    if (path_.rfind(kPrefix, 0) != 0)
        return "";
    const size_t start = kPrefix.size();
    const size_t slash = path_.find('/', start);
    if (slash == std::string::npos)
        return "";
    return path_.substr(start, slash - start);
}

bool
SourceFile::isHeader() const
{
    return path_.size() >= 3 &&
           path_.compare(path_.size() - 3, 3, ".hh") == 0;
}

const SourceFile *
SourceRepo::find(const std::string &rel_path) const
{
    for (const auto &f : files) {
        if (f.path() == rel_path)
            return &f;
    }
    return nullptr;
}

SourceRepo
loadRepo(const std::string &root)
{
    namespace fs = std::filesystem;

    SourceRepo repo;
    repo.root = root;

    const fs::path src = fs::path(root) / "src";
    fatal_if(!fs::is_directory(src),
             "gpuscale-lint: no src/ directory under %s",
             root.c_str());

    std::vector<fs::path> paths;
    for (const auto &entry : fs::recursive_directory_iterator(src)) {
        if (!entry.is_regular_file())
            continue;
        const std::string name = entry.path().filename().string();
        const std::string ext = entry.path().extension().string();
        if (ext == ".cc" || ext == ".hh" || ext == ".cmake" ||
            name == "CMakeLists.txt")
            paths.push_back(entry.path());
    }
    // Build flags can hide anywhere a CMakeLists lives, but fixture
    // trees under tests/ are deliberately bad inputs — so only the
    // checkout's own top-level lists join the scan.
    for (const char *extra :
         {"CMakeLists.txt", "tests/CMakeLists.txt",
          "bench/CMakeLists.txt"}) {
        const fs::path p = fs::path(root) / extra;
        if (fs::is_regular_file(p))
            paths.push_back(p);
    }
    std::sort(paths.begin(), paths.end());

    for (const auto &p : paths) {
        // gpuscale-lint: allow(fault-coverage): the lint tool reads
        // its own inputs; a source tree that vanishes mid-scan is a
        // fatal usage error, not a degradable I/O fault.
        std::ifstream is(p);
        fatal_if(!is, "gpuscale-lint: cannot read %s",
                 p.string().c_str());
        std::stringstream buffer;
        buffer << is.rdbuf();
        const std::string rel =
            fs::relative(p, root).generic_string();
        repo.files.emplace_back(rel, buffer.str(),
                                SourceFile::DeferScan{});
    }

    // Scanning (comment stripping, lexing, scope building) dominates
    // load time on a full checkout; files are independent, so fan
    // out across the pool.
    harness::parallelFor(repo.files.size(), [&repo](size_t i) {
        repo.files[i].ensureScanned();
    });
    return repo;
}

} // namespace analysis
} // namespace gpuscale
