/**
 * @file
 * Findings and report model for gpuscale-lint.
 *
 * Rules emit Findings into a Report; the driver renders the report
 * as compiler-style "file:line: severity: [rule] message" lines and
 * turns the error count into the process exit status.  Suppressed
 * findings are counted (so a silent tree still tells you the rules
 * ran) but carry no location.
 */

#ifndef GPUSCALE_ANALYSIS_FINDINGS_HH
#define GPUSCALE_ANALYSIS_FINDINGS_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace gpuscale {
namespace analysis {

enum class Severity {
    Error,
    Warning,
};

/** Human-readable severity name ("error" / "warning"). */
std::string severityName(Severity s);

/** One rule violation at one source location. */
struct Finding {
    std::string rule;
    Severity severity = Severity::Error;
    std::string file; ///< repo-relative path ("" for repo-wide)
    int line = 0;     ///< 1-based; 0 for repo-wide findings
    std::string message;
    std::string hint; ///< optional fix-it suggestion ("" for none)

    /** The rendered "file:line: severity: [rule] message" form,
     *  with "(fix: hint)" appended when a hint is present. */
    std::string render() const;
};

/** Accumulates findings across all rules of one lint run. */
class Report
{
  public:
    void add(Finding f);

    /** Record that a finding was silenced by an allow() comment. */
    void noteSuppressed(const std::string &rule);

    /** Findings sorted by (file, line, rule). */
    const std::vector<Finding> &findings() const;

    size_t errorCount() const;
    size_t warningCount() const;
    size_t suppressedCount() const;

    /** Per-rule suppression counts, for the summary line. */
    const std::map<std::string, size_t> &suppressedByRule() const
    {
        return suppressed_;
    }

    /** All findings rendered one per line (empty string if clean). */
    std::string render() const;

  private:
    mutable std::vector<Finding> findings_;
    mutable bool sorted_ = true;
    std::map<std::string, size_t> suppressed_;
};

} // namespace analysis
} // namespace gpuscale

#endif // GPUSCALE_ANALYSIS_FINDINGS_HH
