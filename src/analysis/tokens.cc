#include "tokens.hh"

#include <algorithm>
#include <cctype>

namespace gpuscale {
namespace analysis {

namespace {

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
isDigit(char c)
{
    return c >= '0' && c <= '9';
}

/**
 * Multi-character punctuators, longest first so the lexer can take
 * the first prefix match.  ">>" is listed, which is also how a
 * nested template closes — scope tracking only keys on braces and
 * parens, so emitting one ">>" token is both faster and harmless.
 */
const char *const kPuncts[] = {
    "<<=", ">>=", "->*", "...", "::", "->", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "+=", "-=", "*=", "/=", "%=", "&=",
    "|=",  "^=",  "++",  "--",
};

} // namespace

TokenStream::TokenStream(const std::string &code)
{
    const size_t n = code.size();
    int line = 1;
    bool at_line_start = true;

    size_t i = 0;
    while (i < n) {
        const char c = code[i];
        if (c == '\n') {
            ++line;
            at_line_start = true;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }

        // Preprocessor directives are not C++ token soup: a #define
        // can hold unbalanced braces and an #include's <path> is not
        // a comparison.  Skip the whole (continued) line.
        if (c == '#' && at_line_start) {
            while (i < n) {
                if (code[i] == '\\' && i + 1 < n &&
                    code[i + 1] == '\n') {
                    ++line;
                    i += 2;
                    continue;
                }
                if (code[i] == '\n')
                    break;
                ++i;
            }
            continue;
        }
        at_line_start = false;

        if (identStart(c)) {
            const size_t begin = i;
            while (i < n && identChar(code[i]))
                ++i;
            tokens_.push_back({TokKind::Identifier,
                               code.substr(begin, i - begin), begin,
                               line});
            continue;
        }

        if (isDigit(c) || (c == '.' && i + 1 < n && isDigit(code[i + 1]))) {
            // pp-number: digits, idents, dots, digit separators, and
            // exponent signs.  "1'000'000" and "0x1.8p-3" are each
            // one token.
            const size_t begin = i;
            while (i < n) {
                const char d = code[i];
                if (identChar(d) || d == '.' || d == '\'') {
                    ++i;
                } else if ((d == '+' || d == '-') && i > begin &&
                           (code[i - 1] == 'e' || code[i - 1] == 'E' ||
                            code[i - 1] == 'p' || code[i - 1] == 'P')) {
                    ++i;
                } else {
                    break;
                }
            }
            tokens_.push_back({TokKind::Number,
                               code.substr(begin, i - begin), begin,
                               line});
            continue;
        }

        if (c == '"') {
            // Literal contents are blanked in the code() view, so the
            // next '"' is the closing quote (escaped quotes inside
            // were blanked too).
            const size_t begin = i;
            const int begin_line = line;
            size_t close = code.find('"', i + 1);
            if (close == std::string::npos)
                close = n - 1;
            for (size_t j = i; j <= close; ++j)
                line += code[j] == '\n' ? 1 : 0;
            tokens_.push_back(
                {TokKind::String, "\"", begin, begin_line});
            i = close + 1;
            continue;
        }

        if (c == '\'') {
            const size_t begin = i;
            size_t close = code.find('\'', i + 1);
            if (close == std::string::npos)
                close = n - 1;
            tokens_.push_back({TokKind::CharLit, "'", begin, line});
            i = close + 1;
            continue;
        }

        bool matched = false;
        for (const char *p : kPuncts) {
            const size_t len = std::char_traits<char>::length(p);
            if (code.compare(i, len, p) == 0) {
                tokens_.push_back({TokKind::Punct, p, i, line});
                i += len;
                matched = true;
                break;
            }
        }
        if (matched)
            continue;

        tokens_.push_back({TokKind::Punct, std::string(1, c), i, line});
        ++i;
    }

    // Bracket matching for (), [], {} in one pass.
    match_.assign(tokens_.size(), npos);
    std::vector<size_t> stack;
    for (size_t t = 0; t < tokens_.size(); ++t) {
        const std::string &s = tokens_[t].text;
        if (tokens_[t].kind != TokKind::Punct || s.size() != 1)
            continue;
        const char b = s[0];
        if (b == '(' || b == '[' || b == '{') {
            stack.push_back(t);
        } else if (b == ')' || b == ']' || b == '}') {
            const char want = b == ')' ? '(' : b == ']' ? '[' : '{';
            // Pop until the matching opener kind; a mismatch means
            // unbalanced input (preprocessor games) — leave npos.
            while (!stack.empty() &&
                   tokens_[stack.back()].text[0] != want)
                stack.pop_back();
            if (!stack.empty()) {
                match_[stack.back()] = t;
                match_[t] = stack.back();
                stack.pop_back();
            }
        }
    }
}

size_t
TokenStream::indexAtOrAfter(size_t offset) const
{
    const auto it = std::lower_bound(
        tokens_.begin(), tokens_.end(), offset,
        [](const Token &t, size_t off) { return t.offset < off; });
    return static_cast<size_t>(it - tokens_.begin());
}

size_t
TokenStream::match(size_t i) const
{
    return i < match_.size() ? match_[i] : npos;
}

namespace {

bool
isAnyOf(const std::string &s,
        std::initializer_list<const char *> set)
{
    for (const char *x : set) {
        if (s == x)
            return true;
    }
    return false;
}

/**
 * Classify the '{' at token index i.  `ts` supplies bracket matches
 * for the walk back over ") const noexcept -> type" trailers.
 */
ScopeKind
classifyBrace(const TokenStream &ts, size_t i, std::string &name)
{
    const auto &toks = ts.tokens();
    name.clear();
    if (i == 0)
        return ScopeKind::Block;

    // Resolve the ')' case: the token before its matching '(' tells
    // control blocks from function bodies.
    auto fromCloseParen = [&](size_t close) -> ScopeKind {
        const size_t open = ts.match(close);
        if (open == TokenStream::npos || open == 0)
            return ScopeKind::Function;
        const Token &before = toks[open - 1];
        if (isAnyOf(before.text,
                    {"if", "while", "for", "switch", "catch"}))
            return ScopeKind::Control;
        if (before.kind == TokKind::Identifier) {
            name = before.text;
            if (open >= 2 && toks[open - 2].text == "~")
                name = "~" + name;
        }
        return ScopeKind::Function;
    };

    const Token &prev = toks[i - 1];
    if (prev.text == ")")
        return fromCloseParen(i - 1);
    if (prev.text == "]") // captures-only lambda: [&] { ... }
        return ScopeKind::Function;
    if (isAnyOf(prev.text, {"else", "do", "try"}))
        return ScopeKind::Control;
    if (isAnyOf(prev.text, {"=", ",", "(", "{", "return"}))
        return ScopeKind::Init;

    // Walk back through the statement head.  The first decisive
    // token wins: a ')' means a signature or control head (resolved
    // above), a class-key or `namespace` names the scope, an '=' or
    // `return` means a braced initializer.  Everything else — type
    // names, template angle brackets, cv-qualifiers, trailing-return
    // punctuation — is skipped until a statement boundary.
    size_t j = i - 1;
    for (int budget = 64; budget > 0; --budget) {
        const Token &t = toks[j];
        if (isAnyOf(t.text, {";", "}", "{"}))
            break;
        if (t.text == ")")
            return fromCloseParen(j);
        if (t.text == "namespace")
            return ScopeKind::Namespace;
        if (isAnyOf(t.text, {"class", "struct", "union", "enum"}))
            return ScopeKind::Type;
        if (t.text == "=" || t.text == "return")
            return ScopeKind::Init;
        if (j == 0)
            break;
        --j;
    }
    return ScopeKind::Block;
}

} // namespace

ScopeTree::ScopeTree(const TokenStream &ts)
{
    const auto &toks = ts.tokens();
    std::vector<int> stack;
    size_t end_offset = 0;
    if (!toks.empty())
        end_offset = toks.back().offset + toks.back().text.size();

    for (size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokKind::Punct)
            continue;
        if (t.text == "{") {
            std::string name;
            const ScopeKind kind = classifyBrace(ts, i, name);
            Scope s;
            s.kind = kind;
            s.open_offset = t.offset;
            s.close_offset = end_offset;
            s.parent = stack.empty() ? -1 : stack.back();
            s.depth = static_cast<int>(stack.size());
            s.name = std::move(name);
            stack.push_back(static_cast<int>(scopes_.size()));
            scopes_.push_back(std::move(s));
        } else if (t.text == "}") {
            if (!stack.empty()) {
                scopes_[stack.back()].close_offset = t.offset;
                stack.pop_back();
            }
        }
    }
}

int
ScopeTree::innermostAt(size_t offset) const
{
    // Scopes are ordered by open_offset; the innermost container is
    // the last one opened before `offset` that also closes after it.
    int best = -1;
    for (size_t i = 0; i < scopes_.size(); ++i) {
        const Scope &s = scopes_[i];
        if (s.open_offset >= offset)
            break;
        if (s.close_offset > offset)
            best = static_cast<int>(i);
    }
    return best;
}

int
ScopeTree::enclosingFunction(size_t offset) const
{
    for (int i = innermostAt(offset); i >= 0; i = scopes_[i].parent) {
        if (scopes_[i].kind == ScopeKind::Function)
            return i;
    }
    return -1;
}

int
ScopeTree::outermostFunction(size_t offset) const
{
    int found = -1;
    for (int i = innermostAt(offset); i >= 0; i = scopes_[i].parent) {
        if (scopes_[i].kind == ScopeKind::Function)
            found = i;
    }
    return found;
}

bool
ScopeTree::isAncestorOrSelf(int anc, int scope) const
{
    if (anc < 0)
        return true; // top level encloses everything
    for (int i = scope; i >= 0; i = scopes_[i].parent) {
        if (i == anc)
            return true;
    }
    return false;
}

bool
ScopeTree::contains(int scope, size_t offset) const
{
    if (scope < 0)
        return true;
    const Scope &s = scopes_[static_cast<size_t>(scope)];
    return s.open_offset < offset && offset < s.close_offset;
}

} // namespace analysis
} // namespace gpuscale
