/**
 * @file
 * Concurrency-hygiene rule: worker threads are created in exactly
 * one place (harness/thread_pool) and fanned out through
 * parallelFor (harness/parallel).  Everywhere else, spawning a
 * std::thread, detaching one, or declaring a raw mutex /
 * condition variable is a finding — thread-safe leaf modules (the
 * logging sink, the metrics registry) document their primitives
 * with an allow(concurrency) comment instead.
 *
 * `std::thread::hardware_concurrency()` is a capacity query, not a
 * spawn, and is always fine; `std::lock_guard<std::mutex>` only
 * *uses* a declared mutex, so template arguments are exempt too.
 *
 * A mutex whose name appears in a `// guarded_by(...)` annotation in
 * the same file is also exempt: the lock-discipline rule then
 * enforces, per field access, what the allow(concurrency) comment
 * could only assert.
 */

#include <set>
#include <string>
#include <vector>

#include "analysis/rules.hh"
#include "base/logging.hh"

namespace gpuscale {
namespace analysis {

namespace {

bool
isPoolFile(const std::string &path)
{
    return path == "src/harness/thread_pool.hh" ||
           path == "src/harness/thread_pool.cc" ||
           path == "src/harness/parallel.hh" ||
           path == "src/harness/parallel.cc";
}

class ConcurrencyRule : public Rule
{
  public:
    std::string name() const override { return "concurrency"; }

    std::string
    description() const override
    {
        return "thread creation and raw mutexes stay inside "
               "harness/thread_pool and harness/parallel";
    }

    void
    run(const SourceRepo &repo, const LintOptions &,
        Report &report) const override
    {
        for (const auto &file : repo.files) {
            if (!file.isCpp() || isPoolFile(file.path()))
                continue;
            checkThreads(file, report);
            checkDetach(file, report);
            checkMutexes(file, report);
        }
    }

  private:
    void
    checkThreads(const SourceFile &file, Report &report) const
    {
        for (const auto &spawn :
             {std::string("std::thread"), std::string("std::jthread")})
        {
            for (size_t off : findTokens(file, spawn)) {
                // std::thread::hardware_concurrency() and friends
                // are queries, not spawns.
                const size_t after = off + spawn.size();
                if (after < file.code().size() &&
                    file.code()[after] == ':')
                    continue;
                emit(file, file.lineOf(off), Severity::Error,
                     strprintf("%s outside the harness thread pool; "
                               "use parallelFor (harness/parallel.hh)",
                               spawn.c_str()),
                     report);
            }
        }
    }

    void
    checkDetach(const SourceFile &file, Report &report) const
    {
        for (size_t off : findTokens(file, "detach")) {
            const std::string &code = file.code();
            if (off == 0 || code[off - 1] != '.')
                continue;
            const size_t after = off + std::string("detach").size();
            if (after >= code.size() || code[after] != '(')
                continue;
            emit(file, file.lineOf(off), Severity::Error,
                 "detached threads outlive their owner and race "
                 "process shutdown; join via the pool instead",
                 report);
        }
    }

    void
    checkMutexes(const SourceFile &file, Report &report) const
    {
        // Mutexes referenced from a guarded_by annotation are
        // governed by the lock-discipline rule instead.
        std::set<std::string> disciplined;
        for (const auto &guard : file.guardAnnotations())
            if (!guard.mutex.empty())
                disciplined.insert(guard.mutex);

        for (const auto &prim :
             {std::string("std::mutex"),
              std::string("std::recursive_mutex"),
              std::string("std::shared_mutex"),
              std::string("std::condition_variable")})
        {
            for (size_t off : findTokens(file, prim)) {
                const std::string &code = file.code();
                // A template argument (lock_guard<std::mutex>) uses
                // a mutex declared elsewhere; only declarations are
                // findings.
                size_t before = off;
                while (before > 0 && code[before - 1] == ' ')
                    --before;
                if (before > 0 && code[before - 1] == '<')
                    continue;
                // std::recursive_mutex also contains "std::mutex"?
                // No — findTokens anchors the whole token at a
                // boundary, but guard against the suffix forms:
                const size_t after = off + prim.size();
                if (after < code.size() &&
                    (code[after] == '_' ||
                     std::isalnum(
                         static_cast<unsigned char>(code[after]))))
                    continue;
                if (!disciplined.empty() &&
                    disciplined.count(declaredName(code, after)))
                    continue;
                emit(file, file.lineOf(off), Severity::Error,
                     strprintf("raw %s outside the harness pool; if "
                               "this module genuinely needs one, add "
                               "// gpuscale-lint: allow(concurrency) "
                               "with a reason",
                               prim.c_str()),
                     report);
            }
        }
    }

    /** Identifier declared right after a type mention, if any. */
    std::string
    declaredName(const std::string &code, size_t after) const
    {
        size_t i = after;
        while (i < code.size() && code[i] == ' ')
            ++i;
        size_t begin = i;
        while (i < code.size() &&
               (std::isalnum(static_cast<unsigned char>(code[i])) ||
                code[i] == '_'))
            ++i;
        return code.substr(begin, i - begin);
    }
};

} // namespace

std::unique_ptr<Rule>
makeConcurrencyRule()
{
    return std::make_unique<ConcurrencyRule>();
}

} // namespace analysis
} // namespace gpuscale
