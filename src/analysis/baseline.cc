#include "baseline.hh"

#include <algorithm>
#include <sstream>

namespace gpuscale {
namespace analysis {

std::string
baselineKey(const Finding &f)
{
    // Messages never contain newlines; '|' inside a message is
    // harmless since keys are compared whole.
    return f.rule + "|" + f.file + "|" + f.message;
}

std::set<std::string>
parseBaseline(const std::string &text)
{
    std::set<std::string> keys;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        while (!line.empty() &&
               (line.back() == '\r' || line.back() == ' '))
            line.pop_back();
        if (line.empty() || line[0] == '#')
            continue;
        keys.insert(line);
    }
    return keys;
}

std::string
renderBaseline(const std::vector<Finding> &findings)
{
    std::vector<std::string> keys;
    keys.reserve(findings.size());
    for (const auto &f : findings)
        keys.push_back(baselineKey(f));
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

    std::string out =
        "# gpuscale-lint findings baseline.\n"
        "# One `rule|file|message` key per line; regenerate with\n"
        "#   gpuscale-lint --root=. --write-baseline=ci/"
        "lint_baseline.txt\n";
    for (const auto &k : keys) {
        out += k;
        out += '\n';
    }
    return out;
}

std::vector<Finding>
diffAgainstBaseline(const std::vector<Finding> &findings,
                    const std::set<std::string> &baseline)
{
    std::vector<Finding> fresh;
    for (const auto &f : findings)
        if (!baseline.count(baselineKey(f)))
            fresh.push_back(f);
    return fresh;
}

} // namespace analysis
} // namespace gpuscale
