/**
 * @file
 * The taxonomy of GPGPU performance scaling — the paper's core
 * contribution, codified.
 *
 * Each kernel's scaling surface is reduced to three shape verdicts
 * (core clock, memory clock, compute units) plus whole-surface
 * sensitivity, and the triple is mapped to one of eight classes via a
 * fixed decision tree (documented on classifySurface()).
 */

#ifndef GPUSCALE_SCALING_TAXONOMY_HH
#define GPUSCALE_SCALING_TAXONOMY_HH

#include <string>
#include <vector>

#include "shape.hh"
#include "surface.hh"

namespace gpuscale {
namespace scaling {

/** The taxonomy classes. */
enum class TaxonomyClass {
    /** Scales with core clock and CUs; indifferent to memory clock. */
    CoreBound,

    /** Scales with memory clock; indifferent to core clock and CUs. */
    MemoryBound,

    /** Needs both clock domains to keep scaling. */
    Balanced,

    /** Plateaus in both clock domains: exposed access latency. */
    LatencyBound,

    /**
     * Frequency-scalable but CU-saturated: the launch cannot fill a
     * modern GPU ("benchmarks do not scale to modern GPU sizes").
     */
    ParallelismStarved,

    /** Loses performance as CUs are added (cache/atomic interference). */
    CuAdverse,

    /** Insensitive to all three knobs: host/launch overhead rules. */
    LaunchBound,

    /** Non-monotone or otherwise unexplained. */
    Irregular,
};

/** Number of taxonomy classes (for histograms). */
constexpr size_t kNumTaxonomyClasses = 8;

/** Tunables for the surface-level classifier. */
struct TaxonomyParams {
    /** Shape-classifier thresholds shared by all three knobs. */
    ShapeParams shape;

    /** Whole-grid best/worst ratio under which a kernel is
     *  LaunchBound. */
    double insensitive_range = 1.25;

    /** Gain counted as "responds to this knob" for Balanced. */
    double responsive_gain = 1.6;
};

/** Full classification result for one kernel. */
struct KernelClassification {
    std::string kernel;
    TaxonomyClass cls = TaxonomyClass::Irregular;

    ShapeVerdict freq;   ///< vs core clock at max CUs / memory clock
    ShapeVerdict mem;    ///< vs memory clock at max CUs / core clock
    ShapeVerdict cu;     ///< vs compute units at max clocks

    /** bestPerf/worstPerf over the whole grid. */
    double perf_range = 1.0;

    /** CUs needed to reach 90% of the max-CU performance. */
    int cu90 = 0;
};

/**
 * Classify one kernel's surface.
 *
 * Decision tree (first match wins):
 *  1. CU curve Adverse                          -> CuAdverse
 *  2. whole-grid range < insensitive_range      -> LaunchBound
 *  3. CU Plateau/Flat with freq response and
 *     flat memory response                      -> ParallelismStarved
 *  4. freq Linear-ish, memory Flat              -> CoreBound
 *  5. memory Linear-ish, freq Flat/Plateau      -> MemoryBound
 *  6. freq and memory both responsive           -> Balanced
 *  7. freq Plateau and memory Plateau/Flat      -> LatencyBound
 *  8. otherwise                                 -> Irregular
 */
KernelClassification classifySurface(
    const ScalingSurface &surface,
    const TaxonomyParams &params = TaxonomyParams{});

/** Classify a batch of surfaces. */
std::vector<KernelClassification> classifyAll(
    const std::vector<ScalingSurface> &surfaces,
    const TaxonomyParams &params = TaxonomyParams{});

/** Human-readable class name. */
std::string taxonomyClassName(TaxonomyClass cls);

/** All classes in display order. */
std::vector<TaxonomyClass> allTaxonomyClasses();

/** Histogram of class populations over a batch. */
std::vector<size_t> classHistogram(
    const std::vector<KernelClassification> &classifications);

} // namespace scaling
} // namespace gpuscale

#endif // GPUSCALE_SCALING_TAXONOMY_HH
