/**
 * @file
 * Suite analysis implementation.
 */

#include "suite_analysis.hh"

#include <map>

#include "base/logging.hh"
#include "base/math_util.hh"

namespace gpuscale {
namespace scaling {

std::string
suiteOfKernel(const std::string &kernel_name)
{
    const size_t slash = kernel_name.find('/');
    return slash == std::string::npos ? kernel_name
                                      : kernel_name.substr(0, slash);
}

std::vector<SuiteReport>
analyzeSuites(const std::vector<KernelClassification> &classifications,
              int max_cus)
{
    fatal_if(max_cus < 1, "analyzeSuites: max_cus %d", max_cus);

    // Preserve first-seen suite order.
    std::vector<std::string> order;
    std::map<std::string, std::vector<const KernelClassification *>>
        by_suite;
    for (const auto &c : classifications) {
        const std::string suite = suiteOfKernel(c.kernel);
        if (by_suite.find(suite) == by_suite.end())
            order.push_back(suite);
        by_suite[suite].push_back(&c);
    }

    std::vector<SuiteReport> reports;
    for (const auto &suite : order) {
        const auto &members = by_suite[suite];
        SuiteReport report;
        report.suite = suite;
        report.kernels = members.size();
        report.class_counts.assign(kNumTaxonomyClasses, 0);

        std::vector<double> cu90s;
        size_t saturating = 0;
        size_t non_scaling = 0;
        for (const auto *c : members) {
            ++report.class_counts[static_cast<size_t>(c->cls)];
            cu90s.push_back(static_cast<double>(c->cu90));
            if (c->cu90 < max_cus)
                ++saturating;
            if (c->cls == TaxonomyClass::ParallelismStarved ||
                c->cls == TaxonomyClass::LaunchBound ||
                c->cls == TaxonomyClass::CuAdverse) {
                ++non_scaling;
            }
        }

        report.median_cu90 = percentile(cu90s, 50.0);
        report.p90_cu90 = percentile(cu90s, 90.0);
        report.frac_saturating =
            static_cast<double>(saturating) /
            static_cast<double>(members.size());
        report.frac_non_scaling =
            static_cast<double>(non_scaling) /
            static_cast<double>(members.size());
        reports.push_back(std::move(report));
    }
    return reports;
}

} // namespace scaling
} // namespace gpuscale
