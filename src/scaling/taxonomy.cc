/**
 * @file
 * Taxonomy classifier implementation.
 */

#include "taxonomy.hh"

#include <algorithm>

#include "base/logging.hh"

namespace gpuscale {
namespace scaling {

namespace {

bool
isLinearish(const ShapeVerdict &v)
{
    return v.shape == CurveShape::Linear ||
           v.shape == CurveShape::Sublinear;
}

bool
isFlatish(const ShapeVerdict &v)
{
    return v.shape == CurveShape::Flat;
}

bool
isSaturating(const ShapeVerdict &v)
{
    return v.shape == CurveShape::Plateau || v.shape == CurveShape::Flat;
}

} // namespace

KernelClassification
classifySurface(const ScalingSurface &surface,
                const TaxonomyParams &params)
{
    const ConfigSpace &space = surface.space();

    KernelClassification out;
    out.kernel = surface.kernelName();

    const std::vector<double> cu_knob(space.cuValues().begin(),
                                      space.cuValues().end());
    const std::vector<double> cu_perf = surface.cuCurveAtMax();
    const std::vector<double> freq_perf = surface.freqCurveAtMax();
    const std::vector<double> mem_perf = surface.memCurveAtMax();

    out.cu = classifyCurve(cu_knob, cu_perf, params.shape);
    out.freq = classifyCurve(space.coreClks(), freq_perf, params.shape);
    out.mem = classifyCurve(space.memClks(), mem_perf, params.shape);
    out.perf_range = surface.perfRange();
    // The insensitivity test uses the robust range so sample-noise
    // tails cannot fake sensitivity on measured data.
    const double robust_range = surface.robustPerfRange();

    // CUs needed for 90% of max-CU performance.
    const double peak = *std::max_element(cu_perf.begin(), cu_perf.end());
    out.cu90 = space.cuValues().back();
    for (size_t i = 0; i < cu_perf.size(); ++i) {
        if (cu_perf[i] >= 0.9 * peak) {
            out.cu90 = space.cuValues()[i];
            break;
        }
    }

    const bool freq_responsive =
        out.freq.total_gain >= params.responsive_gain;
    const bool mem_responsive =
        out.mem.total_gain >= params.responsive_gain;

    //
    // The decision tree (documented in the header).
    //
    if (out.cu.shape == CurveShape::Adverse) {
        out.cls = TaxonomyClass::CuAdverse;
    } else if (robust_range < params.insensitive_range) {
        out.cls = TaxonomyClass::LaunchBound;
    } else if (isSaturating(out.cu) && freq_responsive &&
               !mem_responsive) {
        out.cls = TaxonomyClass::ParallelismStarved;
    } else if (isLinearish(out.freq) && isFlatish(out.mem)) {
        out.cls = TaxonomyClass::CoreBound;
    } else if (isLinearish(out.mem) &&
               (isSaturating(out.freq) || !freq_responsive)) {
        out.cls = TaxonomyClass::MemoryBound;
    } else if (freq_responsive && mem_responsive) {
        out.cls = TaxonomyClass::Balanced;
    } else if (out.freq.shape == CurveShape::Plateau &&
               isSaturating(out.mem)) {
        out.cls = TaxonomyClass::LatencyBound;
    } else if (isLinearish(out.freq) && out.mem.shape ==
               CurveShape::Plateau) {
        // Mostly core-side, with an early-saturating memory response:
        // still effectively core bound.
        out.cls = TaxonomyClass::CoreBound;
    } else {
        out.cls = TaxonomyClass::Irregular;
    }

    return out;
}

std::vector<KernelClassification>
classifyAll(const std::vector<ScalingSurface> &surfaces,
            const TaxonomyParams &params)
{
    std::vector<KernelClassification> out;
    out.reserve(surfaces.size());
    for (const auto &surface : surfaces)
        out.push_back(classifySurface(surface, params));
    return out;
}

std::string
taxonomyClassName(TaxonomyClass cls)
{
    switch (cls) {
      case TaxonomyClass::CoreBound:          return "core-bound";
      case TaxonomyClass::MemoryBound:        return "memory-bound";
      case TaxonomyClass::Balanced:           return "balanced";
      case TaxonomyClass::LatencyBound:       return "latency-bound";
      case TaxonomyClass::ParallelismStarved: return "parallelism-starved";
      case TaxonomyClass::CuAdverse:          return "cu-adverse";
      case TaxonomyClass::LaunchBound:        return "launch-bound";
      case TaxonomyClass::Irregular:          return "irregular";
    }
    panic("unknown taxonomy class %d", static_cast<int>(cls));
}

std::vector<TaxonomyClass>
allTaxonomyClasses()
{
    return {
        TaxonomyClass::CoreBound,
        TaxonomyClass::MemoryBound,
        TaxonomyClass::Balanced,
        TaxonomyClass::LatencyBound,
        TaxonomyClass::ParallelismStarved,
        TaxonomyClass::CuAdverse,
        TaxonomyClass::LaunchBound,
        TaxonomyClass::Irregular,
    };
}

std::vector<size_t>
classHistogram(const std::vector<KernelClassification> &classifications)
{
    std::vector<size_t> hist(kNumTaxonomyClasses, 0);
    for (const auto &c : classifications)
        ++hist[static_cast<size_t>(c.cls)];
    return hist;
}

} // namespace scaling
} // namespace gpuscale
