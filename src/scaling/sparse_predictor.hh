/**
 * @file
 * Sparse-sample census prediction: the full 891-point scaling surface
 * from a handful of measured configurations.
 *
 * A real study pays minutes of hardware time per configuration, so
 * measuring every kernel at every grid point — the assumption the
 * taxonomy census makes — is exactly what keeps it from running
 * against real silicon.  Following Wang & Chu (arXiv:1701.05308),
 * this module fits an analytical scaling surface to k sampled
 * (configuration, runtime) points and reconstructs the remaining
 * grid:
 *
 *  - The fit is separable in the three swept knobs: log T(i, j, k) ~
 *    mu + cu_i + core_j + mem_k, one free parameter per axis *level*,
 *    estimated by ridge-regularized backfitting (alternating
 *    least-squares) over the samples in the log domain.  Separability
 *    is the structure the analytic model's roofline shape mostly
 *    honours; where it does not, the measured anchor curves (below)
 *    carry the classification.
 *  - Measured points pass through untouched: the reconstruction
 *    equals the measurement wherever one exists, so fitting on the
 *    full grid reproduces the dense census bitwise.
 *  - Every sample plan anchors the three classification slices (the
 *    CU / core-clock / memory-clock curves through the max corner):
 *    those ~27 points are what classifySurface() actually reads, and
 *    measuring them directly is the cheapest way to make a sparse
 *    classification trustworthy.  The remaining budget is spent by a
 *    Latin-hypercube draw (lhs) or by active learning (active): fit a
 *    bootstrap ensemble, measure next where the ensemble's
 *    predictions disagree most.
 *  - Confidence comes from the same ensemble: each member is a fit on
 *    a deterministic bootstrap resample of the samples; per-point
 *    bands are the ensemble envelope, and per-kernel confidence is
 *    the fraction of members whose classification matches the point
 *    estimate's.
 *
 * Everything is a pure function of (space, options, samples): fixed
 * iteration counts, ordered loops, and seeded Rng streams — no
 * convergence tests, no unordered containers, no wall clock — so two
 * runs (or two machines) reconstruct bitwise-identical censuses.
 */

#ifndef GPUSCALE_SCALING_SPARSE_PREDICTOR_HH
#define GPUSCALE_SCALING_SPARSE_PREDICTOR_HH

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "base/random.hh"
#include "config_space.hh"
#include "surface.hh"
#include "taxonomy.hh"

namespace gpuscale {
namespace scaling {

/** How a sparse sample plan spends its non-anchor budget. */
enum class SamplerKind {
    /** One stratified Latin-hypercube draw up front. */
    Lhs,

    /** LHS seed, then greedy max-ensemble-disagreement picks. */
    Active,
};

/** Display / CLI name ("lhs", "active"). */
std::string samplerKindName(SamplerKind kind);

/** Parse a sampler name; false when unrecognized. */
bool parseSamplerKind(const std::string &name, SamplerKind *out);

/** Tunables for the sparse fit and its confidence ensemble. */
struct SparseFitOptions {
    /** Seed for every stochastic choice (LHS, bootstrap). */
    uint64_t seed = 0;

    /** Bootstrap ensemble size behind bands and confidence. */
    size_t ensemble = 12;

    /** Backfitting sweeps; fixed count, so the fit is deterministic. */
    size_t backfit_iterations = 32;

    /**
     * Ridge weight added to each level's sample count: shrinks
     * effects estimated from few samples toward the grand mean
     * instead of letting one noisy point own an axis level.
     */
    double ridge = 0.25;
};

/** One kernel's sparse reconstruction with uncertainty. */
struct SparseReconstruction {
    /**
     * Point-estimate surface: fitted values, with measured samples
     * passed through bitwise.
     */
    ScalingSurface surface;

    /** Per-point ensemble envelope (runtimes, seconds). @{ */
    std::vector<double> lower;
    std::vector<double> upper;
    /** @} */

    /** Classification of the point-estimate surface. */
    KernelClassification cls;

    /**
     * Fraction of ensemble members classified identically to cls —
     * the census.confidence column.  1.0 means the class is stable
     * under resampling; anything lower marks a kernel near a class
     * boundary.
     */
    double confidence = 1.0;

    /**
     * True when the confidence band straddles a class boundary: an
     * ensemble member, or the lower/upper envelope surface,
     * classifies differently from the point estimate.  A sparse
     * census should only ever disagree with the dense census on
     * kernels where this is set.
     */
    bool band_crosses_boundary = false;

    /** Number of distinct configurations measured. */
    size_t samples = 0;
};

/** Sparse-sample surface fitting and sample planning for one grid. */
class SparsePredictor
{
  public:
    /**
     * @param space the grid to reconstruct (axes of at least three
     *        values each, as classifySurface() requires).
     * @param options fit / ensemble tunables.
     */
    explicit SparsePredictor(ConfigSpace space,
                             SparseFitOptions options = {});

    const ConfigSpace &space() const { return space_; }
    const SparseFitOptions &options() const { return options_; }

    /**
     * The anchor configurations every plan measures first: the three
     * classification slices through the max corner (CU curve at max
     * clocks, core-clock and memory-clock curves at max CUs /
     * opposite clock), deduplicated, in ascending flat order.
     */
    std::vector<size_t> anchorConfigs() const;

    /** Smallest admissible budget: the anchors plus one free point. */
    size_t minSamples() const { return anchorConfigs().size() + 1; }

    /**
     * Latin-hypercube sample plan: the anchors, then a stratified
     * LHS draw over the grid until `budget` distinct configurations
     * are chosen.  Deterministic in (space, seed, budget); the
     * returned sequence is the measurement order.
     *
     * @param budget total configurations to measure, in
     *        [minSamples(), space().size()].
     */
    std::vector<size_t> lhsPlan(size_t budget) const;

    /**
     * Active-learning sample plan.  Seeds with the anchors plus a
     * third of the remaining budget as an LHS draw, then repeatedly
     * fits the bootstrap ensemble to everything measured so far and
     * measures the configuration with the widest ensemble spread in
     * log-runtime (ties break toward the lowest flat index).
     * Deterministic given (space, options, budget, measure).
     *
     * @param budget as lhsPlan().
     * @param measure called once per chosen configuration, in plan
     *        order, returning the measured runtime in seconds.
     * @return the chosen configurations in measurement order.
     */
    std::vector<size_t> activePlan(
        size_t budget,
        const std::function<double(size_t)> &measure) const;

    /**
     * Fit the separable surface and reconstruct every grid point.
     * Measured points pass through bitwise; sample order never
     * affects the result (samples are canonicalized internally).
     *
     * @param indices distinct flat configuration indices measured.
     * @param runtimes matching runtimes, seconds, all positive.
     * @return predicted runtime at every grid point.
     */
    std::vector<double> fitSurface(
        std::span<const size_t> indices,
        std::span<const double> runtimes) const;

    /**
     * Full sparse reconstruction for one kernel: point-estimate
     * surface, bootstrap ensemble bands, classification, and
     * confidence.
     *
     * @param kernel_name name stamped on the surface/classification.
     * @param indices / runtimes as fitSurface().
     * @param params classifier thresholds.
     */
    SparseReconstruction reconstruct(
        const std::string &kernel_name,
        std::span<const size_t> indices,
        std::span<const double> runtimes,
        const TaxonomyParams &params = TaxonomyParams{}) const;

  private:
    struct Samples; ///< canonicalized (sorted, deduplicated) samples

    Samples canonicalize(std::span<const size_t> indices,
                         std::span<const double> runtimes) const;

    /**
     * Backfit the log-additive model over weighted samples and
     * predict every grid point (no pass-through).  `weights` are
     * per-sample bootstrap multiplicities; empty means all-ones.
     */
    std::vector<double> fitLogAdditive(
        const Samples &samples,
        std::span<const double> weights) const;

    /** Ensemble member predictions (pass-through applied). */
    std::vector<std::vector<double>> ensembleSurfaces(
        const std::string &kernel_name, const Samples &samples) const;

    /** Stratified LHS stream of flat indices (may repeat). */
    std::vector<size_t> lhsCandidates(size_t count, Rng &rng) const;

    ConfigSpace space_;
    SparseFitOptions options_;
};

} // namespace scaling
} // namespace gpuscale

#endif // GPUSCALE_SCALING_SPARSE_PREDICTOR_HH
