/**
 * @file
 * Per-suite scalability analysis.
 *
 * Backs the paper's headline critique: several benchmark suites do
 * not scale to modern GPU sizes.  For each suite we aggregate the
 * taxonomy populations and the distribution of cu90 — the CU count at
 * which a kernel reaches 90% of its best CU-curve performance.  A
 * suite whose median cu90 sits far below the machine's CU count is
 * not exercising a modern GPU.
 */

#ifndef GPUSCALE_SCALING_SUITE_ANALYSIS_HH
#define GPUSCALE_SCALING_SUITE_ANALYSIS_HH

#include <string>
#include <vector>

#include "taxonomy.hh"

namespace gpuscale {
namespace scaling {

/** Aggregated scalability verdict for one suite. */
struct SuiteReport {
    std::string suite;
    size_t kernels = 0;

    /** Taxonomy populations indexed by TaxonomyClass value. */
    std::vector<size_t> class_counts;

    /** Median of cu90 across the suite's kernels. */
    double median_cu90 = 0.0;

    /** 90th percentile of cu90. */
    double p90_cu90 = 0.0;

    /** Fraction of kernels with cu90 strictly below max_cus. */
    double frac_saturating = 0.0;

    /**
     * Fraction of kernels in the classes that cannot use a bigger
     * GPU at all (ParallelismStarved, LaunchBound, CuAdverse).
     */
    double frac_non_scaling = 0.0;
};

/**
 * Derive the suite name from a canonical kernel name
 * ("suite/program/kernel" -> "suite").
 */
std::string suiteOfKernel(const std::string &kernel_name);

/**
 * Build per-suite reports from a batch of classifications.
 *
 * @param classifications one entry per kernel, canonical names.
 * @param max_cus the largest CU setting of the studied grid.
 */
std::vector<SuiteReport> analyzeSuites(
    const std::vector<KernelClassification> &classifications,
    int max_cus);

} // namespace scaling
} // namespace gpuscale

#endif // GPUSCALE_SCALING_SUITE_ANALYSIS_HH
