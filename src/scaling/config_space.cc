/**
 * @file
 * ConfigSpace implementation.
 */

#include "config_space.hh"

#include "base/logging.hh"

namespace gpuscale {
namespace scaling {

namespace {

template <typename T>
void
checkAxis(const std::vector<T> &axis, const char *name)
{
    fatal_if(axis.empty(), "config-space axis '%s' is empty", name);
    for (size_t i = 1; i < axis.size(); ++i) {
        fatal_if(axis[i] <= axis[i - 1],
                 "config-space axis '%s' is not strictly increasing",
                 name);
    }
}

} // namespace

ConfigSpace::ConfigSpace(std::vector<int> cu_values,
                         std::vector<double> core_clks,
                         std::vector<double> mem_clks,
                         gpu::GpuConfig base)
    : cu_values_(std::move(cu_values)), core_clks_(std::move(core_clks)),
      mem_clks_(std::move(mem_clks)), base_(base)
{
    checkAxis(cu_values_, "compute-units");
    checkAxis(core_clks_, "core-clock");
    checkAxis(mem_clks_, "memory-clock");
    // Validate the extreme points once; interior points share the
    // same fixed parameters.
    minConfig().validate();
    maxConfig().validate();
}

ConfigSpace
ConfigSpace::paperGrid()
{
    std::vector<int> cus;
    for (int cu = 4; cu <= 44; cu += 4)
        cus.push_back(cu); // 11 settings, 11x range

    std::vector<double> core_clks;
    for (double clk = 200.0; clk <= 1000.0; clk += 100.0)
        core_clks.push_back(clk); // 9 settings, 5x range

    std::vector<double> mem_clks;
    for (int i = 0; i < 9; ++i) {
        // 150..1250 MHz evenly spaced: an 8.33x bandwidth range.
        mem_clks.push_back(150.0 + i * (1250.0 - 150.0) / 8.0);
    }

    return ConfigSpace(std::move(cus), std::move(core_clks),
                       std::move(mem_clks));
}

ConfigSpace
ConfigSpace::testGrid()
{
    return ConfigSpace({4, 24, 44}, {200.0, 600.0, 1000.0},
                       {150.0, 700.0, 1250.0});
}

size_t
ConfigSpace::flatten(size_t cu_i, size_t core_i, size_t mem_i) const
{
    panic_if(cu_i >= numCu() || core_i >= numCoreClk() ||
                 mem_i >= numMemClk(),
             "config index (%zu, %zu, %zu) out of range",
             cu_i, core_i, mem_i);
    return (cu_i * numCoreClk() + core_i) * numMemClk() + mem_i;
}

gpu::GpuConfig
ConfigSpace::at(size_t cu_i, size_t core_i, size_t mem_i) const
{
    panic_if(cu_i >= numCu() || core_i >= numCoreClk() ||
                 mem_i >= numMemClk(),
             "config index (%zu, %zu, %zu) out of range",
             cu_i, core_i, mem_i);
    gpu::GpuConfig cfg = base_;
    cfg.num_cus = cu_values_[cu_i];
    cfg.core_clk_mhz = core_clks_[core_i];
    cfg.mem_clk_mhz = mem_clks_[mem_i];
    return cfg;
}

gpu::GpuConfig
ConfigSpace::at(size_t flat) const
{
    const AxisIndex idx = unflatten(flat);
    return at(idx.cu, idx.core, idx.mem);
}

ConfigSpace::AxisIndex
ConfigSpace::unflatten(size_t flat) const
{
    panic_if(flat >= size(), "flat index %zu out of range (size %zu)",
             flat, size());
    AxisIndex idx;
    idx.mem = flat % numMemClk();
    flat /= numMemClk();
    idx.core = flat % numCoreClk();
    idx.cu = flat / numCoreClk();
    return idx;
}

gpu::ConfigGrid
ConfigSpace::grid() const
{
    gpu::ConfigGrid grid;
    grid.cu_values = cu_values_;
    grid.core_clks_mhz = core_clks_;
    grid.mem_clks_mhz = mem_clks_;
    grid.base = base_;
    return grid;
}

gpu::GpuConfig
ConfigSpace::maxConfig() const
{
    return at(numCu() - 1, numCoreClk() - 1, numMemClk() - 1);
}

gpu::GpuConfig
ConfigSpace::minConfig() const
{
    return at(0, 0, 0);
}

} // namespace scaling
} // namespace gpuscale
