/**
 * @file
 * Data-driven clustering of scaling behaviour.
 *
 * As a cross-check on the hand-built decision tree, kernels can be
 * clustered directly on their normalized scaling vectors (the
 * concatenated CU / core-clock / memory-clock curves, each normalized
 * to its first point).  If the taxonomy is real structure rather than
 * threshold artefacts, unsupervised clusters should align with the
 * assigned classes — experiment F7 measures that alignment.
 */

#ifndef GPUSCALE_SCALING_CLUSTER_HH
#define GPUSCALE_SCALING_CLUSTER_HH

#include <cstdint>
#include <vector>

#include "surface.hh"
#include "taxonomy.hh"

namespace gpuscale {
namespace scaling {

/** The feature vector clustering operates on. */
std::vector<double> scalingFeatureVector(const ScalingSurface &surface);

/** Result of one k-means run. */
struct ClusterResult {
    /** Cluster index per input vector. */
    std::vector<int> assignment;

    /** Cluster centroids, row-major k x dim. */
    std::vector<std::vector<double>> centroids;

    /** Sum of squared distances to assigned centroids. */
    double inertia = 0.0;

    /** Iterations executed before convergence (or the cap). */
    int iterations = 0;
};

/**
 * Lloyd's k-means with k-means++ seeding.
 *
 * @param vectors input vectors; all the same dimension; size >= k.
 * @param k cluster count (>= 1).
 * @param seed RNG seed for the seeding step.
 * @param max_iters iteration cap.
 */
ClusterResult kmeans(const std::vector<std::vector<double>> &vectors,
                     int k, uint64_t seed = 1, int max_iters = 100);

/**
 * Cluster purity against taxonomy labels: for each cluster take its
 * majority class and count agreement; returns agreement fraction in
 * [0, 1].  Sizes must match.
 */
double clusterPurity(const std::vector<int> &assignment,
                     const std::vector<KernelClassification> &labels);

/**
 * Adjusted Rand Index between the clustering and the taxonomy
 * labelling; 1 = identical partitions, ~0 = random agreement.
 */
double adjustedRandIndex(const std::vector<int> &assignment,
                         const std::vector<KernelClassification> &labels);

} // namespace scaling
} // namespace gpuscale

#endif // GPUSCALE_SCALING_CLUSTER_HH
