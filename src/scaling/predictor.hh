/**
 * @file
 * Scaling-surface prediction from sparse probes.
 *
 * The practical payoff of a scaling taxonomy: kernels in the same
 * class share a scaling *shape*, so once per-class templates are
 * learned from a training census, a new kernel's full 891-point
 * surface can be predicted from measurements at a handful of probe
 * configurations — pick the template that best explains the probes,
 * scale it through them, done.  This is the direction the authors
 * took the dataset (ML-based performance/power estimation); here it
 * doubles as a quantitative test that the taxonomy carries real
 * predictive signal.
 */

#ifndef GPUSCALE_SCALING_PREDICTOR_HH
#define GPUSCALE_SCALING_PREDICTOR_HH

#include <span>
#include <string>
#include <vector>

#include "surface.hh"
#include "taxonomy.hh"

namespace gpuscale {
namespace scaling {

/** Accuracy summary of a predicted surface against the truth. */
struct PredictionError {
    /** Mean absolute percentage error over the grid. */
    double mape = 0.0;

    /** Median absolute percentage error. */
    double median_ape = 0.0;

    /** 90th-percentile absolute percentage error. */
    double p90_ape = 0.0;
};

/** Per-class scaling templates + probe-based surface prediction. */
class ScalingPredictor
{
  public:
    /**
     * Learn one template per (populated) taxonomy class.
     *
     * Each template is the geometric mean of the class members'
     * surfaces after normalizing every surface by its own geometric
     * mean — i.e. a pure shape, magnitude removed.
     *
     * @param surfaces training surfaces (all on the same grid).
     * @param classifications matching classifications (same order).
     */
    ScalingPredictor(
        const std::vector<ScalingSurface> &surfaces,
        const std::vector<KernelClassification> &classifications);

    /**
     * Predict a full surface from probe measurements.
     *
     * Chooses the template with the least squared log-error on the
     * probes, then scales it through them (geometric-mean fit).
     *
     * @param probe_indices flat configuration indices measured.
     * @param probe_runtimes measured runtimes (seconds, positive).
     * @return predicted runtime at every grid point.
     */
    std::vector<double> predict(
        std::span<const size_t> probe_indices,
        std::span<const double> probe_runtimes) const;

    /** The class of the template the last predict() would pick. */
    TaxonomyClass matchClass(
        std::span<const size_t> probe_indices,
        std::span<const double> probe_runtimes) const;

    /** Number of learned templates (populated classes). */
    size_t numTemplates() const { return templates_.size(); }

    const ConfigSpace &space() const { return space_; }

    /**
     * Default probe set: the grid corners plus the centre — the
     * measurements a practitioner would take first.
     */
    static std::vector<size_t> defaultProbes(const ConfigSpace &space);

  private:
    size_t bestTemplate(std::span<const size_t> probe_indices,
                        std::span<const double> probe_runtimes,
                        double *scale_out) const;

    ConfigSpace space_;
    std::vector<std::vector<double>> templates_; ///< shape surfaces
    std::vector<TaxonomyClass> template_class_;
};

/** Compare a predicted surface against the measured truth. */
PredictionError evaluatePrediction(std::span<const double> predicted,
                                   std::span<const double> actual);

} // namespace scaling
} // namespace gpuscale

#endif // GPUSCALE_SCALING_PREDICTOR_HH
