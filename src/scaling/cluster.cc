/**
 * @file
 * k-means and agreement-metric implementation.
 */

#include "cluster.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "base/logging.hh"
#include "base/math_util.hh"
#include "base/random.hh"

namespace gpuscale {
namespace scaling {

std::vector<double>
scalingFeatureVector(const ScalingSurface &surface)
{
    std::vector<double> features;
    for (const auto &curve : {surface.cuCurveAtMax(),
                              surface.freqCurveAtMax(),
                              surface.memCurveAtMax()}) {
        const std::vector<double> norm = normalizeToFirst(curve);
        features.insert(features.end(), norm.begin(), norm.end());
    }
    return features;
}

namespace {

double
sqDist(const std::vector<double> &a, const std::vector<double> &b)
{
    double d = 0;
    for (size_t i = 0; i < a.size(); ++i)
        d += (a[i] - b[i]) * (a[i] - b[i]);
    return d;
}

} // namespace

ClusterResult
kmeans(const std::vector<std::vector<double>> &vectors, int k,
       uint64_t seed, int max_iters)
{
    fatal_if(k < 1, "kmeans: k must be >= 1");
    fatal_if(vectors.size() < static_cast<size_t>(k),
             "kmeans: %zu vectors for k=%d", vectors.size(), k);
    const size_t dim = vectors.front().size();
    for (const auto &v : vectors) {
        fatal_if(v.size() != dim,
                 "kmeans: inconsistent vector dimensions");
    }

    Rng rng(seed);
    ClusterResult result;
    result.centroids.reserve(static_cast<size_t>(k));

    // k-means++ seeding.
    result.centroids.push_back(
        vectors[static_cast<size_t>(rng.uniformInt(
            0, static_cast<int64_t>(vectors.size()) - 1))]);
    std::vector<double> min_d2(vectors.size(),
                               std::numeric_limits<double>::max());
    while (result.centroids.size() < static_cast<size_t>(k)) {
        double total = 0;
        for (size_t i = 0; i < vectors.size(); ++i) {
            min_d2[i] = std::min(
                min_d2[i], sqDist(vectors[i], result.centroids.back()));
            total += min_d2[i];
        }
        // Sample proportionally to squared distance.
        double target = rng.uniform() * total;
        size_t pick = vectors.size() - 1;
        double acc = 0;
        for (size_t i = 0; i < vectors.size(); ++i) {
            acc += min_d2[i];
            if (acc >= target) {
                pick = i;
                break;
            }
        }
        result.centroids.push_back(vectors[pick]);
    }

    result.assignment.assign(vectors.size(), 0);
    for (int iter = 0; iter < max_iters; ++iter) {
        result.iterations = iter + 1;
        bool changed = false;

        // Assignment step.
        for (size_t i = 0; i < vectors.size(); ++i) {
            int best = 0;
            double best_d = std::numeric_limits<double>::max();
            for (int c = 0; c < k; ++c) {
                const double d =
                    sqDist(vectors[i],
                           result.centroids[static_cast<size_t>(c)]);
                if (d < best_d) {
                    best_d = d;
                    best = c;
                }
            }
            if (result.assignment[i] != best) {
                result.assignment[i] = best;
                changed = true;
            }
        }

        // Update step.
        std::vector<std::vector<double>> sums(
            static_cast<size_t>(k), std::vector<double>(dim, 0.0));
        std::vector<size_t> counts(static_cast<size_t>(k), 0);
        for (size_t i = 0; i < vectors.size(); ++i) {
            const auto c = static_cast<size_t>(result.assignment[i]);
            ++counts[c];
            for (size_t d = 0; d < dim; ++d)
                sums[c][d] += vectors[i][d];
        }
        for (size_t c = 0; c < static_cast<size_t>(k); ++c) {
            if (counts[c] == 0) {
                // Re-seed an empty cluster at a random point.
                result.centroids[c] = vectors[static_cast<size_t>(
                    rng.uniformInt(0,
                                   static_cast<int64_t>(vectors.size()) -
                                       1))];
                changed = true;
                continue;
            }
            for (size_t d = 0; d < dim; ++d) {
                result.centroids[c][d] =
                    sums[c][d] / static_cast<double>(counts[c]);
            }
        }

        if (!changed)
            break;
    }

    result.inertia = 0;
    for (size_t i = 0; i < vectors.size(); ++i) {
        result.inertia += sqDist(
            vectors[i],
            result.centroids[static_cast<size_t>(result.assignment[i])]);
    }
    return result;
}

double
clusterPurity(const std::vector<int> &assignment,
              const std::vector<KernelClassification> &labels)
{
    fatal_if(assignment.size() != labels.size(),
             "clusterPurity: %zu assignments vs %zu labels",
             assignment.size(), labels.size());
    if (assignment.empty())
        return 1.0;

    // cluster -> class -> count
    std::map<int, std::map<int, size_t>> table;
    for (size_t i = 0; i < assignment.size(); ++i)
        ++table[assignment[i]][static_cast<int>(labels[i].cls)];

    size_t agree = 0;
    for (const auto &[cluster, counts] : table) {
        size_t best = 0;
        for (const auto &[cls, count] : counts)
            best = std::max(best, count);
        agree += best;
    }
    return static_cast<double>(agree) /
           static_cast<double>(assignment.size());
}

double
adjustedRandIndex(const std::vector<int> &assignment,
                  const std::vector<KernelClassification> &labels)
{
    fatal_if(assignment.size() != labels.size(),
             "adjustedRandIndex: size mismatch");
    const size_t n = assignment.size();
    if (n < 2)
        return 1.0;

    std::map<std::pair<int, int>, double> joint;
    std::map<int, double> row_sum;
    std::map<int, double> col_sum;
    for (size_t i = 0; i < n; ++i) {
        const int a = assignment[i];
        const int b = static_cast<int>(labels[i].cls);
        joint[{a, b}] += 1;
        row_sum[a] += 1;
        col_sum[b] += 1;
    }

    auto choose2 = [](double m) { return m * (m - 1.0) / 2.0; };

    double sum_joint = 0;
    for (const auto &[key, count] : joint)
        sum_joint += choose2(count);
    double sum_rows = 0;
    for (const auto &[key, count] : row_sum)
        sum_rows += choose2(count);
    double sum_cols = 0;
    for (const auto &[key, count] : col_sum)
        sum_cols += choose2(count);

    const double total = choose2(static_cast<double>(n));
    const double expected = sum_rows * sum_cols / total;
    const double max_index = 0.5 * (sum_rows + sum_cols);
    if (std::abs(max_index - expected) < 1e-12)
        return 1.0;
    return (sum_joint - expected) / (max_index - expected);
}

} // namespace scaling
} // namespace gpuscale
