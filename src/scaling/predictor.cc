/**
 * @file
 * ScalingPredictor implementation.
 */

#include "predictor.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "base/logging.hh"
#include "base/math_util.hh"

namespace gpuscale {
namespace scaling {

namespace {

/** Geometric mean of a runtime vector. */
double
geomeanOf(const std::vector<double> &v)
{
    double s = 0;
    for (double e : v)
        s += std::log(e);
    return std::exp(s / static_cast<double>(v.size()));
}

} // namespace

ScalingPredictor::ScalingPredictor(
    const std::vector<ScalingSurface> &surfaces,
    const std::vector<KernelClassification> &classifications)
    : space_(surfaces.empty() ? ConfigSpace::paperGrid()
                              : surfaces.front().space())
{
    fatal_if(surfaces.empty(), "predictor: no training surfaces");
    fatal_if(surfaces.size() != classifications.size(),
             "predictor: %zu surfaces vs %zu classifications",
             surfaces.size(), classifications.size());

    // Accumulate mean log-shape per class.
    std::map<TaxonomyClass, std::vector<double>> log_sums;
    std::map<TaxonomyClass, size_t> counts;
    for (size_t i = 0; i < surfaces.size(); ++i) {
        const auto &surface = surfaces[i];
        fatal_if(surface.space().size() != space_.size(),
                 "predictor: surface %s on a different grid",
                 surface.kernelName().c_str());
        const double norm = geomeanOf(surface.runtimes());
        auto &sum = log_sums[classifications[i].cls];
        if (sum.empty())
            sum.assign(space_.size(), 0.0);
        for (size_t j = 0; j < space_.size(); ++j)
            sum[j] += std::log(surface.runtimes()[j] / norm);
        ++counts[classifications[i].cls];
    }

    for (auto &[cls, sum] : log_sums) {
        std::vector<double> shape(space_.size());
        for (size_t j = 0; j < space_.size(); ++j) {
            shape[j] = std::exp(
                sum[j] / static_cast<double>(counts[cls]));
        }
        templates_.push_back(std::move(shape));
        template_class_.push_back(cls);
    }
}

size_t
ScalingPredictor::bestTemplate(std::span<const size_t> probe_indices,
                               std::span<const double> probe_runtimes,
                               double *scale_out) const
{
    fatal_if(probe_indices.size() != probe_runtimes.size(),
             "predictor: %zu probe indices vs %zu runtimes",
             probe_indices.size(), probe_runtimes.size());
    fatal_if(probe_indices.empty(), "predictor: no probes");
    for (size_t i = 0; i < probe_indices.size(); ++i) {
        fatal_if(probe_indices[i] >= space_.size(),
                 "predictor: probe index %zu out of range",
                 probe_indices[i]);
        fatal_if(probe_runtimes[i] <= 0,
                 "predictor: non-positive probe runtime %g",
                 probe_runtimes[i]);
    }

    size_t best = 0;
    double best_err = std::numeric_limits<double>::max();
    double best_scale = 1.0;
    for (size_t t = 0; t < templates_.size(); ++t) {
        // Least-squares scale in log space = geometric mean of the
        // probe/template ratios.
        double log_scale = 0;
        for (size_t i = 0; i < probe_indices.size(); ++i) {
            log_scale += std::log(probe_runtimes[i] /
                                  templates_[t][probe_indices[i]]);
        }
        log_scale /= static_cast<double>(probe_indices.size());

        double err = 0;
        for (size_t i = 0; i < probe_indices.size(); ++i) {
            const double e =
                std::log(probe_runtimes[i]) -
                (log_scale +
                 std::log(templates_[t][probe_indices[i]]));
            err += e * e;
        }
        if (err < best_err) {
            best_err = err;
            best = t;
            best_scale = std::exp(log_scale);
        }
    }
    if (scale_out)
        *scale_out = best_scale;
    return best;
}

std::vector<double>
ScalingPredictor::predict(std::span<const size_t> probe_indices,
                          std::span<const double> probe_runtimes) const
{
    double scale = 1.0;
    const size_t t =
        bestTemplate(probe_indices, probe_runtimes, &scale);

    std::vector<double> out(space_.size());
    for (size_t j = 0; j < space_.size(); ++j)
        out[j] = scale * templates_[t][j];
    return out;
}

TaxonomyClass
ScalingPredictor::matchClass(
    std::span<const size_t> probe_indices,
    std::span<const double> probe_runtimes) const
{
    return template_class_[bestTemplate(probe_indices, probe_runtimes,
                                        nullptr)];
}

std::vector<size_t>
ScalingPredictor::defaultProbes(const ConfigSpace &space)
{
    const size_t cu_hi = space.numCu() - 1;
    const size_t core_hi = space.numCoreClk() - 1;
    const size_t mem_hi = space.numMemClk() - 1;
    return {
        space.flatten(0, 0, 0),
        space.flatten(cu_hi, core_hi, mem_hi),
        space.flatten(cu_hi, core_hi, 0),
        space.flatten(cu_hi, 0, mem_hi),
        space.flatten(0, core_hi, mem_hi),
        space.flatten(cu_hi / 2, core_hi / 2, mem_hi / 2),
    };
}

PredictionError
evaluatePrediction(std::span<const double> predicted,
                   std::span<const double> actual)
{
    fatal_if(predicted.size() != actual.size(),
             "evaluatePrediction: %zu predicted vs %zu actual",
             predicted.size(), actual.size());
    fatal_if(predicted.empty(), "evaluatePrediction: empty input");

    std::vector<double> apes;
    apes.reserve(predicted.size());
    for (size_t i = 0; i < predicted.size(); ++i) {
        fatal_if(actual[i] <= 0,
                 "evaluatePrediction: non-positive truth %g",
                 actual[i]);
        apes.push_back(std::abs(predicted[i] - actual[i]) / actual[i]);
    }

    PredictionError err;
    err.mape = mean(apes);
    err.median_ape = percentile(apes, 50.0);
    err.p90_ape = percentile(apes, 90.0);
    return err;
}

} // namespace scaling
} // namespace gpuscale
