/**
 * @file
 * The swept hardware-configuration grid.
 *
 * The paper's study space: 11 compute-unit settings x 9 core clocks x
 * 9 memory clocks = 891 configurations, spanning an 11x CU range, a
 * 5x core-frequency range, and an 8.33x memory-bandwidth range.
 */

#ifndef GPUSCALE_SCALING_CONFIG_SPACE_HH
#define GPUSCALE_SCALING_CONFIG_SPACE_HH

#include <cstddef>
#include <vector>

#include "gpu/config_grid.hh"
#include "gpu/gpu_config.hh"

namespace gpuscale {
namespace scaling {

/** A dense 3-axis grid of GpuConfigs. */
class ConfigSpace
{
  public:
    /**
     * Build a custom grid.  Axis vectors must be non-empty and
     * strictly increasing.
     *
     * @param cu_values compute-unit settings.
     * @param core_clks core clocks in MHz.
     * @param mem_clks memory clocks in MHz.
     * @param base template whose fixed microarchitecture parameters
     *        every grid point inherits.
     */
    ConfigSpace(std::vector<int> cu_values,
                std::vector<double> core_clks,
                std::vector<double> mem_clks,
                gpu::GpuConfig base = gpu::GpuConfig{});

    /** The paper's 891-point grid. */
    static ConfigSpace paperGrid();

    /** A coarse 3x3x3 grid for fast tests. */
    static ConfigSpace testGrid();

    size_t numCu() const { return cu_values_.size(); }
    size_t numCoreClk() const { return core_clks_.size(); }
    size_t numMemClk() const { return mem_clks_.size(); }
    size_t size() const
    {
        return numCu() * numCoreClk() * numMemClk();
    }

    const std::vector<int> &cuValues() const { return cu_values_; }
    const std::vector<double> &coreClks() const { return core_clks_; }
    const std::vector<double> &memClks() const { return mem_clks_; }

    /** Flatten (cu, core, mem) axis indices to a linear index. */
    size_t flatten(size_t cu_i, size_t core_i, size_t mem_i) const;

    /** The configuration at the given axis indices. */
    gpu::GpuConfig at(size_t cu_i, size_t core_i, size_t mem_i) const;

    /** The configuration at a linear index. */
    gpu::GpuConfig at(size_t flat) const;

    /** Axis indices for a linear index, as {cu, core, mem}. */
    struct AxisIndex { size_t cu, core, mem; };
    AxisIndex unflatten(size_t flat) const;

    /**
     * This space as the model layer's batched-evaluation grid.  The
     * flatten order is identical, so evaluateGrid() results line up
     * index-for-index with at(flat).
     */
    gpu::ConfigGrid grid() const;

    /** The largest configuration (max of every axis). */
    gpu::GpuConfig maxConfig() const;

    /** The smallest configuration (min of every axis). */
    gpu::GpuConfig minConfig() const;

  private:
    std::vector<int> cu_values_;
    std::vector<double> core_clks_;
    std::vector<double> mem_clks_;
    gpu::GpuConfig base_;
};

} // namespace scaling
} // namespace gpuscale

#endif // GPUSCALE_SCALING_CONFIG_SPACE_HH
