/**
 * @file
 * Shape classifier implementation.
 */

#include "shape.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/math_util.hh"

namespace gpuscale {
namespace scaling {

ShapeVerdict
classifyCurve(std::span<const double> knob, std::span<const double> perf,
              const ShapeParams &params)
{
    fatal_if(knob.size() != perf.size(),
             "classifyCurve: %zu knob values vs %zu perf samples",
             knob.size(), perf.size());
    fatal_if(knob.size() < 3, "classifyCurve: need >= 3 samples");
    for (size_t i = 0; i < perf.size(); ++i) {
        fatal_if(perf[i] <= 0, "classifyCurve: non-positive perf %g",
                 perf[i]);
        fatal_if(knob[i] <= 0, "classifyCurve: non-positive knob %g",
                 knob[i]);
        fatal_if(i > 0 && knob[i] <= knob[i - 1],
                 "classifyCurve: knob values must increase");
    }

    ShapeVerdict v;
    v.total_gain = perf.back() / perf.front();
    v.ideal_gain = knob.back() / knob.front();
    v.efficiency = v.total_gain / v.ideal_gain;
    v.monotone_fraction =
        monotoneIncreasingFraction(perf, params.step_tolerance);
    v.linearity_r2 = linearFit(knob, perf).r2;

    // Peak/saturation detection runs on the median-filtered curve so
    // a single noisy sample cannot masquerade as the peak (measured
    // data is the expected input).  Monotonicity stays on the raw
    // curve: sawtooth structure is real signal there.
    const std::vector<double> smooth = medianFilter3(perf);
    const double peak =
        *std::max_element(smooth.begin(), smooth.end());
    v.saturation_knob = knob.back();
    for (size_t i = 0; i < smooth.size(); ++i) {
        if (smooth[i] >= params.saturation_level * peak) {
            v.saturation_knob = knob[i];
            break;
        }
    }
    const double knee_fraction =
        (v.saturation_knob - knob.front()) /
        (knob.back() - knob.front());

    //
    // Decision ladder, most specific first.
    //
    // Adverse: the curve *ends* well below its own peak — more of the
    // resource eventually hurts.  This catches both monotone declines
    // and the rise-then-collapse curves the paper highlights.  Both
    // sides come from the smoothed curve so noise cannot fabricate
    // (or hide) the loss.
    if (smooth.back() < params.adverse_ratio * peak) {
        v.shape = CurveShape::Adverse;
        return v;
    }

    if (v.total_gain < params.flat_gain &&
        peak / perf.front() < params.flat_gain) {
        v.shape = CurveShape::Flat;
        return v;
    }

    if (v.monotone_fraction < params.monotone_fraction) {
        v.shape = CurveShape::Irregular;
        return v;
    }

    if (knee_fraction <= params.saturation_knee &&
        v.efficiency < params.linear_fraction) {
        v.shape = CurveShape::Plateau;
        return v;
    }

    if (v.efficiency >= params.linear_fraction) {
        v.shape = CurveShape::Linear;
        return v;
    }

    v.shape = CurveShape::Sublinear;
    return v;
}

std::string
shapeName(CurveShape shape)
{
    switch (shape) {
      case CurveShape::Linear:    return "linear";
      case CurveShape::Sublinear: return "sublinear";
      case CurveShape::Plateau:   return "plateau";
      case CurveShape::Flat:      return "flat";
      case CurveShape::Adverse:   return "adverse";
      case CurveShape::Irregular: return "irregular";
    }
    panic("unknown curve shape %d", static_cast<int>(shape));
}

} // namespace scaling
} // namespace gpuscale
