/**
 * @file
 * Input-scaling analysis implementation.
 */

#include "input_scaling.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "gpu/kernel_desc.hh"

namespace gpuscale {
namespace scaling {

namespace {

/**
 * Local sweep: scaling/ sits below harness/ in the layering, so the
 * trivial grid loop is inlined here rather than depending upward.
 */
ScalingSurface
sweepLocal(const gpu::PerfModel &model, const gpu::KernelDesc &kernel,
           const ConfigSpace &space)
{
    std::vector<double> runtimes(space.size());
    for (size_t i = 0; i < space.size(); ++i)
        runtimes[i] = model.estimate(kernel, space.at(i)).time_s;
    return ScalingSurface(kernel.name, space, std::move(runtimes));
}

} // namespace

InputScalingResult
studyInputScaling(const gpu::PerfModel &model,
                  const gpu::KernelDesc &kernel,
                  const ConfigSpace &space,
                  const std::vector<double> &multipliers)
{
    fatal_if(multipliers.empty(), "input scaling: no multipliers");
    for (size_t i = 0; i < multipliers.size(); ++i) {
        fatal_if(multipliers[i] <= 0,
                 "input scaling: non-positive multiplier %g",
                 multipliers[i]);
        fatal_if(i > 0 && multipliers[i] <= multipliers[i - 1],
                 "input scaling: multipliers must increase");
    }

    InputScalingResult result;
    result.kernel = kernel.name;

    const int max_cus = space.cuValues().back();
    bool any_growth = false;
    bool reached_machine = false;

    for (const double mult : multipliers) {
        gpu::KernelDesc scaled = kernel;
        scaled.num_workgroups = std::max<int64_t>(
            1, static_cast<int64_t>(
                   std::llround(kernel.num_workgroups * mult)));

        const auto surface =
            sweepLocal(model, scaled, space);
        const auto cls = classifySurface(surface);

        InputScalePoint point;
        point.input_scale = mult;
        point.workgroups = scaled.num_workgroups;
        point.cu90 = cls.cu90;
        point.cu_gain = cls.cu.total_gain;
        point.cls = cls.cls;
        result.points.push_back(point);

        // cu90 quantizes to grid steps; within one step of the full
        // machine counts as reaching it.
        if (point.cu90 >= static_cast<int>(0.9 * max_cus))
            reached_machine = true;
    }

    for (size_t i = 1; i < result.points.size(); ++i) {
        if (result.points[i].cu90 > result.points[0].cu90)
            any_growth = true;
    }

    if (reached_machine)
        result.verdict = InputVerdict::FixableByInput;
    else if (any_growth)
        result.verdict = InputVerdict::PartiallyFixable;
    else
        result.verdict = InputVerdict::AlgorithmLimited;
    return result;
}

std::string
inputVerdictName(InputVerdict verdict)
{
    switch (verdict) {
      case InputVerdict::FixableByInput:   return "fixable-by-input";
      case InputVerdict::PartiallyFixable: return "partially-fixable";
      case InputVerdict::AlgorithmLimited: return "algorithm-limited";
    }
    panic("unknown input verdict %d", static_cast<int>(verdict));
}

} // namespace scaling
} // namespace gpuscale
