/**
 * @file
 * Report emitter implementation.
 */

#include "report.hh"

#include <cstdint>
#include <map>
#include <optional>
#include <set>

#include "base/csv.hh"
#include "base/fault.hh"
#include "base/logging.hh"
#include "base/string_util.hh"
#include "obs/fault_telemetry.hh"
#include "obs/metrics.hh"

namespace gpuscale {
namespace scaling {

TextTable
configSpaceTable(const ConfigSpace &space)
{
    TextTable t;
    t.addColumn("knob");
    t.addColumn("settings", TextTable::Align::Right);
    t.addColumn("min", TextTable::Align::Right);
    t.addColumn("max", TextTable::Align::Right);
    t.addColumn("range", TextTable::Align::Right);

    t.row({"compute units",
           strprintf("%zu", space.numCu()),
           strprintf("%d", space.cuValues().front()),
           strprintf("%d", space.cuValues().back()),
           strprintf("%.2fx", static_cast<double>(
                                  space.cuValues().back()) /
                                  space.cuValues().front())});
    t.row({"core clock (MHz)",
           strprintf("%zu", space.numCoreClk()),
           strprintf("%.0f", space.coreClks().front()),
           strprintf("%.0f", space.coreClks().back()),
           strprintf("%.2fx", space.coreClks().back() /
                                  space.coreClks().front())});
    t.row({"memory clock (MHz)",
           strprintf("%zu", space.numMemClk()),
           strprintf("%.0f", space.memClks().front()),
           strprintf("%.0f", space.memClks().back()),
           strprintf("%.2fx", space.memClks().back() /
                                  space.memClks().front())});
    t.row({"total configurations",
           strprintf("%zu", space.size()), "", "", ""});
    return t;
}

TextTable
classHistogramTable(
    const std::vector<KernelClassification> &classifications)
{
    const std::vector<size_t> hist = classHistogram(classifications);
    const double total =
        static_cast<double>(classifications.size());

    TextTable t;
    t.addColumn("class");
    t.addColumn("kernels", TextTable::Align::Right);
    t.addColumn("share", TextTable::Align::Right);
    for (const auto cls : allTaxonomyClasses()) {
        const size_t n = hist[static_cast<size_t>(cls)];
        t.row({taxonomyClassName(cls), strprintf("%zu", n),
               strprintf("%.1f%%",
                         total > 0 ? 100.0 * static_cast<double>(n) /
                                         total
                                   : 0.0)});
    }
    t.row({"total", strprintf("%zu", classifications.size()), "100.0%"});
    return t;
}

TextTable
nonObviousTable(const std::vector<KernelClassification> &classifications,
                size_t max_rows)
{
    TextTable t;
    t.addColumn("kernel");
    t.addColumn("class");
    t.addColumn("cu shape");
    t.addColumn("cu gain", TextTable::Align::Right);
    t.addColumn("freq gain", TextTable::Align::Right);
    t.addColumn("mem gain", TextTable::Align::Right);

    size_t rows = 0;
    for (const auto &c : classifications) {
        const bool non_obvious =
            c.cls == TaxonomyClass::CuAdverse ||
            c.cls == TaxonomyClass::LatencyBound ||
            c.cls == TaxonomyClass::ParallelismStarved ||
            c.cls == TaxonomyClass::LaunchBound;
        if (!non_obvious)
            continue;
        if (rows++ >= max_rows)
            break;
        t.row({c.kernel, taxonomyClassName(c.cls), shapeName(c.cu.shape),
               strprintf("%.2fx", c.cu.total_gain),
               strprintf("%.2fx", c.freq.total_gain),
               strprintf("%.2fx", c.mem.total_gain)});
    }
    return t;
}

TextTable
suiteBreakdownTable(const std::vector<SuiteReport> &reports, int max_cus)
{
    TextTable t;
    t.addColumn("suite");
    t.addColumn("kernels", TextTable::Align::Right);
    for (const auto cls : allTaxonomyClasses())
        t.addColumn(taxonomyClassName(cls), TextTable::Align::Right);
    t.addColumn("median cu90", TextTable::Align::Right);
    t.addColumn("non-scaling", TextTable::Align::Right);

    for (const auto &r : reports) {
        t.beginRow();
        t.cell(r.suite);
        t.cell(strprintf("%zu", r.kernels));
        for (const auto cls : allTaxonomyClasses())
            t.cell(strprintf(
                "%zu", r.class_counts[static_cast<size_t>(cls)]));
        t.cell(strprintf("%.0f/%d", r.median_cu90, max_cus));
        t.cell(strprintf("%.0f%%", 100.0 * r.frac_non_scaling));
    }
    return t;
}

void
writeClassificationsCsv(
    std::ostream &os,
    const std::vector<KernelClassification> &classifications)
{
    CsvWriter w(os);
    w.row({"kernel", "class", "cu_shape", "freq_shape", "mem_shape",
           "cu_gain", "freq_gain", "mem_gain", "perf_range", "cu90"});
    for (const auto &c : classifications) {
        w.cell(c.kernel);
        w.cell(taxonomyClassName(c.cls));
        w.cell(shapeName(c.cu.shape));
        w.cell(shapeName(c.freq.shape));
        w.cell(shapeName(c.mem.shape));
        w.cell(c.cu.total_gain);
        w.cell(c.freq.total_gain);
        w.cell(c.mem.total_gain);
        w.cell(c.perf_range);
        w.cell(static_cast<int64_t>(c.cu90));
        w.endRow();
    }
}

void
writeSparseCensusCsv(
    std::ostream &os,
    const std::vector<SparseReconstruction> &reconstructions)
{
    CsvWriter w(os);
    w.row({"kernel", "class", "cu_shape", "freq_shape", "mem_shape",
           "cu_gain", "freq_gain", "mem_gain", "perf_range", "cu90",
           "confidence", "band_crosses", "samples"});
    for (const auto &r : reconstructions) {
        const KernelClassification &c = r.cls;
        w.cell(c.kernel);
        w.cell(taxonomyClassName(c.cls));
        w.cell(shapeName(c.cu.shape));
        w.cell(shapeName(c.freq.shape));
        w.cell(shapeName(c.mem.shape));
        w.cell(c.cu.total_gain);
        w.cell(c.freq.total_gain);
        w.cell(c.mem.total_gain);
        w.cell(c.perf_range);
        w.cell(static_cast<int64_t>(c.cu90));
        w.cell(r.confidence);
        w.cell(static_cast<int64_t>(r.band_crosses_boundary ? 1 : 0));
        w.cell(static_cast<int64_t>(r.samples));
        w.endRow();
    }
}

std::vector<ScalingSurface>
readSurfacesCsv(std::string_view text, gpu::GpuConfig base)
{
    const CsvDocument doc = parseCsv(text);
    const size_t col_kernel = doc.columnIndex("kernel");
    const size_t col_cus = doc.columnIndex("cus");
    const size_t col_core = doc.columnIndex("core_mhz");
    const size_t col_mem = doc.columnIndex("mem_mhz");
    const size_t col_rt = doc.columnIndex("runtime_s");

    static obs::Counter &rows_skipped =
        obs::Registry::instance().counter(
            "csv.rows.skipped",
            "malformed surface-CSV rows skipped during ingest");
    const uint64_t skipped_before = rows_skipped.value();

    // One validated row; `line` points back at the source for
    // warnings.
    struct GoodRow {
        const std::vector<std::string> *cells;
        int cus;
        double core;
        double mem;
        double rt;
        size_t line;
    };

    // Locale-independent field parse; atof would read "1,5" as 1
    // under e.g. de_DE and silently bend the whole grid.  Returns
    // nullopt instead of aborting so one mangled row costs one grid
    // point, not the whole report.
    auto csvInt = [](const std::string &field) -> std::optional<int> {
        const auto v = parseDouble(field);
        if (!v || *v != static_cast<int>(*v))
            return std::nullopt;
        return static_cast<int>(*v);
    };

    // Single validation pass: a row with any malformed number (or an
    // injected ingest fault) is skipped with a line-numbered warning
    // and counted, never silently dropped.
    std::vector<GoodRow> good;
    good.reserve(doc.rows.size());
    for (size_t r = 0; r < doc.rows.size(); ++r) {
        const auto &row = doc.rows[r];
        const size_t line = r < doc.row_lines.size()
                                ? doc.row_lines[r] : r + 2;
        const auto cus = csvInt(row[col_cus]);
        const auto core = parseDouble(row[col_core]);
        const auto mem = parseDouble(row[col_mem]);
        const auto rt = parseDouble(row[col_rt]);
        const bool injected = faultPoint("csv.ingest.row");
        if (injected || !cus || !core || !mem || !rt) {
            warn("surface CSV line %zu: %s; row skipped", line,
                 injected ? "injected ingest fault"
                          : "malformed number");
            rows_skipped.inc();
            obs::noteDegradation("csv.ingest.row");
            continue;
        }
        good.push_back({&row, *cus, *core, *mem, *rt, line});
    }

    // Infer the grid axes from the distinct knob values of the rows
    // that survived validation.
    std::set<int> cu_set;
    std::set<double> core_set, mem_set;
    for (const auto &g : good) {
        cu_set.insert(g.cus);
        core_set.insert(g.core);
        mem_set.insert(g.mem);
    }
    const ConfigSpace space(
        std::vector<int>(cu_set.begin(), cu_set.end()),
        std::vector<double>(core_set.begin(), core_set.end()),
        std::vector<double>(mem_set.begin(), mem_set.end()), base);

    auto axisIndex = [](const auto &values, auto v, const char *name) {
        for (size_t i = 0; i < values.size(); ++i) {
            if (values[i] == v)
                return i;
        }
        fatal("surface CSV: %s value not on the inferred axis", name);
    };

    // Collect samples per kernel, preserving first-seen order.
    std::vector<std::string> order;
    std::map<std::string, std::vector<double>> samples;
    std::map<std::string, size_t> filled;
    for (const auto &g : good) {
        const std::string &kernel = (*g.cells)[col_kernel];
        auto it = samples.find(kernel);
        if (it == samples.end()) {
            order.push_back(kernel);
            it = samples.emplace(kernel,
                                 std::vector<double>(space.size(), 0.0))
                     .first;
        }
        const size_t flat = space.flatten(
            axisIndex(space.cuValues(), g.cus, "cus"),
            axisIndex(space.coreClks(), g.core, "core_mhz"),
            axisIndex(space.memClks(), g.mem, "mem_mhz"));
        fatal_if(it->second[flat] != 0.0,
                 "surface CSV: duplicate sample for %s at %zu",
                 kernel.c_str(), flat);
        it->second[flat] = g.rt;
        ++filled[kernel];
    }

    const uint64_t skipped = rows_skipped.value() - skipped_before;
    std::vector<ScalingSurface> surfaces;
    surfaces.reserve(order.size());
    for (const auto &kernel : order) {
        if (filled[kernel] != space.size()) {
            // With skipped rows the hole is explained and the kernel
            // degrades to "not reported"; without any, the file is
            // truncated and silently continuing would misattribute
            // samples.
            fatal_if(skipped == 0,
                     "surface CSV: kernel %s covers %zu of %zu grid "
                     "points",
                     kernel.c_str(), filled[kernel], space.size());
            warn("surface CSV: kernel %s covers %zu of %zu grid "
                 "points after skipped rows; kernel dropped",
                 kernel.c_str(), filled[kernel], space.size());
            obs::noteDegradation("csv.ingest.kernel");
            continue;
        }
        surfaces.emplace_back(kernel, space,
                              std::move(samples[kernel]));
    }
    return surfaces;
}

void
writeSurfaceCsv(std::ostream &os, const ScalingSurface &surface)
{
    CsvWriter w(os);
    w.row({"kernel", "cus", "core_mhz", "mem_mhz", "runtime_s"});
    const ConfigSpace &space = surface.space();
    for (size_t i = 0; i < space.size(); ++i) {
        const auto idx = space.unflatten(i);
        w.cell(surface.kernelName());
        w.cell(static_cast<int64_t>(space.cuValues()[idx.cu]));
        w.cell(space.coreClks()[idx.core]);
        w.cell(space.memClks()[idx.mem]);
        w.cell(surface.runtimes()[i]);
        w.endRow();
    }
}

} // namespace scaling
} // namespace gpuscale
