/**
 * @file
 * Report emitter implementation.
 */

#include "report.hh"

#include <cstdlib>
#include <map>
#include <set>

#include "base/csv.hh"
#include "base/logging.hh"
#include "base/string_util.hh"

namespace gpuscale {
namespace scaling {

TextTable
configSpaceTable(const ConfigSpace &space)
{
    TextTable t;
    t.addColumn("knob");
    t.addColumn("settings", TextTable::Align::Right);
    t.addColumn("min", TextTable::Align::Right);
    t.addColumn("max", TextTable::Align::Right);
    t.addColumn("range", TextTable::Align::Right);

    t.row({"compute units",
           strprintf("%zu", space.numCu()),
           strprintf("%d", space.cuValues().front()),
           strprintf("%d", space.cuValues().back()),
           strprintf("%.2fx", static_cast<double>(
                                  space.cuValues().back()) /
                                  space.cuValues().front())});
    t.row({"core clock (MHz)",
           strprintf("%zu", space.numCoreClk()),
           strprintf("%.0f", space.coreClks().front()),
           strprintf("%.0f", space.coreClks().back()),
           strprintf("%.2fx", space.coreClks().back() /
                                  space.coreClks().front())});
    t.row({"memory clock (MHz)",
           strprintf("%zu", space.numMemClk()),
           strprintf("%.0f", space.memClks().front()),
           strprintf("%.0f", space.memClks().back()),
           strprintf("%.2fx", space.memClks().back() /
                                  space.memClks().front())});
    t.row({"total configurations",
           strprintf("%zu", space.size()), "", "", ""});
    return t;
}

TextTable
classHistogramTable(
    const std::vector<KernelClassification> &classifications)
{
    const std::vector<size_t> hist = classHistogram(classifications);
    const double total =
        static_cast<double>(classifications.size());

    TextTable t;
    t.addColumn("class");
    t.addColumn("kernels", TextTable::Align::Right);
    t.addColumn("share", TextTable::Align::Right);
    for (const auto cls : allTaxonomyClasses()) {
        const size_t n = hist[static_cast<size_t>(cls)];
        t.row({taxonomyClassName(cls), strprintf("%zu", n),
               strprintf("%.1f%%",
                         total > 0 ? 100.0 * static_cast<double>(n) /
                                         total
                                   : 0.0)});
    }
    t.row({"total", strprintf("%zu", classifications.size()), "100.0%"});
    return t;
}

TextTable
nonObviousTable(const std::vector<KernelClassification> &classifications,
                size_t max_rows)
{
    TextTable t;
    t.addColumn("kernel");
    t.addColumn("class");
    t.addColumn("cu shape");
    t.addColumn("cu gain", TextTable::Align::Right);
    t.addColumn("freq gain", TextTable::Align::Right);
    t.addColumn("mem gain", TextTable::Align::Right);

    size_t rows = 0;
    for (const auto &c : classifications) {
        const bool non_obvious =
            c.cls == TaxonomyClass::CuAdverse ||
            c.cls == TaxonomyClass::LatencyBound ||
            c.cls == TaxonomyClass::ParallelismStarved ||
            c.cls == TaxonomyClass::LaunchBound;
        if (!non_obvious)
            continue;
        if (rows++ >= max_rows)
            break;
        t.row({c.kernel, taxonomyClassName(c.cls), shapeName(c.cu.shape),
               strprintf("%.2fx", c.cu.total_gain),
               strprintf("%.2fx", c.freq.total_gain),
               strprintf("%.2fx", c.mem.total_gain)});
    }
    return t;
}

TextTable
suiteBreakdownTable(const std::vector<SuiteReport> &reports, int max_cus)
{
    TextTable t;
    t.addColumn("suite");
    t.addColumn("kernels", TextTable::Align::Right);
    for (const auto cls : allTaxonomyClasses())
        t.addColumn(taxonomyClassName(cls), TextTable::Align::Right);
    t.addColumn("median cu90", TextTable::Align::Right);
    t.addColumn("non-scaling", TextTable::Align::Right);

    for (const auto &r : reports) {
        t.beginRow();
        t.cell(r.suite);
        t.cell(strprintf("%zu", r.kernels));
        for (const auto cls : allTaxonomyClasses())
            t.cell(strprintf(
                "%zu", r.class_counts[static_cast<size_t>(cls)]));
        t.cell(strprintf("%.0f/%d", r.median_cu90, max_cus));
        t.cell(strprintf("%.0f%%", 100.0 * r.frac_non_scaling));
    }
    return t;
}

void
writeClassificationsCsv(
    std::ostream &os,
    const std::vector<KernelClassification> &classifications)
{
    CsvWriter w(os);
    w.row({"kernel", "class", "cu_shape", "freq_shape", "mem_shape",
           "cu_gain", "freq_gain", "mem_gain", "perf_range", "cu90"});
    for (const auto &c : classifications) {
        w.cell(c.kernel);
        w.cell(taxonomyClassName(c.cls));
        w.cell(shapeName(c.cu.shape));
        w.cell(shapeName(c.freq.shape));
        w.cell(shapeName(c.mem.shape));
        w.cell(c.cu.total_gain);
        w.cell(c.freq.total_gain);
        w.cell(c.mem.total_gain);
        w.cell(c.perf_range);
        w.cell(static_cast<int64_t>(c.cu90));
        w.endRow();
    }
}

std::vector<ScalingSurface>
readSurfacesCsv(std::string_view text, gpu::GpuConfig base)
{
    const CsvDocument doc = parseCsv(text);
    const size_t col_kernel = doc.columnIndex("kernel");
    const size_t col_cus = doc.columnIndex("cus");
    const size_t col_core = doc.columnIndex("core_mhz");
    const size_t col_mem = doc.columnIndex("mem_mhz");
    const size_t col_rt = doc.columnIndex("runtime_s");

    // Locale-independent field parse; atof would read "1,5" as 1
    // under e.g. de_DE and silently bend the whole grid.
    auto csvDouble = [](const std::string &field) {
        const auto v = parseDouble(field);
        fatal_if(!v, "surface CSV: malformed number '%s'",
                 field.c_str());
        return *v;
    };

    // Infer the grid axes from the distinct knob values.
    std::set<int> cu_set;
    std::set<double> core_set, mem_set;
    for (const auto &row : doc.rows) {
        cu_set.insert(std::atoi(row[col_cus].c_str()));
        core_set.insert(csvDouble(row[col_core]));
        mem_set.insert(csvDouble(row[col_mem]));
    }
    const ConfigSpace space(
        std::vector<int>(cu_set.begin(), cu_set.end()),
        std::vector<double>(core_set.begin(), core_set.end()),
        std::vector<double>(mem_set.begin(), mem_set.end()), base);

    auto axisIndex = [](const auto &values, auto v, const char *name) {
        for (size_t i = 0; i < values.size(); ++i) {
            if (values[i] == v)
                return i;
        }
        fatal("surface CSV: %s value not on the inferred axis", name);
    };

    // Collect samples per kernel, preserving first-seen order.
    std::vector<std::string> order;
    std::map<std::string, std::vector<double>> samples;
    std::map<std::string, size_t> filled;
    for (const auto &row : doc.rows) {
        const std::string &kernel = row[col_kernel];
        auto it = samples.find(kernel);
        if (it == samples.end()) {
            order.push_back(kernel);
            it = samples.emplace(kernel,
                                 std::vector<double>(space.size(), 0.0))
                     .first;
        }
        const size_t flat = space.flatten(
            axisIndex(space.cuValues(),
                      std::atoi(row[col_cus].c_str()), "cus"),
            axisIndex(space.coreClks(), csvDouble(row[col_core]),
                      "core_mhz"),
            axisIndex(space.memClks(), csvDouble(row[col_mem]),
                      "mem_mhz"));
        fatal_if(it->second[flat] != 0.0,
                 "surface CSV: duplicate sample for %s at %zu",
                 kernel.c_str(), flat);
        it->second[flat] = csvDouble(row[col_rt]);
        ++filled[kernel];
    }

    std::vector<ScalingSurface> surfaces;
    surfaces.reserve(order.size());
    for (const auto &kernel : order) {
        fatal_if(filled[kernel] != space.size(),
                 "surface CSV: kernel %s covers %zu of %zu grid points",
                 kernel.c_str(), filled[kernel], space.size());
        surfaces.emplace_back(kernel, space,
                              std::move(samples[kernel]));
    }
    return surfaces;
}

void
writeSurfaceCsv(std::ostream &os, const ScalingSurface &surface)
{
    CsvWriter w(os);
    w.row({"kernel", "cus", "core_mhz", "mem_mhz", "runtime_s"});
    const ConfigSpace &space = surface.space();
    for (size_t i = 0; i < space.size(); ++i) {
        const auto idx = space.unflatten(i);
        w.cell(surface.kernelName());
        w.cell(static_cast<int64_t>(space.cuValues()[idx.cu]));
        w.cell(space.coreClks()[idx.core]);
        w.cell(space.memClks()[idx.mem]);
        w.cell(surface.runtimes()[i]);
        w.endRow();
    }
}

} // namespace scaling
} // namespace gpuscale
