/**
 * @file
 * SparsePredictor implementation.
 *
 * Determinism rules (the property tests assert all of these):
 * samples are canonicalized to ascending flat order before any
 * arithmetic, every reduction is an explicitly-ordered loop, the
 * backfit runs a fixed iteration count, and all randomness flows
 * through seeded Rng streams derived from (options.seed, kernel
 * name, ensemble member) — never from global state.
 */

#include "sparse_predictor.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/logging.hh"
#include "base/random.hh"

namespace gpuscale {
namespace scaling {

namespace {

/** FNV-1a over a name: the per-kernel salt for ensemble streams. */
uint64_t
nameSalt(const std::string &name)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (const char ch : name) {
        h ^= static_cast<unsigned char>(ch);
        h *= 0x100000001b3ull;
    }
    return h;
}

/**
 * Fill unsampled axis levels by linear interpolation over the knob
 * values of the sampled ones (nearest-neighbour at the ends: flat
 * extrapolation is conservative where the data says nothing).
 */
void
fillMissingLevels(std::vector<double> &effect,
                  const std::vector<double> &knob,
                  const std::vector<double> &den)
{
    const size_t n = effect.size();
    size_t fitted = 0;
    for (size_t l = 0; l < n; ++l)
        fitted += den[l] > 0;
    if (fitted == n)
        return;
    if (fitted == 0) {
        for (size_t l = 0; l < n; ++l)
            effect[l] = 0.0;
        return;
    }
    for (size_t l = 0; l < n; ++l) {
        if (den[l] > 0)
            continue;
        // Nearest fitted level on each side.
        size_t lo = n, hi = n;
        for (size_t s = l; s-- > 0;) {
            if (den[s] > 0) {
                lo = s;
                break;
            }
        }
        for (size_t s = l + 1; s < n; ++s) {
            if (den[s] > 0) {
                hi = s;
                break;
            }
        }
        if (lo < n && hi < n) {
            const double t =
                (knob[l] - knob[lo]) / (knob[hi] - knob[lo]);
            effect[l] = effect[lo] + t * (effect[hi] - effect[lo]);
        } else if (lo < n) {
            effect[l] = effect[lo];
        } else {
            effect[l] = effect[hi];
        }
    }
}

} // namespace

std::string
samplerKindName(SamplerKind kind)
{
    switch (kind) {
      case SamplerKind::Lhs:    return "lhs";
      case SamplerKind::Active: return "active";
    }
    panic("unknown sampler kind %d", static_cast<int>(kind));
}

bool
parseSamplerKind(const std::string &name, SamplerKind *out)
{
    if (name == "lhs") {
        *out = SamplerKind::Lhs;
        return true;
    }
    if (name == "active") {
        *out = SamplerKind::Active;
        return true;
    }
    return false;
}

/** Canonical sample set: ascending flat order, axis indices cached. */
struct SparsePredictor::Samples {
    std::vector<size_t> flat;    ///< ascending, distinct
    std::vector<size_t> cu_i, core_i, mem_i;
    std::vector<double> log_rt;
    std::vector<double> runtime;

    size_t size() const { return flat.size(); }
};

SparsePredictor::SparsePredictor(ConfigSpace space,
                                 SparseFitOptions options)
    : space_(std::move(space)), options_(options)
{
    fatal_if(options_.ensemble < 2,
             "sparse: ensemble must have at least 2 members, got %zu",
             options_.ensemble);
    fatal_if(options_.backfit_iterations == 0,
             "sparse: backfit_iterations must be positive");
    fatal_if(options_.ridge < 0, "sparse: negative ridge %g",
             options_.ridge);
}

SparsePredictor::Samples
SparsePredictor::canonicalize(std::span<const size_t> indices,
                              std::span<const double> runtimes) const
{
    fatal_if(indices.size() != runtimes.size(),
             "sparse: %zu sample indices vs %zu runtimes",
             indices.size(), runtimes.size());
    fatal_if(indices.empty(), "sparse: no samples");

    std::vector<std::pair<size_t, double>> rows;
    rows.reserve(indices.size());
    for (size_t s = 0; s < indices.size(); ++s) {
        fatal_if(indices[s] >= space_.size(),
                 "sparse: sample index %zu outside the %zu-point grid",
                 indices[s], space_.size());
        fatal_if(!(runtimes[s] > 0),
                 "sparse: non-positive runtime %g at index %zu",
                 runtimes[s], indices[s]);
        rows.emplace_back(indices[s], runtimes[s]);
    }
    std::sort(rows.begin(), rows.end());

    Samples out;
    for (const auto &[flat, rt] : rows) {
        if (!out.flat.empty() && out.flat.back() == flat) {
            fatal_if(out.runtime.back() != rt,
                     "sparse: conflicting runtimes %g vs %g for "
                     "config %zu",
                     out.runtime.back(), rt, flat);
            continue;
        }
        const auto axis = space_.unflatten(flat);
        out.flat.push_back(flat);
        out.cu_i.push_back(axis.cu);
        out.core_i.push_back(axis.core);
        out.mem_i.push_back(axis.mem);
        out.runtime.push_back(rt);
        out.log_rt.push_back(std::log(rt));
    }
    return out;
}

std::vector<size_t>
SparsePredictor::anchorConfigs() const
{
    const size_t cu_hi = space_.numCu() - 1;
    const size_t core_hi = space_.numCoreClk() - 1;
    const size_t mem_hi = space_.numMemClk() - 1;

    std::vector<size_t> anchors;
    // The three curves classifySurface() reads: cuCurveAtMax,
    // freqCurveAtMax, memCurveAtMax.
    for (size_t i = 0; i < space_.numCu(); ++i)
        anchors.push_back(space_.flatten(i, core_hi, mem_hi));
    for (size_t j = 0; j < space_.numCoreClk(); ++j)
        anchors.push_back(space_.flatten(cu_hi, j, mem_hi));
    for (size_t k = 0; k < space_.numMemClk(); ++k)
        anchors.push_back(space_.flatten(cu_hi, core_hi, k));
    // The min corner pins the whole-grid range the LaunchBound test
    // reads; cheap insurance for one extra point.
    anchors.push_back(space_.flatten(0, 0, 0));

    std::sort(anchors.begin(), anchors.end());
    anchors.erase(std::unique(anchors.begin(), anchors.end()),
                  anchors.end());
    return anchors;
}

std::vector<size_t>
SparsePredictor::lhsCandidates(size_t count, Rng &rng) const
{
    // Classic Latin hypercube: per axis, a random permutation of
    // `count` strata with a uniform jitter inside each, mapped onto
    // that axis's levels.  Strata cover [0, 1) in 1/count steps, so
    // with count >= levels every level is drawn at least once.
    auto axisDraw = [&](size_t levels) {
        std::vector<size_t> perm(count);
        for (size_t s = 0; s < count; ++s)
            perm[s] = s;
        for (size_t s = count; s-- > 1;) {
            const size_t j = static_cast<size_t>(
                rng.uniformInt(0, static_cast<int64_t>(s)));
            std::swap(perm[s], perm[j]);
        }
        std::vector<size_t> out(count);
        for (size_t s = 0; s < count; ++s) {
            const double u = (static_cast<double>(perm[s]) +
                              rng.uniform()) /
                             static_cast<double>(count);
            out[s] = std::min(
                levels - 1,
                static_cast<size_t>(u * static_cast<double>(levels)));
        }
        return out;
    };

    const auto cu = axisDraw(space_.numCu());
    const auto core = axisDraw(space_.numCoreClk());
    const auto mem = axisDraw(space_.numMemClk());

    std::vector<size_t> flats(count);
    for (size_t s = 0; s < count; ++s)
        flats[s] = space_.flatten(cu[s], core[s], mem[s]);
    return flats;
}

std::vector<size_t>
SparsePredictor::lhsPlan(size_t budget) const
{
    fatal_if(budget < minSamples(),
             "sparse: budget %zu below the minimum %zu "
             "(anchor slices + 1)",
             budget, minSamples());
    fatal_if(budget > space_.size(),
             "sparse: budget %zu exceeds the %zu-point grid", budget,
             space_.size());

    std::vector<char> selected(space_.size(), 0);
    std::vector<size_t> plan = anchorConfigs();
    for (const size_t flat : plan)
        selected[flat] = 1;

    Rng rng(options_.seed);
    // Fresh stratified draws until the budget is filled; collisions
    // with the anchors (or earlier draws) are skipped.  The bounded
    // retry keeps the plan a pure function of (space, seed, budget);
    // the exhaustive tail walk guarantees termination even for
    // budgets near the full grid.
    for (int round = 0; round < 16 && plan.size() < budget; ++round) {
        const auto candidates = lhsCandidates(budget, rng);
        for (const size_t flat : candidates) {
            if (plan.size() >= budget)
                break;
            if (selected[flat])
                continue;
            selected[flat] = 1;
            plan.push_back(flat);
        }
    }
    for (size_t flat = 0; flat < selected.size() && plan.size() < budget;
         ++flat)
    {
        if (!selected[flat]) {
            selected[flat] = 1;
            plan.push_back(flat);
        }
    }
    return plan;
}

std::vector<double>
SparsePredictor::fitLogAdditive(const Samples &samples,
                                std::span<const double> weights) const
{
    fatal_if(!weights.empty() && weights.size() != samples.size(),
             "sparse: %zu weights vs %zu samples", weights.size(),
             samples.size());
    auto weightOf = [&](size_t s) {
        return weights.empty() ? 1.0 : weights[s];
    };

    const size_t n = samples.size();
    double wsum = 0, ysum = 0;
    for (size_t s = 0; s < n; ++s) {
        wsum += weightOf(s);
        ysum += weightOf(s) * samples.log_rt[s];
    }
    fatal_if(wsum <= 0, "sparse: all sample weights are zero");
    double mu = ysum / wsum;

    // Knob values per axis, for missing-level interpolation.
    std::vector<double> cu_knob(space_.cuValues().begin(),
                                space_.cuValues().end());
    const std::vector<double> &core_knob = space_.coreClks();
    const std::vector<double> &mem_knob = space_.memClks();

    std::vector<double> a(space_.numCu(), 0.0);
    std::vector<double> b(space_.numCoreClk(), 0.0);
    std::vector<double> c(space_.numMemClk(), 0.0);

    // Backfitting: each sweep re-estimates one axis's level effects
    // from the residuals of the other two, with a ridge term damping
    // sparsely-observed levels.  A fixed sweep count (no convergence
    // test) keeps the fit bitwise deterministic.
    std::vector<double> num, den;
    auto sweepAxis = [&](std::vector<double> &effect,
                         const std::vector<size_t> &level_of,
                         const std::vector<double> &knob,
                         const std::vector<double> &other1,
                         const std::vector<size_t> &other1_of,
                         const std::vector<double> &other2,
                         const std::vector<size_t> &other2_of) {
        num.assign(effect.size(), 0.0);
        den.assign(effect.size(), 0.0);
        for (size_t s = 0; s < n; ++s) {
            const double w = weightOf(s);
            if (w <= 0)
                continue;
            const double r = samples.log_rt[s] - mu -
                             other1[other1_of[s]] -
                             other2[other2_of[s]];
            num[level_of[s]] += w * r;
            den[level_of[s]] += w;
        }
        for (size_t l = 0; l < effect.size(); ++l) {
            if (den[l] > 0)
                effect[l] = num[l] / (den[l] + options_.ridge);
        }
        fillMissingLevels(effect, knob, den);
        // Re-centre so the gauge freedom (a constant can slosh
        // between mu and any axis) cannot drift across sweeps.
        double esum = 0, ewsum = 0;
        for (size_t l = 0; l < effect.size(); ++l) {
            esum += den[l] * effect[l];
            ewsum += den[l];
        }
        if (ewsum > 0) {
            const double shift = esum / ewsum;
            for (size_t l = 0; l < effect.size(); ++l)
                effect[l] -= shift;
            mu += shift;
        }
    };

    for (size_t iter = 0; iter < options_.backfit_iterations; ++iter) {
        sweepAxis(a, samples.cu_i, cu_knob, b, samples.core_i, c,
                  samples.mem_i);
        sweepAxis(b, samples.core_i, core_knob, a, samples.cu_i, c,
                  samples.mem_i);
        sweepAxis(c, samples.mem_i, mem_knob, a, samples.cu_i, b,
                  samples.core_i);
    }

    std::vector<double> out(space_.size());
    size_t flat = 0;
    for (size_t i = 0; i < space_.numCu(); ++i) {
        for (size_t j = 0; j < space_.numCoreClk(); ++j) {
            for (size_t k = 0; k < space_.numMemClk(); ++k) {
                out[flat] = std::exp(mu + a[i] + b[j] + c[k]);
                ++flat;
            }
        }
    }
    return out;
}

std::vector<double>
SparsePredictor::fitSurface(std::span<const size_t> indices,
                            std::span<const double> runtimes) const
{
    const Samples samples = canonicalize(indices, runtimes);
    std::vector<double> out = fitLogAdditive(samples, {});
    // Measured points pass through bitwise: the reconstruction never
    // contradicts a measurement, and a full-grid fit *is* the dense
    // census.
    for (size_t s = 0; s < samples.size(); ++s)
        out[samples.flat[s]] = samples.runtime[s];
    return out;
}

std::vector<std::vector<double>>
SparsePredictor::ensembleSurfaces(const std::string &kernel_name,
                                  const Samples &samples) const
{
    const uint64_t salt = nameSalt(kernel_name);
    std::vector<std::vector<double>> members;
    members.reserve(options_.ensemble);
    std::vector<double> weights(samples.size());
    for (size_t m = 0; m < options_.ensemble; ++m) {
        // One independent stream per (seed, kernel, member): the
        // resample is invariant to sample order because it indexes
        // the canonical (sorted) sample list.
        Rng rng(options_.seed ^ salt ^
                (0x9e3779b97f4a7c15ull * (m + 1)));
        std::fill(weights.begin(), weights.end(), 0.0);
        for (size_t s = 0; s < samples.size(); ++s) {
            const size_t pick = static_cast<size_t>(rng.uniformInt(
                0, static_cast<int64_t>(samples.size()) - 1));
            weights[pick] += 1.0;
        }
        std::vector<double> member = fitLogAdditive(samples, weights);
        // Members honour the measurements too: bands collapse to
        // zero width where the truth is known.
        for (size_t s = 0; s < samples.size(); ++s)
            member[samples.flat[s]] = samples.runtime[s];
        members.push_back(std::move(member));
    }
    return members;
}

std::vector<size_t>
SparsePredictor::activePlan(
    size_t budget, const std::function<double(size_t)> &measure) const
{
    fatal_if(budget < minSamples(),
             "sparse: budget %zu below the minimum %zu "
             "(anchor slices + 1)",
             budget, minSamples());
    fatal_if(budget > space_.size(),
             "sparse: budget %zu exceeds the %zu-point grid", budget,
             space_.size());
    fatal_if(!measure, "sparse: active plan needs a measure callback");

    std::vector<char> selected(space_.size(), 0);
    std::vector<size_t> plan;
    std::vector<double> measured;
    auto take = [&](size_t flat) {
        selected[flat] = 1;
        plan.push_back(flat);
        measured.push_back(measure(flat));
    };

    for (const size_t flat : anchorConfigs())
        take(flat);

    // Seed: a third of the free budget by LHS, so the first ensemble
    // fit has off-slice support before the greedy loop steers.
    const size_t free_budget = budget - plan.size();
    const size_t seed_count = free_budget / 3;
    Rng rng(options_.seed);
    for (int round = 0;
         round < 16 && plan.size() < anchorConfigs().size() + seed_count;
         ++round)
    {
        const auto candidates = lhsCandidates(budget, rng);
        for (const size_t flat : candidates) {
            if (plan.size() >= anchorConfigs().size() + seed_count)
                break;
            if (selected[flat])
                continue;
            take(flat);
        }
    }

    // Greedy: measure next where the bootstrap ensemble disagrees
    // most (widest log-runtime spread); ties break toward the lowest
    // flat index so the sequence is deterministic.
    while (plan.size() < budget) {
        const Samples samples = canonicalize(plan, measured);
        const auto members = ensembleSurfaces("", samples);
        size_t best = space_.size();
        double best_spread = -1.0;
        for (size_t flat = 0; flat < space_.size(); ++flat) {
            if (selected[flat])
                continue;
            double lo = std::numeric_limits<double>::infinity();
            double hi = -std::numeric_limits<double>::infinity();
            for (const auto &member : members) {
                const double y = std::log(member[flat]);
                lo = std::min(lo, y);
                hi = std::max(hi, y);
            }
            const double spread = hi - lo;
            if (spread > best_spread) {
                best_spread = spread;
                best = flat;
            }
        }
        if (best == space_.size())
            break; // every configuration measured
        take(best);
    }
    return plan;
}

SparseReconstruction
SparsePredictor::reconstruct(const std::string &kernel_name,
                             std::span<const size_t> indices,
                             std::span<const double> runtimes,
                             const TaxonomyParams &params) const
{
    const Samples samples = canonicalize(indices, runtimes);

    std::vector<double> point = fitLogAdditive(samples, {});
    for (size_t s = 0; s < samples.size(); ++s)
        point[samples.flat[s]] = samples.runtime[s];

    const auto members = ensembleSurfaces(kernel_name, samples);

    std::vector<double> lower = point;
    std::vector<double> upper = point;
    for (const auto &member : members) {
        for (size_t j = 0; j < member.size(); ++j) {
            lower[j] = std::min(lower[j], member[j]);
            upper[j] = std::max(upper[j], member[j]);
        }
    }

    SparseReconstruction out{
        ScalingSurface(kernel_name, space_, std::move(point)),
        std::move(lower),
        std::move(upper),
        {},
        1.0,
        false,
        samples.size(),
    };
    out.cls = classifySurface(out.surface, params);

    size_t votes = 0;
    bool member_crosses = false;
    for (size_t m = 0; m < members.size(); ++m) {
        const KernelClassification mc = classifySurface(
            ScalingSurface(kernel_name, space_, members[m]), params);
        if (mc.cls == out.cls.cls)
            ++votes;
        else
            member_crosses = true;
    }
    out.confidence = static_cast<double>(votes) /
                     static_cast<double>(members.size());

    // Adversarial range surfaces.  The ensemble members share the
    // separable fit's bias, so the envelope alone can miss boundary
    // kernels whose whole-grid sensitivity (robustPerfRange, the
    // LaunchBound test) sits near a threshold: scaling every point by
    // a common factor cancels in perf ratios.  Instead, push each
    // point to the band edge that widens (spread) or narrows (shrunk)
    // the grid's dynamic range — fast points faster / slow points
    // slower, and vice versa.  Measured points have zero-width bands,
    // so the anchor curves (and the shape verdicts read from them)
    // are untouched; only the range statistic moves.
    const std::vector<double> &estimate = out.surface.runtimes();
    double mean_log = 0.0;
    for (size_t j = 0; j < estimate.size(); ++j)
        mean_log += std::log(estimate[j]);
    mean_log /= static_cast<double>(estimate.size());
    std::vector<double> spread(estimate.size());
    std::vector<double> shrunk(estimate.size());
    for (size_t j = 0; j < estimate.size(); ++j) {
        const bool fast = std::log(estimate[j]) <= mean_log;
        spread[j] = fast ? out.lower[j] : out.upper[j];
        shrunk[j] = fast ? out.upper[j] : out.lower[j];
    }

    const std::vector<std::vector<double> *> band_surfaces = {
        &out.lower, &out.upper, &spread, &shrunk};
    bool band_crosses = member_crosses;
    for (const auto *runtimes : band_surfaces) {
        const KernelClassification bc = classifySurface(
            ScalingSurface(kernel_name, space_, *runtimes), params);
        band_crosses = band_crosses || bc.cls != out.cls.cls;
    }
    out.band_crosses_boundary = band_crosses;
    return out;
}

} // namespace scaling
} // namespace gpuscale
