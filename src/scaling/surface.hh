/**
 * @file
 * ScalingSurface: one kernel's runtime over the configuration grid.
 *
 * The surface is the taxonomy engine's only input — it is exactly the
 * data a real study gathers by timing a kernel on every hardware
 * configuration, so the classifier works identically on simulated and
 * measured data.
 */

#ifndef GPUSCALE_SCALING_SURFACE_HH
#define GPUSCALE_SCALING_SURFACE_HH

#include <string>
#include <vector>

#include "config_space.hh"

namespace gpuscale {
namespace scaling {

/** Runtime samples for one kernel over a ConfigSpace. */
class ScalingSurface
{
  public:
    /**
     * @param kernel_name canonical kernel name.
     * @param space the grid the samples cover.
     * @param runtimes_s per-configuration runtimes in seconds,
     *        indexed by ConfigSpace::flatten order; all positive.
     */
    ScalingSurface(std::string kernel_name, ConfigSpace space,
                   std::vector<double> runtimes_s);

    const std::string &kernelName() const { return kernel_name_; }
    const ConfigSpace &space() const { return space_; }
    const std::vector<double> &runtimes() const { return runtimes_; }

    /** Runtime at axis indices, seconds. */
    double runtimeAt(size_t cu_i, size_t core_i, size_t mem_i) const;

    /** Performance (1/runtime) at axis indices. */
    double perfAt(size_t cu_i, size_t core_i, size_t mem_i) const;

    //
    // Curve extraction: performance along one axis with the other two
    // fixed.  The default slices fix the other axes at their maxima,
    // matching the paper's presentation (e.g., CU scaling measured at
    // the highest clocks, where CU differences are most visible).
    //

    /** Performance vs compute units at fixed clock indices. */
    std::vector<double> cuCurve(size_t core_i, size_t mem_i) const;

    /** Performance vs core clock at fixed CU/memory indices. */
    std::vector<double> freqCurve(size_t cu_i, size_t mem_i) const;

    /** Performance vs memory clock at fixed CU/core indices. */
    std::vector<double> memCurve(size_t cu_i, size_t core_i) const;

    /** CU curve at maximum clocks. */
    std::vector<double> cuCurveAtMax() const;

    /** Frequency curve at maximum CUs and memory clock. */
    std::vector<double> freqCurveAtMax() const;

    /** Memory curve at maximum CUs and core clock. */
    std::vector<double> memCurveAtMax() const;

    /** Best performance over the whole grid. */
    double bestPerf() const;

    /** Worst performance over the whole grid. */
    double worstPerf() const;

    /** bestPerf / worstPerf: total sensitivity to the grid. */
    double perfRange() const;

    /**
     * Robust sensitivity: the p-th / (100-p)-th percentile perf
     * ratio.  On measured data the extreme of 891 noisy samples is a
     * tail statistic; classification uses this instead of the raw
     * max/min so a handful of outliers cannot fake sensitivity.
     */
    double robustPerfRange(double tail_percent = 2.0) const;

    /**
     * Heatmap slice: performance over (core clock x memory clock) at a
     * fixed CU index, row-major rows = core clocks.
     */
    std::vector<double> clockPlane(size_t cu_i) const;

  private:
    std::string kernel_name_;
    ConfigSpace space_;
    std::vector<double> runtimes_;
};

} // namespace scaling
} // namespace gpuscale

#endif // GPUSCALE_SCALING_SURFACE_HH
