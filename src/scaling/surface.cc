/**
 * @file
 * ScalingSurface implementation.
 */

#include "surface.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/math_util.hh"

namespace gpuscale {
namespace scaling {

ScalingSurface::ScalingSurface(std::string kernel_name, ConfigSpace space,
                               std::vector<double> runtimes_s)
    : kernel_name_(std::move(kernel_name)), space_(std::move(space)),
      runtimes_(std::move(runtimes_s))
{
    fatal_if(runtimes_.size() != space_.size(),
             "surface for %s: %zu runtimes for a %zu-point grid",
             kernel_name_.c_str(), runtimes_.size(), space_.size());
    for (size_t i = 0; i < runtimes_.size(); ++i) {
        fatal_if(runtimes_[i] <= 0.0,
                 "surface for %s: non-positive runtime %g at index %zu",
                 kernel_name_.c_str(), runtimes_[i], i);
    }
}

double
ScalingSurface::runtimeAt(size_t cu_i, size_t core_i, size_t mem_i) const
{
    return runtimes_[space_.flatten(cu_i, core_i, mem_i)];
}

double
ScalingSurface::perfAt(size_t cu_i, size_t core_i, size_t mem_i) const
{
    return 1.0 / runtimeAt(cu_i, core_i, mem_i);
}

std::vector<double>
ScalingSurface::cuCurve(size_t core_i, size_t mem_i) const
{
    std::vector<double> curve(space_.numCu());
    for (size_t i = 0; i < space_.numCu(); ++i)
        curve[i] = perfAt(i, core_i, mem_i);
    return curve;
}

std::vector<double>
ScalingSurface::freqCurve(size_t cu_i, size_t mem_i) const
{
    std::vector<double> curve(space_.numCoreClk());
    for (size_t i = 0; i < space_.numCoreClk(); ++i)
        curve[i] = perfAt(cu_i, i, mem_i);
    return curve;
}

std::vector<double>
ScalingSurface::memCurve(size_t cu_i, size_t core_i) const
{
    std::vector<double> curve(space_.numMemClk());
    for (size_t i = 0; i < space_.numMemClk(); ++i)
        curve[i] = perfAt(cu_i, core_i, i);
    return curve;
}

std::vector<double>
ScalingSurface::cuCurveAtMax() const
{
    return cuCurve(space_.numCoreClk() - 1, space_.numMemClk() - 1);
}

std::vector<double>
ScalingSurface::freqCurveAtMax() const
{
    return freqCurve(space_.numCu() - 1, space_.numMemClk() - 1);
}

std::vector<double>
ScalingSurface::memCurveAtMax() const
{
    return memCurve(space_.numCu() - 1, space_.numCoreClk() - 1);
}

double
ScalingSurface::bestPerf() const
{
    return 1.0 / *std::min_element(runtimes_.begin(), runtimes_.end());
}

double
ScalingSurface::worstPerf() const
{
    return 1.0 / *std::max_element(runtimes_.begin(), runtimes_.end());
}

double
ScalingSurface::perfRange() const
{
    return bestPerf() / worstPerf();
}

double
ScalingSurface::robustPerfRange(double tail_percent) const
{
    const double lo = percentile(runtimes_, tail_percent);
    const double hi = percentile(runtimes_, 100.0 - tail_percent);
    return hi / lo;
}

std::vector<double>
ScalingSurface::clockPlane(size_t cu_i) const
{
    std::vector<double> plane;
    plane.reserve(space_.numCoreClk() * space_.numMemClk());
    for (size_t c = 0; c < space_.numCoreClk(); ++c) {
        for (size_t m = 0; m < space_.numMemClk(); ++m)
            plane.push_back(perfAt(cu_i, c, m));
    }
    return plane;
}

} // namespace scaling
} // namespace gpuscale
