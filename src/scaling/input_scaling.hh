/**
 * @file
 * Input-scaling analysis.
 *
 * The paper closes with: benchmark suites do not scale to modern GPU
 * sizes, "implying that either new benchmarks or new inputs are
 * warranted."  This module quantifies the *new inputs* arm: scale a
 * kernel's launch (its input size) and measure how far the CU-scaling
 * knee moves.  Kernels whose knee tracks the input are starved by
 * their inputs and are fixable; kernels whose knee stays put are
 * limited by the algorithm (serialization, contention) and need
 * replacing.
 */

#ifndef GPUSCALE_SCALING_INPUT_SCALING_HH
#define GPUSCALE_SCALING_INPUT_SCALING_HH

#include <vector>

#include "gpu/kernel_desc.hh"
#include "gpu/perf_model.hh"
#include "taxonomy.hh"

namespace gpuscale {
namespace scaling {

/** One row of an input-scaling study. */
struct InputScalePoint {
    /** Multiplier applied to the launch's workgroup count. */
    double input_scale = 1.0;

    /** Workgroups at this input size. */
    int64_t workgroups = 0;

    /** CUs needed to reach 90% of best CU-curve performance. */
    int cu90 = 0;

    /** Speedup of the full machine over the 4-CU machine. */
    double cu_gain = 1.0;

    /** Taxonomy class at this input size. */
    TaxonomyClass cls = TaxonomyClass::Irregular;
};

/** Verdict: is the kernel's CU saturation fixable by bigger inputs? */
enum class InputVerdict {
    /** cu90 reaches the full machine at some tested input size. */
    FixableByInput,

    /** cu90 grows with input but never reaches the machine. */
    PartiallyFixable,

    /** cu90 does not respond to input size: algorithmic limit. */
    AlgorithmLimited,
};

/** Full study result for one kernel. */
struct InputScalingResult {
    std::string kernel;
    std::vector<InputScalePoint> points;
    InputVerdict verdict = InputVerdict::AlgorithmLimited;
};

/**
 * Run the input-scaling study for one kernel.
 *
 * @param model timing model.
 * @param kernel the kernel; its workgroup count is scaled by each
 *        multiplier in turn (work per item is unchanged — the "bigger
 *        input" experiment).
 * @param space the configuration grid.
 * @param multipliers input scales to test; must be positive and
 *        increasing, conventionally starting at 1.
 */
InputScalingResult studyInputScaling(
    const gpu::PerfModel &model, const gpu::KernelDesc &kernel,
    const ConfigSpace &space,
    const std::vector<double> &multipliers = {1, 4, 16, 64});

/** Human-readable verdict name. */
std::string inputVerdictName(InputVerdict verdict);

} // namespace scaling
} // namespace gpuscale

#endif // GPUSCALE_SCALING_INPUT_SCALING_HH
