/**
 * @file
 * Per-knob curve-shape classification.
 *
 * A scaling curve — performance versus one hardware knob with the
 * others fixed — is reduced to one of six shapes.  The shapes are the
 * alphabet from which the taxonomy classes are spelled:
 *
 *   Linear:     performance tracks the knob ~proportionally.
 *   Sublinear:  monotone gains, but clearly below proportional.
 *   Plateau:    gains early, then saturates well before the knob's
 *               end of range.
 *   Flat:       no meaningful response to the knob.
 *   Adverse:    performance *ends lower than it started* — more of
 *               the resource hurts.
 *   Irregular:  non-monotone without being adverse.
 */

#ifndef GPUSCALE_SCALING_SHAPE_HH
#define GPUSCALE_SCALING_SHAPE_HH

#include <span>
#include <string>

namespace gpuscale {
namespace scaling {

/** The shape alphabet. */
enum class CurveShape {
    Linear,
    Sublinear,
    Plateau,
    Flat,
    Adverse,
    Irregular,
};

/** Thresholds steering the shape classifier. */
struct ShapeParams {
    /** Total gain below which a curve is Flat (e.g. 1.15 = +15%). */
    double flat_gain = 1.15;

    /**
     * Fraction of the ideal (proportional) gain at or above which a
     * monotone curve is Linear.
     */
    double linear_fraction = 0.70;

    /**
     * A curve is Adverse when its final point falls below this
     * fraction of its own peak — the resource eventually *hurts*.
     * Milder declines classify by their dominant knob instead.
     */
    double adverse_ratio = 0.85;

    /** Monotone fraction under which a curve is Irregular. */
    double monotone_fraction = 0.75;

    /**
     * A curve saturates if it reaches saturation_level of its final
     * gain within saturation_knee of the knob range.
     */
    double saturation_level = 0.95;
    double saturation_knee = 0.60;

    /**
     * Relative tolerance when comparing neighbouring samples.  Sized
     * to absorb realistic run-to-run measurement noise (a couple of
     * percent) so flat/plateau regions do not read as non-monotone.
     */
    double step_tolerance = 0.03;
};

/** The classifier's full verdict for one curve. */
struct ShapeVerdict {
    CurveShape shape = CurveShape::Flat;

    /** perf(last) / perf(first). */
    double total_gain = 1.0;

    /** Ideal proportional gain: knob(last) / knob(first). */
    double ideal_gain = 1.0;

    /** total_gain / ideal_gain (scaling efficiency). */
    double efficiency = 1.0;

    /** Fraction of non-decreasing neighbouring steps. */
    double monotone_fraction = 1.0;

    /**
     * Knob value at which the curve first reaches saturation_level of
     * its maximum; equals the last knob value when it never does.
     */
    double saturation_knob = 0.0;

    /** R^2 of the linear fit of perf against the knob. */
    double linearity_r2 = 0.0;
};

/**
 * Classify one scaling curve.
 *
 * @param knob the swept knob values (strictly increasing, size >= 3).
 * @param perf performance at each knob value (all positive).
 */
ShapeVerdict classifyCurve(std::span<const double> knob,
                           std::span<const double> perf,
                           const ShapeParams &params = ShapeParams{});

/** Human-readable shape name. */
std::string shapeName(CurveShape shape);

} // namespace scaling
} // namespace gpuscale

#endif // GPUSCALE_SCALING_SHAPE_HH
