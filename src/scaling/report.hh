/**
 * @file
 * Report emitters: render taxonomy results as tables/CSV in the shape
 * the paper's evaluation section presents them.
 */

#ifndef GPUSCALE_SCALING_REPORT_HH
#define GPUSCALE_SCALING_REPORT_HH

#include <ostream>
#include <vector>

#include "base/table.hh"
#include "config_space.hh"
#include "sparse_predictor.hh"
#include "suite_analysis.hh"
#include "taxonomy.hh"

namespace gpuscale {
namespace scaling {

/** T1: the hardware configuration space. */
TextTable configSpaceTable(const ConfigSpace &space);

/** T3/F4: taxonomy class populations with percentages. */
TextTable classHistogramTable(
    const std::vector<KernelClassification> &classifications);

/** T4: the non-obvious scalers (CU-adverse + plateau kernels). */
TextTable nonObviousTable(
    const std::vector<KernelClassification> &classifications,
    size_t max_rows = 30);

/** T5/F5: per-suite scalability summary. */
TextTable suiteBreakdownTable(const std::vector<SuiteReport> &reports,
                              int max_cus);

/** Per-kernel classification dump (CSV, one row per kernel). */
void writeClassificationsCsv(
    std::ostream &os,
    const std::vector<KernelClassification> &classifications);

/**
 * Per-kernel sparse-census dump: the classification columns of
 * writeClassificationsCsv() plus the sparse extras — confidence (the
 * census.confidence column: ensemble class-agreement in [0, 1]),
 * band_crosses (1 when the confidence band straddles a class
 * boundary), and samples (configurations measured).
 */
void writeSparseCensusCsv(
    std::ostream &os,
    const std::vector<SparseReconstruction> &reconstructions);

/** Per-kernel surface dump (CSV, one row per configuration). */
void writeSurfaceCsv(std::ostream &os, const ScalingSurface &surface);

/**
 * Parse scaling surfaces from CSV text in writeSurfaceCsv()'s format
 * ("kernel,cus,core_mhz,mem_mhz,runtime_s", one row per sample).
 *
 * This is the bring-your-own-measurements entry point: time kernels
 * on real hardware, dump the samples, and run the same taxonomy.
 * The grid is inferred from the distinct knob values; every kernel
 * must cover the full grid exactly once or the parse is a fatal()
 * user error.
 *
 * @param text CSV content.
 * @param base fixed microarchitecture parameters for the inferred
 *        grid.
 */
std::vector<ScalingSurface> readSurfacesCsv(
    std::string_view text, gpu::GpuConfig base = gpu::GpuConfig{});

} // namespace scaling
} // namespace gpuscale

#endif // GPUSCALE_SCALING_REPORT_HH
