/**
 * @file
 * gpuscale-stat — offline reader for the telemetry plane's artifacts.
 *
 * Subcommands:
 *   series <metrics.jsonl>    render the exporter's JSONL time series
 *                             as a table: per-tick estimate counts and
 *                             the cache-hit trajectory (cumulative hit
 *                             rate over time).
 *   balance <metrics.json>    per-shard balance of the sharded
 *                             instruments in a --metrics snapshot
 *                             (event share per stripe, max/mean skew).
 *   checkpoint <metrics.json> checkpoint overhead: journal record
 *                             counts and flush-latency distribution.
 *   trace <trace.json>        aggregate a Chrome trace-event file by
 *                             span name (count, total, mean) plus
 *                             per-thread busy-time share.
 *   blackbox <file>           render a flight-recorder ring file as
 *                             black-box JSON on stdout (a .json dump
 *                             from the crash handler passes through
 *                             verbatim after validation).
 *
 * Exit codes: 0 success, 1 runtime failure (unreadable or malformed
 * input), 2 unknown command, 3 bad arguments — same contract as the
 * gpuscale CLI.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/string_util.hh"
#include "base/table.hh"
#include "obs/flight_recorder.hh"
#include "obs/json.hh"

namespace {

using namespace gpuscale;

constexpr int kExitOk = 0;
constexpr int kExitFailure = 1;
constexpr int kExitUnknownCommand = 2;
constexpr int kExitBadArguments = 3;

std::string
readFile(const std::string &path)
{
    // gpuscale-lint: allow(fault-coverage): offline reader tool; an
    // unreadable snapshot is a fatal usage error.
    std::ifstream is(path, std::ios::binary);
    fatal_if(!is, "cannot read %s", path.c_str());
    std::stringstream buffer;
    buffer << is.rdbuf();
    return buffer.str();
}

/** Numeric member lookup tolerating absent keys (older files). */
double
numberOr(const obs::JsonValue &obj, const std::string &key,
         double fallback)
{
    const obs::JsonValue *v = obj.find(key);
    return v != nullptr && v->isNumber() ? v->number : fallback;
}

int
seriesCmd(const std::string &path)
{
    // gpuscale-lint: allow(fault-coverage): offline reader tool; an
    // unreadable series file is a fatal usage error.
    std::ifstream is(path);
    fatal_if(!is, "cannot read %s", path.c_str());

    TextTable t;
    t.addColumn("tick", TextTable::Align::Right);
    t.addColumn("dt_ms", TextTable::Align::Right);
    t.addColumn("estimates", TextTable::Align::Right);
    t.addColumn("kernels", TextTable::Align::Right);
    t.addColumn("cache hits", TextTable::Align::Right);
    t.addColumn("cache misses", TextTable::Align::Right);
    t.addColumn("cum hit rate", TextTable::Align::Right);
    t.addColumn("estimate p99", TextTable::Align::Right);

    size_t lines = 0;
    uint64_t prev_ts = 0;
    double cum_hits = 0, cum_misses = 0;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        const obs::JsonValue doc = obs::parseJson(line);
        const auto ts = static_cast<uint64_t>(
            numberOr(doc, "ts_ms", 0.0));
        const obs::JsonValue *counters = doc.find("counters");
        fatal_if(counters == nullptr,
                 "%s line %zu: no counters object", path.c_str(),
                 lines + 1);

        const double hits =
            numberOr(*counters, "sweep.cache.hits", 0.0);
        const double misses =
            numberOr(*counters, "sweep.cache.misses", 0.0);
        cum_hits += hits;
        cum_misses += misses;
        const double probes = cum_hits + cum_misses;

        double p99 = 0.0;
        if (const obs::JsonValue *hists = doc.find("histograms")) {
            if (const obs::JsonValue *h =
                    hists->find("sweep.estimate.latency"))
                p99 = numberOr(*h, "p99", 0.0);
        }

        t.beginRow();
        t.cell(static_cast<int64_t>(numberOr(doc, "seq", 0.0)));
        t.cell(static_cast<int64_t>(
            prev_ts == 0 ? 0 : ts - prev_ts));
        t.cell(static_cast<int64_t>(
            numberOr(*counters, "sweep.estimates.count", 0.0)));
        t.cell(static_cast<int64_t>(
            numberOr(*counters, "sweep.kernels.count", 0.0)));
        t.cell(static_cast<int64_t>(hits));
        t.cell(static_cast<int64_t>(misses));
        t.cell(probes > 0 ? cum_hits / probes : 0.0);
        t.cell(p99, 6);
        prev_ts = ts;
        ++lines;
    }
    fatal_if(lines == 0, "%s: no JSONL lines", path.c_str());
    std::fputs(t.render().c_str(), stdout);
    return kExitOk;
}

int
balanceCmd(const std::string &path)
{
    const obs::JsonValue doc = obs::parseJson(readFile(path));
    const obs::JsonValue *shards = doc.find("shards");
    fatal_if(shards == nullptr || !shards->isObject(),
             "%s: no per-shard data (need a --metrics snapshot from "
             "this version)",
             path.c_str());

    TextTable t;
    t.addColumn("instrument");
    t.addColumn("shards", TextTable::Align::Right);
    t.addColumn("events", TextTable::Align::Right);
    t.addColumn("busiest", TextTable::Align::Right);
    t.addColumn("mean/shard", TextTable::Align::Right);
    t.addColumn("imbalance", TextTable::Align::Right);

    for (const auto &[name, arr] : shards->object) {
        if (!arr.isArray() || arr.array.empty())
            continue;
        double total = 0, busiest = 0;
        size_t active = 0;
        for (const obs::JsonValue &v : arr.array) {
            total += v.number;
            busiest = std::max(busiest, v.number);
            if (v.number > 0)
                ++active;
        }
        // Imbalance is busiest over the mean of *active* stripes: a
        // serial run on a one-core host is perfectly balanced at 1.0,
        // not penalized for its idle stripes.
        const double mean =
            active > 0 ? total / static_cast<double>(active) : 0.0;
        t.beginRow();
        t.cell(name);
        t.cell(static_cast<int64_t>(arr.array.size()));
        t.cell(static_cast<int64_t>(total));
        t.cell(static_cast<int64_t>(busiest));
        t.cell(mean, 1);
        t.cell(mean > 0 ? busiest / mean : 0.0);
    }
    std::fputs(t.render().c_str(), stdout);
    return kExitOk;
}

int
checkpointCmd(const std::string &path)
{
    const obs::JsonValue doc = obs::parseJson(readFile(path));
    const obs::JsonValue *counters = doc.find("counters");
    fatal_if(counters == nullptr, "%s: no counters object",
             path.c_str());

    TextTable t;
    t.addColumn("metric");
    t.addColumn("value", TextTable::Align::Right);
    for (const char *key : {"checkpoint.records",
                            "checkpoint.replayed",
                            "checkpoint.corrupt"})
    {
        t.beginRow();
        t.cell(key);
        t.cell(static_cast<int64_t>(numberOr(*counters, key, 0.0)));
    }

    if (const obs::JsonValue *hists = doc.find("histograms")) {
        if (const obs::JsonValue *h =
                hists->find("checkpoint.flush.latency"))
        {
            const double count = numberOr(*h, "count", 0.0);
            const double mean = numberOr(*h, "mean", 0.0);
            const auto statRow = [&t](const char *label, double v) {
                t.beginRow();
                t.cell(label);
                t.cell(v, 6);
            };
            t.beginRow();
            t.cell("flush.count");
            t.cell(static_cast<int64_t>(count));
            statRow("flush.mean_s", mean);
            statRow("flush.p99_s", numberOr(*h, "p99", 0.0));
            statRow("flush.total_s", mean * count);
        }
    }
    std::fputs(t.render().c_str(), stdout);
    return kExitOk;
}

int
traceCmd(const std::string &path)
{
    const obs::JsonValue doc = obs::parseJson(readFile(path));
    const obs::JsonValue *events = doc.find("traceEvents");
    fatal_if(events == nullptr || !events->isArray(),
             "%s: no traceEvents array", path.c_str());

    struct Agg {
        uint64_t count = 0;
        double total_us = 0;
    };
    std::map<std::string, Agg> by_name;
    std::map<int64_t, double> busy_by_tid;
    double busy_total = 0;

    for (const obs::JsonValue &e : events->array) {
        const obs::JsonValue *ph = e.find("ph");
        if (ph == nullptr || ph->str != "X")
            continue;
        const obs::JsonValue *name = e.find("name");
        const double dur = numberOr(e, "dur", 0.0);
        if (name != nullptr) {
            Agg &a = by_name[name->str];
            ++a.count;
            a.total_us += dur;
        }
        busy_by_tid[static_cast<int64_t>(numberOr(e, "tid", 0.0))] +=
            dur;
        busy_total += dur;
    }
    fatal_if(by_name.empty(), "%s: no complete (ph=X) spans",
             path.c_str());

    TextTable spans;
    spans.addColumn("span");
    spans.addColumn("count", TextTable::Align::Right);
    spans.addColumn("total_ms", TextTable::Align::Right);
    spans.addColumn("mean_us", TextTable::Align::Right);
    // Busiest spans first: the table is a profile, not an index.
    std::vector<std::pair<std::string, Agg>> rows(by_name.begin(),
                                                  by_name.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  return a.second.total_us > b.second.total_us;
              });
    for (const auto &[name, a] : rows) {
        spans.beginRow();
        spans.cell(name);
        spans.cell(static_cast<int64_t>(a.count));
        spans.cell(a.total_us / 1e3);
        spans.cell(a.total_us / static_cast<double>(a.count), 1);
    }
    std::fputs(spans.render().c_str(), stdout);

    TextTable threads;
    threads.addColumn("tid", TextTable::Align::Right);
    threads.addColumn("busy_ms", TextTable::Align::Right);
    threads.addColumn("share", TextTable::Align::Right);
    for (const auto &[tid, busy] : busy_by_tid) {
        threads.beginRow();
        threads.cell(tid);
        threads.cell(busy / 1e3);
        threads.cell(busy_total > 0 ? busy / busy_total : 0.0);
    }
    std::printf("\n%s", threads.render().c_str());
    return kExitOk;
}

int
blackboxCmd(const std::string &path)
{
    // Ring files carry a magic; anything else must already be a
    // black-box JSON dump, which is validated and passed through.
    std::string rendered;
    try {
        rendered = obs::renderRingFile(path);
    } catch (const std::exception &) {
        rendered = readFile(path);
        try {
            const obs::JsonValue doc = obs::parseJson(rendered);
            fatal_if(doc.find("events") == nullptr,
                     "%s: JSON but not a black-box dump",
                     path.c_str());
        } catch (const std::exception &e) {
            fatal("%s: neither a flight ring nor a black-box dump "
                  "(%s)",
                  path.c_str(), e.what());
        }
    }
    std::fputs(rendered.c_str(), stdout);
    if (rendered.empty() || rendered.back() != '\n')
        std::fputc('\n', stdout);
    return kExitOk;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: gpuscale-stat <command> <file>\n"
        "  series <metrics.jsonl>     exporter time series + cache\n"
        "                             hit trajectory\n"
        "  balance <metrics.json>     per-shard instrument balance\n"
        "  checkpoint <metrics.json>  journal overhead table\n"
        "  trace <trace.json>         span profile + per-thread "
        "share\n"
        "  blackbox <ring|dump.json>  render flight-recorder black "
        "box\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return kExitBadArguments;
    }
    const std::string cmd = argv[1];
    const bool known = cmd == "series" || cmd == "balance" ||
                       cmd == "checkpoint" || cmd == "trace" ||
                       cmd == "blackbox";
    if (!known) {
        std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
        usage();
        return kExitUnknownCommand;
    }
    if (argc < 3) {
        std::fprintf(stderr, "%s needs a file argument\n",
                     cmd.c_str());
        usage();
        return kExitBadArguments;
    }
    const std::string path = argv[2];

    try {
        if (cmd == "series")
            return seriesCmd(path);
        if (cmd == "balance")
            return balanceCmd(path);
        if (cmd == "checkpoint")
            return checkpointCmd(path);
        if (cmd == "trace")
            return traceCmd(path);
        return blackboxCmd(path);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "gpuscale-stat: %s\n", e.what());
        return kExitFailure;
    }
}
