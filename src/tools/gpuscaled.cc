/**
 * @file
 * gpuscaled — the resident census/prediction daemon.
 *
 * Subcommands:
 *   serve                 load the kernel zoo and configuration grid
 *                         (journaled via --checkpoint so a killed
 *                         daemon resumes bitwise-identically), then
 *                         answer newline-delimited JSON requests on a
 *                         Unix socket until SIGTERM/SIGINT drains the
 *                         service (docs/service.md).
 *   call <op> [k=v...]    one-shot client: send a single request
 *                         (classify, predict, census, health, stats)
 *                         and print the response frame.  Values that
 *                         parse as numbers are sent as numbers,
 *                         true/false as booleans, the rest as
 *                         strings.
 *
 * Serve options:
 *   --socket=PATH         Unix socket path (default gpuscaled.sock)
 *   --pidfile=FILE        claim FILE; a live pidfile refuses startup
 *                         (exit 5), a stale one is replaced
 *   --test-grid           3x3x3 grid instead of the 891-point paper
 *                         grid (CI smoke and tests)
 *   --checkpoint=DIR      crash-safe census journal directory
 *   --sweep-cache=DIR     persistent sweep cache directory
 *   --max-inflight=N      admission bound on in-flight requests
 *                         (default 64)
 *   --client-quota=N      per-client share of the bound (default 16)
 *   --deadline-ms=MS      default request deadline (default 5000)
 *   --drain-ms=MS         drain-time I/O budget (default 2000)
 * plus the gpuscale telemetry options (--trace, --metrics,
 * --metrics-interval, --metrics-jsonl, --exposition,
 * --flight-recorder).
 *
 * Call options:
 *   --socket=PATH         daemon socket (default gpuscaled.sock)
 *   --deadline-ms=MS      request deadline sent to the daemon and
 *                         used as the client-side timeout
 *   --client=NAME         client identity for quota accounting
 *
 * Fault-tolerance environment (docs/fault_tolerance.md):
 *   GPUSCALE_FAULTS / GPUSCALE_FAULT_SEED / GPUSCALE_RETRY; service
 *   probes: service.start, service.accept, service.conn.read,
 *   service.conn.write, service.admit, service.journal.sync; client
 *   probes: client.connect, client.call.
 *
 * Exit codes: 0 ok, 1 failure, 2 unknown command or malformed
 * GPUSCALE_FAULTS plan, 3 bad arguments, 4 ok but degraded (absorbed
 * faults), 5 service startup failure (socket bind or live pidfile).
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/fault.hh"
#include "base/logging.hh"
#include "base/string_util.hh"
#include "gpu/analytic_model.hh"
#include "harness/sweep_cache.hh"
#include "obs/exporter.hh"
#include "obs/fault_telemetry.hh"
#include "obs/flight_recorder.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "service/client.hh"
#include "service/protocol.hh"
#include "service/server.hh"

namespace {

using namespace gpuscale;

constexpr int kExitOk = 0;
constexpr int kExitFailure = 1;
constexpr int kExitUnknownCommand = 2;
constexpr int kExitBadArguments = 3;
constexpr int kExitDegraded = 4;
constexpr int kExitStartupFailure = 5;

/** Daemon + client switches. */
struct DaemonOptions {
    service::ServiceOptions service;
    std::string trace_file;
    std::string metrics_file;
    std::string metrics_jsonl = "metrics.jsonl";
    std::string exposition_file;
    std::string flight_recorder_base;
    std::string sweep_cache_dir;
    std::string client_name;
    double call_deadline_ms = 5000.0;
};

void
usage()
{
    std::fprintf(
        stderr,
        "usage: gpuscaled [options] serve\n"
        "       gpuscaled [options] call <op> [key=value...]\n"
        "  serve                resident census/prediction service\n"
        "                       on a Unix socket (docs/service.md)\n"
        "  call <op> [k=v...]   one-shot request: classify, predict,\n"
        "                       census, health, stats\n"
        "serve options:\n"
        "  --socket=PATH        socket path (default gpuscaled.sock)\n"
        "  --pidfile=FILE       refuse startup on a live pidfile\n"
        "  --test-grid          3x3x3 grid instead of the paper "
        "grid\n"
        "  --checkpoint=DIR     crash-safe census journal directory\n"
        "  --sweep-cache=DIR    persistent sweep cache directory\n"
        "  --max-inflight=N     admission bound (default 64)\n"
        "  --client-quota=N     per-client bound share (default 16)\n"
        "  --deadline-ms=MS     default request deadline (5000)\n"
        "  --drain-ms=MS        drain-time I/O budget (2000)\n"
        "  plus gpuscale telemetry options (--trace, --metrics,\n"
        "  --metrics-interval, --metrics-jsonl, --exposition,\n"
        "  --flight-recorder)\n"
        "call options:\n"
        "  --socket=PATH        daemon socket to reach\n"
        "  --deadline-ms=MS     request deadline / client timeout\n"
        "  --client=NAME        client identity for quotas\n"
        "env: GPUSCALE_FAULTS, GPUSCALE_FAULT_SEED, GPUSCALE_RETRY "
        "(see docs/fault_tolerance.md)\n"
        "exit codes: 0 ok, 1 failure, 2 unknown command, "
        "3 bad arguments,\n"
        "            4 ok but degraded (absorbed faults), "
        "5 startup failure\n"
        "            (socket bind or live pidfile)\n");
}

/** Write the metrics snapshot (--metrics). */
void
emitMetrics(const std::string &path)
{
    // gpuscale-lint: allow(fault-coverage): telemetry artifact
    // written after the service drained; a bad path is a fatal
    // usage error.
    std::ofstream os(path);
    fatal_if(!os, "cannot write metrics file %s", path.c_str());
    os << obs::Registry::instance().snapshotJson() << '\n';
    inform("wrote %s", path.c_str());
}

int
serveCmd(const DaemonOptions &opts)
{
    const gpu::AnalyticModel model;
    service::Service svc(opts.service, model);
    if (!svc.start())
        return kExitStartupFailure;
    svc.installSignalDrain();
    if (svc.loadCensus()) {
        inform("gpuscaled: census warm (%zu replayed); serving",
               svc.journalReplayed());
        svc.serve();
    } else {
        // A drain arrived while the census was loading; the journal
        // holds the finished shards, so the next start resumes.
        svc.serve();
    }
    return kExitOk;
}

int
callCmd(const DaemonOptions &opts, const std::string &op,
        const std::vector<std::string> &kvs)
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginObject();
    w.key("id").value(static_cast<uint64_t>(1));
    w.key("op").value(op);
    w.key("deadline_ms").value(opts.call_deadline_ms);
    if (!opts.client_name.empty())
        w.key("client").value(opts.client_name);
    w.key("params").beginObject();
    for (const auto &kv : kvs) {
        const size_t eq = kv.find('=');
        if (eq == std::string::npos || eq == 0) {
            std::fprintf(stderr, "call: '%s' is not key=value\n",
                         kv.c_str());
            return kExitBadArguments;
        }
        const std::string key = kv.substr(0, eq);
        const std::string value = kv.substr(eq + 1);
        w.key(key);
        if (value == "true") {
            w.value(true);
        } else if (value == "false") {
            w.value(false);
        } else if (const auto num = parseDouble(value); num) {
            w.value(*num);
        } else {
            w.value(value);
        }
    }
    w.endObject();
    w.endObject();

    service::Client client(opts.service.socket_path);
    if (!client.connect(opts.call_deadline_ms)) {
        std::fprintf(stderr, "call: cannot connect to %s\n",
                     opts.service.socket_path.c_str());
        return kExitFailure;
    }
    std::string response;
    // Client-side grace on top of the server-side deadline so a
    // response sent exactly at the deadline still arrives.
    if (!client.call(os.str(), opts.call_deadline_ms + 250.0,
                     &response)) {
        std::fprintf(stderr, "call: no response within %gms\n",
                     opts.call_deadline_ms);
        return kExitFailure;
    }
    std::printf("%s\n", response.c_str());
    try {
        const obs::JsonValue doc = obs::parseJson(response);
        const auto *ok = doc.find("ok");
        if (ok != nullptr && ok->isBool() && ok->boolean)
            return kExitOk;
    } catch (const std::exception &) {
        // Fall through: an unparseable frame is a failure.
    }
    return kExitFailure;
}

} // namespace

int
main(int argc, char **argv)
{
    // Arm before anything probes a fault point; a malformed
    // GPUSCALE_FAULTS plan exits 2 in here.
    obs::armFaultsFromEnv();

    DaemonOptions opts;
    unsigned metrics_interval_ms = 0;
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto sizeFlag = [&](const char *name, size_t *out) {
            const std::string prefix = std::string(name) + "=";
            if (arg.rfind(prefix, 0) != 0)
                return false;
            const auto parsed = parseDouble(arg.substr(prefix.size()));
            if (!parsed || *parsed < 1 ||
                *parsed != static_cast<size_t>(*parsed)) {
                *out = 0; // flagged below
            } else {
                *out = static_cast<size_t>(*parsed);
            }
            return true;
        };
        const auto msFlag = [&](const char *name, double *out) {
            const std::string prefix = std::string(name) + "=";
            if (arg.rfind(prefix, 0) != 0)
                return false;
            const auto parsed = parseDouble(arg.substr(prefix.size()));
            *out = (parsed && *parsed > 0) ? *parsed : -1.0;
            return true;
        };

        if (arg.rfind("--socket=", 0) == 0) {
            opts.service.socket_path = arg.substr(9);
        } else if (arg.rfind("--pidfile=", 0) == 0) {
            opts.service.pidfile = arg.substr(10);
        } else if (arg == "--test-grid") {
            opts.service.test_grid = true;
        } else if (arg.rfind("--checkpoint=", 0) == 0) {
            opts.service.checkpoint_dir = arg.substr(13);
        } else if (arg.rfind("--sweep-cache=", 0) == 0) {
            opts.sweep_cache_dir = arg.substr(14);
        } else if (sizeFlag("--max-inflight",
                            &opts.service.max_inflight)) {
            if (opts.service.max_inflight == 0) {
                std::fprintf(stderr, "--max-inflight: '%s' is not a "
                                     "positive integer\n",
                             arg.c_str());
                usage();
                return kExitBadArguments;
            }
        } else if (sizeFlag("--client-quota",
                            &opts.service.client_quota)) {
            if (opts.service.client_quota == 0) {
                std::fprintf(stderr, "--client-quota: '%s' is not a "
                                     "positive integer\n",
                             arg.c_str());
                usage();
                return kExitBadArguments;
            }
        } else if (msFlag("--deadline-ms",
                          &opts.service.default_deadline_ms)) {
            if (opts.service.default_deadline_ms < 0) {
                std::fprintf(stderr, "--deadline-ms: '%s' is not a "
                                     "positive millisecond count\n",
                             arg.c_str());
                usage();
                return kExitBadArguments;
            }
            opts.call_deadline_ms = opts.service.default_deadline_ms;
        } else if (msFlag("--drain-ms",
                          &opts.service.drain_deadline_ms)) {
            if (opts.service.drain_deadline_ms < 0) {
                std::fprintf(stderr, "--drain-ms: '%s' is not a "
                                     "positive millisecond count\n",
                             arg.c_str());
                usage();
                return kExitBadArguments;
            }
        } else if (arg.rfind("--client=", 0) == 0) {
            opts.client_name = arg.substr(9);
        } else if (arg.rfind("--trace=", 0) == 0) {
            opts.trace_file = arg.substr(8);
        } else if (arg.rfind("--metrics=", 0) == 0) {
            opts.metrics_file = arg.substr(10);
        } else if (arg.rfind("--metrics-interval=", 0) == 0) {
            const auto parsed = parseDouble(arg.substr(19));
            if (!parsed || *parsed <= 0) {
                std::fprintf(stderr,
                             "--metrics-interval: '%s' is not a "
                             "positive millisecond count\n",
                             arg.substr(19).c_str());
                usage();
                return kExitBadArguments;
            }
            metrics_interval_ms = static_cast<unsigned>(*parsed);
        } else if (arg.rfind("--metrics-jsonl=", 0) == 0) {
            opts.metrics_jsonl = arg.substr(16);
        } else if (arg.rfind("--exposition=", 0) == 0) {
            opts.exposition_file = arg.substr(13);
        } else if (arg.rfind("--flight-recorder=", 0) == 0) {
            opts.flight_recorder_base = arg.substr(18);
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage();
            return kExitBadArguments;
        } else {
            args.push_back(arg);
        }
    }

    if (args.empty()) {
        usage();
        return kExitBadArguments;
    }

    if (metrics_interval_ms == 0) {
        if (const char *env =
                std::getenv("GPUSCALE_METRICS_INTERVAL")) {
            const auto parsed = parseDouble(env);
            if (parsed && *parsed > 0)
                metrics_interval_ms = static_cast<unsigned>(*parsed);
            else
                warn("ignoring GPUSCALE_METRICS_INTERVAL='%s'", env);
        }
    }

    // When serving, the drain signals must be blocked before ANY
    // thread exists: a thread spawned here (the exporter flusher,
    // most visibly) inherits the creator's mask, and a
    // process-directed SIGTERM is delivered to whichever thread has
    // it unblocked — killing the daemon with the default disposition
    // instead of reaching installSignalDrain()'s sigtimedwait
    // watcher.  `call` keeps default signal behavior.
    if (args[0] == "serve") {
        sigset_t drained;
        sigemptyset(&drained);
        sigaddset(&drained, SIGTERM);
        sigaddset(&drained, SIGINT);
        pthread_sigmask(SIG_BLOCK, &drained, nullptr);
    }

    if (!opts.trace_file.empty())
        obs::TraceSession::start(opts.trace_file);
    if (!opts.flight_recorder_base.empty()) {
        if (obs::FlightRecorder::start(opts.flight_recorder_base +
                                       ".ring")) {
            obs::FlightRecorder::installCrashDump(
                opts.flight_recorder_base + ".json");
        }
    }
    if (metrics_interval_ms > 0) {
        obs::MetricsExporter::start(opts.metrics_jsonl,
                                    metrics_interval_ms);
    }
    if (!opts.sweep_cache_dir.empty())
        harness::SweepCache::instance().setDirectory(
            opts.sweep_cache_dir);

    const std::string cmd = args[0];
    int rc;
    if (cmd == "serve") {
        rc = serveCmd(opts);
    } else if (cmd == "call") {
        if (args.size() < 2) {
            std::fprintf(stderr, "call needs an op\n");
            usage();
            return kExitBadArguments;
        }
        rc = callCmd(opts, args[1],
                     {args.begin() + 2, args.end()});
    } else {
        std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
        usage();
        return kExitUnknownCommand;
    }

    // Shutdown ordering mirrors gpuscale: stop the exporter (its
    // final flush must see a live registry), write snapshots, close
    // the trace, decide degradation, dump the black box last.
    if (obs::MetricsExporter::active()) {
        obs::MetricsExporter::stop();
        inform("wrote %s", opts.metrics_jsonl.c_str());
    }
    if (!opts.metrics_file.empty())
        emitMetrics(opts.metrics_file);
    if (!opts.exposition_file.empty()) {
        // gpuscale-lint: allow(fault-coverage): telemetry artifact
        // written after the service drained; a bad path is a fatal
        // usage error.
        std::ofstream os(opts.exposition_file);
        fatal_if(!os, "cannot write exposition file %s",
                 opts.exposition_file.c_str());
        obs::Registry::instance().writeExposition(os);
        inform("wrote %s", opts.exposition_file.c_str());
    }
    if (!opts.trace_file.empty()) {
        const size_t spans = obs::TraceSession::stop();
        inform("wrote %s (%zu spans)", opts.trace_file.c_str(),
               spans);
    }
    if (rc == kExitOk && obs::degradationCount() > 0) {
        warn("run completed with %llu degradation(s); exiting %d",
             static_cast<unsigned long long>(obs::degradationCount()),
             kExitDegraded);
        rc = kExitDegraded;
    }
    if (obs::FlightRecorder::active()) {
        if (rc == kExitDegraded) {
            const std::string dump_path =
                opts.flight_recorder_base + ".json";
            obs::FlightRecorder::dump(dump_path, "degraded-exit-4");
            inform("wrote %s", dump_path.c_str());
        }
        obs::FlightRecorder::stop();
    }
    return rc;
}
