/**
 * @file
 * gpuscale — command-line front end for the toolkit.
 *
 * Subcommands:
 *   census [sigma]        run the full 267x891 census (optionally
 *                         with measurement noise) and print the
 *                         taxonomy tables; writes
 *                         classifications.csv to the working dir.
 *   classify <file.csv>   classify externally measured surfaces
 *                         (writeSurfaceCsv format — bring your own
 *                         hardware data).
 *   kernel <name>         show one zoo kernel's scaling curves and
 *                         classification.
 *   suites                print the workload inventory.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "base/logging.hh"
#include "base/math_util.hh"
#include "base/plot.hh"
#include "gpu/analytic_model.hh"
#include "harness/experiment.hh"
#include "harness/noise.hh"
#include "scaling/report.hh"
#include "scaling/suite_analysis.hh"
#include "workloads/registry.hh"

namespace {

using namespace gpuscale;

int
runCensusCmd(double sigma)
{
    const gpu::AnalyticModel inner;
    const harness::NoisyModel noisy(inner, sigma);
    const gpu::PerfModel &model =
        sigma > 0 ? static_cast<const gpu::PerfModel &>(noisy)
                  : static_cast<const gpu::PerfModel &>(inner);

    inform("running census with model '%s'", model.name().c_str());
    const auto census = harness::runCensus(model);

    std::fputs(scaling::classHistogramTable(census.classifications)
                   .render().c_str(),
               stdout);
    std::printf("\n");
    std::fputs(
        scaling::suiteBreakdownTable(
            scaling::analyzeSuites(census.classifications, 44), 44)
            .render().c_str(),
        stdout);

    std::ofstream os("classifications.csv");
    fatal_if(!os, "cannot write classifications.csv");
    scaling::writeClassificationsCsv(os, census.classifications);
    inform("wrote classifications.csv (%zu rows)",
           census.classifications.size());
    return 0;
}

int
classifyCmd(const std::string &path)
{
    std::ifstream is(path);
    fatal_if(!is, "cannot read %s", path.c_str());
    std::stringstream buffer;
    buffer << is.rdbuf();

    const auto surfaces = scaling::readSurfacesCsv(buffer.str());
    inform("parsed %zu surfaces on a %zu-point grid", surfaces.size(),
           surfaces.empty() ? 0 : surfaces.front().space().size());

    const auto classifications = scaling::classifyAll(surfaces);
    std::fputs(
        scaling::classHistogramTable(classifications).render().c_str(),
        stdout);
    std::printf("\nper kernel:\n");
    for (const auto &c : classifications) {
        std::printf("  %-50s %s\n", c.kernel.c_str(),
                    scaling::taxonomyClassName(c.cls).c_str());
    }
    return 0;
}

int
kernelCmd(const std::string &name)
{
    const auto *kernel =
        workloads::WorkloadRegistry::instance().findKernel(name);
    if (!kernel) {
        std::fprintf(stderr,
                     "unknown kernel '%s' (names look like "
                     "rodinia/hotspot/calculate_temp)\n",
                     name.c_str());
        return 1;
    }
    std::printf("%s\n\n", kernel->describe().c_str());

    const gpu::AnalyticModel model;
    const auto space = scaling::ConfigSpace::paperGrid();
    const auto surface = harness::sweepKernel(model, *kernel, space);
    const auto cls = scaling::classifySurface(surface);
    std::printf("classification: %s\n\n",
                scaling::taxonomyClassName(cls.cls).c_str());

    LineChart chart("scaling curves (others at max)", "knob index",
                    "speedup");
    chart.setSize(60, 14);
    std::vector<double> idx9{1, 2, 3, 4, 5, 6, 7, 8, 9};
    std::vector<double> idx11{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
    chart.addSeries({"cu", idx11,
                     normalizeToFirst(surface.cuCurveAtMax())});
    chart.addSeries({"freq", idx9,
                     normalizeToFirst(surface.freqCurveAtMax())});
    chart.addSeries({"mem", idx9,
                     normalizeToFirst(surface.memCurveAtMax())});
    std::printf("%s\n", chart.render().c_str());
    return 0;
}

int
suitesCmd()
{
    const auto &reg = workloads::WorkloadRegistry::instance();
    for (const auto &row : reg.census()) {
        std::printf("%-12s %3zu programs %4zu kernels\n",
                    row.suite.c_str(), row.programs, row.kernels);
    }
    return 0;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: gpuscale <command>\n"
        "  census [sigma]       full taxonomy census (+noise)\n"
        "  classify <file.csv>  classify measured surfaces\n"
        "  kernel <name>        inspect one zoo kernel\n"
        "  suites               workload inventory\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string cmd = argv[1];
    if (cmd == "census")
        return runCensusCmd(argc > 2 ? std::atof(argv[2]) : 0.0);
    if (cmd == "classify" && argc > 2)
        return classifyCmd(argv[2]);
    if (cmd == "kernel" && argc > 2)
        return kernelCmd(argv[2]);
    if (cmd == "suites")
        return suitesCmd();
    usage();
    return 1;
}
