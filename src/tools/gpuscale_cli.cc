/**
 * @file
 * gpuscale — command-line front end for the toolkit.
 *
 * Subcommands:
 *   census [sigma]        run the full 267x891 census (optionally
 *                         with measurement noise) and print the
 *                         taxonomy tables; writes
 *                         classifications.csv and a run manifest
 *                         (classifications.manifest.json) to the
 *                         working dir.  With --sparse=K only K
 *                         configurations per kernel are measured and
 *                         the rest reconstructed
 *                         (docs/prediction.md); the CSV gains
 *                         confidence/band_crosses/samples columns.
 *   classify <file.csv>   classify externally measured surfaces
 *                         (writeSurfaceCsv format — bring your own
 *                         hardware data).
 *   kernel <name>         show one zoo kernel's scaling curves and
 *                         classification.
 *   suites                print the workload inventory.
 *
 * Telemetry options (any subcommand):
 *   --trace=FILE          write a Chrome trace-event / Perfetto JSON
 *                         span trace (chrome://tracing,
 *                         ui.perfetto.dev).
 *   --metrics=FILE        write a metrics-registry JSON snapshot and
 *                         print the metrics table.
 *   --metrics-interval=MS start the background exporter appending a
 *                         JSONL time-series line of registry deltas
 *                         every MS milliseconds (also honoured from
 *                         the GPUSCALE_METRICS_INTERVAL environment
 *                         variable when the flag is absent).
 *   --metrics-jsonl=FILE  destination for the exporter's time series
 *                         (default metrics.jsonl).
 *   --exposition=FILE     write a Prometheus text-exposition snapshot
 *                         at exit (the body a resident gpuscaled
 *                         would serve on /metrics).
 *   --flight-recorder=BASE keep a crash flight recorder ring at
 *                         BASE.ring (mmap-backed; survives kill -9)
 *                         and dump a black-box JSON to BASE.json on
 *                         fatal signals or a degraded (exit 4) run.
 *                         `gpuscale-stat blackbox BASE.ring` reads
 *                         the ring post-mortem.
 *   --progress            live progress line on stderr during sweeps.
 *   --sweep-cache=DIR     persist sweep results under DIR so repeat
 *                         invocations of the same sweep hit the cache
 *                         instead of recomputing (sweep.cache.hits in
 *                         the metrics snapshot shows the effect).
 *   --checkpoint=DIR      journal census shard results under DIR; a
 *                         rerun after a crash (or kill -9) replays
 *                         finished shards from the journal and only
 *                         recomputes the rest.
 *
 * Fault-tolerance environment (see docs/fault_tolerance.md):
 *   GPUSCALE_FAULTS       seeded fault-injection plan
 *                         ("site:rate[:kind[:delay_ms]],...")
 *   GPUSCALE_FAULT_SEED   RNG seed for the plan (default 0)
 *   GPUSCALE_RETRY        retry policy "attempts[:base_ms[:max_ms]]"
 *
 * Exit codes: 0 success, 1 runtime failure, 2 unknown command or
 * malformed GPUSCALE_FAULTS plan, 3 bad arguments, 4 success but
 * degraded (faults were absorbed — cache misses, skipped CSV rows,
 * or checkpoint records lost; degradation.events in the metrics
 * snapshot counts them) — scripted drivers can tell a typo'd
 * subcommand from a malformed invocation from a lossy-but-complete
 * run.  Exit 5 is reserved for service startup failure and only
 * emitted by the gpuscaled binary (docs/service.md).
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "base/fault.hh"
#include "base/logging.hh"
#include "base/math_util.hh"
#include "base/plot.hh"
#include "base/string_util.hh"
#include "gpu/analytic_model.hh"
#include "harness/checkpoint.hh"
#include "harness/experiment.hh"
#include "harness/noise.hh"
#include "harness/sparse.hh"
#include "harness/sweep_cache.hh"
#include "obs/exporter.hh"
#include "obs/fault_telemetry.hh"
#include "obs/flight_recorder.hh"
#include "obs/metrics.hh"
#include "obs/progress.hh"
#include "obs/retry.hh"
#include "obs/run_manifest.hh"
#include "obs/trace.hh"
#include "scaling/report.hh"
#include "scaling/suite_analysis.hh"
#include "workloads/registry.hh"

namespace {

using namespace gpuscale;

constexpr int kExitOk = 0;
constexpr int kExitFailure = 1;
constexpr int kExitUnknownCommand = 2;
constexpr int kExitBadArguments = 3;
constexpr int kExitDegraded = 4;

/** Telemetry switches shared by every subcommand. */
struct CliOptions {
    std::string trace_file;
    std::string metrics_file;
    std::string metrics_jsonl = "metrics.jsonl";
    std::string exposition_file;
    std::string flight_recorder_base;
    std::string sweep_cache_dir;
    std::string checkpoint_dir;
    unsigned metrics_interval_ms = 0;
    bool progress = false;

    /** Sparse census (census --sparse=K); 0 means dense. */
    size_t sparse_samples = 0;
    scaling::SamplerKind sampler = scaling::SamplerKind::Lhs;
    bool sampler_given = false;
    uint64_t sparse_seed = 0;
};

void usage();

int
runCensusCmd(double sigma, const CliOptions &opts,
             const std::vector<std::string> &argv_record)
{
    const obs::ManifestTimer timer;

    const gpu::AnalyticModel inner;
    const harness::NoisyModel noisy(inner, sigma);
    const gpu::PerfModel &model =
        sigma > 0 ? static_cast<const gpu::PerfModel &>(noisy)
                  : static_cast<const gpu::PerfModel &>(inner);

    inform("running census with model '%s'", model.name().c_str());
    const size_t num_kernels = workloads::WorkloadRegistry::instance()
                                   .allKernels().size();
    obs::ProgressReporter progress("census", num_kernels,
                                   opts.progress);

    // The journal pins the exact model and grid it was written
    // against; pass the grid explicitly so both runCensus and the
    // journal header agree on the fingerprint.
    const auto space = scaling::ConfigSpace::paperGrid();
    std::optional<harness::CensusJournal> journal;
    if (!opts.checkpoint_dir.empty()) {
        journal.emplace(opts.checkpoint_dir, model.fingerprint(),
                        space.grid().fingerprint());
        if (journal->loadedRecords() > 0) {
            inform("checkpoint: replaying %zu finished shards from %s",
                   journal->loadedRecords(), journal->path().c_str());
        }
    }

    const auto census =
        harness::runCensus(model, space, scaling::TaxonomyParams{},
                           &progress,
                           journal ? &*journal : nullptr);
    progress.finish();
    if (journal) {
        // One fsync at the quiescent point buys power-loss
        // durability for the whole journal.
        journal->sync();
    }

    std::fputs(scaling::classHistogramTable(census.classifications)
                   .render().c_str(),
               stdout);
    std::printf("\n");
    std::fputs(
        scaling::suiteBreakdownTable(
            scaling::analyzeSuites(census.classifications, 44), 44)
            .render().c_str(),
        stdout);

    const std::string report_path = "classifications.csv";
    const bool wrote_report = obs::retryWithBackoff(
        obs::retryPolicy(), "classifications.csv write", [&]() {
            if (faultPoint("cli.report.write"))
                return false;
            std::ofstream os(report_path);
            if (!os)
                return false;
            scaling::writeClassificationsCsv(os,
                                             census.classifications);
            return os.good();
        });
    if (wrote_report) {
        inform("wrote %s (%zu rows)", report_path.c_str(),
               census.classifications.size());
    } else {
        warn("cannot write %s; census results shown above only",
             report_path.c_str());
        obs::noteDegradation("cli.report.write");
    }

    obs::RunManifest manifest = harness::censusManifest(census, model);
    manifest.argv = argv_record;
    if (sigma > 0) {
        manifest.seed = noisy.seed();
        manifest.extra["noise_sigma"] = formatDoubleShortest(sigma);
    }
    manifest.extra["report"] = report_path;
    timer.finalize(manifest);
    const std::string manifest_path = obs::manifestPathFor(report_path);
    obs::writeManifest(manifest, manifest_path);
    inform("wrote %s", manifest_path.c_str());
    return kExitOk;
}

int
runSparseCensusCmd(double sigma, const CliOptions &opts,
                   const std::vector<std::string> &argv_record)
{
    const obs::ManifestTimer timer;

    const gpu::AnalyticModel inner;
    const harness::NoisyModel noisy(inner, sigma);
    const gpu::PerfModel &model =
        sigma > 0 ? static_cast<const gpu::PerfModel &>(noisy)
                  : static_cast<const gpu::PerfModel &>(inner);

    const auto space = scaling::ConfigSpace::paperGrid();
    harness::SparseCensusOptions sparse;
    sparse.samples = opts.sparse_samples;
    sparse.sampler = opts.sampler;
    sparse.seed = opts.sparse_seed;

    // Budget bounds are a usage error (exit 3), not a fatal(): the
    // minimum is the anchor slices plus one, which depends only on
    // the grid shape.
    scaling::SparseFitOptions fit;
    fit.seed = sparse.seed;
    const scaling::SparsePredictor predictor(space, fit);
    if (sparse.samples < predictor.minSamples() ||
        sparse.samples > space.size())
    {
        std::fprintf(stderr,
                     "census: --sparse=%zu out of range [%zu, %zu] "
                     "for the %zu-point grid\n",
                     sparse.samples, predictor.minSamples(),
                     space.size(), space.size());
        usage();
        return kExitBadArguments;
    }

    inform("running sparse census with model '%s': %zu/%zu configs "
           "per kernel (%s sampler, seed %llu)",
           model.name().c_str(), sparse.samples, space.size(),
           scaling::samplerKindName(sparse.sampler).c_str(),
           static_cast<unsigned long long>(sparse.seed));
    const size_t num_kernels = workloads::WorkloadRegistry::instance()
                                   .allKernels().size();
    obs::ProgressReporter progress("census", num_kernels,
                                   opts.progress);

    const auto census = harness::runSparseCensus(
        model, space, sparse, scaling::TaxonomyParams{}, &progress);
    progress.finish();

    std::fputs(scaling::classHistogramTable(census.classifications)
                   .render().c_str(),
               stdout);
    std::printf("\n");
    std::fputs(
        scaling::suiteBreakdownTable(
            scaling::analyzeSuites(census.classifications, 44), 44)
            .render().c_str(),
        stdout);

    double mean_confidence = 0.0;
    size_t low_confidence = 0;
    for (const auto &r : census.reconstructions) {
        mean_confidence += r.confidence;
        low_confidence += r.band_crosses_boundary;
    }
    if (!census.reconstructions.empty())
        mean_confidence /=
            static_cast<double>(census.reconstructions.size());
    std::printf("\nmean confidence %.3f; %zu of %zu kernels near a "
                "class boundary\n",
                mean_confidence, low_confidence,
                census.reconstructions.size());

    const std::string report_path = "classifications.csv";
    const bool wrote_report = obs::retryWithBackoff(
        obs::retryPolicy(), "classifications.csv write", [&]() {
            if (faultPoint("cli.report.write"))
                return false;
            std::ofstream os(report_path);
            if (!os)
                return false;
            scaling::writeSparseCensusCsv(os, census.reconstructions);
            return os.good();
        });
    if (wrote_report) {
        inform("wrote %s (%zu rows)", report_path.c_str(),
               census.reconstructions.size());
    } else {
        warn("cannot write %s; census results shown above only",
             report_path.c_str());
        obs::noteDegradation("cli.report.write");
    }

    obs::RunManifest manifest =
        harness::sparseCensusManifest(census, model);
    manifest.argv = argv_record;
    if (sigma > 0) {
        manifest.seed = noisy.seed();
        manifest.extra["noise_sigma"] = formatDoubleShortest(sigma);
    }
    manifest.extra["report"] = report_path;
    timer.finalize(manifest);
    const std::string manifest_path = obs::manifestPathFor(report_path);
    obs::writeManifest(manifest, manifest_path);
    inform("wrote %s", manifest_path.c_str());
    return kExitOk;
}

int
classifyCmd(const std::string &path)
{
    // gpuscale-lint: allow(fault-coverage): user-supplied input; an
    // unreadable file is a fatal usage error, not a degradable
    // mid-run fault.
    std::ifstream is(path);
    fatal_if(!is, "cannot read %s", path.c_str());
    std::stringstream buffer;
    buffer << is.rdbuf();

    const auto surfaces = scaling::readSurfacesCsv(buffer.str());
    inform("parsed %zu surfaces on a %zu-point grid", surfaces.size(),
           surfaces.empty() ? 0 : surfaces.front().space().size());

    const auto classifications = scaling::classifyAll(surfaces);
    std::fputs(
        scaling::classHistogramTable(classifications).render().c_str(),
        stdout);
    std::printf("\nper kernel:\n");
    for (const auto &c : classifications) {
        std::printf("  %-50s %s\n", c.kernel.c_str(),
                    scaling::taxonomyClassName(c.cls).c_str());
    }
    return kExitOk;
}

int
kernelCmd(const std::string &name)
{
    const auto *kernel =
        workloads::WorkloadRegistry::instance().findKernel(name);
    if (!kernel) {
        std::fprintf(stderr,
                     "unknown kernel '%s' (names look like "
                     "rodinia/hotspot/calculate_temp)\n",
                     name.c_str());
        return kExitFailure;
    }
    std::printf("%s\n\n", kernel->describe().c_str());

    const gpu::AnalyticModel model;
    const auto space = scaling::ConfigSpace::paperGrid();
    const auto surface = harness::sweepKernel(model, *kernel, space);
    const auto cls = scaling::classifySurface(surface);
    std::printf("classification: %s\n\n",
                scaling::taxonomyClassName(cls.cls).c_str());

    LineChart chart("scaling curves (others at max)", "knob index",
                    "speedup");
    chart.setSize(60, 14);
    std::vector<double> idx9{1, 2, 3, 4, 5, 6, 7, 8, 9};
    std::vector<double> idx11{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
    chart.addSeries({"cu", idx11,
                     normalizeToFirst(surface.cuCurveAtMax())});
    chart.addSeries({"freq", idx9,
                     normalizeToFirst(surface.freqCurveAtMax())});
    chart.addSeries({"mem", idx9,
                     normalizeToFirst(surface.memCurveAtMax())});
    std::printf("%s\n", chart.render().c_str());
    return kExitOk;
}

int
suitesCmd()
{
    const auto &reg = workloads::WorkloadRegistry::instance();
    for (const auto &row : reg.census()) {
        std::printf("%-12s %3zu programs %4zu kernels\n",
                    row.suite.c_str(), row.programs, row.kernels);
    }
    return kExitOk;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: gpuscale [options] <command>\n"
        "  census [sigma]       full taxonomy census (+noise);\n"
        "                       writes classifications.csv + manifest\n"
        "  classify <file.csv>  classify measured surfaces\n"
        "  kernel <name>        inspect one zoo kernel\n"
        "  suites               workload inventory\n"
        "options:\n"
        "  --trace=FILE         Chrome/Perfetto trace-event JSON\n"
        "  --metrics=FILE       metrics-registry JSON snapshot\n"
        "  --metrics-interval=MS  periodic JSONL metrics export\n"
        "  --metrics-jsonl=FILE exporter destination "
        "(default metrics.jsonl)\n"
        "  --exposition=FILE    Prometheus text exposition at exit\n"
        "  --flight-recorder=BASE  crash black box: ring at "
        "BASE.ring,\n"
        "                       dump at BASE.json on crash/degrade\n"
        "  --progress           live sweep progress on stderr\n"
        "  --sweep-cache=DIR    persistent sweep cache directory\n"
        "  --checkpoint=DIR     crash-safe census journal directory\n"
        "  --sparse=K           census: measure only K configs per\n"
        "                       kernel, reconstruct the rest\n"
        "                       (docs/prediction.md)\n"
        "  --sampler=NAME       sparse sample planner: lhs (default)\n"
        "                       or active\n"
        "  --sparse-seed=N      seed for sparse plans/ensembles\n"
        "env: GPUSCALE_FAULTS, GPUSCALE_FAULT_SEED, GPUSCALE_RETRY "
        "(see docs/fault_tolerance.md),\n"
        "     GPUSCALE_METRICS_INTERVAL (ms, same as "
        "--metrics-interval)\n"
        "exit codes: 0 ok, 1 failure, 2 unknown command, "
        "3 bad arguments,\n"
        "            4 ok but degraded (absorbed faults), "
        "5 service startup\n"
        "            failure (gpuscaled serve only; "
        "docs/service.md)\n");
}

/** Write the metrics snapshot and print the table (--metrics). */
void
emitMetrics(const std::string &path)
{
    // gpuscale-lint: allow(fault-coverage): telemetry artifact
    // written after the census completed; a bad path is a fatal
    // usage error.
    std::ofstream os(path);
    fatal_if(!os, "cannot write metrics file %s", path.c_str());
    os << obs::Registry::instance().snapshotJson() << '\n';
    std::printf("\n%s",
                obs::Registry::instance().snapshotTable()
                    .render().c_str());
    inform("wrote %s", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    // Arm before anything probes a fault point; a malformed
    // GPUSCALE_FAULTS plan exits 2 in here.
    obs::armFaultsFromEnv();

    CliOptions opts;
    std::vector<std::string> args;
    std::vector<std::string> argv_record;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        argv_record.push_back(arg);
        if (arg.rfind("--trace=", 0) == 0) {
            opts.trace_file = arg.substr(8);
        } else if (arg.rfind("--metrics=", 0) == 0) {
            opts.metrics_file = arg.substr(10);
        } else if (arg.rfind("--metrics-interval=", 0) == 0) {
            // from_chars, not atoi: a mistyped interval must be a
            // usage error, not a silently disabled exporter.
            const auto parsed = parseDouble(arg.substr(19));
            if (!parsed || *parsed <= 0) {
                std::fprintf(stderr,
                             "--metrics-interval: '%s' is not a "
                             "positive millisecond count\n",
                             arg.substr(19).c_str());
                usage();
                return kExitBadArguments;
            }
            opts.metrics_interval_ms =
                static_cast<unsigned>(*parsed);
        } else if (arg.rfind("--metrics-jsonl=", 0) == 0) {
            opts.metrics_jsonl = arg.substr(16);
        } else if (arg.rfind("--exposition=", 0) == 0) {
            opts.exposition_file = arg.substr(13);
        } else if (arg.rfind("--flight-recorder=", 0) == 0) {
            opts.flight_recorder_base = arg.substr(18);
        } else if (arg.rfind("--sweep-cache=", 0) == 0) {
            opts.sweep_cache_dir = arg.substr(14);
        } else if (arg.rfind("--checkpoint=", 0) == 0) {
            opts.checkpoint_dir = arg.substr(13);
        } else if (arg == "--progress") {
            opts.progress = true;
        } else if (arg.rfind("--sparse=", 0) == 0) {
            // from_chars, not atoi: "8x9" must be a usage error, not
            // a silent 8-sample census.
            const auto parsed = parseDouble(arg.substr(9));
            if (!parsed || *parsed <= 0 ||
                *parsed != static_cast<size_t>(*parsed))
            {
                std::fprintf(stderr,
                             "--sparse: '%s' is not a positive "
                             "sample count\n",
                             arg.substr(9).c_str());
                usage();
                return kExitBadArguments;
            }
            opts.sparse_samples = static_cast<size_t>(*parsed);
        } else if (arg.rfind("--sampler=", 0) == 0) {
            if (!scaling::parseSamplerKind(arg.substr(10),
                                           &opts.sampler))
            {
                std::fprintf(stderr,
                             "--sampler: '%s' is not a sampler "
                             "(lhs, active)\n",
                             arg.substr(10).c_str());
                usage();
                return kExitBadArguments;
            }
            opts.sampler_given = true;
        } else if (arg.rfind("--sparse-seed=", 0) == 0) {
            const auto parsed = parseDouble(arg.substr(14));
            if (!parsed || *parsed < 0 ||
                *parsed != static_cast<uint64_t>(*parsed))
            {
                std::fprintf(stderr,
                             "--sparse-seed: '%s' is not a "
                             "non-negative integer\n",
                             arg.substr(14).c_str());
                usage();
                return kExitBadArguments;
            }
            opts.sparse_seed = static_cast<uint64_t>(*parsed);
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage();
            return kExitBadArguments;
        } else {
            args.push_back(arg);
        }
    }

    if (args.empty()) {
        usage();
        return kExitBadArguments;
    }

    if (opts.metrics_interval_ms == 0) {
        // The environment can turn the exporter on for runs whose
        // command line a wrapper controls.
        if (const char *env = std::getenv("GPUSCALE_METRICS_INTERVAL")) {
            const auto parsed = parseDouble(env);
            if (parsed && *parsed > 0)
                opts.metrics_interval_ms =
                    static_cast<unsigned>(*parsed);
            else
                warn("ignoring GPUSCALE_METRICS_INTERVAL='%s'", env);
        }
    }

    if (!opts.trace_file.empty())
        obs::TraceSession::start(opts.trace_file);
    if (!opts.flight_recorder_base.empty()) {
        if (obs::FlightRecorder::start(opts.flight_recorder_base +
                                       ".ring"))
        {
            obs::FlightRecorder::installCrashDump(
                opts.flight_recorder_base + ".json");
        }
    }
    if (opts.metrics_interval_ms > 0) {
        obs::MetricsExporter::start(opts.metrics_jsonl,
                                    opts.metrics_interval_ms);
    }
    if (!opts.sweep_cache_dir.empty())
        harness::SweepCache::instance().setDirectory(
            opts.sweep_cache_dir);

    const std::string cmd = args[0];
    int rc;
    if (cmd == "census") {
        double sigma = 0.0;
        if (args.size() > 1) {
            // from_chars, not atof: "0,05" or "abc" must be a usage
            // error, not a silent sigma of 0 in every manifest.
            const auto parsed = parseDouble(args[1]);
            if (!parsed || *parsed < 0) {
                std::fprintf(stderr,
                             "census: sigma '%s' is not a "
                             "non-negative number\n",
                             args[1].c_str());
                usage();
                return kExitBadArguments;
            }
            sigma = *parsed;
        }
        if (opts.sparse_samples > 0) {
            if (!opts.checkpoint_dir.empty()) {
                // The census journal records full-sweep shards; a
                // sparse census measures per-plan points, so a
                // replayed journal would silently hand it dense
                // vectors.  The sweep cache covers sparse resumption
                // instead.
                std::fprintf(stderr,
                             "census: --checkpoint is incompatible "
                             "with --sparse (use --sweep-cache)\n");
                usage();
                return kExitBadArguments;
            }
            rc = runSparseCensusCmd(sigma, opts, argv_record);
        } else {
            if (opts.sampler_given || opts.sparse_seed != 0) {
                std::fprintf(stderr,
                             "census: --sampler/--sparse-seed need "
                             "--sparse=K\n");
                usage();
                return kExitBadArguments;
            }
            rc = runCensusCmd(sigma, opts, argv_record);
        }
    } else if (cmd == "classify") {
        if (args.size() < 2) {
            std::fprintf(stderr, "classify needs a CSV path\n");
            usage();
            return kExitBadArguments;
        }
        rc = classifyCmd(args[1]);
    } else if (cmd == "kernel") {
        if (args.size() < 2) {
            std::fprintf(stderr, "kernel needs a kernel name\n");
            usage();
            return kExitBadArguments;
        }
        rc = kernelCmd(args[1]);
    } else if (cmd == "suites") {
        rc = suitesCmd();
    } else {
        std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
        usage();
        return kExitUnknownCommand;
    }

    if (obs::MetricsExporter::active()) {
        obs::MetricsExporter::stop();
        inform("wrote %s", opts.metrics_jsonl.c_str());
    }
    if (!opts.metrics_file.empty())
        emitMetrics(opts.metrics_file);
    if (!opts.exposition_file.empty()) {
        // gpuscale-lint: allow(fault-coverage): telemetry artifact
        // written after the census completed; a bad path is a fatal
        // usage error.
        std::ofstream os(opts.exposition_file);
        fatal_if(!os, "cannot write exposition file %s",
                 opts.exposition_file.c_str());
        obs::Registry::instance().writeExposition(os);
        inform("wrote %s", opts.exposition_file.c_str());
    }
    if (!opts.trace_file.empty()) {
        const size_t spans = obs::TraceSession::stop();
        inform("wrote %s (%zu spans)", opts.trace_file.c_str(), spans);
    }
    if (rc == kExitOk && obs::degradationCount() > 0) {
        warn("run completed with %llu degradation(s); exiting %d",
             static_cast<unsigned long long>(obs::degradationCount()),
             kExitDegraded);
        rc = kExitDegraded;
    }
    if (obs::FlightRecorder::active()) {
        if (rc == kExitDegraded) {
            // The black box explains *what* degraded, not just that
            // something did: dump before the recorder winds down.
            const std::string dump_path =
                opts.flight_recorder_base + ".json";
            obs::FlightRecorder::dump(dump_path, "degraded-exit-4");
            inform("wrote %s", dump_path.c_str());
        }
        // The ring file stays behind for post-mortem reads.
        obs::FlightRecorder::stop();
    }
    return rc;
}
