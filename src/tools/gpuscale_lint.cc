/**
 * @file
 * gpuscale-lint — static analyzer for the gpuscale tree itself.
 *
 * Scans every .cc/.hh under the repo root's src/ and enforces the
 * invariants described in docs/static_analysis.md: layering,
 * concurrency hygiene, locale safety, telemetry naming, and census
 * conformance.
 *
 * Usage:
 *   gpuscale-lint [--root=DIR] [--rule=NAME ...] [--list-rules]
 *
 *   --root=DIR   repository root; defaults to the nearest ancestor
 *                of the current directory containing src/workloads.
 *   --rule=NAME  run only the named rule (repeatable).
 *   --list-rules print every rule with its summary and exit.
 *
 * Exit codes mirror the gpuscale CLI: 0 clean, 1 findings,
 * 3 bad arguments.
 */

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/rules.hh"
#include "base/logging.hh"

namespace {

using namespace gpuscale;

constexpr int kExitClean = 0;
constexpr int kExitFindings = 1;
constexpr int kExitBadArguments = 3;

/**
 * Walk upward from the current directory to the first ancestor that
 * looks like a gpuscale checkout; empty string if none does.
 */
std::string
discoverRoot()
{
    namespace fs = std::filesystem;
    fs::path dir = fs::current_path();
    while (true) {
        if (fs::is_directory(dir / "src" / "workloads"))
            return dir.string();
        if (dir == dir.parent_path())
            return "";
        dir = dir.parent_path();
    }
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: gpuscale-lint [--root=DIR] [--rule=NAME ...]\n"
        "                     [--list-rules]\n"
        "exit codes: 0 clean, 1 findings, 3 bad arguments\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root;
    std::vector<std::string> only_rules;
    bool list_rules = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--root=", 0) == 0) {
            root = arg.substr(7);
        } else if (arg.rfind("--rule=", 0) == 0) {
            only_rules.push_back(arg.substr(7));
        } else if (arg == "--list-rules") {
            list_rules = true;
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n",
                         arg.c_str());
            usage();
            return kExitBadArguments;
        }
    }

    const auto rules = analysis::allRules();

    if (list_rules) {
        for (const auto &rule : rules)
            std::printf("%-12s %s\n", rule->name().c_str(),
                        rule->description().c_str());
        return kExitClean;
    }

    for (const auto &wanted : only_rules) {
        bool known = false;
        for (const auto &rule : rules)
            known = known || rule->name() == wanted;
        if (!known) {
            std::fprintf(stderr, "unknown rule '%s'\n",
                         wanted.c_str());
            usage();
            return kExitBadArguments;
        }
    }

    if (root.empty())
        root = discoverRoot();
    if (root.empty()) {
        std::fprintf(stderr,
                     "cannot find a gpuscale checkout above the "
                     "current directory; pass --root=DIR\n");
        usage();
        return kExitBadArguments;
    }

    const analysis::SourceRepo repo = analysis::loadRepo(root);
    const analysis::LintOptions opts;
    analysis::Report report;

    for (const auto &rule : rules) {
        if (!only_rules.empty()) {
            bool wanted = false;
            for (const auto &name : only_rules)
                wanted = wanted || name == rule->name();
            if (!wanted)
                continue;
        }
        rule->run(repo, opts, report);
    }

    std::fputs(report.render().c_str(), stdout);
    std::printf("gpuscale-lint: %zu files, %zu errors, %zu warnings"
                ", %zu suppressed\n",
                repo.files.size(), report.errorCount(),
                report.warningCount(), report.suppressedCount());
    return report.findings().empty() ? kExitClean : kExitFindings;
}
