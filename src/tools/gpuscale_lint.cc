/**
 * @file
 * gpuscale-lint — static analyzer for the gpuscale tree itself.
 *
 * Scans every .cc/.hh under the repo root's src/ (plus the CMake
 * lists, for compiler-flag rules) and enforces the invariants
 * described in docs/static_analysis.md: layering, concurrency
 * hygiene, locale safety, telemetry naming, census conformance,
 * error-code use, instrument descriptions, floating-point
 * determinism, fault coverage, lock discipline, and suppression
 * marker health.
 *
 * Usage:
 *   gpuscale-lint [--root=DIR] [--rule=NAME ...] [--list-rules]
 *                 [--sarif=FILE] [--baseline=FILE] [--diff]
 *                 [--write-baseline=FILE] [--bench-json=FILE]
 *                 [--werror]
 *
 *   --root=DIR       repository root; defaults to the nearest
 *                    ancestor of the current directory containing
 *                    src/workloads.
 *   --rule=NAME      run only the named rule (repeatable).
 *   --list-rules     print every rule with its summary and exit.
 *   --sarif=FILE     also write the reported findings as SARIF
 *                    2.1.0 (what CI uploads for PR annotations).
 *   --baseline=FILE  committed findings baseline (see
 *                    ci/lint_baseline.txt).
 *   --diff           report only findings absent from --baseline;
 *                    baselined findings still count in the summary.
 *   --write-baseline=FILE
 *                    write the current findings as a new baseline
 *                    and exit 0 (a capture run, not a gate).
 *   --bench-json=FILE
 *                    write {files, errors, warnings, suppressed,
 *                    duration_s} for the CI perf smoke gate.
 *   --werror         exit 1 on warnings too, not just errors.
 *
 * Exit codes mirror the gpuscale CLI: 0 clean (warnings allowed
 * unless --werror), 1 errors reported, 3 bad arguments.
 */

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/baseline.hh"
#include "analysis/rules.hh"
#include "analysis/sarif.hh"
#include "base/logging.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"

namespace {

using namespace gpuscale;

constexpr int kExitClean = 0;
constexpr int kExitFindings = 1;
constexpr int kExitBadArguments = 3;

/**
 * Walk upward from the current directory to the first ancestor that
 * looks like a gpuscale checkout; empty string if none does.
 */
std::string
discoverRoot()
{
    namespace fs = std::filesystem;
    fs::path dir = fs::current_path();
    while (true) {
        if (fs::is_directory(dir / "src" / "workloads"))
            return dir.string();
        if (dir == dir.parent_path())
            return "";
        dir = dir.parent_path();
    }
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: gpuscale-lint [--root=DIR] [--rule=NAME ...]\n"
        "                     [--list-rules] [--sarif=FILE]\n"
        "                     [--baseline=FILE] [--diff]\n"
        "                     [--write-baseline=FILE]\n"
        "                     [--bench-json=FILE] [--werror]\n"
        "exit codes: 0 clean, 1 findings, 3 bad arguments\n");
}

void
printRules(std::FILE *to,
           const std::vector<std::unique_ptr<analysis::Rule>> &rules)
{
    for (const auto &rule : rules)
        std::fprintf(to, "%-16s %s\n", rule->name().c_str(),
                     rule->description().c_str());
}

/**
 * Lint's own artifacts (SARIF, baseline, bench JSON) are tool
 * output, not census data: a failed write is reported and fatal, but
 * it is not a crash-consistency surface the fault harness needs to
 * reach.
 */
bool
writeFile(const std::string &path, const std::string &contents)
{
    // gpuscale-lint: allow(fault-coverage): lint report artifacts
    // are outside the census crash-consistency envelope.
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        return false;
    os << contents;
    os.flush();
    return static_cast<bool>(os);
}

bool
readFile(const std::string &path, std::string &out)
{
    // gpuscale-lint: allow(fault-coverage): reading the committed
    // baseline is a pure input, not a crash-consistency surface.
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::ostringstream ss;
    ss << is.rdbuf();
    out = ss.str();
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root;
    std::vector<std::string> only_rules;
    std::string sarif_path;
    std::string baseline_path;
    std::string write_baseline_path;
    std::string bench_json_path;
    bool list_rules = false;
    bool diff = false;
    bool werror = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--root=", 0) == 0) {
            root = arg.substr(7);
        } else if (arg.rfind("--rule=", 0) == 0) {
            only_rules.push_back(arg.substr(7));
        } else if (arg == "--list-rules") {
            list_rules = true;
        } else if (arg.rfind("--sarif=", 0) == 0) {
            sarif_path = arg.substr(8);
        } else if (arg.rfind("--baseline=", 0) == 0) {
            baseline_path = arg.substr(11);
        } else if (arg == "--diff") {
            diff = true;
        } else if (arg.rfind("--write-baseline=", 0) == 0) {
            write_baseline_path = arg.substr(17);
        } else if (arg.rfind("--bench-json=", 0) == 0) {
            bench_json_path = arg.substr(13);
        } else if (arg == "--werror") {
            werror = true;
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n",
                         arg.c_str());
            usage();
            return kExitBadArguments;
        }
    }

    const auto rules = analysis::allRules();

    if (list_rules) {
        printRules(stdout, rules);
        return kExitClean;
    }

    for (const auto &wanted : only_rules) {
        bool known = false;
        for (const auto &rule : rules)
            known = known || rule->name() == wanted;
        if (!known) {
            std::fprintf(stderr,
                         "unknown rule '%s'; known rules:\n",
                         wanted.c_str());
            printRules(stderr, rules);
            return kExitBadArguments;
        }
    }

    if (diff && baseline_path.empty()) {
        std::fprintf(stderr, "--diff requires --baseline=FILE\n");
        usage();
        return kExitBadArguments;
    }

    std::set<std::string> baseline;
    if (!baseline_path.empty()) {
        std::string text;
        if (!readFile(baseline_path, text)) {
            std::fprintf(stderr, "cannot read baseline '%s'\n",
                         baseline_path.c_str());
            return kExitBadArguments;
        }
        baseline = analysis::parseBaseline(text);
    }

    if (root.empty())
        root = discoverRoot();
    if (root.empty()) {
        std::fprintf(stderr,
                     "cannot find a gpuscale checkout above the "
                     "current directory; pass --root=DIR\n");
        usage();
        return kExitBadArguments;
    }

    const auto start = std::chrono::steady_clock::now();

    const analysis::SourceRepo repo = analysis::loadRepo(root);
    analysis::LintOptions opts;
    for (const auto &rule : rules)
        opts.known_rules.push_back(rule->name());
    analysis::Report report;

    for (const auto &rule : rules) {
        if (!only_rules.empty()) {
            bool wanted = false;
            for (const auto &name : only_rules)
                wanted = wanted || name == rule->name();
            if (!wanted)
                continue;
        }
        rule->run(repo, opts, report);
    }

    const double duration_s =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();

    auto &registry = obs::Registry::instance();
    registry
        .counter("lint.files",
                 "source files scanned by gpuscale-lint")
        .inc(repo.files.size());
    registry
        .counter("lint.findings",
                 "findings reported by gpuscale-lint")
        .inc(report.findings().size());
    registry
        .histogram("lint.duration",
                   "wall seconds for one full gpuscale-lint run")
        .record(duration_s);

    if (!write_baseline_path.empty()) {
        const std::string text =
            analysis::renderBaseline(report.findings());
        if (!writeFile(write_baseline_path, text)) {
            std::fprintf(stderr, "cannot write baseline '%s'\n",
                         write_baseline_path.c_str());
            return kExitBadArguments;
        }
        std::printf("gpuscale-lint: wrote %zu baseline entries to "
                    "%s\n",
                    report.findings().size(),
                    write_baseline_path.c_str());
        return kExitClean;
    }

    // With --diff, only findings absent from the baseline are
    // reported (and gate the exit code); the rest are "baselined".
    std::vector<analysis::Finding> reported = report.findings();
    size_t baselined = 0;
    if (diff) {
        reported =
            analysis::diffAgainstBaseline(report.findings(),
                                          baseline);
        baselined = report.findings().size() - reported.size();
    }

    size_t errors = 0;
    size_t warnings = 0;
    for (const auto &f : reported) {
        if (f.severity == analysis::Severity::Error)
            ++errors;
        else
            ++warnings;
        std::printf("%s\n", f.render().c_str());
    }

    std::printf("gpuscale-lint: %zu files, %zu errors, %zu warnings"
                ", %zu suppressed",
                repo.files.size(), errors, warnings,
                report.suppressedCount());
    if (diff)
        std::printf(", %zu baselined", baselined);
    std::printf(" (%.3fs)\n", duration_s);

    if (!sarif_path.empty()) {
        std::vector<analysis::SarifRuleInfo> infos;
        for (const auto &rule : rules)
            infos.push_back({rule->name(), rule->description()});
        const std::string sarif =
            analysis::renderSarif(reported, infos);
        if (!writeFile(sarif_path, sarif)) {
            std::fprintf(stderr, "cannot write SARIF '%s'\n",
                         sarif_path.c_str());
            return kExitBadArguments;
        }
    }

    if (!bench_json_path.empty()) {
        std::ostringstream os;
        {
            obs::JsonWriter w(os);
            w.beginObject();
            w.key("files")
                .value(static_cast<uint64_t>(repo.files.size()));
            w.key("errors").value(static_cast<uint64_t>(errors));
            w.key("warnings")
                .value(static_cast<uint64_t>(warnings));
            w.key("suppressed")
                .value(static_cast<uint64_t>(
                    report.suppressedCount()));
            w.key("duration_s").value(duration_s);
            w.endObject();
        }
        os << '\n';
        if (!writeFile(bench_json_path, os.str())) {
            std::fprintf(stderr, "cannot write bench JSON '%s'\n",
                         bench_json_path.c_str());
            return kExitBadArguments;
        }
    }

    if (errors > 0 || (werror && warnings > 0))
        return kExitFindings;
    return kExitClean;
}
