/**
 * @file
 * AMD APP SDK-style suite: 18 programs, 44 kernels.
 *
 * SDK samples are tutorial-scale: many were written for GPUs an order
 * of magnitude smaller than the studied 44-CU part, so a large share
 * of this suite is parallelism-starved or launch-bound at the grid's
 * high end — a key input to the paper's "benchmarks do not scale to
 * modern GPU sizes" finding.
 */

#include "archetypes.hh"
#include "registry.hh"

namespace gpuscale {
namespace workloads {

std::vector<Program>
makeAmdSdkSuite()
{
    std::vector<Program> suite;
    const std::string s = "amdsdk";

    suite.emplace_back(Program(s, "binomialoption")
        .add(tiledLds("binomial_option",
                      {.wgs = 786, .wi_per_wg = 255, .launches = 1,
                       .intensity = 1.6})));

    suite.emplace_back(Program(s, "bitonicsort")
        .add([] {
            auto k = streaming("bitonic_stage",
                               {.wgs = 512, .wi_per_wg = 256,
                                .launches = 210, .intensity = 0.4});
            k.coalescing = 0.5; // stage-dependent stride
            return k;
        }()));

    suite.emplace_back(Program(s, "blackscholes")
        .add(denseCompute("black_scholes",
                          {.wgs = 1024, .wi_per_wg = 256, .launches = 1,
                           .intensity = 0.6}))
        .add(streaming("write_results",
                       {.wgs = 1024, .wi_per_wg = 256, .launches = 1,
                        .intensity = 0.2})));

    suite.emplace_back(Program(s, "boxfilter")
        .add(smallGridCompute("sat_scan_horizontal",
                              {.wgs = 33, .wi_per_wg = 256,
                               .launches = 3, .intensity = 0.4}))
        .add([] {
            auto k = streaming("sat_scan_vertical",
                               {.wgs = 128, .wi_per_wg = 256,
                                .launches = 3, .intensity = 0.5});
            k.coalescing = 0.12; // column walk
            return k;
        }())
        .add(stencil("box_filter",
                     {.wgs = 1024, .wi_per_wg = 256, .launches = 1},
                     14.0))
        .add(tinyIterative("transpose_small",
                           {.wgs = 32, .wi_per_wg = 256,
                            .launches = 2})));

    suite.emplace_back(Program(s, "dct")
        .add(tiledLds("dct_8x8",
                      {.wgs = 4096, .wi_per_wg = 64, .launches = 1,
                       .intensity = 0.9}))
        .add(tiledLds("idct_8x8",
                      {.wgs = 4096, .wi_per_wg = 64, .launches = 1,
                       .intensity = 0.9})));

    suite.emplace_back(Program(s, "dwthaar1d")
        .add(tinyIterative("dwt_per_level",
                           {.wgs = 10, .wi_per_wg = 256,
                            .launches = 20, .intensity = 0.4}))
        .add(streaming("dwt_first_level",
                       {.wgs = 512, .wi_per_wg = 256, .launches = 1,
                        .intensity = 0.3})));

    suite.emplace_back(Program(s, "fastwalsh")
        .add(streaming("fwt_stage",
                       {.wgs = 256, .wi_per_wg = 256, .launches = 23,
                        .intensity = 0.35})));

    suite.emplace_back(Program(s, "floydwarshall")
        .add([] {
            auto k = cacheThrash("floyd_warshall_pass",
                                 {.wgs = 1024, .wi_per_wg = 256,
                                  .launches = 1024, .intensity = 0.5},
                                 16.0);
            return k;
        }()));

    suite.emplace_back(Program(s, "histogram")
        .add(reduction("histogram256",
                       {.wgs = 1024, .wi_per_wg = 256, .launches = 10},
                       0.75))
        .add(tinyIterative("histogram_merge",
                           {.wgs = 4, .wi_per_wg = 256,
                            .launches = 10}))
        .add(streaming("histogram_scale",
                       {.wgs = 256, .wi_per_wg = 256, .launches = 10,
                        .intensity = 0.2})));

    suite.emplace_back(Program(s, "matrixmultiplication")
        .add([] {
            auto k = denseCompute("mmm_naive",
                                  {.wgs = 1024, .wi_per_wg = 256,
                                   .launches = 1, .intensity = 1.4});
            k.l1_reuse = 0.30;
            k.mem_loads = 24.0;
            return k;
        }())
        .add(tiledLds("mmm_tiled",
                      {.wgs = 1024, .wi_per_wg = 256, .launches = 1,
                       .intensity = 2.0}))
        .add(denseCompute("mmm_vectorized",
                          {.wgs = 256, .wi_per_wg = 256, .launches = 1,
                           .intensity = 2.6})));

    suite.emplace_back(Program(s, "matrixtranspose")
        .add([] {
            auto k = streaming("transpose_naive",
                               {.wgs = 4096, .wi_per_wg = 256,
                                .launches = 1, .intensity = 0.1});
            k.coalescing = 0.0625; // column-major writes
            return k;
        }())
        .add(tiledLds("transpose_lds",
                      {.wgs = 4096, .wi_per_wg = 256, .launches = 1,
                       .intensity = 0.2})));

    suite.emplace_back(Program(s, "montecarloasian")
        .add(denseCompute("calc_price_paths",
                          {.wgs = 786, .wi_per_wg = 255, .launches = 37,
                           .intensity = 2.2}))
        .add(reduction("path_reduce",
                       {.wgs = 98, .wi_per_wg = 255, .launches = 37},
                       0.25))
        .add(tinyIterative("rng_seed_init",
                           {.wgs = 12, .wi_per_wg = 255,
                            .launches = 1})));

    suite.emplace_back(Program(s, "nbody")
        .add(smallGridCompute("nbody_sim",
                              {.wgs = 40, .wi_per_wg = 256,
                               .launches = 50, .intensity = 0.9}))
        .add(streaming("nbody_update",
                       {.wgs = 128, .wi_per_wg = 256, .launches = 50,
                        .intensity = 0.2}))
        .add(reduction("nbody_energy",
                       {.wgs = 32, .wi_per_wg = 256, .launches = 5},
                       0.30)));

    suite.emplace_back(Program(s, "prefixsum")
        .add(tinyIterative("group_prefixsum",
                           {.wgs = 16, .wi_per_wg = 256,
                            .launches = 40, .intensity = 0.6}))
        .add(tinyIterative("global_prefixsum",
                           {.wgs = 1, .wi_per_wg = 256,
                            .launches = 40, .intensity = 0.3})));

    suite.emplace_back(Program(s, "radixsort")
        .add(reduction("radix_histogram",
                       {.wgs = 512, .wi_per_wg = 256, .launches = 8},
                       0.60))
        .add(streaming("radix_scan_block",
                       {.wgs = 128, .wi_per_wg = 256, .launches = 8,
                        .intensity = 0.4}))
        .add(tinyIterative("radix_prefix",
                           {.wgs = 2, .wi_per_wg = 256, .launches = 8}))
        .add([] {
            auto k = streaming("radix_permute",
                               {.wgs = 512, .wi_per_wg = 256,
                                .launches = 8, .intensity = 0.6});
            k.coalescing = 0.2;
            return k;
        }())
        .add(streaming("radix_blockscan",
                       {.wgs = 128, .wi_per_wg = 256, .launches = 8,
                        .intensity = 0.3})));

    suite.emplace_back(Program(s, "recursivegaussian")
        .add([] {
            auto k = streaming("gauss_column",
                               {.wgs = 64, .wi_per_wg = 256,
                                .launches = 2, .intensity = 1.2});
            k.coalescing = 0.25;
            k.mlp = 2.0;
            return k;
        }())
        .add(tiledLds("gauss_transpose",
                      {.wgs = 1024, .wi_per_wg = 256, .launches = 2,
                       .intensity = 0.3}))
        .add(streaming("gauss_row",
                       {.wgs = 64, .wi_per_wg = 256, .launches = 2,
                        .intensity = 1.2})));

    suite.emplace_back(Program(s, "scanlargearrays")
        .add(streaming("scan_block",
                       {.wgs = 1024, .wi_per_wg = 256, .launches = 4,
                        .intensity = 0.4}))
        .add(tinyIterative("scan_block_sums",
                           {.wgs = 4, .wi_per_wg = 256,
                            .launches = 4}))
        .add(streaming("scan_add_sums",
                       {.wgs = 1024, .wi_per_wg = 256, .launches = 4,
                        .intensity = 0.2}))
        .add(streaming("scan_write",
                       {.wgs = 1024, .wi_per_wg = 256, .launches = 4,
                        .intensity = 0.2})));

    suite.emplace_back(Program(s, "simpleconvolution")
        .add(stencil("simple_convolution",
                     {.wgs = 1024, .wi_per_wg = 256, .launches = 1,
                      .intensity = 0.8}, 20.0))
        .add(streaming("pad_input",
                       {.wgs = 1024, .wi_per_wg = 256, .launches = 1,
                        .intensity = 0.2})));

    return suite;
}

} // namespace workloads
} // namespace gpuscale
