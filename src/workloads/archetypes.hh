/**
 * @file
 * Kernel archetype builders.
 *
 * The kernel zoo is synthesized from a small set of behavioural
 * archetypes, each corresponding to a code pattern that recurs across
 * the public GPGPU benchmark suites the paper measured.  A suite file
 * instantiates an archetype with per-application parameters (problem
 * size, intensity, locality, iteration count), which keeps the 267
 * descriptors meaningful rather than copy-pasted.
 *
 * Archetype -> expected scaling regime:
 *  - denseCompute:    SIMD-issue bound; scales with CUs x core clock.
 *  - streaming:       DRAM bound; scales with memory clock.
 *  - tiledLds:        LDS/issue bound with barriers; core-clock bound.
 *  - stencil:         L2-resident; core-clock bound via the crossbar,
 *                     cache-sensitive to CU count.
 *  - cacheThrash:     tuned so added CUs overflow the shared L2 —
 *                     the CU-adverse regime.
 *  - pointerChase:    latency bound; plateaus in frequency and
 *                     bandwidth.
 *  - graphTraversal:  divergent, uncoalesced, iterative; latency/
 *                     launch mixtures, usually parallelism starved.
 *  - reduction:       atomic tail + serial fraction; sub-linear to
 *                     adverse CU scaling.
 *  - tinyIterative:   launch-overhead dominated.
 */

#ifndef GPUSCALE_WORKLOADS_ARCHETYPES_HH
#define GPUSCALE_WORKLOADS_ARCHETYPES_HH

#include <cstdint>
#include <string>

#include "gpu/kernel_desc.hh"

namespace gpuscale {
namespace workloads {

/** Common knobs every archetype accepts. */
struct ArchetypeParams {
    /** Workgroups per launch. */
    int64_t wgs = 1024;

    /** Work-items per workgroup. */
    int wi_per_wg = 256;

    /** Host launches per program run. */
    int64_t launches = 1;

    /** Scale factor on the archetype's nominal per-item work. */
    double intensity = 1.0;
};

/** Dense math (GEMM/NN-layer style): high flop/byte, high occupancy. */
gpu::KernelDesc denseCompute(const std::string &name,
                             const ArchetypeParams &p);

/** Streaming (STREAM/axpy style): unit-stride, near-zero reuse. */
gpu::KernelDesc streaming(const std::string &name,
                          const ArchetypeParams &p);

/** LDS-tiled compute (FFT/tiled-GEMM style): barriers + LDS traffic. */
gpu::KernelDesc tiledLds(const std::string &name,
                         const ArchetypeParams &p);

/**
 * Structured-grid stencil: strong inter-workgroup halo reuse in the
 * L2.
 *
 * @param footprint_kb per-workgroup tile footprint in KiB; tune
 *        against the 1 MiB shared L2 to select how cache-sensitive
 *        the kernel is to added CUs.
 */
gpu::KernelDesc stencil(const std::string &name, const ArchetypeParams &p,
                        double footprint_kb);

/** L2-thrashing variant: loses performance as CUs are enabled. */
gpu::KernelDesc cacheThrash(const std::string &name,
                            const ArchetypeParams &p,
                            double footprint_kb);

/** Pointer chasing (hash probe / linked traversal): MLP ~= 1. */
gpu::KernelDesc pointerChase(const std::string &name,
                             const ArchetypeParams &p);

/**
 * Graph traversal sweep (BFS/SSSP style): divergent, uncoalesced,
 * re-launched every frontier iteration.
 */
gpu::KernelDesc graphTraversal(const std::string &name,
                               const ArchetypeParams &p);

/**
 * Reduction/histogram tail: global atomics with the given contention.
 */
gpu::KernelDesc reduction(const std::string &name,
                          const ArchetypeParams &p,
                          double contention);

/** Small kernel launched thousands of times: launch-overhead bound. */
gpu::KernelDesc tinyIterative(const std::string &name,
                              const ArchetypeParams &p);

/**
 * Heavy per-thread compute on a launch too small to fill a big GPU
 * (ODE solvers, per-row factorizations): CU scaling plateaus at
 * roughly `wgs` CUs while frequency scaling stays linear — the
 * parallelism-starved exemplar behind "benchmarks do not scale to
 * modern GPU sizes".
 */
gpu::KernelDesc smallGridCompute(const std::string &name,
                                 const ArchetypeParams &p);

} // namespace workloads
} // namespace gpuscale

#endif // GPUSCALE_WORKLOADS_ARCHETYPES_HH
