/**
 * @file
 * PolyBench/GPU-style suite: 15 programs, 38 kernels.
 *
 * Auto-generated dense linear algebra: large regular launches with
 * simple access functions.  Matrix-matrix kernels are compute bound,
 * matrix-vector kernels stream, and gramschmidt's per-column launches
 * make it serialize on the host — PolyBench's contribution to the
 * "does not scale" population.
 */

#include "archetypes.hh"
#include "registry.hh"

namespace gpuscale {
namespace workloads {

std::vector<Program>
makePolybenchSuite()
{
    std::vector<Program> suite;
    const std::string s = "polybench";

    suite.emplace_back(Program(s, "2mm")
        .add(denseCompute("mm2_kernel1",
                          {.wgs = 2048, .wi_per_wg = 256, .launches = 1,
                           .intensity = 1.5}))
        .add(denseCompute("mm2_kernel2",
                          {.wgs = 2048, .wi_per_wg = 256, .launches = 1,
                           .intensity = 1.5}))
        .add(streaming("mm2_scale",
                       {.wgs = 2048, .wi_per_wg = 256, .launches = 1,
                        .intensity = 0.2})));

    suite.emplace_back(Program(s, "3mm")
        .add(denseCompute("mm3_kernel1",
                          {.wgs = 2048, .wi_per_wg = 256, .launches = 1,
                           .intensity = 1.5}))
        .add(denseCompute("mm3_kernel2",
                          {.wgs = 2048, .wi_per_wg = 256, .launches = 1,
                           .intensity = 1.5}))
        .add(denseCompute("mm3_kernel3",
                          {.wgs = 2048, .wi_per_wg = 256, .launches = 1,
                           .intensity = 1.5}))
        .add(streaming("mm3_init",
                       {.wgs = 2048, .wi_per_wg = 256, .launches = 1,
                        .intensity = 0.2})));

    suite.emplace_back(Program(s, "atax")
        .add([] {
            auto k = streaming("atax_kernel1",
                               {.wgs = 512, .wi_per_wg = 256,
                                .launches = 1, .intensity = 0.8});
            k.l2_reuse = 0.60; // x vector re-read by every row
            k.shared_footprint_bytes = 64.0 * 1024;
            return k;
        }())
        .add([] {
            auto k = streaming("atax_kernel2",
                               {.wgs = 512, .wi_per_wg = 256,
                                .launches = 1, .intensity = 0.8});
            k.coalescing = 0.25; // transposed access
            return k;
        }()));

    suite.emplace_back(Program(s, "bicg")
        .add(streaming("bicg_kernel1",
                       {.wgs = 512, .wi_per_wg = 256, .launches = 1,
                        .intensity = 0.7}))
        .add([] {
            auto k = streaming("bicg_kernel2",
                               {.wgs = 512, .wi_per_wg = 256,
                                .launches = 1, .intensity = 0.7});
            k.coalescing = 0.25;
            return k;
        }()));

    suite.emplace_back(Program(s, "correlation")
        .add(streaming("corr_mean",
                       {.wgs = 128, .wi_per_wg = 256, .launches = 1,
                        .intensity = 0.4}))
        .add(denseCompute("corr_std",
                          {.wgs = 128, .wi_per_wg = 256, .launches = 1,
                           .intensity = 0.3}))
        .add(streaming("corr_center",
                       {.wgs = 2048, .wi_per_wg = 256, .launches = 1,
                        .intensity = 0.3}))
        .add([] {
            auto k = denseCompute("corr_compute",
                                  {.wgs = 2048, .wi_per_wg = 256,
                                   .launches = 1, .intensity = 1.2});
            k.l2_reuse = 0.80;
            k.footprint_bytes_per_wg = 32.0 * 1024;
            return k;
        }())
        .add(tinyIterative("corr_diag_set",
                           {.wgs = 8, .wi_per_wg = 256,
                            .launches = 1})));

    suite.emplace_back(Program(s, "covariance")
        .add(streaming("covar_mean",
                       {.wgs = 128, .wi_per_wg = 256, .launches = 1,
                        .intensity = 0.4}))
        .add(streaming("covar_center",
                       {.wgs = 2048, .wi_per_wg = 256, .launches = 1,
                        .intensity = 0.3}))
        .add([] {
            auto k = denseCompute("covar_compute",
                                  {.wgs = 2048, .wi_per_wg = 256,
                                   .launches = 1, .intensity = 1.1});
            k.l2_reuse = 0.80;
            k.footprint_bytes_per_wg = 32.0 * 1024;
            return k;
        }())
        .add(tinyIterative("covar_symmetrize",
                           {.wgs = 16, .wi_per_wg = 256,
                            .launches = 1})));

    suite.emplace_back(Program(s, "fdtd2d")
        .add(tinyIterative("fdtd_source",
                           {.wgs = 1, .wi_per_wg = 64,
                            .launches = 500}))
        .add(stencil("fdtd_step1",
                     {.wgs = 2048, .wi_per_wg = 256, .launches = 500,
                      .intensity = 0.6}, 24.0))
        .add(stencil("fdtd_step2",
                     {.wgs = 2048, .wi_per_wg = 256, .launches = 500,
                      .intensity = 0.6}, 24.0))
        .add(stencil("fdtd_step3",
                     {.wgs = 2048, .wi_per_wg = 256, .launches = 500,
                      .intensity = 0.8}, 24.0))
        .add(streaming("fdtd_boundary",
                       {.wgs = 16, .wi_per_wg = 256, .launches = 500,
                        .intensity = 0.2})));

    suite.emplace_back(Program(s, "gemm")
        .add(denseCompute("gemm_kernel",
                          {.wgs = 2048, .wi_per_wg = 256, .launches = 1,
                           .intensity = 1.6}))
        .add(streaming("gemm_beta_scale",
                       {.wgs = 2048, .wi_per_wg = 256, .launches = 1,
                        .intensity = 0.15})));

    suite.emplace_back(Program(s, "gesummv")
        .add([] {
            auto k = streaming("gesummv_kernel",
                               {.wgs = 512, .wi_per_wg = 256,
                                .launches = 1, .intensity = 0.9});
            k.l2_reuse = 0.50;
            k.shared_footprint_bytes = 64.0 * 1024;
            return k;
        }()));

    suite.emplace_back(Program(s, "gramschmidt")
        .add(tinyIterative("gs_norm",
                           {.wgs = 1, .wi_per_wg = 256,
                            .launches = 512, .intensity = 0.8}))
        .add(tinyIterative("gs_q_column",
                           {.wgs = 8, .wi_per_wg = 256,
                            .launches = 512, .intensity = 0.5}))
        .add(smallGridCompute("gs_update",
                              {.wgs = 32, .wi_per_wg = 256,
                               .launches = 512, .intensity = 0.6})));

    suite.emplace_back(Program(s, "mvt")
        .add([] {
            auto k = streaming("mvt_kernel1",
                               {.wgs = 512, .wi_per_wg = 256,
                                .launches = 1, .intensity = 0.6});
            k.l2_reuse = 0.55;
            k.shared_footprint_bytes = 64.0 * 1024;
            return k;
        }())
        .add([] {
            auto k = streaming("mvt_kernel2",
                               {.wgs = 512, .wi_per_wg = 256,
                                .launches = 1, .intensity = 0.6});
            k.coalescing = 0.25;
            return k;
        }()));

    suite.emplace_back(Program(s, "syr2k")
        .add(denseCompute("syr2k_kernel",
                          {.wgs = 2048, .wi_per_wg = 256, .launches = 1,
                           .intensity = 1.3})));

    suite.emplace_back(Program(s, "syrk")
        .add(denseCompute("syrk_kernel",
                          {.wgs = 2048, .wi_per_wg = 256, .launches = 1,
                           .intensity = 1.2})));

    suite.emplace_back(Program(s, "2dconv")
        .add(stencil("conv2d_kernel",
                     {.wgs = 4096, .wi_per_wg = 256, .launches = 1,
                      .intensity = 0.7}, 22.0))
        .add(streaming("conv2d_copy_out",
                       {.wgs = 4096, .wi_per_wg = 256, .launches = 1,
                        .intensity = 0.1})));

    suite.emplace_back(Program(s, "3dconv")
        .add(stencil("conv3d_kernel",
                     {.wgs = 8192, .wi_per_wg = 256, .launches = 1,
                      .intensity = 0.9}, 48.0)));

    return suite;
}

} // namespace workloads
} // namespace gpuscale
