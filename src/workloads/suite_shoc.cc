/**
 * @file
 * SHOC-style suite: 14 programs, 36 kernels.
 *
 * SHOC mixes microbenchmarks that pin single resources (maxflops,
 * devicememory, triad) with level-2 application kernels (s3d,
 * qtclustering).  The microbenchmarks give the taxonomy clean
 * anchor points: they should land squarely in one class each.
 */

#include "archetypes.hh"
#include "registry.hh"

namespace gpuscale {
namespace workloads {

std::vector<Program>
makeShocSuite()
{
    std::vector<Program> suite;
    const std::string s = "shoc";

    suite.emplace_back(Program(s, "maxflops")
        .add(denseCompute("add1_sp",
                          {.wgs = 7040, .wi_per_wg = 256, .launches = 8,
                           .intensity = 1.0}))
        .add(denseCompute("mul1_sp",
                          {.wgs = 7040, .wi_per_wg = 256, .launches = 8,
                           .intensity = 1.0}))
        .add(denseCompute("madd1_sp",
                          {.wgs = 7040, .wi_per_wg = 256, .launches = 8,
                           .intensity = 2.0}))
        .add(denseCompute("muladd_dp",
                          {.wgs = 7040, .wi_per_wg = 256, .launches = 8,
                           .intensity = 1.5})));

    suite.emplace_back(Program(s, "devicememory")
        .add(streaming("gmem_read_coalesced",
                       {.wgs = 6144, .wi_per_wg = 256, .launches = 10,
                        .intensity = 0.1}))
        .add([] {
            auto k = streaming("gmem_read_strided",
                               {.wgs = 6144, .wi_per_wg = 256,
                                .launches = 10, .intensity = 0.1});
            k.coalescing = 0.0625; // fully strided: one word per line
            return k;
        }())
        .add([] {
            auto k = tiledLds("lmem_read",
                              {.wgs = 3072, .wi_per_wg = 256,
                               .launches = 10, .intensity = 0.4});
            k.mem_loads = 1.0;
            k.mem_stores = 1.0;
            return k;
        }()));

    suite.emplace_back(Program(s, "fft")
        .add(tiledLds("fft1d_512_fwd",
                      {.wgs = 2048, .wi_per_wg = 64, .launches = 10,
                       .intensity = 1.2}))
        .add(tiledLds("fft1d_512_inv",
                      {.wgs = 2048, .wi_per_wg = 64, .launches = 10,
                       .intensity = 1.2}))
        .add(denseCompute("fft_check",
                          {.wgs = 2048, .wi_per_wg = 64, .launches = 10,
                           .intensity = 0.25})));

    suite.emplace_back(Program(s, "gemm")
        .add(denseCompute("sgemm_nn",
                          {.wgs = 1024, .wi_per_wg = 256, .launches = 8,
                           .intensity = 2.5}))
        .add(denseCompute("sgemm_nt",
                          {.wgs = 1024, .wi_per_wg = 256, .launches = 8,
                           .intensity = 2.3})));

    suite.emplace_back(Program(s, "md")
        .add(graphTraversal("lj_force",
                            {.wgs = 288, .wi_per_wg = 256,
                             .launches = 10, .intensity = 3.5})));

    suite.emplace_back(Program(s, "md5hash")
        .add(denseCompute("md5_search",
                          {.wgs = 2560, .wi_per_wg = 256,
                           .launches = 4, .intensity = 3.4})));

    suite.emplace_back(Program(s, "reduction")
        .add(reduction("reduce_stage",
                       {.wgs = 256, .wi_per_wg = 256, .launches = 12},
                       0.40)));

    suite.emplace_back(Program(s, "scan")
        .add(streaming("scan_local",
                       {.wgs = 512, .wi_per_wg = 256, .launches = 16,
                        .intensity = 0.5}))
        .add(tinyIterative("scan_top",
                           {.wgs = 1, .wi_per_wg = 256,
                            .launches = 16}))
        .add(streaming("scan_bottom",
                       {.wgs = 512, .wi_per_wg = 256, .launches = 16,
                        .intensity = 0.3})));

    suite.emplace_back(Program(s, "sort")
        .add(reduction("radix_count",
                       {.wgs = 682, .wi_per_wg = 192, .launches = 28},
                       0.35))
        .add(streaming("radix_scan",
                       {.wgs = 171, .wi_per_wg = 192, .launches = 28,
                        .intensity = 0.4}))
        .add([] {
            auto k = streaming("radix_scatter",
                               {.wgs = 682, .wi_per_wg = 192,
                                .launches = 28, .intensity = 0.7});
            k.coalescing = 0.25; // key-dependent scatter
            return k;
        }())
        .add(tinyIterative("sort_verify",
                           {.wgs = 43, .wi_per_wg = 192,
                            .launches = 1})));

    suite.emplace_back(Program(s, "spmv")
        .add(graphTraversal("csr_scalar",
                            {.wgs = 1024, .wi_per_wg = 128,
                             .launches = 50, .intensity = 0.6}))
        .add([] {
            auto k = graphTraversal("csr_vector",
                                    {.wgs = 2048, .wi_per_wg = 128,
                                     .launches = 50, .intensity = 0.6});
            k.coalescing = 0.5; // warp-per-row improves coalescing
            k.branch_divergence = 0.2;
            return k;
        }())
        .add([] {
            auto k = streaming("ellpackr",
                               {.wgs = 1024, .wi_per_wg = 128,
                                .launches = 50, .intensity = 0.5});
            k.l2_reuse = 0.55;
            k.footprint_bytes_per_wg = 40.0 * 1024;
            return k;
        }()));

    suite.emplace_back(Program(s, "stencil2d")
        .add(stencil("stencil_kernel",
                     {.wgs = 4096, .wi_per_wg = 256, .launches = 1000,
                      .intensity = 0.8}, 26.0)));

    suite.emplace_back(Program(s, "triad")
        .add(streaming("triad_kernel",
                       {.wgs = 3200, .wi_per_wg = 128, .launches = 64,
                        .intensity = 0.15})));

    suite.emplace_back(Program(s, "s3d")
        .add(denseCompute("ratt_kernel",
                          {.wgs = 1536, .wi_per_wg = 128, .launches = 5,
                           .intensity = 1.7}))
        .add(denseCompute("ratx_kernel",
                          {.wgs = 1536, .wi_per_wg = 128, .launches = 5,
                           .intensity = 2.1}))
        .add(denseCompute("qssa_kernel",
                          {.wgs = 1536, .wi_per_wg = 128, .launches = 5,
                           .intensity = 1.1}))
        .add(denseCompute("rdsmh_kernel",
                          {.wgs = 1536, .wi_per_wg = 128, .launches = 5,
                           .intensity = 0.5}))
        .add(denseCompute("gr_base",
                          {.wgs = 1536, .wi_per_wg = 128, .launches = 5,
                           .intensity = 2.8}))
        .add(denseCompute("rdwdot_kernel",
                          {.wgs = 1536, .wi_per_wg = 128, .launches = 5,
                           .intensity = 0.4}))
        .add(denseCompute("qssab_kernel",
                          {.wgs = 1536, .wi_per_wg = 128, .launches = 5,
                           .intensity = 0.8})));

    suite.emplace_back(Program(s, "qtclustering")
        .add(graphTraversal("qtc_distances",
                            {.wgs = 416, .wi_per_wg = 64,
                             .launches = 30, .intensity = 1.4}))
        .add(reduction("qtc_reduce",
                       {.wgs = 104, .wi_per_wg = 64, .launches = 30},
                       0.50)));

    return suite;
}

} // namespace workloads
} // namespace gpuscale
