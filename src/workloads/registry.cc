/**
 * @file
 * WorkloadRegistry implementation.
 */

#include "registry.hh"

#include "base/logging.hh"

namespace gpuscale {
namespace workloads {

Program::Program(std::string suite, std::string name)
    : suite_(std::move(suite)), name_(std::move(name))
{
}

Program &
Program::add(gpu::KernelDesc kernel)
{
    kernel.name = suite_ + "/" + name_ + "/" + kernel.name;
    kernel.validate();
    kernels_.push_back(std::move(kernel));
    return *this;
}

const WorkloadRegistry &
WorkloadRegistry::instance()
{
    static const WorkloadRegistry registry;
    return registry;
}

WorkloadRegistry::WorkloadRegistry()
{
    auto append = [this](std::vector<Program> suite) {
        for (auto &program : suite) {
            panic_if(program.kernels().empty(),
                     "program %s/%s has no kernels",
                     program.suite().c_str(), program.name().c_str());
            programs_.push_back(std::move(program));
        }
    };
    append(makeRodiniaSuite());
    append(makeParboilSuite());
    append(makeShocSuite());
    append(makeAmdSdkSuite());
    append(makePolybenchSuite());
    append(makeOpenDwarfsSuite());
    append(makePannotiaSuite());
}

std::vector<std::string>
WorkloadRegistry::suiteNames() const
{
    std::vector<std::string> names;
    for (const auto &program : programs_) {
        if (names.empty() || names.back() != program.suite())
            names.push_back(program.suite());
    }
    return names;
}

std::vector<const Program *>
WorkloadRegistry::programsInSuite(std::string_view suite) const
{
    std::vector<const Program *> out;
    for (const auto &program : programs_) {
        if (program.suite() == suite)
            out.push_back(&program);
    }
    return out;
}

std::vector<const gpu::KernelDesc *>
WorkloadRegistry::allKernels() const
{
    std::vector<const gpu::KernelDesc *> out;
    for (const auto &program : programs_) {
        for (const auto &kernel : program.kernels())
            out.push_back(&kernel);
    }
    return out;
}

std::vector<const gpu::KernelDesc *>
WorkloadRegistry::kernelsInSuite(std::string_view suite) const
{
    std::vector<const gpu::KernelDesc *> out;
    for (const auto *program : programsInSuite(suite)) {
        for (const auto &kernel : program->kernels())
            out.push_back(&kernel);
    }
    return out;
}

const gpu::KernelDesc *
WorkloadRegistry::findKernel(std::string_view name) const
{
    for (const auto &program : programs_) {
        for (const auto &kernel : program.kernels()) {
            if (kernel.name == name)
                return &kernel;
        }
    }
    return nullptr;
}

std::vector<SuiteCensus>
WorkloadRegistry::census() const
{
    std::vector<SuiteCensus> rows;
    for (const auto &suite : suiteNames()) {
        SuiteCensus row;
        row.suite = suite;
        for (const auto *program : programsInSuite(suite)) {
            ++row.programs;
            row.kernels += program->kernels().size();
        }
        rows.push_back(row);
    }
    SuiteCensus total;
    total.suite = "total";
    total.programs = numPrograms();
    total.kernels = numKernels();
    rows.push_back(total);
    return rows;
}

size_t
WorkloadRegistry::numKernels() const
{
    size_t n = 0;
    for (const auto &program : programs_)
        n += program.kernels().size();
    return n;
}

} // namespace workloads
} // namespace gpuscale
