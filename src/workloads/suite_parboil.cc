/**
 * @file
 * Parboil-style suite: 11 programs, 30 kernels.
 *
 * Parboil's applications skew toward throughput kernels with large,
 * regular launches (sgemm, lbm, stencil), plus irregular standouts
 * (bfs, histo's contended histogramming, mri-gridding's scatter).
 */

#include "archetypes.hh"
#include "registry.hh"

namespace gpuscale {
namespace workloads {

std::vector<Program>
makeParboilSuite()
{
    std::vector<Program> suite;
    const std::string s = "parboil";

    suite.emplace_back(Program(s, "bfs")
        .add(graphTraversal("bfs_frontier",
                            {.wgs = 256, .wi_per_wg = 256,
                             .launches = 22, .intensity = 1.0}))
        .add(graphTraversal("bfs_global",
                            {.wgs = 1024, .wi_per_wg = 256,
                             .launches = 4, .intensity = 1.5}))
        .add(tinyIterative("frontier_flag",
                           {.wgs = 1, .wi_per_wg = 64,
                            .launches = 22})));

    suite.emplace_back(Program(s, "cutcp")
        .add(tiledLds("cutoff_potential",
                      {.wgs = 1331, .wi_per_wg = 128, .launches = 11,
                       .intensity = 2.4}))
        .add(streaming("region_scatter",
                       {.wgs = 512, .wi_per_wg = 256, .launches = 11,
                        .intensity = 0.5}))
        .add(tinyIterative("setup_lattice",
                           {.wgs = 24, .wi_per_wg = 256,
                            .launches = 11})));

    suite.emplace_back(Program(s, "histo")
        .add(streaming("histo_prescan",
                       {.wgs = 64, .wi_per_wg = 512, .launches = 20,
                        .intensity = 0.5}))
        .add(reduction("histo_intermediate",
                       {.wgs = 323, .wi_per_wg = 512, .launches = 20},
                       0.85))
        .add(reduction("histo_main",
                       {.wgs = 84, .wi_per_wg = 768, .launches = 20},
                       0.90))
        .add(streaming("histo_final",
                       {.wgs = 126, .wi_per_wg = 512, .launches = 20,
                        .intensity = 0.3}))
        .add(tinyIterative("histo_clear",
                           {.wgs = 42, .wi_per_wg = 256,
                            .launches = 20})));

    suite.emplace_back(Program(s, "lbm")
        .add(streaming("perform_stream_collide",
                       {.wgs = 4096, .wi_per_wg = 128, .launches = 3000,
                        .intensity = 2.0}))
        .add(streaming("init_grid",
                       {.wgs = 4096, .wi_per_wg = 128, .launches = 2,
                        .intensity = 0.3})));

    suite.emplace_back(Program(s, "mri-gridding")
        .add(reduction("binning",
                       {.wgs = 1024, .wi_per_wg = 256, .launches = 1},
                       0.45))
        .add(pointerChase("reorder",
                          {.wgs = 1024, .wi_per_wg = 256, .launches = 1,
                           .intensity = 0.8}))
        .add(tinyIterative("scan_small",
                           {.wgs = 8, .wi_per_wg = 512, .launches = 3}))
        .add(streaming("scan_large",
                       {.wgs = 512, .wi_per_wg = 512, .launches = 3,
                        .intensity = 0.6}))
        .add(graphTraversal("gridding_gpu",
                            {.wgs = 512, .wi_per_wg = 256,
                             .launches = 1, .intensity = 2.6}))
        .add(streaming("uniform_add",
                       {.wgs = 512, .wi_per_wg = 512, .launches = 3,
                        .intensity = 0.2})));

    suite.emplace_back(Program(s, "mri-q")
        .add(smallGridCompute("compute_phi_mag",
                              {.wgs = 12, .wi_per_wg = 512,
                               .launches = 1, .intensity = 0.4}))
        .add(denseCompute("compute_q",
                          {.wgs = 128, .wi_per_wg = 256, .launches = 16,
                           .intensity = 2.2}))
        .add(streaming("memcpy_kernel",
                       {.wgs = 128, .wi_per_wg = 256, .launches = 16,
                        .intensity = 0.2})));

    suite.emplace_back(Program(s, "sad")
        .add(tiledLds("mb_sad_calc",
                      {.wgs = 1584, .wi_per_wg = 61, .launches = 1,
                       .intensity = 1.1}))
        .add(streaming("larger_sad_calc_8",
                       {.wgs = 396, .wi_per_wg = 128, .launches = 1,
                        .intensity = 0.5}))
        .add(streaming("larger_sad_calc_16",
                       {.wgs = 99, .wi_per_wg = 128, .launches = 1,
                        .intensity = 0.5}))
        .add(tinyIterative("sad_pack",
                           {.wgs = 25, .wi_per_wg = 128,
                            .launches = 4})));

    suite.emplace_back(Program(s, "sgemm")
        .add(denseCompute("sgemm_nt",
                          {.wgs = 528, .wi_per_wg = 128, .launches = 1,
                           .intensity = 2.8})));

    suite.emplace_back(Program(s, "spmv")
        .add(graphTraversal("spmv_jds",
                            {.wgs = 578, .wi_per_wg = 192,
                             .launches = 50, .intensity = 0.9})));

    suite.emplace_back(Program(s, "stencil")
        .add(stencil("block2d_reg_tiling",
                     {.wgs = 2048, .wi_per_wg = 256, .launches = 100,
                      .intensity = 1.0}, 30.0)));

    suite.emplace_back(Program(s, "tpacf")
        .add(tiledLds("gen_hists",
                      {.wgs = 201, .wi_per_wg = 256, .launches = 1,
                       .intensity = 3.2})));

    return suite;
}

} // namespace workloads
} // namespace gpuscale
