/**
 * @file
 * Rodinia-style suite: 20 programs, 58 kernels.
 *
 * Parameters follow the behaviour of the Rodinia 3.x OpenCL
 * applications: iterative stencils (hotspot, srad), wavefront
 * algorithms with tiny launches (nw, gaussian, lud), graph traversals
 * (bfs, b+tree), and dense math (lavaMD, heartwall, kmeans).
 */

#include "archetypes.hh"
#include "registry.hh"

namespace gpuscale {
namespace workloads {

std::vector<Program>
makeRodiniaSuite()
{
    std::vector<Program> suite;
    const std::string s = "rodinia";

    suite.emplace_back(Program(s, "backprop")
        .add(tiledLds("layerforward",
                      {.wgs = 4096, .wi_per_wg = 256, .launches = 2,
                       .intensity = 0.7}))
        .add(streaming("adjust_weights",
                       {.wgs = 4096, .wi_per_wg = 256, .launches = 2,
                        .intensity = 1.0})));

    suite.emplace_back(Program(s, "bfs")
        .add(graphTraversal("kernel1",
                            {.wgs = 192, .wi_per_wg = 256,
                             .launches = 14, .intensity = 0.8}))
        .add(graphTraversal("kernel2",
                            {.wgs = 192, .wi_per_wg = 256,
                             .launches = 14, .intensity = 0.3})));

    suite.emplace_back(Program(s, "b+tree")
        .add(pointerChase("findK",
                          {.wgs = 20, .wi_per_wg = 64, .launches = 2,
                           .intensity = 0.9}))
        .add(pointerChase("findRangeK",
                          {.wgs = 24, .wi_per_wg = 64, .launches = 2,
                           .intensity = 1.2})));

    suite.emplace_back(Program(s, "cfd")
        .add(streaming("initialize_variables",
                       {.wgs = 1212, .wi_per_wg = 192, .launches = 1}))
        .add(denseCompute("compute_step_factor",
                          {.wgs = 1212, .wi_per_wg = 192,
                           .launches = 2000, .intensity = 0.35}))
        .add(stencil("compute_flux",
                     {.wgs = 1212, .wi_per_wg = 192, .launches = 6000,
                      .intensity = 2.2}, 40.0))
        .add(streaming("time_step",
                       {.wgs = 1212, .wi_per_wg = 192,
                        .launches = 6000}))
        .add(streaming("copy_variables",
                       {.wgs = 1212, .wi_per_wg = 192, .launches = 2000,
                        .intensity = 0.5}))
        .add(reduction("compute_residual",
                       {.wgs = 606, .wi_per_wg = 192, .launches = 100},
                       0.15)));

    suite.emplace_back(Program(s, "dwt2d")
        .add(tiledLds("fdwt53",
                      {.wgs = 1024, .wi_per_wg = 192, .launches = 3,
                       .intensity = 0.8}))
        .add(tiledLds("rdwt53",
                      {.wgs = 1024, .wi_per_wg = 192, .launches = 3,
                       .intensity = 0.8}))
        .add(streaming("components_rgb",
                       {.wgs = 2048, .wi_per_wg = 256, .launches = 1}))
        .add(streaming("bandwrite",
                       {.wgs = 1024, .wi_per_wg = 256, .launches = 6,
                        .intensity = 0.4}))
        .add(tinyIterative("show_buffer",
                           {.wgs = 32, .wi_per_wg = 256,
                            .launches = 12})));

    suite.emplace_back(Program(s, "gaussian")
        .add(tinyIterative("fan1",
                           {.wgs = 4, .wi_per_wg = 256,
                            .launches = 1024, .intensity = 0.2}))
        .add(tinyIterative("fan2",
                           {.wgs = 64, .wi_per_wg = 256,
                            .launches = 1024, .intensity = 0.6})));

    suite.emplace_back(Program(s, "heartwall")
        .add(denseCompute("gicov",
                          {.wgs = 510, .wi_per_wg = 256, .launches = 20,
                           .intensity = 1.3}))
        .add(stencil("dilate",
                     {.wgs = 510, .wi_per_wg = 256, .launches = 20},
                     24.0))
        .add(smallGridCompute("template_match",
                              {.wgs = 40, .wi_per_wg = 256,
                               .launches = 20, .intensity = 1.2}))
        .add(reduction("reduce_endo",
                       {.wgs = 51, .wi_per_wg = 256, .launches = 20},
                       0.30)));

    suite.emplace_back(Program(s, "hotspot")
        .add(stencil("calculate_temp",
                     {.wgs = 1849, .wi_per_wg = 256, .launches = 60,
                      .intensity = 1.0}, 18.0)));

    suite.emplace_back(Program(s, "hotspot3D")
        .add(stencil("hotspot_opt1",
                     {.wgs = 4096, .wi_per_wg = 256, .launches = 100,
                      .intensity = 1.2}, 52.0)));

    suite.emplace_back(Program(s, "hybridsort")
        .add(reduction("bucketcount",
                       {.wgs = 2048, .wi_per_wg = 256, .launches = 1},
                       0.55))
        .add(tinyIterative("bucketprefix",
                           {.wgs = 8, .wi_per_wg = 256, .launches = 1}))
        .add(streaming("bucketsort",
                       {.wgs = 2048, .wi_per_wg = 256, .launches = 1,
                        .intensity = 0.6}))
        .add(pointerChase("merge_sort_pass",
                          {.wgs = 1024, .wi_per_wg = 208,
                           .launches = 10, .intensity = 0.7}))
        .add(streaming("merge_pack",
                       {.wgs = 1024, .wi_per_wg = 256, .launches = 1,
                        .intensity = 0.4})));

    suite.emplace_back(Program(s, "kmeans")
        .add(denseCompute("kmeans_kernel",
                          {.wgs = 1936, .wi_per_wg = 256,
                           .launches = 24, .intensity = 0.25}))
        .add(streaming("kmeans_swap",
                       {.wgs = 1936, .wi_per_wg = 256, .launches = 1,
                        .intensity = 0.8})));

    suite.emplace_back(Program(s, "lavaMD")
        .add(tiledLds("kernel_gpu_opencl",
                      {.wgs = 1000, .wi_per_wg = 128, .launches = 1,
                       .intensity = 3.0})));

    suite.emplace_back(Program(s, "leukocyte")
        .add(denseCompute("gicov_kernel",
                          {.wgs = 598, .wi_per_wg = 256, .launches = 1,
                           .intensity = 1.1}))
        .add(stencil("dilate_kernel",
                     {.wgs = 598, .wi_per_wg = 256, .launches = 1},
                     20.0))
        .add(smallGridCompute("mgvf_kernel",
                              {.wgs = 36, .wi_per_wg = 256,
                               .launches = 600, .intensity = 0.8}))
        .add(tinyIterative("heaviside",
                           {.wgs = 36, .wi_per_wg = 256,
                            .launches = 600, .intensity = 0.5})));

    suite.emplace_back(Program(s, "lud")
        .add(tinyIterative("lud_diagonal",
                           {.wgs = 1, .wi_per_wg = 256, .launches = 128,
                            .intensity = 1.6}))
        .add(smallGridCompute("lud_perimeter",
                              {.wgs = 33, .wi_per_wg = 128,
                               .launches = 128, .intensity = 0.5}))
        .add(denseCompute("lud_internal",
                          {.wgs = 2048, .wi_per_wg = 256,
                           .launches = 128, .intensity = 0.5})));

    suite.emplace_back(Program(s, "myocyte")
        .add(smallGridCompute("solver_2",
                              {.wgs = 2, .wi_per_wg = 128,
                               .launches = 400, .intensity = 2.0}))
        .add(smallGridCompute("embedded_fehlberg",
                              {.wgs = 2, .wi_per_wg = 128,
                               .launches = 400, .intensity = 1.1})));

    suite.emplace_back(Program(s, "nn")
        .add(streaming("euclid",
                       {.wgs = 168, .wi_per_wg = 256, .launches = 1,
                        .intensity = 0.5})));

    suite.emplace_back(Program(s, "nw")
        .add(tinyIterative("needle_1",
                           {.wgs = 16, .wi_per_wg = 64, .launches = 255,
                            .intensity = 0.9}))
        .add(tinyIterative("needle_2",
                           {.wgs = 16, .wi_per_wg = 64, .launches = 255,
                            .intensity = 0.9})));

    suite.emplace_back(Program(s, "particlefilter")
        .add(denseCompute("likelihood",
                          {.wgs = 512, .wi_per_wg = 256, .launches = 9,
                           .intensity = 0.5}))
        .add(reduction("sum_kernel",
                       {.wgs = 512, .wi_per_wg = 256, .launches = 9},
                       0.70))
        .add(streaming("normalize_weights",
                       {.wgs = 512, .wi_per_wg = 256, .launches = 9,
                        .intensity = 0.3}))
        .add(graphTraversal("find_index",
                            {.wgs = 512, .wi_per_wg = 256,
                             .launches = 9, .intensity = 0.6}))
        .add(tinyIterative("u_init",
                           {.wgs = 2, .wi_per_wg = 256, .launches = 9}))
        .add(reduction("divide_weights",
                       {.wgs = 512, .wi_per_wg = 256, .launches = 9},
                       0.20))
        .add(denseCompute("particle_update",
                          {.wgs = 512, .wi_per_wg = 256, .launches = 9,
                           .intensity = 0.4})));

    suite.emplace_back(Program(s, "pathfinder")
        .add(stencil("dynproc_kernel",
                     {.wgs = 463, .wi_per_wg = 256, .launches = 5,
                      .intensity = 0.6}, 10.0)));

    suite.emplace_back(Program(s, "srad")
        .add(reduction("prepare",
                       {.wgs = 1024, .wi_per_wg = 256, .launches = 100},
                       0.10))
        .add(stencil("srad_1",
                     {.wgs = 1024, .wi_per_wg = 256, .launches = 100,
                      .intensity = 1.0}, 22.0))
        .add(stencil("srad_2",
                     {.wgs = 1024, .wi_per_wg = 256, .launches = 100,
                      .intensity = 0.9}, 22.0))
        .add(streaming("compress",
                       {.wgs = 1024, .wi_per_wg = 256, .launches = 1,
                        .intensity = 0.4}))
        .add(streaming("extract",
                       {.wgs = 1024, .wi_per_wg = 256, .launches = 1,
                        .intensity = 0.4})));

    return suite;
}

} // namespace workloads
} // namespace gpuscale
