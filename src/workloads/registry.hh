/**
 * @file
 * The workload registry: 97 programs / 267 kernels across 7 suites.
 *
 * The zoo mirrors the population the paper measured (open GPGPU
 * benchmark suites of the era) in structure: each suite contributes
 * programs, each program one or more kernels, and each kernel is an
 * archetype instantiation whose parameters are inspired by the real
 * application's behaviour (problem sizes, iteration counts, locality).
 */

#ifndef GPUSCALE_WORKLOADS_REGISTRY_HH
#define GPUSCALE_WORKLOADS_REGISTRY_HH

#include <string>
#include <string_view>
#include <vector>

#include "gpu/kernel_desc.hh"

namespace gpuscale {
namespace workloads {

/** One benchmark program: a named set of kernels within a suite. */
class Program
{
  public:
    Program(std::string suite, std::string name);

    /**
     * Add a kernel.  The kernel's name is rewritten to the canonical
     * "suite/program/kernel" form.
     */
    Program &add(gpu::KernelDesc kernel);

    const std::string &suite() const { return suite_; }
    const std::string &name() const { return name_; }
    const std::vector<gpu::KernelDesc> &kernels() const
    {
        return kernels_;
    }

  private:
    std::string suite_;
    std::string name_;
    std::vector<gpu::KernelDesc> kernels_;
};

/** Per-suite census row. */
struct SuiteCensus {
    std::string suite;
    size_t programs = 0;
    size_t kernels = 0;
};

/**
 * Singleton owning every program in the zoo.
 *
 * Construction validates every kernel descriptor, so a malformed suite
 * entry fails fast at first use.
 */
class WorkloadRegistry
{
  public:
    /** The global registry (built on first use). */
    static const WorkloadRegistry &instance();

    const std::vector<Program> &programs() const { return programs_; }

    /** Distinct suite names, in registration order. */
    std::vector<std::string> suiteNames() const;

    /** Programs belonging to one suite. */
    std::vector<const Program *> programsInSuite(
        std::string_view suite) const;

    /** Every kernel in the zoo, in registration order. */
    std::vector<const gpu::KernelDesc *> allKernels() const;

    /** Kernels belonging to one suite. */
    std::vector<const gpu::KernelDesc *> kernelsInSuite(
        std::string_view suite) const;

    /** Find a kernel by canonical name; nullptr when absent. */
    const gpu::KernelDesc *findKernel(std::string_view name) const;

    /** Census rows per suite plus a "total" row at the end. */
    std::vector<SuiteCensus> census() const;

    size_t numPrograms() const { return programs_.size(); }
    size_t numKernels() const;

  private:
    WorkloadRegistry();

    std::vector<Program> programs_;
};

//
// Suite builders (one translation unit each).
//
std::vector<Program> makeRodiniaSuite();
std::vector<Program> makeParboilSuite();
std::vector<Program> makeShocSuite();
std::vector<Program> makeAmdSdkSuite();
std::vector<Program> makePolybenchSuite();
std::vector<Program> makeOpenDwarfsSuite();
std::vector<Program> makePannotiaSuite();

} // namespace workloads
} // namespace gpuscale

#endif // GPUSCALE_WORKLOADS_REGISTRY_HH
