/**
 * @file
 * Seeded random kernel generator for property-based testing.
 *
 * Samples the full KernelDesc parameter space (log-uniform where the
 * quantity spans orders of magnitude) so property tests can assert
 * model invariants — determinism, positivity, monotonicity in
 * resources, classifier totality — over thousands of kernels that no
 * human picked.
 */

#ifndef GPUSCALE_WORKLOADS_GENERATOR_HH
#define GPUSCALE_WORKLOADS_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "gpu/kernel_desc.hh"

namespace gpuscale {
namespace workloads {

/** Bounds for the random kernel sampler. */
struct GeneratorBounds {
    int64_t min_wgs = 1;
    int64_t max_wgs = 1 << 16;
    int min_wi = 32;
    int max_wi = 1024;
    int64_t max_launches = 2000;
    double max_valu = 4000.0;
    double max_mem = 40.0;
};

/** Deterministic random-kernel source. */
class KernelGenerator
{
  public:
    explicit KernelGenerator(uint64_t seed,
                             GeneratorBounds bounds = GeneratorBounds{});

    /** Next random kernel; always passes KernelDesc::validate(). */
    gpu::KernelDesc next();

    /** Generate a batch of n kernels. */
    std::vector<gpu::KernelDesc> batch(size_t n);

  private:
    uint64_t seed_;
    uint64_t counter_ = 0;
    GeneratorBounds bounds_;
};

} // namespace workloads
} // namespace gpuscale

#endif // GPUSCALE_WORKLOADS_GENERATOR_HH
