/**
 * @file
 * Archetype builder implementations.
 *
 * Parameter values are chosen so each archetype lands in its intended
 * regime on the studied configuration grid (4-44 CUs, 200-1000 MHz
 * core, 150-1250 MHz memory); see tests/workloads/test_archetypes.cc
 * for the checks that pin these regimes down.
 */

#include "archetypes.hh"

namespace gpuscale {
namespace workloads {

using gpu::KernelDesc;

KernelDesc
denseCompute(const std::string &name, const ArchetypeParams &p)
{
    KernelDesc k;
    k.name = name;
    k.num_workgroups = p.wgs;
    k.work_items_per_wg = p.wi_per_wg;
    k.launches = p.launches;
    k.valu_ops = 1800.0 * p.intensity;
    k.sfu_ops = 20.0 * p.intensity;
    k.mem_loads = 6.0;
    k.mem_stores = 1.0;
    k.bytes_per_access = 4.0;
    k.coalescing = 1.0;
    k.vgprs = 64;
    k.l1_reuse = 0.75;
    k.l2_reuse = 0.60;
    k.footprint_bytes_per_wg = 12.0 * 1024;
    k.mlp = 6.0;
    k.host_overhead_us = 9.0;
    return k;
}

KernelDesc
streaming(const std::string &name, const ArchetypeParams &p)
{
    KernelDesc k;
    k.name = name;
    k.num_workgroups = p.wgs;
    k.work_items_per_wg = p.wi_per_wg;
    k.launches = p.launches;
    k.valu_ops = 24.0 * p.intensity;
    k.mem_loads = 8.0;
    k.mem_stores = 4.0;
    k.bytes_per_access = 4.0;
    k.coalescing = 1.0;
    k.vgprs = 24;
    k.l1_reuse = 0.05;
    k.l2_reuse = 0.05;
    k.footprint_bytes_per_wg = 256.0 * 48;
    k.mlp = 10.0;
    k.host_overhead_us = 8.0;
    return k;
}

KernelDesc
tiledLds(const std::string &name, const ArchetypeParams &p)
{
    KernelDesc k;
    k.name = name;
    k.num_workgroups = p.wgs;
    k.work_items_per_wg = p.wi_per_wg;
    k.launches = p.launches;
    k.valu_ops = 600.0 * p.intensity;
    k.mem_loads = 8.0;
    k.mem_stores = 2.0;
    k.bytes_per_access = 4.0;
    k.coalescing = 1.0;
    k.lds_ops = 48.0 * p.intensity;
    k.lds_bytes_per_wg = 8.0 * 1024;
    k.barriers = 8.0;
    k.vgprs = 48;
    k.l1_reuse = 0.55;
    k.l2_reuse = 0.45;
    k.footprint_bytes_per_wg = 16.0 * 1024;
    k.mlp = 5.0;
    k.host_overhead_us = 9.0;
    return k;
}

KernelDesc
stencil(const std::string &name, const ArchetypeParams &p,
        double footprint_kb)
{
    KernelDesc k;
    k.name = name;
    k.num_workgroups = p.wgs;
    k.work_items_per_wg = p.wi_per_wg;
    k.launches = p.launches;
    k.valu_ops = 140.0 * p.intensity;
    k.mem_loads = 10.0;
    k.mem_stores = 2.0;
    k.bytes_per_access = 4.0;
    k.coalescing = 0.9;
    k.vgprs = 40;
    // Stencils mostly stream rows; only the halo overlap is reusable
    // across workgroups, so the shared-cache sensitivity is mild.
    k.l1_reuse = 0.45;
    k.l2_reuse = 0.30;
    k.footprint_bytes_per_wg = footprint_kb * 1024;
    k.mlp = 6.0;
    k.host_overhead_us = 9.0;
    return k;
}

KernelDesc
cacheThrash(const std::string &name, const ArchetypeParams &p,
            double footprint_kb)
{
    KernelDesc k = stencil(name, p, footprint_kb);
    // Almost all reuse lives in the L2, and the per-workgroup set is
    // sized so a few CUs' worth of workgroups fit but the full
    // machine's does not: enabling CUs destroys the hit rate faster
    // than it adds compute.
    k.valu_ops = 30.0 * p.intensity;
    k.l1_reuse = 0.05;
    k.l2_reuse = 0.97;
    k.mem_loads = 18.0;
    k.mlp = 10.0;
    k.coalescing = 1.0;
    return k;
}

KernelDesc
pointerChase(const std::string &name, const ArchetypeParams &p)
{
    KernelDesc k;
    k.name = name;
    k.num_workgroups = p.wgs;
    k.work_items_per_wg = p.wi_per_wg;
    k.launches = p.launches;
    k.valu_ops = 40.0 * p.intensity;
    k.mem_loads = 16.0;
    k.mem_stores = 1.0;
    k.bytes_per_access = 8.0;
    k.coalescing = 0.125; // gather: one 8B pointer per 64B line
    k.vgprs = 96;         // deep traversal state caps occupancy
    k.l1_reuse = 0.10;
    k.l2_reuse = 0.25;
    k.footprint_bytes_per_wg = 512.0 * 1024;
    k.mlp = 1.0; // strict dependence: the defining property
    k.host_overhead_us = 8.0;
    return k;
}

KernelDesc
graphTraversal(const std::string &name, const ArchetypeParams &p)
{
    KernelDesc k;
    k.name = name;
    k.num_workgroups = p.wgs;
    k.work_items_per_wg = p.wi_per_wg;
    k.launches = p.launches;
    k.valu_ops = 60.0 * p.intensity;
    k.mem_loads = 12.0;
    k.mem_stores = 2.0;
    k.bytes_per_access = 4.0;
    k.coalescing = 0.12;
    k.branch_divergence = 0.45;
    k.vgprs = 36;
    k.l1_reuse = 0.15;
    k.l2_reuse = 0.40;
    k.footprint_bytes_per_wg = 96.0 * 1024;
    k.mlp = 2.0;
    k.host_overhead_us = 10.0;
    return k;
}

KernelDesc
reduction(const std::string &name, const ArchetypeParams &p,
          double contention)
{
    KernelDesc k;
    k.name = name;
    k.num_workgroups = p.wgs;
    k.work_items_per_wg = p.wi_per_wg;
    k.launches = p.launches;
    k.valu_ops = 60.0 * p.intensity;
    k.mem_loads = 4.0;
    k.mem_stores = 1.0;
    k.bytes_per_access = 4.0;
    k.coalescing = 1.0;
    k.lds_ops = 12.0;
    k.lds_bytes_per_wg = 2.0 * 1024;
    k.barriers = 6.0;
    k.vgprs = 32;
    k.l1_reuse = 0.40;
    k.l2_reuse = 0.30;
    k.footprint_bytes_per_wg = 8.0 * 1024;
    k.mlp = 6.0;
    // The atomic tail dominates once contention retries kick in; at
    // low contention the kernel stays compute/memory bound.
    k.atomic_ops = 0.20 + 0.30 * contention;
    k.atomic_contention = contention;
    k.serial_fraction = 0.02;
    k.host_overhead_us = 9.0;
    return k;
}

KernelDesc
tinyIterative(const std::string &name, const ArchetypeParams &p)
{
    KernelDesc k;
    k.name = name;
    k.num_workgroups = p.wgs;
    k.work_items_per_wg = p.wi_per_wg;
    k.launches = p.launches;
    k.valu_ops = 120.0 * p.intensity;
    k.mem_loads = 5.0;
    k.mem_stores = 2.0;
    k.bytes_per_access = 4.0;
    k.coalescing = 0.8;
    k.vgprs = 28;
    k.l1_reuse = 0.40;
    k.l2_reuse = 0.50;
    k.footprint_bytes_per_wg = 24.0 * 1024;
    k.mlp = 4.0;
    k.host_overhead_us = 12.0;
    return k;
}

KernelDesc
smallGridCompute(const std::string &name, const ArchetypeParams &p)
{
    KernelDesc k;
    k.name = name;
    k.num_workgroups = p.wgs;
    k.work_items_per_wg = p.wi_per_wg;
    k.launches = p.launches;
    // Enough per-thread work that device time dwarfs the launch
    // overhead even once CU scaling has saturated.
    k.valu_ops = 9000.0 * p.intensity;
    k.sfu_ops = 120.0 * p.intensity;
    k.mem_loads = 8.0;
    k.mem_stores = 2.0;
    k.bytes_per_access = 4.0;
    k.coalescing = 0.9;
    k.vgprs = 84;
    k.l1_reuse = 0.65;
    k.l2_reuse = 0.50;
    k.footprint_bytes_per_wg = 16.0 * 1024;
    k.mlp = 4.0;
    k.host_overhead_us = 10.0;
    return k;
}

} // namespace workloads
} // namespace gpuscale
