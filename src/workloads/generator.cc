/**
 * @file
 * Random kernel generator implementation.
 */

#include "generator.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/random.hh"

namespace gpuscale {
namespace workloads {

KernelGenerator::KernelGenerator(uint64_t seed, GeneratorBounds bounds)
    : seed_(seed), bounds_(bounds)
{
}

gpu::KernelDesc
KernelGenerator::next()
{
    // Each kernel gets its own stream so batch(n) is independent of
    // the order of next() calls interleaved with other generators.
    Rng rng(seed_ ^ (0x9e3779b97f4a7c15ull * (counter_ + 1)));
    const uint64_t id = counter_++;

    gpu::KernelDesc k;
    k.name = strprintf("generated/seed%llu/k%llu",
                       static_cast<unsigned long long>(seed_),
                       static_cast<unsigned long long>(id));

    k.num_workgroups = static_cast<int64_t>(rng.logUniform(
        static_cast<double>(bounds_.min_wgs),
        static_cast<double>(bounds_.max_wgs)));
    // Work-items as a multiple of 32 for realism.
    k.work_items_per_wg = static_cast<int>(
        rng.uniformInt(bounds_.min_wi / 32, bounds_.max_wi / 32) * 32);
    k.work_items_per_wg = std::clamp(k.work_items_per_wg, 1, 1024);
    k.launches = static_cast<int64_t>(rng.logUniform(
        1.0, static_cast<double>(bounds_.max_launches)));

    k.valu_ops = rng.logUniform(1.0, bounds_.max_valu);
    k.salu_ops_per_wave = rng.uniform(0.0, 60.0);
    k.sfu_ops = rng.chance(0.3) ? rng.logUniform(0.5, 50.0) : 0.0;
    k.mem_loads = rng.logUniform(0.5, bounds_.max_mem);
    k.mem_stores = rng.logUniform(0.1, bounds_.max_mem / 4.0);
    k.bytes_per_access = rng.chance(0.7) ? 4.0 : (rng.chance(0.5) ?
                                                  8.0 : 16.0);
    k.coalescing = rng.chance(0.6) ? 1.0 : rng.logUniform(0.0625, 1.0);

    if (rng.chance(0.4)) {
        k.lds_ops = rng.logUniform(1.0, 80.0);
        k.lds_bytes_per_wg = rng.logUniform(256.0, 32.0 * 1024);
        k.barriers = rng.uniform(0.0, 16.0);
    }
    k.vgprs = static_cast<int>(rng.uniformInt(16, 128));

    // A real driver rejects workgroups that cannot fit on one CU; the
    // generator mirrors that by shrinking the workgroup until its
    // wavefronts fit the register file (GCN: 256 VGPRs per lane, 4
    // SIMDs, at most 10 waves per SIMD).
    const int waves_per_simd =
        std::min<int>(10, 256 / k.vgprs);
    const int max_wi = waves_per_simd * 4 * 64;
    k.work_items_per_wg = std::min(k.work_items_per_wg, max_wi);

    k.branch_divergence = rng.chance(0.5) ? 0.0 : rng.uniform(0.0, 0.7);
    k.l1_reuse = rng.uniform(0.0, 0.9);
    k.l2_reuse = rng.uniform(0.0, 0.95);
    k.footprint_bytes_per_wg = rng.logUniform(1024.0, 2.0 * 1024 * 1024);
    k.shared_footprint_bytes =
        rng.chance(0.3) ? rng.logUniform(1024.0, 8.0 * 1024 * 1024) : 0.0;
    k.mlp = rng.logUniform(1.0, 16.0);

    if (rng.chance(0.2)) {
        k.atomic_ops = rng.logUniform(0.01, 1.0);
        k.atomic_contention = rng.uniform(0.0, 1.0);
    }
    if (rng.chance(0.15))
        k.serial_fraction = rng.uniform(0.0, 0.2);
    k.host_overhead_us = rng.uniform(4.0, 20.0);

    k.validate();
    return k;
}

std::vector<gpu::KernelDesc>
KernelGenerator::batch(size_t n)
{
    std::vector<gpu::KernelDesc> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i)
        out.push_back(next());
    return out;
}

} // namespace workloads
} // namespace gpuscale
