/**
 * @file
 * OpenDwarfs-style suite: 13 programs, 38 kernels.
 *
 * One application per Berkeley dwarf; the irregular dwarfs (dynamic
 * programming, branch-and-bound, graphical models) contribute
 * divergent, serialization-heavy kernels that round out the zoo's
 * coverage of the taxonomy's non-obvious classes.
 */

#include "archetypes.hh"
#include "registry.hh"

namespace gpuscale {
namespace workloads {

std::vector<Program>
makeOpenDwarfsSuite()
{
    std::vector<Program> suite;
    const std::string s = "opendwarfs";

    suite.emplace_back(Program(s, "gem")
        .add(denseCompute("gem_electrostatics",
                          {.wgs = 622, .wi_per_wg = 256, .launches = 1,
                           .intensity = 3.1}))
        .add(streaming("gem_write_phi",
                       {.wgs = 622, .wi_per_wg = 256, .launches = 1,
                        .intensity = 0.2})));

    suite.emplace_back(Program(s, "nqueens")
        .add([] {
            auto k = smallGridCompute("nqueens_solver",
                                      {.wgs = 26, .wi_per_wg = 192,
                                       .launches = 1,
                                       .intensity = 1.5});
            k.branch_divergence = 0.55;
            k.vgprs = 96;
            return k;
        }())
        .add(tinyIterative("board_gen",
                           {.wgs = 14, .wi_per_wg = 192,
                            .launches = 14}))
        .add(reduction("solution_count",
                       {.wgs = 28, .wi_per_wg = 192, .launches = 1},
                       0.65)));

    suite.emplace_back(Program(s, "crc")
        .add([] {
            auto k = streaming("crc32_slice8",
                               {.wgs = 1024, .wi_per_wg = 256,
                                .launches = 8, .intensity = 0.6});
            k.shared_footprint_bytes = 8.0 * 1024; // lookup tables
            k.l2_reuse = 0.70;
            return k;
        }()));

    suite.emplace_back(Program(s, "swat")
        .add([] {
            auto k = smallGridCompute("swat_diagonal",
                                      {.wgs = 24, .wi_per_wg = 128,
                                       .launches = 380,
                                       .intensity = 0.4});
            k.branch_divergence = 0.25;
            return k;
        }())
        .add(tinyIterative("swat_maxrow",
                           {.wgs = 6, .wi_per_wg = 128,
                            .launches = 380, .intensity = 0.3}))
        .add(pointerChase("swat_traceback",
                          {.wgs = 2, .wi_per_wg = 64, .launches = 1,
                           .intensity = 0.7}))
        .add(streaming("swat_init_matrix",
                       {.wgs = 512, .wi_per_wg = 256, .launches = 1,
                        .intensity = 0.2})));

    suite.emplace_back(Program(s, "hmm")
        .add(denseCompute("bw_forward",
                          {.wgs = 256, .wi_per_wg = 256, .launches = 60,
                           .intensity = 0.8}))
        .add(denseCompute("bw_backward",
                          {.wgs = 256, .wi_per_wg = 256, .launches = 60,
                           .intensity = 0.8}))
        .add(reduction("bw_scale",
                       {.wgs = 32, .wi_per_wg = 256, .launches = 60},
                       0.40))
        .add(denseCompute("bw_gamma",
                          {.wgs = 256, .wi_per_wg = 256, .launches = 60,
                           .intensity = 0.5}))
        .add(denseCompute("bw_xi",
                          {.wgs = 512, .wi_per_wg = 256, .launches = 60,
                           .intensity = 0.9}))
        .add(denseCompute("bw_update_model",
                          {.wgs = 64, .wi_per_wg = 256, .launches = 60,
                           .intensity = 0.3})));

    suite.emplace_back(Program(s, "csr")
        .add(graphTraversal("csr_spmv",
                            {.wgs = 724, .wi_per_wg = 128,
                             .launches = 40, .intensity = 0.7})));

    suite.emplace_back(Program(s, "fft2")
        .add(tiledLds("fft_radix4",
                      {.wgs = 1024, .wi_per_wg = 64, .launches = 6,
                       .intensity = 1.0}))
        .add([] {
            auto k = streaming("fft_twiddle",
                               {.wgs = 1024, .wi_per_wg = 64,
                                .launches = 6, .intensity = 0.5});
            k.coalescing = 0.5;
            return k;
        }())
        .add(tiledLds("fft_transpose",
                      {.wgs = 1024, .wi_per_wg = 64, .launches = 3,
                       .intensity = 0.3})));

    suite.emplace_back(Program(s, "bfs2")
        .add(graphTraversal("bfs_expand",
                            {.wgs = 144, .wi_per_wg = 256,
                             .launches = 18, .intensity = 1.1}))
        .add(tinyIterative("bfs_done_flag",
                           {.wgs = 1, .wi_per_wg = 64,
                            .launches = 18})));

    suite.emplace_back(Program(s, "kmeans2")
        .add(denseCompute("assign_clusters",
                          {.wgs = 968, .wi_per_wg = 256, .launches = 30,
                           .intensity = 0.35}))
        .add(reduction("update_centroids",
                       {.wgs = 121, .wi_per_wg = 256, .launches = 30},
                       0.55))
        .add(tinyIterative("check_convergence",
                           {.wgs = 1, .wi_per_wg = 64,
                            .launches = 30})));

    suite.emplace_back(Program(s, "lud2")
        .add(tinyIterative("lud_diag",
                           {.wgs = 1, .wi_per_wg = 256, .launches = 64,
                            .intensity = 1.4}))
        .add(smallGridCompute("lud_perim",
                              {.wgs = 32, .wi_per_wg = 128,
                               .launches = 64, .intensity = 0.4}))
        .add(denseCompute("lud_inner",
                          {.wgs = 1024, .wi_per_wg = 256,
                           .launches = 64, .intensity = 0.45})));

    suite.emplace_back(Program(s, "srad2")
        .add(stencil("srad_main",
                     {.wgs = 900, .wi_per_wg = 256, .launches = 150,
                      .intensity = 1.0}, 20.0))
        .add(stencil("srad_divergence",
                     {.wgs = 900, .wi_per_wg = 256, .launches = 150,
                      .intensity = 0.8}, 20.0))
        .add(reduction("srad_stats",
                       {.wgs = 113, .wi_per_wg = 256, .launches = 150},
                       0.20))
        .add(streaming("srad_scale",
                       {.wgs = 900, .wi_per_wg = 256, .launches = 1,
                        .intensity = 0.2})));

    suite.emplace_back(Program(s, "nw2")
        .add(tinyIterative("nw_fill_upper",
                           {.wgs = 12, .wi_per_wg = 64, .launches = 180,
                            .intensity = 0.8}))
        .add(tinyIterative("nw_fill_lower",
                           {.wgs = 12, .wi_per_wg = 64, .launches = 180,
                            .intensity = 0.8})));

    suite.emplace_back(Program(s, "tdm")
        .add(pointerChase("tdm_search",
                          {.wgs = 18, .wi_per_wg = 64, .launches = 4,
                           .intensity = 1.2}))
        .add([] {
            auto k = graphTraversal("tdm_match",
                                    {.wgs = 384, .wi_per_wg = 128,
                                     .launches = 4, .intensity = 0.9});
            k.branch_divergence = 0.6;
            return k;
        }())
        .add(reduction("tdm_score",
                       {.wgs = 48, .wi_per_wg = 128, .launches = 4},
                       0.45))
        .add(streaming("tdm_load_patterns",
                       {.wgs = 96, .wi_per_wg = 256, .launches = 1,
                        .intensity = 0.3})));

    return suite;
}

} // namespace workloads
} // namespace gpuscale
