/**
 * @file
 * Pannotia-style suite: 6 programs, 23 kernels.
 *
 * Pannotia is all irregular graph analytics: frontier-driven
 * traversals with data-dependent launches, heavy divergence, poor
 * coalescing, and small average frontiers.  In the paper's census
 * this population dominates the parallelism-starved and
 * latency-plateau classes, and its atomic-update kernels are the
 * canonical CU-adverse cases.
 */

#include "archetypes.hh"
#include "registry.hh"

namespace gpuscale {
namespace workloads {

std::vector<Program>
makePannotiaSuite()
{
    std::vector<Program> suite;
    const std::string s = "pannotia";

    suite.emplace_back(Program(s, "bc")
        .add(graphTraversal("bc_forward",
                            {.wgs = 96, .wi_per_wg = 256,
                             .launches = 120, .intensity = 0.8}))
        .add(graphTraversal("bc_backward",
                            {.wgs = 96, .wi_per_wg = 256,
                             .launches = 120, .intensity = 0.9}))
        .add([] {
            auto k = reduction("bc_accumulate",
                               {.wgs = 96, .wi_per_wg = 256,
                                .launches = 120}, 0.80);
            k.coalescing = 0.15;
            return k;
        }())
        .add(tinyIterative("bc_frontier_reset",
                           {.wgs = 2, .wi_per_wg = 256,
                            .launches = 120}))
        .add(streaming("bc_init_arrays",
                       {.wgs = 192, .wi_per_wg = 256, .launches = 1,
                        .intensity = 0.2})));

    suite.emplace_back(Program(s, "color")
        .add([] {
            auto k = graphTraversal("color_max_degree",
                                    {.wgs = 128, .wi_per_wg = 256,
                                     .launches = 40, .intensity = 1.0});
            k.branch_divergence = 0.55;
            return k;
        }())
        .add(graphTraversal("color_assign",
                            {.wgs = 128, .wi_per_wg = 256,
                             .launches = 40, .intensity = 0.5}))
        .add(tinyIterative("color_check_done",
                           {.wgs = 1, .wi_per_wg = 64,
                            .launches = 40})));

    suite.emplace_back(Program(s, "fw")
        .add([] {
            // Floyd-Warshall over the adjacency matrix: the aggregate
            // tile working set overflows the shared L2 once enough
            // CUs are enabled -> classic CU-adverse scaling.
            auto k = cacheThrash("fw_block_pass",
                                 {.wgs = 1024, .wi_per_wg = 256,
                                  .launches = 256, .intensity = 0.6},
                                 18.0);
            return k;
        }())
        .add(tinyIterative("fw_pivot_row",
                           {.wgs = 8, .wi_per_wg = 256,
                            .launches = 256, .intensity = 0.4})));

    suite.emplace_back(Program(s, "mis")
        .add(graphTraversal("mis_select",
                            {.wgs = 112, .wi_per_wg = 256,
                             .launches = 30, .intensity = 0.7}))
        .add([] {
            auto k = reduction("mis_atomic_add",
                               {.wgs = 112, .wi_per_wg = 256,
                                .launches = 30}, 0.85);
            k.coalescing = 0.2;
            return k;
        }())
        .add(graphTraversal("mis_remove",
                            {.wgs = 112, .wi_per_wg = 256,
                             .launches = 30, .intensity = 0.4}))
        .add(tinyIterative("mis_done_flag",
                           {.wgs = 1, .wi_per_wg = 64,
                            .launches = 30})));

    suite.emplace_back(Program(s, "pagerank")
        .add([] {
            auto k = graphTraversal("pagerank_push",
                                    {.wgs = 724, .wi_per_wg = 128,
                                     .launches = 26, .intensity = 0.6});
            k.atomic_ops = 0.30;
            k.atomic_contention = 0.35;
            return k;
        }())
        .add(denseCompute("pagerank_scale",
                          {.wgs = 724, .wi_per_wg = 128, .launches = 26,
                           .intensity = 0.2}))
        .add(reduction("pagerank_error",
                       {.wgs = 91, .wi_per_wg = 128, .launches = 26},
                       0.30))
        .add(streaming("pagerank_init",
                       {.wgs = 724, .wi_per_wg = 128, .launches = 1,
                        .intensity = 0.2})));

    suite.emplace_back(Program(s, "sssp")
        .add(graphTraversal("sssp_relax",
                            {.wgs = 168, .wi_per_wg = 256,
                             .launches = 64, .intensity = 0.9}))
        .add([] {
            auto k = reduction("sssp_min_update",
                               {.wgs = 168, .wi_per_wg = 256,
                                .launches = 64}, 0.75);
            k.coalescing = 0.18;
            return k;
        }())
        .add(graphTraversal("sssp_frontier_build",
                            {.wgs = 168, .wi_per_wg = 256,
                             .launches = 64, .intensity = 0.4}))
        .add(tinyIterative("sssp_done_flag",
                           {.wgs = 1, .wi_per_wg = 64,
                            .launches = 64}))
        .add(streaming("sssp_init_dist",
                       {.wgs = 336, .wi_per_wg = 256, .launches = 1,
                        .intensity = 0.2})));

    return suite;
}

} // namespace workloads
} // namespace gpuscale
