/**
 * @file
 * Persistent worker-thread pool behind parallelFor().
 *
 * The sweep hot path (267 kernels x 891 configs, EXPERIMENTS.md T3)
 * calls parallelFor() once per census stage; spawning and joining a
 * fresh std::thread set per call costs milliseconds that dominate
 * short sweeps, and an exception escaping a worker's std::thread
 * body is std::terminate.  ThreadPool fixes both: workers are
 * created once (lazily, on first parallel call) and reused for the
 * life of the process, and the first exception a worker's loop body
 * throws is captured as a std::exception_ptr and rethrown on the
 * calling thread after the remaining work has been drained.
 *
 * Scheduling is chunked index dispensing: one relaxed fetch_add
 * hands a worker a contiguous run of indices instead of paying one
 * atomic RMW per index, which keeps cache-line ping-pong off the
 * dispenser while preserving dynamic load balance.
 *
 * The pool is an implementation detail of parallelFor(); this header
 * is public so tests can observe pool identity (size(), spawned())
 * and so future subsystems can share the same workers.
 */

#ifndef GPUSCALE_HARNESS_THREAD_POOL_HH
#define GPUSCALE_HARNESS_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "harness/cancel.hh"

namespace gpuscale {
namespace harness {

/**
 * Process-wide persistent thread pool with chunked parallel-for
 * dispatch and caller-thread exception propagation.
 *
 * One parallel region runs at a time (concurrent callers queue on an
 * internal mutex); a region submitted from inside a pool worker must
 * not reach run() — callers check onWorkerThread() and degrade to a
 * serial loop instead, since a nested region would deadlock behind
 * its own enclosing call.
 */
class ThreadPool
{
  public:
    /** Upper bound on pool growth; clamps absurd max_threads asks. */
    static constexpr unsigned kMaxWorkers = 256;

    /** The process-wide pool, created on first use. */
    static ThreadPool &instance();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Stops and joins every worker. */
    ~ThreadPool();

    /**
     * Grow the pool to at least `workers` threads (clamped to
     * kMaxWorkers); never shrinks.  Returns the pool size, i.e. the
     * number of participants a following run() may request.
     */
    unsigned ensure(unsigned workers);

    /**
     * Run fn(i) for every i in [0, n) on `participants` pool workers
     * (requires participants >= 1 and <= size(); call ensure()
     * first).  Blocks until every participant is done.  If any fn
     * throws, the first exception is rethrown here on the calling
     * thread once the region has quiesced; indices not yet dispensed
     * at that point are abandoned, and in-flight chunks finish their
     * current index before stopping.
     *
     * per_worker_tasks is resized to `participants` and filled with
     * each participant's executed-index count (for the imbalance
     * gauge).
     *
     * When `cancel` is non-null, each participant polls it before
     * dispensing a chunk; an expired token is reported by throwing
     * CancelledError through the same first-error-wins machinery, so
     * cancellation looks exactly like a work-item failure to callers.
     */
    void run(size_t n, const std::function<void(size_t)> &fn,
             unsigned participants,
             std::vector<uint64_t> &per_worker_tasks,
             const CancelToken *cancel = nullptr);

    /** Worker threads currently alive. */
    unsigned size() const;

    /**
     * Worker threads ever created.  A warm pool keeps this constant
     * across back-to-back parallelFor() calls — the reuse property
     * tests assert on.
     */
    uint64_t spawned() const;

    /** True when the calling thread is one of this pool's workers. */
    static bool onWorkerThread();

  private:
    /** One parallel region's shared state. */
    struct Task {
        size_t n = 0;
        size_t chunk = 1;
        const std::function<void(size_t)> *fn = nullptr;
        unsigned participants = 0;
        /** Next undispensed index; advanced chunk-at-a-time. */
        std::atomic<size_t> next{0};
        /** Workers that claimed a participant slot so far. */
        std::atomic<unsigned> claims{0};
        /** Participants that finished their dispense loop. */
        std::atomic<unsigned> finished{0};
        /** Set on the first throw; stops further dispensing. */
        std::atomic<bool> failed{false};
        /** Guards error and done_cv hand-off to the caller. */
        std::mutex mu;
        std::condition_variable done_cv;
        std::exception_ptr error;
        std::vector<uint64_t> *per_worker_tasks = nullptr;
        /** Optional cooperative-cancellation token, polled per chunk. */
        const CancelToken *cancel = nullptr;
    };

    ThreadPool() = default;

    void workerLoop();
    static void runSlot(Task &task, unsigned slot);

    /** Serializes whole parallel regions, not individual indices. */
    std::mutex run_mu_;

    /** Guards workers_, current_, generation_, stop_. */
    mutable std::mutex mu_;
    std::condition_variable work_cv_;
    std::vector<std::thread> workers_;
    std::shared_ptr<Task> current_;
    uint64_t generation_ = 0;
    bool stop_ = false;

    std::atomic<uint64_t> spawned_{0};
};

} // namespace harness
} // namespace gpuscale

#endif // GPUSCALE_HARNESS_THREAD_POOL_HH
