/**
 * @file
 * Sparse census driver implementation.
 */

#include "sparse.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "base/fault.hh"
#include "base/logging.hh"
#include "gpu/kernel_desc.hh"
#include "obs/metrics.hh"
#include "obs/sharded.hh"
#include "obs/trace.hh"
#include "parallel.hh"
#include "sweep_cache.hh"
#include "workloads/registry.hh"

namespace gpuscale {
namespace harness {

namespace {

/**
 * Sharded instruments for the sparse hot loop: pool workers update
 * per-kernel, so each gets its own cache line (obs/sharded.hh).
 */
struct SparseMetrics {
    obs::ShardedCounter &samples;
    obs::ShardedHistogram &fit_latency;
    obs::ShardedHistogram &agreement;

    static SparseMetrics &
    get()
    {
        static SparseMetrics m{
            obs::Registry::instance().shardedCounter(
                "sparse.samples.count",
                "configurations measured by the sparse census"),
            obs::Registry::instance().shardedHistogram(
                "sparse.fit.latency",
                "seconds per sparse surface reconstruction"),
            obs::Registry::instance().shardedHistogram(
                "sparse.agreement",
                "per-kernel ensemble classification agreement"),
        };
        return m;
    }
};

/**
 * Cache key for one kernel's sample plan: the full-sweep key plus
 * everything the plan depends on.  Empty when the model is
 * uncacheable (empty full-sweep key).
 */
std::string
sparseKeyFor(const gpu::PerfModel &model, const gpu::KernelDesc &kernel,
             const gpu::ConfigGrid &grid,
             const SparseCensusOptions &options)
{
    const std::string base = SweepCache::keyFor(model, kernel, grid);
    if (base.empty())
        return "";
    return base + "|sparse|" +
           scaling::samplerKindName(options.sampler) +
           "|k=" + std::to_string(options.samples) +
           "|seed=" + std::to_string(options.seed) +
           "|e=" + std::to_string(options.ensemble);
}

/**
 * The measured plan round-trips through the cache as a flat
 * [index, runtime, index, runtime, ...] double vector; indices are
 * grid positions (< 4096 on the paper grid), far inside double's
 * exact-integer range.
 */
std::vector<double>
packSamples(const std::vector<size_t> &indices,
            const std::vector<double> &runtimes)
{
    std::vector<double> packed;
    packed.reserve(indices.size() * 2);
    for (size_t s = 0; s < indices.size(); ++s) {
        packed.push_back(static_cast<double>(indices[s]));
        packed.push_back(runtimes[s]);
    }
    return packed;
}

bool
unpackSamples(const std::vector<double> &packed, size_t grid_size,
              std::vector<size_t> &indices, std::vector<double> &runtimes)
{
    if (packed.empty() || packed.size() % 2 != 0)
        return false;
    indices.clear();
    runtimes.clear();
    for (size_t p = 0; p < packed.size(); p += 2) {
        const double idx = packed[p];
        if (idx < 0 || idx >= static_cast<double>(grid_size) ||
            idx != static_cast<double>(static_cast<size_t>(idx)))
        {
            return false;
        }
        indices.push_back(static_cast<size_t>(idx));
        runtimes.push_back(packed[p + 1]);
    }
    return true;
}

} // namespace

scaling::SparseReconstruction
sparseSweepKernel(const gpu::PerfModel &model,
                  const gpu::KernelDesc &kernel,
                  const scaling::SparsePredictor &predictor,
                  const SparseCensusOptions &options,
                  const scaling::TaxonomyParams &params)
{
    SparseMetrics &metrics = SparseMetrics::get();
    GPUSCALE_TRACE_SCOPE("sparse/" + kernel.name);
    // Same injection site as the dense sweep: a sparse census is
    // still a sweep, and the fault tests drive both through it.
    faultPoint("sweep.kernel");

    const scaling::ConfigSpace &space = predictor.space();
    const std::string key =
        sparseKeyFor(model, kernel, space.grid(), options);

    std::vector<size_t> indices;
    std::vector<double> runtimes;
    std::vector<double> packed;
    bool measured = false;
    if (!key.empty() && SweepCache::instance().lookup(key, packed) &&
        unpackSamples(packed, space.size(), indices, runtimes))
    {
        measured = true;
        debuglog("sparse %s: %zu samples (cached)", kernel.name.c_str(),
                 indices.size());
    }

    if (!measured) {
        // The scalar estimate() is bitwise-identical to the batched
        // grid walk (the differential tests assert it), so sampled
        // points agree exactly with what a dense sweep would report.
        const auto measureOne = [&](size_t flat) {
            return model.estimate(kernel, space.at(flat)).time_s;
        };
        switch (options.sampler) {
          case scaling::SamplerKind::Lhs:
            indices = predictor.lhsPlan(options.samples);
            runtimes.reserve(indices.size());
            for (const size_t flat : indices)
                runtimes.push_back(measureOne(flat));
            break;
          case scaling::SamplerKind::Active:
            indices = predictor.activePlan(options.samples, measureOne);
            runtimes.reserve(indices.size());
            for (const size_t flat : indices)
                runtimes.push_back(measureOne(flat));
            break;
        }
        if (!key.empty()) {
            SweepCache::instance().insert(
                key, packSamples(indices, runtimes));
        }
        debuglog("sparse %s: %zu samples", kernel.name.c_str(),
                 indices.size());
    }

    metrics.samples.inc(indices.size());

    const auto t0 = std::chrono::steady_clock::now();
    scaling::SparseReconstruction rec =
        predictor.reconstruct(kernel.name, indices, runtimes, params);
    const auto t1 = std::chrono::steady_clock::now();
    metrics.fit_latency.record(
        std::chrono::duration<double>(t1 - t0).count());
    metrics.agreement.record(rec.confidence);
    return rec;
}

SparseCensusResult
runSparseCensus(const gpu::PerfModel &model,
                std::optional<scaling::ConfigSpace> space,
                const SparseCensusOptions &options,
                const scaling::TaxonomyParams &params,
                obs::ProgressReporter *progress)
{
    GPUSCALE_TRACE_SCOPE("sparse_census");
    SparseCensusResult census{
        space.value_or(scaling::ConfigSpace::paperGrid()),
        options,
        {},
        {},
    };

    scaling::SparseFitOptions fit;
    fit.seed = options.seed;
    fit.ensemble = options.ensemble;
    const scaling::SparsePredictor predictor(census.space, fit);

    const auto kernels =
        workloads::WorkloadRegistry::instance().allKernels();
    debuglog("sparse census: %zu kernels x %zu/%zu configs (%s) with "
             "model '%s'",
             kernels.size(), options.samples, census.space.size(),
             scaling::samplerKindName(options.sampler).c_str(),
             model.name().c_str());

    // Same sharding shape as the dense sweepKernels(): contiguous
    // slices, several per worker, results into pre-sized slots.
    const size_t workers =
        std::max<unsigned>(1u, std::thread::hardware_concurrency());
    const size_t num_shards =
        std::min(kernels.size(), std::max<size_t>(1, workers * 4));

    std::vector<std::optional<scaling::SparseReconstruction>> slots(
        kernels.size());
    parallelFor(num_shards, [&](size_t shard) {
        const size_t n = kernels.size();
        const size_t begin = shard * n / num_shards;
        const size_t end = (shard + 1) * n / num_shards;
        for (size_t k = begin; k < end; ++k) {
            slots[k] = sparseSweepKernel(model, *kernels[k], predictor,
                                         options, params);
            if (progress != nullptr)
                progress->tick();
        }
    });

    census.reconstructions.reserve(kernels.size());
    census.classifications.reserve(kernels.size());
    for (auto &slot : slots) {
        panic_if(!slot.has_value(), "sparse census: missing kernel");
        census.classifications.push_back(slot->cls);
        census.reconstructions.push_back(std::move(*slot));
    }
    return census;
}

obs::RunManifest
sparseCensusManifest(const SparseCensusResult &census,
                     const gpu::PerfModel &model)
{
    obs::RunManifest m;
    m.command = "census";
    m.model = model.name();
    m.threads = std::thread::hardware_concurrency();
    m.num_kernels = census.reconstructions.size();
    m.num_configs = census.space.size();
    m.num_estimates =
        census.reconstructions.size() * census.options.samples;
    m.cu_values = census.space.cuValues();
    m.core_clks_mhz = census.space.coreClks();
    m.mem_clks_mhz = census.space.memClks();
    m.extra["sparse.sampler"] =
        scaling::samplerKindName(census.options.sampler);
    m.extra["sparse.samples"] =
        std::to_string(census.options.samples);
    m.extra["sparse.seed"] = std::to_string(census.options.seed);
    m.extra["sparse.ensemble"] =
        std::to_string(census.options.ensemble);
    return m;
}

double
sparseAgreement(const SparseCensusResult &sparse,
                const std::vector<scaling::KernelClassification> &dense)
{
    size_t compared = 0, matched = 0;
    for (const auto &sc : sparse.classifications) {
        for (const auto &dc : dense) {
            if (dc.kernel != sc.kernel)
                continue;
            ++compared;
            matched += dc.cls == sc.cls;
            break;
        }
    }
    if (compared == 0)
        return 1.0;
    return static_cast<double>(matched) /
           static_cast<double>(compared);
}

} // namespace harness
} // namespace gpuscale
