/**
 * @file
 * CensusJournal implementation.
 */

#include "checkpoint.hh"

#include <fcntl.h>
#include <unistd.h>

#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>

#include "base/crc32.hh"
#include "base/fault.hh"
#include "base/logging.hh"
#include "base/string_util.hh"
#include "obs/fault_telemetry.hh"
#include "obs/metrics.hh"

namespace gpuscale {
namespace harness {

namespace {

constexpr char kJournalMagic[] = "gpuscale-census-journal-v1";
constexpr char kJournalName[] = "census.journal";

/**
 * Sanity cap on a record's double count: a corrupt metadata line
 * must not make replay allocate gigabytes.  Far above any real grid
 * (the paper grid is 891 points).
 */
constexpr size_t kMaxRecordDoubles = 1 << 20;

/** Cached instrument references for the journal. */
struct CheckpointMetrics {
    obs::Counter &records;
    obs::Counter &replayed;
    obs::Counter &corrupt;
    obs::Histogram &flush_latency;

    static CheckpointMetrics &
    get()
    {
        static CheckpointMetrics m{
            obs::Registry::instance().counter(
                "checkpoint.records",
                "kernel records appended to the census journal"),
            obs::Registry::instance().counter(
                "checkpoint.replayed",
                "kernels served from a replayed census journal"),
            obs::Registry::instance().counter(
                "checkpoint.corrupt",
                "journal records discarded by CRC or parse failure"),
            obs::Registry::instance().histogram(
                "checkpoint.flush.latency",
                "seconds per journal buffer flush to disk"),
        };
        return m;
    }
};

/** "<crc32 hex8> <payload>" for one record payload. */
std::string
recordLine(const std::string &payload)
{
    char crc_hex[16];
    std::snprintf(crc_hex, sizeof(crc_hex), "%08x",
                  crc32(payload));
    std::string line = crc_hex;
    line += ' ';
    line += payload;
    line += '\n';
    return line;
}

} // namespace

CensusJournal::CensusJournal(const std::string &dir,
                             const std::string &model_fingerprint,
                             const std::string &grid_fingerprint)
{
    if (model_fingerprint.empty()) {
        warn("checkpoint: model is uncacheable (empty fingerprint); "
             "journal disabled");
        return;
    }

    if (faultPoint("checkpoint.dir")) {
        warn("checkpoint: cannot create directory %s; journal "
             "disabled",
             dir.c_str());
        obs::noteDegradation("checkpoint.dir");
        return;
    }
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    fatal_if(ec, "cannot create checkpoint directory %s: %s",
             dir.c_str(), ec.message().c_str());

    path_ = dir + "/" + kJournalName;
    std::string header = kJournalMagic;
    header += "\nmodel=";
    header += model_fingerprint;
    header += "\ngrid=";
    header += grid_fingerprint;
    header += '\n';

    load(header);
    if (loaded_.empty() && !writeHeader(header))
        return;

    fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
    if (fd_ < 0) {
        warn("checkpoint: cannot open %s for append; journal "
             "disabled",
             path_.c_str());
        obs::noteDegradation("checkpoint.open");
        return;
    }
    inform("checkpoint: journal %s (%zu record(s) replayed)",
           path_.c_str(), loaded_.size());
}

CensusJournal::~CensusJournal()
{
    if (fd_ < 0)
        return;
    try {
        flushLocked();
    } catch (const FaultInjectedError &) {
        // An injected crash during the final flush: the buffered
        // records are lost and re-run on resume, which is exactly
        // the journal's contract.  The dtor must not throw.
        obs::noteDegradation("checkpoint.flush");
    }
    ::close(fd_);
    fd_ = -1;
}

void
CensusJournal::load(const std::string &header)
{
    if (faultPoint("checkpoint.load")) {
        warn("checkpoint: injected read fault loading %s; starting "
             "fresh",
             path_.c_str());
        obs::noteDegradation("checkpoint.load");
        return;
    }

    std::ifstream is(path_);
    if (!is)
        return; // first run: no journal yet

    // The header is compared as a block: magic, model, and grid must
    // all match or the journal belongs to a different census.
    std::string head(header.size(), '\0');
    is.read(head.data(), static_cast<std::streamsize>(head.size()));
    if (is.gcount() != static_cast<std::streamsize>(head.size()) ||
        head != header) {
        warn("checkpoint: %s is from a different model/grid or "
             "corrupt; discarding it",
             path_.c_str());
        obs::noteDegradation("checkpoint.header");
        return;
    }

    CheckpointMetrics &metrics = CheckpointMetrics::get();
    std::string line;
    while (std::getline(is, line)) {
        // Metadata line "<crc32 hex8> <kernel>|<count>:<chk64
        // hex16>".  Its CRC also guards the body framing, so a
        // mangled line means the record boundaries after it cannot
        // be trusted: stop replaying and let the rest re-run.  (The
        // torn final line of a killed run lands here too.)
        bool framed = line.size() > 9 && line[8] == ' ';
        uint32_t stored_crc = 0;
        if (framed) {
            const auto res = std::from_chars(
                line.data(), line.data() + 8, stored_crc, 16);
            framed =
                res.ec == std::errc() && res.ptr == line.data() + 8;
        }
        const std::string meta = framed ? line.substr(9) : "";
        if (framed)
            framed = crc32(meta) == stored_crc;

        std::string kernel;
        size_t count = 0;
        uint64_t stored_chk = 0;
        if (framed) {
            const size_t bar = meta.find('|');
            const size_t colon = meta.rfind(':');
            framed = bar != std::string::npos &&
                     colon != std::string::npos && colon > bar;
            if (framed) {
                kernel = meta.substr(0, bar);
                const char *b = meta.data();
                auto res = std::from_chars(b + bar + 1, b + colon,
                                           count, 10);
                framed = res.ec == std::errc() &&
                         res.ptr == b + colon &&
                         count <= kMaxRecordDoubles;
                if (framed) {
                    res = std::from_chars(b + colon + 1,
                                          b + meta.size(),
                                          stored_chk, 16);
                    framed = res.ec == std::errc() &&
                             res.ptr == b + meta.size();
                }
            }
        }
        if (!framed) {
            metrics.corrupt.inc();
            warn("checkpoint: corrupt journal metadata (%zu "
                 "byte(s)); replay stops here",
                 line.size());
            obs::noteDegradation("checkpoint.record");
            break;
        }

        // The framing is trusted now: consume the body plus its
        // newline even if the checksum then rejects the record, so
        // one flipped bit costs one kernel, not the rest of the
        // journal.
        std::string body(count * sizeof(double), '\0');
        is.read(body.data(),
                static_cast<std::streamsize>(body.size()));
        const bool torn =
            is.gcount() !=
                static_cast<std::streamsize>(body.size()) ||
            is.get() != '\n';
        if (torn) {
            metrics.corrupt.inc();
            warn("checkpoint: torn journal record for %s; replay "
                 "stops here",
                 kernel.c_str());
            obs::noteDegradation("checkpoint.record");
            break;
        }
        if (chk64(body) != stored_chk) {
            metrics.corrupt.inc();
            warn("checkpoint: body checksum mismatch for %s; "
                 "record skipped",
                 kernel.c_str());
            obs::noteDegradation("checkpoint.record");
            continue;
        }
        std::vector<double> runtimes(count);
        std::memcpy(runtimes.data(), body.data(), body.size());
        loaded_[kernel] = std::move(runtimes);
    }
}

bool
CensusJournal::writeHeader(const std::string &header)
{
    // Temp + rename: a crash here leaves either no journal or a
    // complete header, never a half-written one.
    if (faultPoint("checkpoint.header")) {
        warn("checkpoint: cannot write %s; journal disabled",
             path_.c_str());
        obs::noteDegradation("checkpoint.header.write");
        return false;
    }
    const std::string tmp = path_ + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os) {
            warn("checkpoint: cannot write %s; journal disabled",
                 tmp.c_str());
            obs::noteDegradation("checkpoint.header.write");
            return false;
        }
        os << header;
    }
    if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
        warn("checkpoint: cannot rename %s into place; journal "
             "disabled",
             tmp.c_str());
        std::remove(tmp.c_str());
        obs::noteDegradation("checkpoint.header.rename");
        return false;
    }
    return true;
}

bool
CensusJournal::lookup(const std::string &kernel,
                      std::vector<double> &runtimes) const
{
    const auto it = loaded_.find(kernel);
    if (it == loaded_.end())
        return false;
    runtimes = it->second;
    CheckpointMetrics::get().replayed.inc();
    return true;
}

void
CensusJournal::record(const std::string &kernel,
                      const std::vector<double> &runtimes)
{
    if (fd_ < 0)
        return;

    const std::string_view body(
        reinterpret_cast<const char *>(runtimes.data()),
        runtimes.size() * sizeof(double));
    char chk_hex[24];
    std::snprintf(chk_hex, sizeof(chk_hex), "%016llx",
                  static_cast<unsigned long long>(chk64(body)));
    std::string meta = kernel;
    meta += '|';
    meta += std::to_string(runtimes.size());
    meta += ':';
    meta += chk_hex;
    const std::string head = recordLine(meta);

    std::lock_guard<std::mutex> lock(append_mutex_);
    if (faultPoint("checkpoint.append")) {
        // Dropping a record only costs a re-run of this kernel on
        // the next resume; stopping the census would cost the run.
        warn("checkpoint: failed to append record for %s",
             kernel.c_str());
        obs::noteDegradation("checkpoint.append");
        return;
    }
    pending_ += head;
    pending_ += body;
    pending_ += '\n';
    CheckpointMetrics::get().records.inc();
    if (pending_.size() >= kFlushBytes)
        flushLocked();
}

void
CensusJournal::flushLocked()
{
    const auto t0 = std::chrono::steady_clock::now();
    if (faultPoint("checkpoint.flush")) {
        warn("checkpoint: flush of %zu byte(s) failed; those "
             "records will re-run on resume",
             pending_.size());
        obs::noteDegradation("checkpoint.flush");
        return;
    }
    size_t off = 0;
    while (off < pending_.size()) {
        const ssize_t n = ::write(fd_, pending_.data() + off,
                                  pending_.size() - off);
        if (n <= 0) {
            warn("checkpoint: flush of %zu byte(s) failed; those "
                 "records will re-run on resume",
                 pending_.size() - off);
            obs::noteDegradation("checkpoint.flush");
            break;
        }
        off += static_cast<size_t>(n);
    }
    pending_.clear();
    CheckpointMetrics::get().flush_latency.record(
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

void
CensusJournal::flush()
{
    if (fd_ < 0)
        return;
    std::lock_guard<std::mutex> lock(append_mutex_);
    flushLocked();
}

void
CensusJournal::sync()
{
    if (fd_ < 0)
        return;
    std::lock_guard<std::mutex> lock(append_mutex_);
    flushLocked();
    ::fsync(fd_);
}

} // namespace harness
} // namespace gpuscale
