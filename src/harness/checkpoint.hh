/**
 * @file
 * Crash-safe checkpoint/resume for census sweeps.
 *
 * A full census is 267 batched grid evaluations; losing all of them
 * to one mid-run SIGKILL (OOM killer, pre-empted spot instance,
 * ctrl-C) is what this journal prevents.  Completed kernels append
 * one record each to `<dir>/census.journal`; a restarted run replays
 * the journal and re-computes only the kernels that are missing or
 * whose records fail their CRC.
 *
 * File format (version 1).  After a three-line text header, each
 * record is a CRC'd text metadata line framing a raw binary body:
 *
 *     gpuscale-census-journal-v1
 *     model=<model fingerprint>
 *     grid=<grid fingerprint>
 *     <crc32 hex8> <kernel name>|<count>:<chk64 hex16>
 *     <count * 8 bytes of native doubles>
 *     ...
 *
 * The body stays binary because a paper-grid census journals ~240k
 * doubles: text-formatting them costs more than the sweep being
 * checkpointed, raw bytes are a memcpy.  The body checksum is the
 * word-wise chk64 for the same reason (byte-wise CRC over megabytes
 * would dominate the append).  Native byte order — the journal is a
 * local resume artifact, not an interchange format.
 *
 * Safety properties:
 *  - The three-line header is written to a temp file and renamed into
 *    place, so a half-created journal is never observed.
 *  - Each record is one append() of metadata line + body; the line
 *    carries a CRC-32 over the metadata and a chk64 over the body.  A
 *    torn tail (killed mid-write) fails framing and replay stops
 *    there; a bit-flipped body inside an intact frame fails chk64 and
 *    only that record is skipped (checkpoint.corrupt).  Neither is
 *    ever replayed.
 *  - The header pins the model and grid fingerprints; resuming with a
 *    different model or grid discards the journal and starts fresh
 *    rather than replaying foreign results.
 *  - Runtimes round-trip bitwise (raw double bits), so a resumed
 *    census is indistinguishable from an uninterrupted one.
 *
 * Appends never fsync: surviving a process kill (the threat this
 * journal exists for) needs no fsync at all — the page cache
 * persists — and a single fsync of a paper-grid journal costs more
 * than the journal's entire encode-and-write path.  Callers that
 * also want whole-machine power-loss durability call sync() once at
 * a quiescent point (the CLI does, after the census completes);
 * losing an unsynced journal to a power cut merely re-runs the
 * census, it never corrupts a resume.
 *
 * Appends group-commit: whole records accumulate in a buffer that is
 * flushed to the fd at kFlushBytes boundaries (and on sync()/close),
 * so flushes always land on record boundaries.  A kill between
 * flushes loses at most the buffered tail — those kernels simply
 * re-run on resume — in exchange for an order of magnitude fewer
 * write syscalls on the census hot path.
 */

#ifndef GPUSCALE_HARNESS_CHECKPOINT_HH
#define GPUSCALE_HARNESS_CHECKPOINT_HH

#include <cstddef>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace gpuscale {
namespace harness {

/** Append-only journal of completed kernel sweeps. */
class CensusJournal
{
  public:
    /**
     * Open (or create) the journal under `dir`, pinned to the given
     * model and grid fingerprints.  An existing journal with a
     * matching header is replayed; a mismatched or corrupt header is
     * discarded with a warning.  An empty model fingerprint marks the
     * model uncacheable, and the journal opens inert (lookup misses,
     * record no-ops) — resuming unidentifiable results would be
     * silent corruption.
     */
    CensusJournal(const std::string &dir,
                  const std::string &model_fingerprint,
                  const std::string &grid_fingerprint);

    /** Closes the journal file (without fsync — see file comment). */
    ~CensusJournal();

    CensusJournal(const CensusJournal &) = delete;
    CensusJournal &operator=(const CensusJournal &) = delete;

    /** True when the journal is open and usable. */
    bool active() const { return fd_ >= 0; }

    /**
     * Serve one kernel from the replayed journal.  A hit advances
     * checkpoint.replayed.
     */
    bool lookup(const std::string &kernel,
                std::vector<double> &runtimes) const;

    /**
     * Append one completed kernel.  Thread-safe; a failed append
     * degrades (the kernel is simply re-run on the next resume) and
     * is counted, never fatal.
     */
    void record(const std::string &kernel,
                const std::vector<double> &runtimes);

    /** Records replayed from disk at construction time. */
    size_t loadedRecords() const { return loaded_.size(); }

    /**
     * Flush buffered records and fsync for power-loss durability.
     * Kill-safety never needs the fsync; call once after the
     * protected work completes, not per record.
     */
    void sync();

    /** Flush buffered records to the journal fd (no fsync). */
    void flush();

    /** Full path of the journal file. */
    const std::string &path() const { return path_; }

    /** Group-commit threshold: pending bytes that trigger a flush. */
    static constexpr size_t kFlushBytes = 64 * 1024;

  private:
    void load(const std::string &header);
    bool writeHeader(const std::string &header);
    void flushLocked();

    std::string path_;
    std::unordered_map<std::string, std::vector<double>> loaded_;
    int fd_ = -1;

    // Serializes appends from sweepKernels() workers so records
    // never interleave mid-line; the buffer is tied to it by
    // guarded_by (enforced by the lock-discipline rule).
    std::mutex append_mutex_;
    // guarded_by(append_mutex_)
    std::string pending_;
};

} // namespace harness
} // namespace gpuscale

#endif // GPUSCALE_HARNESS_CHECKPOINT_HH
