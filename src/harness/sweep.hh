/**
 * @file
 * Sweep harness: measure kernels across the configuration grid.
 *
 * This is the code a real study runs against hardware; here the
 * "measurement" is a PerfModel::estimate() call, so the same harness
 * drives either fidelity.
 */

#ifndef GPUSCALE_HARNESS_SWEEP_HH
#define GPUSCALE_HARNESS_SWEEP_HH

#include <vector>

#include "gpu/perf_model.hh"
#include "scaling/config_space.hh"
#include "scaling/surface.hh"

namespace gpuscale {
namespace harness {

/**
 * Measure one kernel at every grid point.
 *
 * @return the kernel's scaling surface.
 */
scaling::ScalingSurface sweepKernel(const gpu::PerfModel &model,
                                    const gpu::KernelDesc &kernel,
                                    const scaling::ConfigSpace &space);

/**
 * Measure a batch of kernels; kernels are distributed across worker
 * threads (each (kernel, config) estimate is independent).
 *
 * @param kernels non-owning kernel pointers; all non-null.
 */
std::vector<scaling::ScalingSurface> sweepKernels(
    const gpu::PerfModel &model,
    const std::vector<const gpu::KernelDesc *> &kernels,
    const scaling::ConfigSpace &space);

} // namespace harness
} // namespace gpuscale

#endif // GPUSCALE_HARNESS_SWEEP_HH
