/**
 * @file
 * Sweep harness: measure kernels across the configuration grid.
 *
 * This is the code a real study runs against hardware; here the
 * "measurement" is a PerfModel::estimate() call, so the same harness
 * drives either fidelity.
 */

#ifndef GPUSCALE_HARNESS_SWEEP_HH
#define GPUSCALE_HARNESS_SWEEP_HH

#include <vector>

#include "gpu/perf_model.hh"
#include "harness/cancel.hh"
#include "scaling/config_space.hh"
#include "scaling/surface.hh"

namespace gpuscale {
namespace obs {
class ProgressReporter;
} // namespace obs
namespace harness {

class CensusJournal;

/**
 * Measure one kernel at every grid point — one batched
 * PerfModel::evaluateGrid() call, served from the SweepCache when the
 * identical (model, kernel, grid) sweep has run before.
 *
 * @return the kernel's scaling surface.
 */
scaling::ScalingSurface sweepKernel(const gpu::PerfModel &model,
                                    const gpu::KernelDesc &kernel,
                                    const scaling::ConfigSpace &space);

/**
 * Measure a batch of kernels; kernels are distributed across worker
 * threads in contiguous shards (census.shard.* metrics), each kernel
 * evaluated as one batched grid call through the SweepCache.
 *
 * Each swept kernel records a "sweep/<name>" trace span and feeds the
 * sweep.estimate.latency histogram (see docs/observability.md).
 *
 * With a journal (checkpoint.hh), kernels already recorded are
 * replayed bitwise instead of re-swept, and every freshly computed
 * kernel is appended — a killed run resumes where it stopped.
 *
 * @param kernels non-owning kernel pointers; all non-null.
 * @param progress optional reporter ticked once per finished kernel.
 * @param journal optional checkpoint journal for crash-safe resume.
 * @param cancel optional cooperative-cancellation token (cancel.hh);
 *        an expired token aborts the sweep with CancelledError.
 *        Kernels already journaled stay journaled, so a cancelled
 *        sweep resumes exactly like a killed one.
 */
std::vector<scaling::ScalingSurface> sweepKernels(
    const gpu::PerfModel &model,
    const std::vector<const gpu::KernelDesc *> &kernels,
    const scaling::ConfigSpace &space,
    obs::ProgressReporter *progress = nullptr,
    CensusJournal *journal = nullptr,
    const CancelToken *cancel = nullptr);

} // namespace harness
} // namespace gpuscale

#endif // GPUSCALE_HARNESS_SWEEP_HH
