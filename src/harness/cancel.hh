// Cooperative cancellation for parallel regions.
//
// A CancelToken carries two signals: an explicit cancel() flag (used by
// the service drain path) and an optional wall-clock deadline (used by
// per-request budgets).  Workers poll expired() between chunks — there
// is no watchdog thread and no forced unwinding; a region that never
// polls is never cancelled.  When a pool worker observes an expired
// token it throws CancelledError, which rides the thread pool's normal
// first-error-wins capture machinery back to the caller of parallelFor.
//
// The token is owned by the caller and must outlive the parallel region
// it is passed to.  All members are safe to call from any thread.

#pragma once

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace gpuscale::harness {

/** Thrown out of parallelFor when its CancelToken expires mid-region. */
class CancelledError : public std::runtime_error {
  public:
    explicit CancelledError(const char *what_arg)
        : std::runtime_error(what_arg)
    {
    }
};

class CancelToken {
  public:
    /** Request cancellation; expired() returns true from now on. */
    void
    cancel()
    {
        cancelled_.store(true, std::memory_order_release);
    }

    /** Arm a wall-clock deadline; expired() turns true once it passes. */
    void
    armDeadline(std::chrono::steady_clock::time_point deadline)
    {
        deadline_ = deadline;
        armed_.store(true, std::memory_order_release);
    }

    /** Convenience: arm a deadline `budget_ms` from now. */
    void
    armBudgetMs(double budget_ms)
    {
        armDeadline(std::chrono::steady_clock::now() +
                    std::chrono::microseconds(
                        static_cast<long long>(budget_ms * 1000.0)));
    }

    /** True once cancel() was called or an armed deadline passed. */
    bool
    expired() const
    {
        if (cancelled_.load(std::memory_order_acquire))
            return true;
        if (armed_.load(std::memory_order_acquire) &&
            std::chrono::steady_clock::now() >= deadline_)
            return true;
        return false;
    }

    /** True only for explicit cancel(), not deadline expiry. */
    bool
    cancelledExplicitly() const
    {
        return cancelled_.load(std::memory_order_acquire);
    }

  private:
    std::atomic<bool> cancelled_{false};
    std::atomic<bool> armed_{false};
    std::chrono::steady_clock::time_point deadline_{};
};

} // namespace gpuscale::harness
