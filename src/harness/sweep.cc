/**
 * @file
 * Sweep harness implementation.
 */

#include "sweep.hh"

#include <chrono>

#include "base/logging.hh"
#include "gpu/kernel_desc.hh"
#include "obs/metrics.hh"
#include "obs/progress.hh"
#include "obs/trace.hh"
#include "parallel.hh"

namespace gpuscale {
namespace harness {

namespace {

/** Cached instrument references for the estimate hot loop. */
struct SweepMetrics {
    obs::Counter &estimates;
    obs::Counter &kernels;
    obs::Histogram &latency;

    static SweepMetrics &
    get()
    {
        static SweepMetrics m{
            obs::Registry::instance().counter(
                "sweep.estimates.count",
                "model estimates issued by the sweep harness"),
            obs::Registry::instance().counter(
                "sweep.kernels.count", "kernels swept"),
            obs::Registry::instance().histogram(
                "sweep.estimate.latency",
                "seconds per model estimate"),
        };
        return m;
    }
};

/**
 * Sweep one kernel over the whole grid, timing every estimate into
 * the latency histogram, under one trace span named after the kernel.
 */
std::vector<double>
sweepOne(const gpu::PerfModel &model, const gpu::KernelDesc &kernel,
         const scaling::ConfigSpace &space)
{
    SweepMetrics &metrics = SweepMetrics::get();
    GPUSCALE_TRACE_SCOPE("sweep/" + kernel.name);
    metrics.kernels.inc();

    std::vector<double> runtimes(space.size());
    for (size_t i = 0; i < space.size(); ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        runtimes[i] = model.estimate(kernel, space.at(i)).time_s;
        const auto t1 = std::chrono::steady_clock::now();
        metrics.latency.record(
            std::chrono::duration<double>(t1 - t0).count());
    }
    metrics.estimates.inc(space.size());
    debuglog("swept %s: %zu configs", kernel.name.c_str(),
             space.size());
    return runtimes;
}

} // namespace

scaling::ScalingSurface
sweepKernel(const gpu::PerfModel &model, const gpu::KernelDesc &kernel,
            const scaling::ConfigSpace &space)
{
    return scaling::ScalingSurface(kernel.name, space,
                                   sweepOne(model, kernel, space));
}

std::vector<scaling::ScalingSurface>
sweepKernels(const gpu::PerfModel &model,
             const std::vector<const gpu::KernelDesc *> &kernels,
             const scaling::ConfigSpace &space,
             obs::ProgressReporter *progress)
{
    for (const auto *kernel : kernels)
        panic_if(kernel == nullptr, "sweepKernels: null kernel");

    // Build surfaces into pre-sized slots so workers never contend.
    std::vector<std::vector<double>> runtimes(kernels.size());
    parallelFor(kernels.size(), [&](size_t k) {
        runtimes[k] = sweepOne(model, *kernels[k], space);
        if (progress != nullptr)
            progress->tick();
    });

    std::vector<scaling::ScalingSurface> surfaces;
    surfaces.reserve(kernels.size());
    for (size_t k = 0; k < kernels.size(); ++k) {
        surfaces.emplace_back(kernels[k]->name, space,
                              std::move(runtimes[k]));
    }
    return surfaces;
}

} // namespace harness
} // namespace gpuscale
