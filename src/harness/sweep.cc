/**
 * @file
 * Sweep harness implementation.
 *
 * The hot path is batched and sharded: each kernel is one
 * PerfModel::evaluateGridRuntimes() call (the model hoists
 * grid-invariant work into a flat SoA plan and returns the runtime
 * vector directly — no KernelPerf materialization), consulted
 * through the SweepCache first, and kernels are distributed across
 * the worker pool in contiguous shards rather than one dispatch per
 * kernel.  The flat vector feeds the sweep cache as-is.
 */

#include "sweep.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "base/fault.hh"
#include "base/logging.hh"
#include "checkpoint.hh"
#include "gpu/kernel_desc.hh"
#include "obs/metrics.hh"
#include "obs/progress.hh"
#include "obs/sharded.hh"
#include "obs/trace.hh"
#include "parallel.hh"
#include "sweep_cache.hh"

namespace gpuscale {
namespace harness {

namespace {

/**
 * Cached instrument references for the estimate hot loop.  The
 * instruments every worker updates per kernel or per estimate are
 * sharded (obs/sharded.hh) so pool workers never contend on a shared
 * cache line; the once-per-call shard-count gauge stays plain.
 */
struct SweepMetrics {
    obs::ShardedCounter &estimates;
    obs::ShardedCounter &kernels;
    obs::ShardedHistogram &latency;
    obs::Gauge &shards;
    obs::ShardedHistogram &shard_latency;

    static SweepMetrics &
    get()
    {
        static SweepMetrics m{
            obs::Registry::instance().shardedCounter(
                "sweep.estimates.count",
                "model estimates issued by the sweep harness"),
            obs::Registry::instance().shardedCounter(
                "sweep.kernels.count", "kernels swept"),
            obs::Registry::instance().shardedHistogram(
                "sweep.estimate.latency",
                "seconds per model estimate"),
            obs::Registry::instance().gauge(
                "census.shard.count",
                "kernel shards in the last sweepKernels call"),
            obs::Registry::instance().shardedHistogram(
                "census.shard.latency",
                "seconds per kernel shard"),
        };
        return m;
    }
};

/**
 * Sweep one kernel over the whole grid: one cache probe, then one
 * batched model evaluation on a miss.  The per-estimate latency
 * histogram is fed the batch's amortized per-point cost, and
 * sweep.estimates.count advances only for estimates actually computed
 * (cache hits are free and are counted by sweep.cache.hits).
 */
std::vector<double>
sweepOne(const gpu::PerfModel &model, const gpu::KernelDesc &kernel,
         const gpu::ConfigGrid &grid, const std::string &key)
{
    SweepMetrics &metrics = SweepMetrics::get();
    GPUSCALE_TRACE_SCOPE("sweep/" + kernel.name);
    metrics.kernels.inc();
    // Injection site: a Delay fault here slows every kernel sweep
    // (how the kill/resume tests keep a census mid-flight); Exception
    // models a crashing worker.
    faultPoint("sweep.kernel");

    std::vector<double> runtimes;
    if (SweepCache::instance().lookup(key, runtimes)) {
        debuglog("swept %s: %zu configs (cached)", kernel.name.c_str(),
                 runtimes.size());
        return runtimes;
    }

    const auto t0 = std::chrono::steady_clock::now();
    runtimes = model.evaluateGridRuntimes(kernel, grid);
    const auto t1 = std::chrono::steady_clock::now();

    metrics.estimates.inc(runtimes.size());
    metrics.latency.record(
        std::chrono::duration<double>(t1 - t0).count() /
        static_cast<double>(std::max<size_t>(1, runtimes.size())));

    SweepCache::instance().insert(key, runtimes);
    debuglog("swept %s: %zu configs", kernel.name.c_str(),
             runtimes.size());
    return runtimes;
}

} // namespace

scaling::ScalingSurface
sweepKernel(const gpu::PerfModel &model, const gpu::KernelDesc &kernel,
            const scaling::ConfigSpace &space)
{
    const gpu::ConfigGrid grid = space.grid();
    const std::string key = SweepCache::keyFor(model, kernel, grid);
    return scaling::ScalingSurface(kernel.name, space,
                                   sweepOne(model, kernel, grid, key));
}

std::vector<scaling::ScalingSurface>
sweepKernels(const gpu::PerfModel &model,
             const std::vector<const gpu::KernelDesc *> &kernels,
             const scaling::ConfigSpace &space,
             obs::ProgressReporter *progress, CensusJournal *journal,
             const CancelToken *cancel)
{
    for (const auto *kernel : kernels)
        panic_if(kernel == nullptr, "sweepKernels: null kernel");

    SweepMetrics &metrics = SweepMetrics::get();
    const gpu::ConfigGrid grid = space.grid();

    // Cache keys are computed up front on the calling thread; only
    // the model evaluations are worth farming out.
    std::vector<std::string> keys(kernels.size());
    for (size_t k = 0; k < kernels.size(); ++k)
        keys[k] = SweepCache::keyFor(model, *kernels[k], grid);

    //
    // Shard kernels into contiguous slices, several per worker so a
    // slow kernel (or a run of cache hits) cannot stall the tail.
    // Each shard is one pool dispatch instead of one per kernel.
    //
    const size_t workers =
        std::max<unsigned>(1u, std::thread::hardware_concurrency());
    const size_t num_shards =
        std::min(kernels.size(), std::max<size_t>(1, workers * 4));
    metrics.shards.set(static_cast<double>(num_shards));

    // Build surfaces into pre-sized slots so workers never contend.
    std::vector<std::vector<double>> runtimes(kernels.size());
    parallelFor(num_shards, [&](size_t shard) {
        const auto t0 = std::chrono::steady_clock::now();
        // Balanced contiguous partition of [0, n) into num_shards.
        const size_t n = kernels.size();
        const size_t begin = shard * n / num_shards;
        const size_t end = (shard + 1) * n / num_shards;
        for (size_t k = begin; k < end; ++k) {
            // Journal first: a replayed kernel skips the sweep (and
            // the cache) entirely, and is not re-recorded.
            if (journal != nullptr &&
                journal->lookup(kernels[k]->name, runtimes[k])) {
                if (progress != nullptr)
                    progress->tick();
                continue;
            }
            runtimes[k] = sweepOne(model, *kernels[k], grid, keys[k]);
            if (journal != nullptr)
                journal->record(kernels[k]->name, runtimes[k]);
            if (progress != nullptr)
                progress->tick();
        }
        const auto t1 = std::chrono::steady_clock::now();
        metrics.shard_latency.record(
            std::chrono::duration<double>(t1 - t0).count());
    }, 0, cancel);

    std::vector<scaling::ScalingSurface> surfaces;
    surfaces.reserve(kernels.size());
    for (size_t k = 0; k < kernels.size(); ++k) {
        surfaces.emplace_back(kernels[k]->name, space,
                              std::move(runtimes[k]));
    }
    return surfaces;
}

} // namespace harness
} // namespace gpuscale
