/**
 * @file
 * Sweep harness implementation.
 */

#include "sweep.hh"

#include "base/logging.hh"
#include "gpu/kernel_desc.hh"
#include "parallel.hh"

namespace gpuscale {
namespace harness {

scaling::ScalingSurface
sweepKernel(const gpu::PerfModel &model, const gpu::KernelDesc &kernel,
            const scaling::ConfigSpace &space)
{
    std::vector<double> runtimes(space.size());
    for (size_t i = 0; i < space.size(); ++i)
        runtimes[i] = model.estimate(kernel, space.at(i)).time_s;
    return scaling::ScalingSurface(kernel.name, space,
                                   std::move(runtimes));
}

std::vector<scaling::ScalingSurface>
sweepKernels(const gpu::PerfModel &model,
             const std::vector<const gpu::KernelDesc *> &kernels,
             const scaling::ConfigSpace &space)
{
    for (const auto *kernel : kernels)
        panic_if(kernel == nullptr, "sweepKernels: null kernel");

    // Build surfaces into pre-sized slots so workers never contend.
    std::vector<std::vector<double>> runtimes(kernels.size());
    parallelFor(kernels.size(), [&](size_t k) {
        std::vector<double> rts(space.size());
        for (size_t i = 0; i < space.size(); ++i)
            rts[i] = model.estimate(*kernels[k], space.at(i)).time_s;
        runtimes[k] = std::move(rts);
    });

    std::vector<scaling::ScalingSurface> surfaces;
    surfaces.reserve(kernels.size());
    for (size_t k = 0; k < kernels.size(); ++k) {
        surfaces.emplace_back(kernels[k]->name, space,
                              std::move(runtimes[k]));
    }
    return surfaces;
}

} // namespace harness
} // namespace gpuscale
