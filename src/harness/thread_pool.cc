/**
 * @file
 * ThreadPool implementation.
 */

#include "thread_pool.hh"

#include <algorithm>

#include "base/fault.hh"
#include "base/logging.hh"
#include "obs/sharded.hh"
#include "obs/trace.hh"

namespace gpuscale {
namespace harness {

namespace {

/** Set for the lifetime of a pool worker thread. */
thread_local bool t_on_pool_worker = false;

} // namespace

ThreadPool &
ThreadPool::instance()
{
    static ThreadPool pool;
    return pool;
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto &t : workers_)
        t.join();
}

bool
ThreadPool::onWorkerThread()
{
    return t_on_pool_worker;
}

unsigned
ThreadPool::ensure(unsigned workers)
{
    workers = std::min(workers, kMaxWorkers);
    std::lock_guard<std::mutex> lock(mu_);
    while (workers_.size() < workers) {
        // The spawn ordinal doubles as the worker's telemetry-shard
        // hint: workers spread deterministically across the sharded
        // instruments' stripes instead of being dealt shards by
        // first-touch order.
        const auto ordinal =
            static_cast<unsigned>(workers_.size());
        workers_.emplace_back([this, ordinal]() {
            obs::setThreadShardHint(ordinal);
            workerLoop();
        });
        spawned_.fetch_add(1, std::memory_order_relaxed);
    }
    return static_cast<unsigned>(workers_.size());
}

unsigned
ThreadPool::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<unsigned>(workers_.size());
}

uint64_t
ThreadPool::spawned() const
{
    return spawned_.load(std::memory_order_relaxed);
}

void
ThreadPool::runSlot(Task &task, unsigned slot)
{
    GPUSCALE_TRACE_SCOPE("parallel_for.worker");
    uint64_t done = 0;
    while (!task.failed.load(std::memory_order_relaxed)) {
        // Cooperative cancellation: one token poll per chunk, the
        // same granularity as the fault probe below.  The throw rides
        // the first-error capture so every participant stops
        // dispensing and the caller sees CancelledError.
        if (task.cancel != nullptr && task.cancel->expired()) {
            std::lock_guard<std::mutex> lock(task.mu);
            if (!task.error)
                task.error = std::make_exception_ptr(CancelledError(
                    "parallel region cancelled (drain or deadline)"));
            task.failed.store(true, std::memory_order_release);
            break;
        }
        const size_t begin =
            task.next.fetch_add(task.chunk, std::memory_order_relaxed);
        if (begin >= task.n)
            break;
        const size_t end = std::min(begin + task.chunk, task.n);
        try {
            // Injection site: one probe per dispensed chunk.  An
            // Exception fault here exercises the capture/rethrow
            // drain exactly like a crashing work item; an injected
            // I/O error has no operation to fail, so it degenerates
            // to the same exception.
            if (faultPoint("thread_pool.task")) {
                throw FaultInjectedError(
                    "injected i/o fault at thread_pool.task");
            }
            for (size_t i = begin; i < end; ++i) {
                (*task.fn)(i);
                ++done;
            }
        } catch (...) {
            // First throw wins; everyone stops dispensing, and the
            // caller rethrows once the region quiesces.
            std::lock_guard<std::mutex> lock(task.mu);
            if (!task.error)
                task.error = std::current_exception();
            task.failed.store(true, std::memory_order_release);
        }
    }
    (*task.per_worker_tasks)[slot] = done;
}

void
ThreadPool::workerLoop()
{
    t_on_pool_worker = true;
    uint64_t seen_generation = 0;
    while (true) {
        std::shared_ptr<Task> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock, [&]() {
                return stop_ ||
                       (current_ && generation_ != seen_generation);
            });
            if (stop_)
                return;
            seen_generation = generation_;
            task = current_;
        }
        // Claim a participant slot; late or surplus workers find the
        // complement full and go back to sleep.
        const unsigned slot =
            task->claims.fetch_add(1, std::memory_order_acq_rel);
        if (slot >= task->participants)
            continue;
        runSlot(*task, slot);
        if (task->finished.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            task->participants) {
            // Take the task mutex so the notify cannot slip between
            // the caller's predicate check and its wait.
            std::lock_guard<std::mutex> lock(task->mu);
            task->done_cv.notify_all();
        }
    }
}

void
ThreadPool::run(size_t n, const std::function<void(size_t)> &fn,
                unsigned participants,
                std::vector<uint64_t> &per_worker_tasks,
                const CancelToken *cancel)
{
    panic_if(onWorkerThread(),
             "ThreadPool::run from a pool worker would deadlock; "
             "callers must degrade nested regions to serial loops");
    std::lock_guard<std::mutex> region_lock(run_mu_);
    panic_if(participants == 0 || participants > size(),
             "ThreadPool::run: %u participants with %u workers "
             "(call ensure() first)",
             participants, size());

    per_worker_tasks.assign(participants, 0);

    auto task = std::make_shared<Task>();
    task->n = n;
    // Chunked dispensing: ~8 chunks per participant keeps dynamic
    // balance while cutting dispenser traffic by the chunk factor.
    task->chunk = std::max<size_t>(1, n / (size_t{participants} * 8));
    task->fn = &fn;
    task->participants = participants;
    task->per_worker_tasks = &per_worker_tasks;
    task->cancel = cancel;

    {
        std::lock_guard<std::mutex> lock(mu_);
        current_ = task;
        ++generation_;
    }
    work_cv_.notify_all();

    {
        std::unique_lock<std::mutex> lock(task->mu);
        task->done_cv.wait(lock, [&]() {
            return task->finished.load(std::memory_order_acquire) ==
                   participants;
        });
    }

    {
        std::lock_guard<std::mutex> lock(mu_);
        current_.reset();
    }

    if (task->failed.load(std::memory_order_acquire))
        std::rethrow_exception(task->error);
}

} // namespace harness
} // namespace gpuscale
