/**
 * @file
 * Keyed sweep cache.
 *
 * A full census sweeps the same (model, kernel, grid) triples over and
 * over: the CLI re-runs the paper grid on every invocation, the T3/T5
 * benches re-sweep identical kernels per iteration, and the A4 noise
 * study re-evaluates the clean baseline for every sigma.  The cache
 * keys a sweep's runtime vector by the model fingerprint, the complete
 * kernel descriptor, and the grid fingerprint, so any repeat is a
 * lookup instead of a recompute.
 *
 * Two layers:
 *  - an in-memory map (process lifetime, bounded FIFO), and
 *  - an optional on-disk directory (setDirectory()), which is what
 *    lets a *second CLI invocation* of the same sweep hit.
 *
 * Doubles round-trip exactly through the disk layer
 * (gpu::serializeRuntimes / parseRuntimes), so a cache hit is bitwise
 * identical to the recompute it replaced.
 *
 * Disk failures never fail a sweep: transient I/O errors retry with
 * backoff (obs/retry.hh), then degrade — a read becomes a counted
 * miss, a write is dropped — and corrupt entries are discarded with a
 * warning (sweep.cache.{corrupt,read.degraded,write.degraded}).  The
 * sweep_cache.disk.{read,write} fault-injection sites test exactly
 * these paths (docs/fault_tolerance.md).
 */

#ifndef GPUSCALE_HARNESS_SWEEP_CACHE_HH
#define GPUSCALE_HARNESS_SWEEP_CACHE_HH

#include <cstddef>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "gpu/config_grid.hh"
#include "gpu/kernel_desc.hh"
#include "gpu/perf_model.hh"

namespace gpuscale {
namespace harness {

/** Process-wide cache of sweep runtime vectors. */
class SweepCache
{
  public:
    /** The process-wide instance the sweep harness consults. */
    static SweepCache &instance();

    /**
     * Cache key for one sweep, or "" when the model declares itself
     * uncacheable (empty fingerprint).  Folds in every KernelDesc
     * field, so two kernels differing in any model input get distinct
     * keys even when their names collide.
     */
    static std::string keyFor(const gpu::PerfModel &model,
                              const gpu::KernelDesc &kernel,
                              const gpu::ConfigGrid &grid);

    /**
     * Look up a sweep.  Checks memory first, then the disk layer (a
     * disk hit is promoted into memory).  An empty key always misses.
     *
     * @return true and fill `runtimes` on a hit.
     */
    bool lookup(const std::string &key, std::vector<double> &runtimes);

    /** Store a sweep; no-op for an empty key. */
    void insert(const std::string &key,
                const std::vector<double> &runtimes);

    /**
     * Attach a disk layer rooted at `dir` (created if missing); an
     * empty string detaches it.  Entries are one file per key, written
     * atomically (temp + rename), so concurrent processes sharing a
     * directory never read torn files.
     */
    void setDirectory(const std::string &dir);

    /** Drop every in-memory entry (the disk layer is untouched). */
    void clear();

    /** In-memory entry count. */
    size_t entries() const;

  private:
    SweepCache() = default;

    bool diskLookup(const std::string &key,
                    std::vector<double> &runtimes);
    void diskInsert(const std::string &key,
                    const std::vector<double> &runtimes);
    std::string diskPath(const std::string &key) const;
    void rememberLocked(const std::string &key,
                        const std::vector<double> &runtimes);

    /**
     * In-memory entries are bounded: a census caches one entry per
     * kernel (267 on the paper suite), so the cap only matters for
     * pathological callers sweeping unbounded kernel populations.
     */
    static constexpr size_t kMaxEntries = 4096;

    // sweepKernels() workers hit the cache concurrently; every
    // field below is tied to the mutex by its guarded_by annotation
    // (enforced by the lock-discipline rule).
    mutable std::mutex mutex_;
    // guarded_by(mutex_)
    std::unordered_map<std::string, std::vector<double>> map_;
    // guarded_by(mutex_)
    std::deque<std::string> fifo_;
    // guarded_by(mutex_)
    std::string dir_;
};

} // namespace harness
} // namespace gpuscale

#endif // GPUSCALE_HARNESS_SWEEP_CACHE_HH
