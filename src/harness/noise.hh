/**
 * @file
 * Measurement-noise injection.
 *
 * Real scaling studies time kernels on hardware, where run-to-run
 * variation (clock ramping, OS interference, DVFS residue) perturbs
 * every sample.  NoisyModel decorates any PerfModel with
 * deterministic, per-(kernel, configuration) multiplicative lognormal
 * noise so the robustness of the taxonomy to measurement error can be
 * studied (experiment A4) and the Irregular class exercised end to
 * end.
 */

#ifndef GPUSCALE_HARNESS_NOISE_HH
#define GPUSCALE_HARNESS_NOISE_HH

#include <cstdint>

#include "gpu/perf_model.hh"

namespace gpuscale {
namespace harness {

/** A PerfModel decorator adding multiplicative lognormal noise. */
class NoisyModel : public gpu::PerfModel
{
  public:
    /**
     * @param inner the model to perturb (not owned; must outlive
     *        this object).
     * @param sigma standard deviation of log-runtime noise; 0.01 is a
     *        well-controlled testbed, 0.05 a noisy shared machine.
     * @param seed noise stream seed; the same (kernel, config, seed)
     *        always yields the same perturbation, so noisy sweeps are
     *        reproducible.
     */
    NoisyModel(const gpu::PerfModel &inner, double sigma,
               uint64_t seed = 1);

    gpu::KernelPerf estimate(const gpu::KernelDesc &kernel,
                             const gpu::GpuConfig &cfg) const override;

    /**
     * Batched walk: the inner model's evaluateGrid() plus the same
     * per-point perturbation as estimate(), so the noisy batched and
     * scalar paths stay bitwise identical too.
     */
    std::vector<gpu::KernelPerf> evaluateGrid(
        const gpu::KernelDesc &kernel,
        const gpu::ConfigGrid &grid) const override;

    /**
     * Runtimes hot path: the inner model's flat vector scaled by the
     * same per-point factor perturb() applies to time_s, preserving
     * the bitwise contract with evaluateGrid() and estimate().
     */
    std::vector<double> evaluateGridRuntimes(
        const gpu::KernelDesc &kernel,
        const gpu::ConfigGrid &grid) const override;

    std::string name() const override;

    /**
     * Noise is deterministic per (kernel, config, seed), so a noisy
     * sweep is cacheable: the inner fingerprint plus sigma and seed
     * (empty whenever the inner model is uncacheable).
     */
    std::string fingerprint() const override;

    double sigma() const { return sigma_; }
    uint64_t seed() const { return seed_; }

  private:
    double noiseFactor(const gpu::KernelDesc &kernel,
                       const gpu::GpuConfig &cfg) const;

    void perturb(const gpu::KernelDesc &kernel,
                 const gpu::GpuConfig &cfg,
                 gpu::KernelPerf &perf) const;

    const gpu::PerfModel &inner_;
    double sigma_;
    uint64_t seed_;
};

} // namespace harness
} // namespace gpuscale

#endif // GPUSCALE_HARNESS_NOISE_HH
