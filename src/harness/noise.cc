/**
 * @file
 * NoisyModel implementation.
 */

#include "noise.hh"

#include <cmath>

#include "base/logging.hh"
#include "base/random.hh"
#include "gpu/gpu_config.hh"
#include "gpu/kernel_desc.hh"

namespace gpuscale {
namespace harness {

namespace {

uint64_t
hashString(const std::string &s, uint64_t h)
{
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

NoisyModel::NoisyModel(const gpu::PerfModel &inner, double sigma,
                       uint64_t seed)
    : inner_(inner), sigma_(sigma), seed_(seed)
{
    fatal_if(sigma < 0, "negative noise sigma %f", sigma);
}

gpu::KernelPerf
NoisyModel::estimate(const gpu::KernelDesc &kernel,
                     const gpu::GpuConfig &cfg) const
{
    gpu::KernelPerf perf = inner_.estimate(kernel, cfg);
    if (sigma_ == 0.0)
        return perf;

    uint64_t h = hashString(kernel.name, 0xcbf29ce484222325ull ^ seed_);
    h = hashString(cfg.id(), h);
    Rng rng(h);
    const double factor = std::exp(rng.normal(0.0, sigma_));
    perf.time_s *= factor;
    perf.kernel_time_s *= factor;
    return perf;
}

std::string
NoisyModel::name() const
{
    return inner_.name() + strprintf("+noise(%.3f)", sigma_);
}

} // namespace harness
} // namespace gpuscale
