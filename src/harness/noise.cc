/**
 * @file
 * NoisyModel implementation.
 */

#include "noise.hh"

#include <cmath>

#include "base/logging.hh"
#include "base/random.hh"
#include "base/string_util.hh"
#include "gpu/gpu_config.hh"
#include "gpu/kernel_desc.hh"

namespace gpuscale {
namespace harness {

namespace {

uint64_t
hashString(const std::string &s, uint64_t h)
{
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

NoisyModel::NoisyModel(const gpu::PerfModel &inner, double sigma,
                       uint64_t seed)
    : inner_(inner), sigma_(sigma), seed_(seed)
{
    fatal_if(sigma < 0, "negative noise sigma %f", sigma);
}

double
NoisyModel::noiseFactor(const gpu::KernelDesc &kernel,
                        const gpu::GpuConfig &cfg) const
{
    uint64_t h = hashString(kernel.name, 0xcbf29ce484222325ull ^ seed_);
    h = hashString(cfg.id(), h);
    Rng rng(h);
    return std::exp(rng.normal(0.0, sigma_));
}

void
NoisyModel::perturb(const gpu::KernelDesc &kernel,
                    const gpu::GpuConfig &cfg,
                    gpu::KernelPerf &perf) const
{
    const double factor = noiseFactor(kernel, cfg);
    perf.time_s *= factor;
    perf.kernel_time_s *= factor;
}

gpu::KernelPerf
NoisyModel::estimate(const gpu::KernelDesc &kernel,
                     const gpu::GpuConfig &cfg) const
{
    gpu::KernelPerf perf = inner_.estimate(kernel, cfg);
    if (sigma_ == 0.0)
        return perf;
    perturb(kernel, cfg, perf);
    return perf;
}

std::vector<gpu::KernelPerf>
NoisyModel::evaluateGrid(const gpu::KernelDesc &kernel,
                         const gpu::ConfigGrid &grid) const
{
    std::vector<gpu::KernelPerf> out = inner_.evaluateGrid(kernel, grid);
    if (sigma_ == 0.0)
        return out;
    for (size_t cu_i = 0; cu_i < grid.numCu(); ++cu_i) {
        for (size_t core_i = 0; core_i < grid.numCoreClk(); ++core_i) {
            for (size_t mem_i = 0; mem_i < grid.numMemClk(); ++mem_i) {
                perturb(kernel, grid.at(cu_i, core_i, mem_i),
                        out[grid.flatten(cu_i, core_i, mem_i)]);
            }
        }
    }
    return out;
}

std::vector<double>
NoisyModel::evaluateGridRuntimes(const gpu::KernelDesc &kernel,
                                 const gpu::ConfigGrid &grid) const
{
    std::vector<double> out =
        inner_.evaluateGridRuntimes(kernel, grid);
    if (sigma_ == 0.0)
        return out;
    for (size_t cu_i = 0; cu_i < grid.numCu(); ++cu_i) {
        for (size_t core_i = 0; core_i < grid.numCoreClk(); ++core_i) {
            for (size_t mem_i = 0; mem_i < grid.numMemClk(); ++mem_i) {
                out[grid.flatten(cu_i, core_i, mem_i)] *= noiseFactor(
                    kernel, grid.at(cu_i, core_i, mem_i));
            }
        }
    }
    return out;
}

std::string
NoisyModel::name() const
{
    return inner_.name() + strprintf("+noise(%.3f)", sigma_);
}

std::string
NoisyModel::fingerprint() const
{
    const std::string inner_fp = inner_.fingerprint();
    if (inner_fp.empty())
        return "";
    return inner_fp + "+noise(" + formatDoubleShortest(sigma_) + "," +
           std::to_string(seed_) + ")";
}

} // namespace harness
} // namespace gpuscale
