/**
 * @file
 * Sparse census driver: the taxonomy census from a sample budget.
 *
 * The dense census (experiment.hh) measures every kernel at every
 * grid point — 267 x 891 model estimates.  This driver instead plans
 * a k-point sample per kernel (scaling::SparsePredictor), measures
 * only those configurations, and reconstructs the rest, producing a
 * full classification census with a confidence column at a fraction
 * of the measurement cost.
 *
 * Harness concerns live here, not in the predictor: model calls, the
 * sweep cache (the sampled points of a (model, kernel, grid, plan)
 * are cache-keyed like full-sweep vectors, so a re-run measures
 * nothing), parallelFor sharding, and telemetry
 * (sparse.samples.count / sparse.fit.latency / sparse.agreement).
 */

#ifndef GPUSCALE_HARNESS_SPARSE_HH
#define GPUSCALE_HARNESS_SPARSE_HH

#include <optional>
#include <vector>

#include "obs/progress.hh"
#include "obs/run_manifest.hh"
#include "scaling/sparse_predictor.hh"
#include "scaling/taxonomy.hh"
#include "sweep.hh"

namespace gpuscale {
namespace harness {

/** What a sparse census measures and how it reconstructs. */
struct SparseCensusOptions {
    /** Configurations measured per kernel. */
    size_t samples = 64;

    /** How the non-anchor budget is spent. */
    scaling::SamplerKind sampler = scaling::SamplerKind::Lhs;

    /** Seed for the sample plans and bootstrap ensembles. */
    uint64_t seed = 0;

    /** Bootstrap ensemble size (bands + confidence). */
    size_t ensemble = 12;
};

/** Sparse-census result: one reconstruction per zoo kernel. */
struct SparseCensusResult {
    scaling::ConfigSpace space;
    SparseCensusOptions options;

    /** Per-kernel reconstructions, in zoo order. */
    std::vector<scaling::SparseReconstruction> reconstructions;

    /**
     * The reconstructions' classifications, in the same order — the
     * shape existing report/analysis code consumes.
     */
    std::vector<scaling::KernelClassification> classifications;
};

/**
 * Measure one kernel's sample plan (through the sweep cache) and
 * reconstruct its surface.  The measured (index, runtime) set is
 * cached under the full-sweep key plus a plan suffix, so repeated
 * sparse runs — and the accuracy bench's budget curves — only pay
 * for the model once per (kernel, plan).
 */
scaling::SparseReconstruction sparseSweepKernel(
    const gpu::PerfModel &model, const gpu::KernelDesc &kernel,
    const scaling::SparsePredictor &predictor,
    const SparseCensusOptions &options,
    const scaling::TaxonomyParams &params = scaling::TaxonomyParams{});

/**
 * Run the sparse census over all zoo kernels: plan, measure, and
 * reconstruct each kernel, sharded over the worker pool exactly like
 * the dense sweepKernels().
 *
 * @param space grid to reconstruct (defaults to the paper grid).
 * @param progress optional reporter ticked once per kernel.
 */
SparseCensusResult runSparseCensus(
    const gpu::PerfModel &model,
    std::optional<scaling::ConfigSpace> space = std::nullopt,
    const SparseCensusOptions &options = SparseCensusOptions{},
    const scaling::TaxonomyParams &params = scaling::TaxonomyParams{},
    obs::ProgressReporter *progress = nullptr);

/**
 * Start a run manifest for a sparse census (model, kernel/grid
 * counts, axes) with the sparse extras — sampler, per-kernel budget,
 * seed — in the extras map.
 */
obs::RunManifest sparseCensusManifest(const SparseCensusResult &census,
                                      const gpu::PerfModel &model);

/**
 * Fraction of kernels whose sparse class matches the dense census's,
 * by kernel name; kernels absent from `dense` are ignored.  The
 * accuracy gate's statistic.
 */
double sparseAgreement(
    const SparseCensusResult &sparse,
    const std::vector<scaling::KernelClassification> &dense);

} // namespace harness
} // namespace gpuscale

#endif // GPUSCALE_HARNESS_SPARSE_HH
