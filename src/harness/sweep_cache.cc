/**
 * @file
 * SweepCache implementation.
 *
 * The disk layer is where real deployments hurt: shared filesystems
 * time out, files get truncated by full disks, and entries corrupt.
 * All disk traffic therefore flows through the obs retry policy
 * (transient failures back off and re-attempt) and then *degrades* —
 * a read becomes a miss, a write is skipped — with a counted warning,
 * never an abort.  The sweep_cache.disk.{read,write} fault-injection
 * sites stand in for the real failures in tests.
 */

#include "sweep_cache.hh"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "base/fault.hh"
#include "base/logging.hh"
#include "base/string_util.hh"
#include "gpu/perf_result.hh"
#include "obs/fault_telemetry.hh"
#include "obs/metrics.hh"
#include "obs/retry.hh"

namespace gpuscale {
namespace harness {

namespace {

constexpr char kFileMagic[] = "gpuscale-sweep-cache-v2";

/** Cached instrument references for the cache hot path. */
struct CacheMetrics {
    obs::Counter &hits;
    obs::Counter &misses;
    obs::Counter &disk_hits;
    obs::Counter &disk_writes;
    obs::Counter &corrupt;
    obs::Counter &read_degraded;
    obs::Counter &write_degraded;
    obs::Gauge &entries;

    static CacheMetrics &
    get()
    {
        static CacheMetrics m{
            obs::Registry::instance().counter(
                "sweep.cache.hits", "sweep-cache lookups served"),
            obs::Registry::instance().counter(
                "sweep.cache.misses", "sweep-cache lookups recomputed"),
            obs::Registry::instance().counter(
                "sweep.cache.disk.hits",
                "sweep-cache hits served from the disk layer"),
            obs::Registry::instance().counter(
                "sweep.cache.disk.writes",
                "sweep-cache entries persisted to disk"),
            obs::Registry::instance().counter(
                "sweep.cache.corrupt",
                "corrupt disk entries discarded (degraded to miss)"),
            obs::Registry::instance().counter(
                "sweep.cache.read.degraded",
                "disk reads that exhausted retries (served as miss)"),
            obs::Registry::instance().counter(
                "sweep.cache.write.degraded",
                "disk writes that exhausted retries (entry dropped)"),
            obs::Registry::instance().gauge(
                "sweep.cache.entries", "in-memory sweep-cache entries"),
        };
        return m;
    }
};

uint64_t
fnv1a(const std::string &s)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

void
appendDouble(std::string &out, double v)
{
    out += formatDoubleShortest(v);
    out += ';';
}

/** One disk-read attempt's outcome. */
enum class ReadResult {
    Hit,       ///< entry read and verified
    Miss,      ///< absent, or a filename-hash collision
    Corrupt,   ///< present but unparseable — deterministic, no retry
    Transient, ///< I/O failure — retryable
};

/**
 * Read and verify one entry file.  Injected I/O faults
 * (sweep_cache.disk.read) surface as Transient so the retry policy
 * exercises the same path a flaky filesystem would.
 */
ReadResult
readEntry(const std::string &path, const std::string &key,
          std::vector<double> &runtimes)
{
    if (faultPoint("sweep_cache.disk.read"))
        return ReadResult::Transient;

    std::ifstream is(path);
    if (!is)
        return ReadResult::Miss;

    std::string magic, stored_key, payload;
    if (!std::getline(is, magic) || magic != kFileMagic)
        return ReadResult::Corrupt;
    // The full key is stored and compared, so a 64-bit filename-hash
    // collision degrades to a miss, never to wrong data.
    if (!std::getline(is, stored_key))
        return ReadResult::Corrupt;
    if (stored_key != key)
        return ReadResult::Miss;
    if (!std::getline(is, payload))
        return ReadResult::Corrupt;
    std::optional<std::vector<double>> values =
        gpu::parseRuntimes(payload);
    if (!values)
        return ReadResult::Corrupt;
    runtimes = std::move(*values);
    return ReadResult::Hit;
}

} // namespace

SweepCache &
SweepCache::instance()
{
    static SweepCache cache;
    return cache;
}

std::string
SweepCache::keyFor(const gpu::PerfModel &model,
                   const gpu::KernelDesc &kernel,
                   const gpu::ConfigGrid &grid)
{
    const std::string model_fp = model.fingerprint();
    if (model_fp.empty())
        return "";

    std::string key = "model=";
    key += model_fp;
    key += "|kernel=";
    key += kernel.name;
    key += ';';
    // Every descriptor field is a model input, so every field is part
    // of the identity — including ones only some models read.
    key += std::to_string(kernel.num_workgroups);
    key += ';';
    key += std::to_string(kernel.work_items_per_wg);
    key += ';';
    key += std::to_string(kernel.launches);
    key += ';';
    appendDouble(key, kernel.valu_ops);
    appendDouble(key, kernel.salu_ops_per_wave);
    appendDouble(key, kernel.sfu_ops);
    appendDouble(key, kernel.mem_loads);
    appendDouble(key, kernel.mem_stores);
    appendDouble(key, kernel.bytes_per_access);
    appendDouble(key, kernel.coalescing);
    appendDouble(key, kernel.lds_ops);
    appendDouble(key, kernel.lds_bytes_per_wg);
    key += std::to_string(kernel.vgprs);
    key += ';';
    appendDouble(key, kernel.branch_divergence);
    appendDouble(key, kernel.barriers);
    appendDouble(key, kernel.l1_reuse);
    appendDouble(key, kernel.l2_reuse);
    appendDouble(key, kernel.footprint_bytes_per_wg);
    appendDouble(key, kernel.shared_footprint_bytes);
    appendDouble(key, kernel.mlp);
    appendDouble(key, kernel.serial_fraction);
    appendDouble(key, kernel.atomic_ops);
    appendDouble(key, kernel.atomic_contention);
    appendDouble(key, kernel.host_overhead_us);
    key += "|";
    key += grid.fingerprint();
    return key;
}

bool
SweepCache::lookup(const std::string &key, std::vector<double> &runtimes)
{
    CacheMetrics &metrics = CacheMetrics::get();
    if (key.empty()) {
        metrics.misses.inc();
        return false;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = map_.find(key);
        if (it != map_.end()) {
            runtimes = it->second;
            metrics.hits.inc();
            return true;
        }
    }

    if (diskLookup(key, runtimes)) {
        std::lock_guard<std::mutex> lock(mutex_);
        rememberLocked(key, runtimes);
        metrics.hits.inc();
        metrics.disk_hits.inc();
        return true;
    }

    metrics.misses.inc();
    return false;
}

void
SweepCache::insert(const std::string &key,
                   const std::vector<double> &runtimes)
{
    if (key.empty())
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        rememberLocked(key, runtimes);
    }
    diskInsert(key, runtimes);
}

void
SweepCache::rememberLocked(const std::string &key,
                           const std::vector<double> &runtimes)
{
    auto it = map_.find(key);
    if (it != map_.end()) {
        it->second = runtimes;
        return;
    }
    while (map_.size() >= kMaxEntries) {
        map_.erase(fifo_.front());
        fifo_.pop_front();
    }
    map_.emplace(key, runtimes);
    fifo_.push_back(key);
    CacheMetrics::get().entries.set(static_cast<double>(map_.size()));
}

void
SweepCache::setDirectory(const std::string &dir)
{
    if (!dir.empty()) {
        if (faultPoint("sweep_cache.dir")) {
            warn("sweep cache: cannot create %s; disk tier "
                 "disabled",
                 dir.c_str());
            obs::noteDegradation("sweep_cache.dir");
            std::lock_guard<std::mutex> lock(mutex_);
            dir_.clear();
            return;
        }
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        fatal_if(ec, "cannot create sweep-cache directory %s: %s",
                 dir.c_str(), ec.message().c_str());
    }
    std::lock_guard<std::mutex> lock(mutex_);
    dir_ = dir;
}

void
SweepCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    fifo_.clear();
    CacheMetrics::get().entries.set(0.0);
}

size_t
SweepCache::entries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
}

std::string
SweepCache::diskPath(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (dir_.empty())
        return "";
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.sweep",
                  static_cast<unsigned long long>(fnv1a(key)));
    return dir_ + "/" + name;
}

bool
SweepCache::diskLookup(const std::string &key,
                       std::vector<double> &runtimes)
{
    const std::string path = diskPath(key);
    if (path.empty())
        return false;

    CacheMetrics &metrics = CacheMetrics::get();
    ReadResult result = ReadResult::Miss;
    const bool settled = obs::retryWithBackoff(
        obs::retryPolicy(), "sweep-cache disk read", [&] {
            result = readEntry(path, key, runtimes);
            return result != ReadResult::Transient;
        });
    if (!settled) {
        // Retries exhausted on transient faults: the entry may be
        // fine, but a census that waits on a broken disk is worse
        // than one that recomputes 891 points.
        metrics.read_degraded.inc();
        obs::noteDegradation("sweep_cache.disk.read");
        return false;
    }
    if (result == ReadResult::Corrupt) {
        warn("sweep-cache: corrupt entry %s; discarding it",
             path.c_str());
        metrics.corrupt.inc();
        obs::noteDegradation("sweep_cache.corrupt");
        // Self-heal: the recompute's insert() rewrites the entry;
        // removing the carcass now keeps a permanently-bad file from
        // warning on every lookup if that write also fails.
        std::remove(path.c_str());
        return false;
    }
    return result == ReadResult::Hit;
}

void
SweepCache::diskInsert(const std::string &key,
                       const std::vector<double> &runtimes)
{
    const std::string path = diskPath(key);
    if (path.empty())
        return;

    CacheMetrics &metrics = CacheMetrics::get();
    // The staging name must be unique per writer: two processes
    // sharing a cache directory and racing on the same key would
    // otherwise interleave writes into one "<path>.tmp" file and
    // rename a torn entry into place.  pid + a process-local counter
    // keeps every writer (and every retry) on its own file, so the
    // rename is the only shared step — and rename is atomic, so the
    // survivor is always one writer's complete entry.
    static std::atomic<uint64_t> tmp_serial{0};
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(tmp_serial.fetch_add(1));
    const bool ok = obs::retryWithBackoff(
        obs::retryPolicy(), "sweep-cache disk write", [&] {
            if (faultPoint("sweep_cache.disk.write"))
                return false;
            {
                std::ofstream os(tmp);
                if (!os)
                    return false;
                os << kFileMagic << '\n'
                   << key << '\n'
                   << gpu::serializeRuntimes(runtimes) << '\n';
                if (!os)
                    return false;
            }
            if (std::rename(tmp.c_str(), path.c_str()) != 0) {
                std::remove(tmp.c_str());
                return false;
            }
            return true;
        });
    if (!ok) {
        // The result lives on in memory; only cross-process reuse is
        // lost.
        warn("sweep-cache: giving up writing %s", path.c_str());
        metrics.write_degraded.inc();
        obs::noteDegradation("sweep_cache.disk.write");
        return;
    }
    metrics.disk_writes.inc();
}

} // namespace harness
} // namespace gpuscale
