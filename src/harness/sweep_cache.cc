/**
 * @file
 * SweepCache implementation.
 */

#include "sweep_cache.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "base/logging.hh"
#include "base/string_util.hh"
#include "obs/metrics.hh"

namespace gpuscale {
namespace harness {

namespace {

constexpr char kFileMagic[] = "gpuscale-sweep-cache-v1";

/** Cached instrument references for the cache hot path. */
struct CacheMetrics {
    obs::Counter &hits;
    obs::Counter &misses;
    obs::Counter &disk_hits;
    obs::Counter &disk_writes;
    obs::Gauge &entries;

    static CacheMetrics &
    get()
    {
        static CacheMetrics m{
            obs::Registry::instance().counter(
                "sweep.cache.hits", "sweep-cache lookups served"),
            obs::Registry::instance().counter(
                "sweep.cache.misses", "sweep-cache lookups recomputed"),
            obs::Registry::instance().counter(
                "sweep.cache.disk.hits",
                "sweep-cache hits served from the disk layer"),
            obs::Registry::instance().counter(
                "sweep.cache.disk.writes",
                "sweep-cache entries persisted to disk"),
            obs::Registry::instance().gauge(
                "sweep.cache.entries", "in-memory sweep-cache entries"),
        };
        return m;
    }
};

uint64_t
fnv1a(const std::string &s)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

void
appendDouble(std::string &out, double v)
{
    out += formatDoubleShortest(v);
    out += ';';
}

} // namespace

SweepCache &
SweepCache::instance()
{
    static SweepCache cache;
    return cache;
}

std::string
SweepCache::keyFor(const gpu::PerfModel &model,
                   const gpu::KernelDesc &kernel,
                   const gpu::ConfigGrid &grid)
{
    const std::string model_fp = model.fingerprint();
    if (model_fp.empty())
        return "";

    std::string key = "model=";
    key += model_fp;
    key += "|kernel=";
    key += kernel.name;
    key += ';';
    // Every descriptor field is a model input, so every field is part
    // of the identity — including ones only some models read.
    key += std::to_string(kernel.num_workgroups);
    key += ';';
    key += std::to_string(kernel.work_items_per_wg);
    key += ';';
    key += std::to_string(kernel.launches);
    key += ';';
    appendDouble(key, kernel.valu_ops);
    appendDouble(key, kernel.salu_ops_per_wave);
    appendDouble(key, kernel.sfu_ops);
    appendDouble(key, kernel.mem_loads);
    appendDouble(key, kernel.mem_stores);
    appendDouble(key, kernel.bytes_per_access);
    appendDouble(key, kernel.coalescing);
    appendDouble(key, kernel.lds_ops);
    appendDouble(key, kernel.lds_bytes_per_wg);
    key += std::to_string(kernel.vgprs);
    key += ';';
    appendDouble(key, kernel.branch_divergence);
    appendDouble(key, kernel.barriers);
    appendDouble(key, kernel.l1_reuse);
    appendDouble(key, kernel.l2_reuse);
    appendDouble(key, kernel.footprint_bytes_per_wg);
    appendDouble(key, kernel.shared_footprint_bytes);
    appendDouble(key, kernel.mlp);
    appendDouble(key, kernel.serial_fraction);
    appendDouble(key, kernel.atomic_ops);
    appendDouble(key, kernel.atomic_contention);
    appendDouble(key, kernel.host_overhead_us);
    key += "|";
    key += grid.fingerprint();
    return key;
}

bool
SweepCache::lookup(const std::string &key, std::vector<double> &runtimes)
{
    CacheMetrics &metrics = CacheMetrics::get();
    if (key.empty()) {
        metrics.misses.inc();
        return false;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = map_.find(key);
        if (it != map_.end()) {
            runtimes = it->second;
            metrics.hits.inc();
            return true;
        }
    }

    if (diskLookup(key, runtimes)) {
        std::lock_guard<std::mutex> lock(mutex_);
        rememberLocked(key, runtimes);
        metrics.hits.inc();
        metrics.disk_hits.inc();
        return true;
    }

    metrics.misses.inc();
    return false;
}

void
SweepCache::insert(const std::string &key,
                   const std::vector<double> &runtimes)
{
    if (key.empty())
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        rememberLocked(key, runtimes);
    }
    diskInsert(key, runtimes);
}

void
SweepCache::rememberLocked(const std::string &key,
                           const std::vector<double> &runtimes)
{
    auto it = map_.find(key);
    if (it != map_.end()) {
        it->second = runtimes;
        return;
    }
    while (map_.size() >= kMaxEntries) {
        map_.erase(fifo_.front());
        fifo_.pop_front();
    }
    map_.emplace(key, runtimes);
    fifo_.push_back(key);
    CacheMetrics::get().entries.set(static_cast<double>(map_.size()));
}

void
SweepCache::setDirectory(const std::string &dir)
{
    if (!dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        fatal_if(ec, "cannot create sweep-cache directory %s: %s",
                 dir.c_str(), ec.message().c_str());
    }
    std::lock_guard<std::mutex> lock(mutex_);
    dir_ = dir;
}

void
SweepCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    fifo_.clear();
    CacheMetrics::get().entries.set(0.0);
}

size_t
SweepCache::entries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
}

std::string
SweepCache::diskPath(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (dir_.empty())
        return "";
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.sweep",
                  static_cast<unsigned long long>(fnv1a(key)));
    return dir_ + "/" + name;
}

bool
SweepCache::diskLookup(const std::string &key,
                       std::vector<double> &runtimes)
{
    const std::string path = diskPath(key);
    if (path.empty())
        return false;

    std::ifstream is(path);
    if (!is)
        return false;

    std::string magic, stored_key, count_line;
    if (!std::getline(is, magic) || magic != kFileMagic)
        return false;
    // The full key is stored and compared, so a 64-bit filename-hash
    // collision degrades to a miss, never to wrong data.
    if (!std::getline(is, stored_key) || stored_key != key)
        return false;
    if (!std::getline(is, count_line))
        return false;
    const std::optional<double> count = parseDouble(count_line);
    if (!count || *count < 0)
        return false;

    std::vector<double> values;
    values.reserve(static_cast<size_t>(*count));
    std::string line;
    while (std::getline(is, line)) {
        const std::optional<double> v = parseDouble(line);
        if (!v)
            return false;
        values.push_back(*v);
    }
    if (values.size() != static_cast<size_t>(*count))
        return false;
    runtimes = std::move(values);
    return true;
}

void
SweepCache::diskInsert(const std::string &key,
                       const std::vector<double> &runtimes)
{
    const std::string path = diskPath(key);
    if (path.empty())
        return;

    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp);
        if (!os) {
            warn("sweep-cache: cannot write %s", tmp.c_str());
            return;
        }
        os << kFileMagic << '\n' << key << '\n'
           << runtimes.size() << '\n';
        for (const double v : runtimes)
            os << formatDoubleShortest(v) << '\n';
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("sweep-cache: cannot rename %s", tmp.c_str());
        std::remove(tmp.c_str());
        return;
    }
    CacheMetrics::get().disk_writes.inc();
}

} // namespace harness
} // namespace gpuscale
