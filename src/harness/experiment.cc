/**
 * @file
 * Experiment driver implementation.
 */

#include "experiment.hh"

#include <map>
#include <thread>

#include "base/logging.hh"
#include "obs/trace.hh"
#include "workloads/registry.hh"

namespace gpuscale {
namespace harness {

CensusResult
runCensus(const gpu::PerfModel &model,
          std::optional<scaling::ConfigSpace> space,
          const scaling::TaxonomyParams &params,
          obs::ProgressReporter *progress, CensusJournal *journal,
          const CancelToken *cancel)
{
    GPUSCALE_TRACE_SCOPE("census");
    CensusResult census{
        space.value_or(scaling::ConfigSpace::paperGrid()), {}, {}};

    const auto kernels = workloads::WorkloadRegistry::instance()
                             .allKernels();
    debuglog("census: %zu kernels x %zu configs with model '%s'",
             kernels.size(), census.space.size(),
             model.name().c_str());
    census.surfaces = sweepKernels(model, kernels, census.space,
                                   progress, journal, cancel);
    {
        GPUSCALE_TRACE_SCOPE("census.classify");
        census.classifications =
            scaling::classifyAll(census.surfaces, params);
    }
    return census;
}

obs::RunManifest
censusManifest(const CensusResult &census, const gpu::PerfModel &model)
{
    obs::RunManifest m;
    m.command = "census";
    m.model = model.name();
    m.threads = std::thread::hardware_concurrency();
    m.num_kernels = census.surfaces.size();
    m.num_configs = census.space.size();
    m.num_estimates = census.surfaces.size() * census.space.size();
    m.cu_values = census.space.cuValues();
    m.core_clks_mhz = census.space.coreClks();
    m.mem_clks_mhz = census.space.memClks();
    return m;
}

std::vector<const scaling::KernelClassification *>
representativesPerClass(const CensusResult &census)
{
    std::map<scaling::TaxonomyClass,
             const scaling::KernelClassification *> best;
    for (const auto &c : census.classifications) {
        auto it = best.find(c.cls);
        if (it == best.end() || c.perf_range > it->second->perf_range)
            best[c.cls] = &c;
    }

    std::vector<const scaling::KernelClassification *> out;
    for (const auto cls : scaling::allTaxonomyClasses()) {
        auto it = best.find(cls);
        if (it != best.end())
            out.push_back(it->second);
    }
    return out;
}

const scaling::KernelClassification *
findClassification(const CensusResult &census, const std::string &kernel)
{
    for (const auto &c : census.classifications) {
        if (c.kernel == kernel)
            return &c;
    }
    return nullptr;
}

const scaling::ScalingSurface *
findSurface(const CensusResult &census, const std::string &kernel)
{
    for (const auto &surface : census.surfaces) {
        if (surface.kernelName() == kernel)
            return &surface;
    }
    return nullptr;
}

} // namespace harness
} // namespace gpuscale
