/**
 * @file
 * Experiment driver implementation.
 */

#include "experiment.hh"

#include <map>

#include "workloads/registry.hh"

namespace gpuscale {
namespace harness {

CensusResult
runCensus(const gpu::PerfModel &model,
          std::optional<scaling::ConfigSpace> space,
          const scaling::TaxonomyParams &params)
{
    CensusResult census{
        space.value_or(scaling::ConfigSpace::paperGrid()), {}, {}};

    const auto kernels = workloads::WorkloadRegistry::instance()
                             .allKernels();
    census.surfaces = sweepKernels(model, kernels, census.space);
    census.classifications =
        scaling::classifyAll(census.surfaces, params);
    return census;
}

std::vector<const scaling::KernelClassification *>
representativesPerClass(const CensusResult &census)
{
    std::map<scaling::TaxonomyClass,
             const scaling::KernelClassification *> best;
    for (const auto &c : census.classifications) {
        auto it = best.find(c.cls);
        if (it == best.end() || c.perf_range > it->second->perf_range)
            best[c.cls] = &c;
    }

    std::vector<const scaling::KernelClassification *> out;
    for (const auto cls : scaling::allTaxonomyClasses()) {
        auto it = best.find(cls);
        if (it != best.end())
            out.push_back(it->second);
    }
    return out;
}

const scaling::KernelClassification *
findClassification(const CensusResult &census, const std::string &kernel)
{
    for (const auto &c : census.classifications) {
        if (c.kernel == kernel)
            return &c;
    }
    return nullptr;
}

const scaling::ScalingSurface *
findSurface(const CensusResult &census, const std::string &kernel)
{
    for (const auto &surface : census.surfaces) {
        if (surface.kernelName() == kernel)
            return &surface;
    }
    return nullptr;
}

} // namespace harness
} // namespace gpuscale
