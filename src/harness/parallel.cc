/**
 * @file
 * parallelFor implementation.
 *
 * The heavy lifting lives in ThreadPool (thread_pool.hh): persistent
 * workers, chunked index dispensing, and caller-thread exception
 * propagation.  This translation unit keeps the stable parallelFor()
 * entry point and owns its telemetry.
 */

#include "parallel.hh"

#include <algorithm>
#include <thread>
#include <vector>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "thread_pool.hh"

namespace gpuscale {
namespace harness {

namespace {

/** Cached instrument references; registry lookups happen once. */
struct ParallelMetrics {
    obs::Counter &invocations;
    obs::Counter &tasks;
    obs::Gauge &workers_gauge;
    obs::Gauge &imbalance;
    obs::Gauge &pool_size;
    obs::Gauge &pool_utilization;

    static ParallelMetrics &
    get()
    {
        static ParallelMetrics m{
            obs::Registry::instance().counter(
                "parallel.invocations", "parallelFor calls"),
            obs::Registry::instance().counter(
                "parallel.tasks", "loop indices executed"),
            obs::Registry::instance().gauge(
                "parallel.workers", "worker threads in the last call"),
            obs::Registry::instance().gauge(
                "parallel.worker.imbalance",
                "last call's max worker load over the ideal share"),
            obs::Registry::instance().gauge(
                "parallel.pool.size",
                "persistent pool worker threads alive"),
            obs::Registry::instance().gauge(
                "parallel.pool.utilization",
                "last call's participating workers over the pool size"),
        };
        return m;
    }
};

} // namespace

void
parallelFor(size_t n, const std::function<void(size_t)> &fn,
            unsigned max_threads, const CancelToken *cancel)
{
    if (n == 0)
        return;

    ParallelMetrics &metrics = ParallelMetrics::get();
    metrics.invocations.inc();
    metrics.tasks.inc(n);

    unsigned workers = max_threads != 0
                           ? max_threads
                           : std::thread::hardware_concurrency();
    if (workers == 0)
        workers = 1;
    workers = static_cast<unsigned>(
        std::min<size_t>(workers, n));

    // Nested calls (fn itself calling parallelFor from a pool worker)
    // degrade to the serial path: a nested pool region would queue
    // behind — and deadlock with — its own enclosing call.
    if (workers <= 1 || ThreadPool::onWorkerThread()) {
        metrics.workers_gauge.set(1.0);
        GPUSCALE_TRACE_SCOPE("parallel_for.serial");
        // Poll the token every 64 indices: frequent enough for
        // request-deadline granularity, cheap enough that the clock
        // read stays invisible next to the work items.
        for (size_t i = 0; i < n; ++i) {
            if (cancel != nullptr && (i & 63) == 0 && cancel->expired())
                throw CancelledError(
                    "parallel region cancelled (drain or deadline)");
            fn(i);
        }
        metrics.imbalance.set(1.0);
        return;
    }

    ThreadPool &pool = ThreadPool::instance();
    const unsigned available = pool.ensure(workers);
    const unsigned participants = std::min(workers, available);
    metrics.workers_gauge.set(participants);
    metrics.pool_size.set(available);
    metrics.pool_utilization.set(static_cast<double>(participants) /
                                 static_cast<double>(available));

    // Rethrows the first worker exception after draining the region;
    // the imbalance gauge keeps its previous value in that case.
    std::vector<uint64_t> per_worker_tasks;
    pool.run(n, fn, participants, per_worker_tasks, cancel);

    // Imbalance: busiest worker's task count over the ideal n/workers
    // share.  1.0 is perfect; chunked dynamic dispensing keeps this
    // near 1 unless per-task cost varies wildly.
    const uint64_t busiest = *std::max_element(per_worker_tasks.begin(),
                                               per_worker_tasks.end());
    const double ideal =
        static_cast<double>(n) / static_cast<double>(participants);
    metrics.imbalance.set(static_cast<double>(busiest) / ideal);
}

} // namespace harness
} // namespace gpuscale
