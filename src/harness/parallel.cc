/**
 * @file
 * parallelFor implementation.
 */

#include "parallel.hh"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace gpuscale {
namespace harness {

namespace {

/** Cached instrument references; registry lookups happen once. */
struct ParallelMetrics {
    obs::Counter &invocations;
    obs::Counter &tasks;
    obs::Gauge &workers_gauge;
    obs::Gauge &imbalance;

    static ParallelMetrics &
    get()
    {
        static ParallelMetrics m{
            obs::Registry::instance().counter(
                "parallel.invocations", "parallelFor calls"),
            obs::Registry::instance().counter(
                "parallel.tasks", "loop indices executed"),
            obs::Registry::instance().gauge(
                "parallel.workers", "worker threads in the last call"),
            obs::Registry::instance().gauge(
                "parallel.worker.imbalance",
                "last call's max worker load over the ideal share"),
        };
        return m;
    }
};

} // namespace

void
parallelFor(size_t n, const std::function<void(size_t)> &fn,
            unsigned max_threads)
{
    if (n == 0)
        return;

    ParallelMetrics &metrics = ParallelMetrics::get();
    metrics.invocations.inc();
    metrics.tasks.inc(n);

    unsigned workers = max_threads != 0
                           ? max_threads
                           : std::thread::hardware_concurrency();
    if (workers == 0)
        workers = 1;
    workers = static_cast<unsigned>(
        std::min<size_t>(workers, n));
    metrics.workers_gauge.set(workers);

    if (workers <= 1) {
        GPUSCALE_TRACE_SCOPE("parallelFor.serial");
        for (size_t i = 0; i < n; ++i)
            fn(i);
        metrics.imbalance.set(1.0);
        return;
    }

    std::atomic<size_t> next{0};
    std::vector<uint64_t> per_worker_tasks(workers, 0);
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        threads.emplace_back([&, w]() {
            GPUSCALE_TRACE_SCOPE("parallelFor.worker");
            uint64_t done = 0;
            while (true) {
                const size_t i = next.fetch_add(1);
                if (i >= n)
                    break;
                fn(i);
                ++done;
            }
            per_worker_tasks[w] = done;
        });
    }
    for (auto &t : threads)
        t.join();

    // Imbalance: busiest worker's task count over the ideal n/workers
    // share.  1.0 is perfect; the dynamic next-index queue keeps this
    // near 1 unless per-task cost varies wildly.
    const uint64_t busiest = *std::max_element(per_worker_tasks.begin(),
                                               per_worker_tasks.end());
    const double ideal =
        static_cast<double>(n) / static_cast<double>(workers);
    metrics.imbalance.set(static_cast<double>(busiest) / ideal);
}

} // namespace harness
} // namespace gpuscale
