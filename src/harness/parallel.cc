/**
 * @file
 * parallelFor implementation.
 */

#include "parallel.hh"

#include <atomic>
#include <thread>
#include <vector>

namespace gpuscale {
namespace harness {

void
parallelFor(size_t n, const std::function<void(size_t)> &fn,
            unsigned max_threads)
{
    if (n == 0)
        return;

    unsigned workers = max_threads != 0
                           ? max_threads
                           : std::thread::hardware_concurrency();
    if (workers == 0)
        workers = 1;
    workers = static_cast<unsigned>(
        std::min<size_t>(workers, n));

    if (workers <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<size_t> next{0};
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        threads.emplace_back([&]() {
            while (true) {
                const size_t i = next.fetch_add(1);
                if (i >= n)
                    return;
                fn(i);
            }
        });
    }
    for (auto &t : threads)
        t.join();
}

} // namespace harness
} // namespace gpuscale
