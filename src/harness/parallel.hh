/**
 * @file
 * Minimal data-parallel helper for sweeps.
 *
 * parallelFor() partitions [0, n) across worker threads.  The work
 * function must be safe to call concurrently on distinct indices;
 * results should be written to pre-sized per-index slots.  On a
 * single-core host this degrades to a plain loop.
 */

#ifndef GPUSCALE_HARNESS_PARALLEL_HH
#define GPUSCALE_HARNESS_PARALLEL_HH

#include <cstddef>
#include <functional>

namespace gpuscale {
namespace harness {

/**
 * Run fn(i) for every i in [0, n), using up to max_threads workers
 * (0 = hardware concurrency).
 */
void parallelFor(size_t n, const std::function<void(size_t)> &fn,
                 unsigned max_threads = 0);

} // namespace harness
} // namespace gpuscale

#endif // GPUSCALE_HARNESS_PARALLEL_HH
