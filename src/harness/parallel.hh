/**
 * @file
 * Minimal data-parallel helper for sweeps.
 *
 * parallelFor() partitions [0, n) across the persistent worker pool
 * (thread_pool.hh): workers are created once and reused across
 * calls, and indices are dispensed in contiguous chunks.  The work
 * function must be safe to call concurrently on distinct indices;
 * results should be written to pre-sized per-index slots.  On a
 * single-core host this degrades to a plain loop.
 *
 * Exception safety: if fn throws, the first exception is rethrown on
 * the calling thread after the region quiesces — indices not yet
 * dispensed are abandoned, so one bad work item fails the call with
 * diagnostics instead of std::terminate'ing the process.
 */

#ifndef GPUSCALE_HARNESS_PARALLEL_HH
#define GPUSCALE_HARNESS_PARALLEL_HH

#include <cstddef>
#include <functional>

#include "harness/cancel.hh"

namespace gpuscale {
namespace harness {

/**
 * Run fn(i) for every i in [0, n), using up to max_threads workers
 * (0 = hardware concurrency).  Rethrows the first exception any
 * fn(i) raised once the remaining work has been drained.
 *
 * A non-null `cancel` token is polled cooperatively — once per
 * dispensed chunk on the pool path, every few indices on the serial
 * path.  An expired token aborts the region with CancelledError
 * (cancel.hh); completed indices keep their results, undispensed
 * indices are abandoned.  The token must outlive the call.
 */
void parallelFor(size_t n, const std::function<void(size_t)> &fn,
                 unsigned max_threads = 0,
                 const CancelToken *cancel = nullptr);

} // namespace harness
} // namespace gpuscale

#endif // GPUSCALE_HARNESS_PARALLEL_HH
