/**
 * @file
 * Bounded retry with jittered exponential backoff.
 *
 * Transient I/O faults (a busy NFS server, an injected
 * FaultKind::IoError) deserve a few re-attempts before the caller
 * degrades; deterministic failures (corrupt data) do not and must not
 * go through here.  The helper owns the loop, the sleep schedule, and
 * the retry.{attempts,exhausted} accounting, so every call site
 * degrades the same observable way.
 *
 * Backoff is exponential with multiplicative jitter: attempt k sleeps
 * base * multiplier^k milliseconds, capped at max_backoff_ms and then
 * scaled by a uniform factor in [1-jitter, 1+jitter] so a herd of
 * workers retrying the same broken disk does not stampede in phase.
 */

#ifndef GPUSCALE_OBS_RETRY_HH
#define GPUSCALE_OBS_RETRY_HH

#include <chrono>
#include <functional>

namespace gpuscale {
namespace obs {

/** Retry schedule knobs. */
struct RetryPolicy {
    int max_attempts = 3;        ///< total tries, including the first
    double base_backoff_ms = 1.0;
    double multiplier = 4.0;
    double max_backoff_ms = 50.0;
    double jitter = 0.5;         ///< +- fraction applied to each sleep

    /**
     * The built-in defaults overridden by
     * GPUSCALE_RETRY="attempts[:base_ms[:max_ms]]".  A malformed
     * value warns and keeps the defaults — retry tuning is advisory,
     * unlike GPUSCALE_FAULTS which must parse or exit.
     */
    static RetryPolicy fromEnv();
};

/**
 * The process-wide policy the harness I/O paths consult.  Initialized
 * lazily from fromEnv(); setRetryPolicy() overrides it (tests use
 * max_attempts=1 to make every injected fault exhaust immediately).
 */
RetryPolicy retryPolicy();
void setRetryPolicy(const RetryPolicy &policy);

/**
 * Run op() until it returns true or the policy's attempts run out.
 * Counts each re-attempt in retry.attempts and a final failure in
 * retry.exhausted.  Exceptions from op() propagate immediately — a
 * throwing operation is a crash under test, not a transient.
 *
 * @param what short label for the warn() on exhaustion.
 * @return true when some attempt succeeded.
 */
bool retryWithBackoff(const RetryPolicy &policy, const char *what,
                      const std::function<bool()> &op);

/**
 * Deadline-capped variant: the total elapsed budget binds as well as
 * the attempt count.  The first attempt always runs (even with the
 * deadline already past — a dead request still deserves one try so a
 * healthy operation is never skipped outright); re-attempts run only
 * while time remains, and each backoff sleep is clipped to the
 * remaining budget so the loop can never overshoot the deadline by
 * more than one op() call.  A loop ended by the clock rather than the
 * attempt count counts retry.deadline.capped alongside
 * retry.exhausted.
 *
 * The service uses this for request-scoped cache/journal/socket I/O:
 * retries must never outlive the request deadline they serve
 * (docs/service.md).
 */
bool retryWithBackoff(const RetryPolicy &policy, const char *what,
                      std::chrono::steady_clock::time_point deadline,
                      const std::function<bool()> &op);

} // namespace obs
} // namespace gpuscale

#endif // GPUSCALE_OBS_RETRY_HH
