/**
 * @file
 * Fault-telemetry bridge implementation.
 */

#include "fault_telemetry.hh"

#include "base/fault.hh"
#include "base/logging.hh"
#include "flight_recorder.hh"
#include "metrics.hh"

namespace gpuscale {
namespace obs {

namespace {

/** Cached instrument references for fired faults. */
struct FaultMetrics {
    Counter &thrown;
    Counter &io;
    Counter &delayed;

    static FaultMetrics &
    get()
    {
        static FaultMetrics m{
            Registry::instance().counter(
                "fault.injected.throw",
                "injected faults fired as exceptions"),
            Registry::instance().counter(
                "fault.injected.io",
                "injected faults fired as I/O errors"),
            Registry::instance().counter(
                "fault.injected.delay",
                "injected faults fired as delays"),
        };
        return m;
    }
};

void
countFired(FaultKind kind, const char *site)
{
    FaultMetrics &metrics = FaultMetrics::get();
    switch (kind) {
      case FaultKind::Exception:
        metrics.thrown.inc();
        break;
      case FaultKind::IoError:
        metrics.io.inc();
        break;
      case FaultKind::Delay:
        metrics.delayed.inc();
        break;
    }
    debuglog("fault injected at %s (%s)", site,
             faultKindName(kind).c_str());
    FlightRecorder::record("fault", site, faultKindName(kind));
}

Counter &
degradationEvents()
{
    static Counter &counter = Registry::instance().counter(
        "degradation.events",
        "permanent failures absorbed by graceful degradation");
    return counter;
}

} // namespace

void
installFaultTelemetry()
{
    FaultInjector::instance().setObserver(&countFired);
}

void
armFaultsFromEnv()
{
    installFaultTelemetry();
    FaultInjector::instance().armFromEnv();
}

void
noteDegradation(const char *what)
{
    degradationEvents().inc();
    debuglog("degraded: %s", what);
    FlightRecorder::record("degradation", what);
}

uint64_t
degradationCount()
{
    return degradationEvents().value();
}

} // namespace obs
} // namespace gpuscale
