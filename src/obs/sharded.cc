/**
 * @file
 * Sharded instrument implementation: shard assignment plus the
 * striped counter/histogram bodies declared in sharded.hh.
 */

#include "sharded.hh"

#include <cmath>
#include <limits>
#include <thread>

namespace gpuscale {
namespace obs {

namespace {

/** Round up to the next power of two (shard masks stay cheap). */
unsigned
nextPow2(unsigned v)
{
    unsigned p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

unsigned
computeShardCount()
{
    const unsigned hw = std::thread::hardware_concurrency();
    const unsigned want = nextPow2(hw == 0 ? 4 : hw);
    return std::min(64u, std::max(4u, want));
}

/** Deals shard indices to threads that never set a hint. */
std::atomic<unsigned> shard_dealer{0};

/** This thread's home shard; kUnassigned until first use or hint. */
constexpr unsigned kUnassigned = ~0u;
thread_local unsigned t_home_shard = kUnassigned;

} // namespace

unsigned
shardCount()
{
    static const unsigned count = computeShardCount();
    return count;
}

unsigned
currentShard()
{
    if (t_home_shard == kUnassigned) {
        t_home_shard = shard_dealer.fetch_add(
                           1, std::memory_order_relaxed) %
                       shardCount();
    }
    return t_home_shard;
}

void
setThreadShardHint(unsigned hint)
{
    t_home_shard = hint % shardCount();
}

ShardedCounter::ShardedCounter()
    : shards_(std::make_unique<Shard[]>(shardCount()))
{
}

void
ShardedCounter::inc(uint64_t n)
{
    if (Registry::quiesced())
        return;
    shards_[currentShard()].value.fetch_add(n,
                                            std::memory_order_relaxed);
}

uint64_t
ShardedCounter::value() const
{
    uint64_t total = 0;
    for (unsigned s = 0; s < shardCount(); ++s)
        total += shards_[s].value.load(std::memory_order_relaxed);
    return total;
}

std::vector<uint64_t>
ShardedCounter::shardValues() const
{
    std::vector<uint64_t> out(shardCount());
    for (unsigned s = 0; s < shardCount(); ++s)
        out[s] = shards_[s].value.load(std::memory_order_relaxed);
    return out;
}

void
ShardedCounter::reset()
{
    for (unsigned s = 0; s < shardCount(); ++s)
        shards_[s].value.store(0, std::memory_order_relaxed);
}

ShardedHistogram::ShardedHistogram()
    : shards_(std::make_unique<Shard[]>(shardCount()))
{
    reset();
}

void
ShardedHistogram::record(double v)
{
    if (Registry::quiesced())
        return;
    Shard &shard = shards_[currentShard()];
    shard.buckets[Histogram::bucketIndex(v)].fetch_add(
        1, std::memory_order_relaxed);
    shard.count.fetch_add(1, std::memory_order_relaxed);
    detail::atomicAdd(shard.sum, v);
    detail::atomicMin(shard.min, v);
    detail::atomicMax(shard.max, v);
}

uint64_t
ShardedHistogram::count() const
{
    uint64_t total = 0;
    for (unsigned s = 0; s < shardCount(); ++s)
        total += shards_[s].count.load(std::memory_order_relaxed);
    return total;
}

double
ShardedHistogram::sum() const
{
    double total = 0.0;
    for (unsigned s = 0; s < shardCount(); ++s)
        total += shards_[s].sum.load(std::memory_order_relaxed);
    return total;
}

double
ShardedHistogram::mean() const
{
    const uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

std::vector<uint64_t>
ShardedHistogram::shardCounts() const
{
    std::vector<uint64_t> out(shardCount());
    for (unsigned s = 0; s < shardCount(); ++s)
        out[s] = shards_[s].count.load(std::memory_order_relaxed);
    return out;
}

double
ShardedHistogram::minSample() const
{
    double best = std::numeric_limits<double>::infinity();
    for (unsigned s = 0; s < shardCount(); ++s)
        best = std::min(best,
                        shards_[s].min.load(std::memory_order_relaxed));
    return std::isinf(best)
               ? std::numeric_limits<double>::quiet_NaN()
               : best;
}

double
ShardedHistogram::maxSample() const
{
    double best = -std::numeric_limits<double>::infinity();
    for (unsigned s = 0; s < shardCount(); ++s)
        best = std::max(best,
                        shards_[s].max.load(std::memory_order_relaxed));
    return std::isinf(best)
               ? std::numeric_limits<double>::quiet_NaN()
               : best;
}

double
ShardedHistogram::percentile(double p) const
{
    std::array<uint64_t, Histogram::kNumBuckets> snap{};
    for (unsigned s = 0; s < shardCount(); ++s) {
        for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
            snap[i] += shards_[s].buckets[i].load(
                std::memory_order_relaxed);
        }
    }
    return detail::percentileFromBuckets(snap, p, minSample(),
                                         maxSample());
}

void
ShardedHistogram::reset()
{
    for (unsigned s = 0; s < shardCount(); ++s) {
        Shard &shard = shards_[s];
        for (auto &b : shard.buckets)
            b.store(0, std::memory_order_relaxed);
        shard.count.store(0, std::memory_order_relaxed);
        shard.sum.store(0.0, std::memory_order_relaxed);
        shard.min.store(std::numeric_limits<double>::infinity(),
                        std::memory_order_relaxed);
        shard.max.store(-std::numeric_limits<double>::infinity(),
                        std::memory_order_relaxed);
    }
}

} // namespace obs
} // namespace gpuscale
