/**
 * @file
 * Progress reporter implementation.
 */

#include "progress.hh"

#include <cstdio>

#include "base/logging.hh"

namespace gpuscale {
namespace obs {

ProgressReporter::ProgressReporter(std::string label, uint64_t total,
                                   bool enabled, unsigned interval_ms)
    : label_(std::move(label)),
      total_(total),
      enabled_(enabled),
      interval_ms_(static_cast<int64_t>(interval_ms)),
      start_(std::chrono::steady_clock::now())
{
}

ProgressReporter::~ProgressReporter()
{
    finish();
}

double
ProgressReporter::elapsedSec() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

uint64_t
ProgressReporter::done() const
{
    return done_.load(std::memory_order_relaxed);
}

double
ProgressReporter::ratePerSec() const
{
    const double elapsed = elapsedSec();
    if (elapsed <= 0.0)
        return 0.0;
    return static_cast<double>(done()) / elapsed;
}

std::string
ProgressReporter::renderLine() const
{
    const uint64_t n = done();
    const double pct =
        total_ > 0
            ? 100.0 * static_cast<double>(n) / static_cast<double>(total_)
            : 0.0;
    const double rate = ratePerSec();
    std::string line = strprintf(
        "%s: %llu/%llu (%.1f%%) %.1f/s", label_.c_str(),
        static_cast<unsigned long long>(n),
        static_cast<unsigned long long>(total_), pct, rate);
    if (rate > 0.0 && n < total_) {
        const double eta =
            static_cast<double>(total_ - n) / rate;
        line += strprintf(" eta %.0fs", eta);
    }
    return line;
}

void
ProgressReporter::paint(bool final_line)
{
    std::lock_guard<std::mutex> lock(paint_mu_);
    // A late worker tick() can pass its finished_ check and reach
    // here after finish() already painted the final line; repainting
    // would smear a progress line after the final newline.  The
    // final paint latches under paint_mu_, and later paints drop.
    if (final_painted_)
        return;
    if (final_line)
        final_painted_ = true;
    // Trailing spaces clear leftovers from a longer previous line.
    std::fprintf(stderr, "\r%-70s%s", renderLine().c_str(),
                 final_line ? "\n" : "");
    std::fflush(stderr);
}

void
ProgressReporter::tick(uint64_t n)
{
    const uint64_t now_done =
        done_.fetch_add(n, std::memory_order_relaxed) + n;
    if (!enabled_ || finished_.load(std::memory_order_relaxed))
        return;

    const auto now_ms = static_cast<int64_t>(elapsedSec() * 1000.0);
    int64_t last = last_paint_ms_.load(std::memory_order_relaxed);
    const bool due =
        now_ms - last >= interval_ms_ || now_done >= total_;
    if (!due)
        return;
    // One thread wins the repaint; losers skip rather than queue.
    if (!last_paint_ms_.compare_exchange_strong(
            last, now_ms, std::memory_order_relaxed)) {
        return;
    }
    paint(false);
}

void
ProgressReporter::finish()
{
    if (finished_.exchange(true, std::memory_order_relaxed))
        return;
    if (enabled_)
        paint(true);
}

} // namespace obs
} // namespace gpuscale
