/**
 * @file
 * Sharded (striped) hot-path instruments.
 *
 * A plain Counter or Histogram is one cache line every recording
 * thread RMWs; on the batched census path (267 kernels x 891 configs
 * fanned across the worker pool) that line ping-pongs between cores
 * and the instrument shows up in the profile it was supposed to
 * observe.  ShardedCounter and ShardedHistogram stripe the state
 * across cacheline-padded shards: each thread picks a home shard once
 * (pool workers are pinned to their spawn ordinal via
 * setThreadShardHint(); foreign threads are dealt shards round-robin)
 * and every inc()/record() touches only that shard's lines.  Readers
 * merge the shards at snapshot time, which is rare and cheap.
 *
 * Both instruments honor the registry's quiesce switch
 * (Registry::setQuiesced): when quiesced, inc()/record() return after
 * one relaxed load.  The telemetry bench uses that as the zero-cost
 * baseline its <= 2% overhead gate compares against.
 */

#ifndef GPUSCALE_OBS_SHARDED_HH
#define GPUSCALE_OBS_SHARDED_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "metrics.hh"

namespace gpuscale {
namespace obs {

/** Destructive-interference padding unit for shard alignment. */
constexpr size_t kCachelineBytes = 64;

/**
 * Shards per sharded instrument: a power of two, at least 4 (so shard
 * behavior is observable even on one-core hosts), at most 64, sized
 * to the hardware concurrency.  Fixed for the process lifetime.
 */
unsigned shardCount();

/**
 * The calling thread's home shard in [0, shardCount()).  Assigned
 * round-robin on first use and cached thread-locally.
 */
unsigned currentShard();

/**
 * Pin the calling thread to shard `hint % shardCount()`.  The harness
 * thread pool registers each worker with its spawn ordinal so pool
 * workers spread deterministically across shards instead of hashing
 * into collisions.
 */
void setThreadShardHint(unsigned hint);

/**
 * Monotonic counter striped across cacheline-padded shards; inc() is
 * one relaxed fetch_add on the calling thread's home shard.
 */
class ShardedCounter
{
  public:
    ShardedCounter();
    ShardedCounter(const ShardedCounter &) = delete;
    ShardedCounter &operator=(const ShardedCounter &) = delete;

    void inc(uint64_t n = 1);

    /** Sum across shards (monotone between resets). */
    uint64_t value() const;

    /** Per-shard values, for balance diagnostics. */
    std::vector<uint64_t> shardValues() const;

    void reset();

  private:
    struct alignas(kCachelineBytes) Shard {
        std::atomic<uint64_t> value{0};
    };

    std::unique_ptr<Shard[]> shards_;
};

/**
 * Log-scale latency histogram striped across cacheline-padded shards.
 * Same bucket geometry and accessor surface as Histogram; record()
 * touches only the calling thread's shard, and every read-side
 * statistic merges a relaxed snapshot of all shards.
 */
class ShardedHistogram
{
  public:
    ShardedHistogram();
    ShardedHistogram(const ShardedHistogram &) = delete;
    ShardedHistogram &operator=(const ShardedHistogram &) = delete;

    void record(double v);

    uint64_t count() const;
    double sum() const;
    double mean() const;
    bool empty() const { return count() == 0; }

    /** Smallest/largest recorded sample; NaN while empty. */
    double minSample() const;
    double maxSample() const;

    /** Per-shard sample counts, for balance diagnostics. */
    std::vector<uint64_t> shardCounts() const;

    /** Merged-shard percentile; 0 when empty (see Histogram). */
    double percentile(double p) const;

    void reset();

  private:
    struct alignas(kCachelineBytes) Shard {
        std::array<std::atomic<uint64_t>, Histogram::kNumBuckets>
            buckets;
        std::atomic<uint64_t> count{0};
        std::atomic<double> sum{0.0};
        std::atomic<double> min;
        std::atomic<double> max;
    };

    std::unique_ptr<Shard[]> shards_;
};

} // namespace obs
} // namespace gpuscale

#endif // GPUSCALE_OBS_SHARDED_HH
