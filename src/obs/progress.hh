/**
 * @file
 * Throttled progress reporting for long sweeps.
 *
 * A census walks 267 kernels x 891 configurations; ProgressReporter
 * gives the operator a stderr line with completion, rate, and ETA
 * without measurably slowing the workers: tick() is an atomic
 * increment plus a time check, and the line is repainted at most once
 * per interval (carriage-return overwrite, no scrollback spam).
 */

#ifndef GPUSCALE_OBS_PROGRESS_HH
#define GPUSCALE_OBS_PROGRESS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

namespace gpuscale {
namespace obs {

/** Thread-safe, throttled stderr progress line. */
class ProgressReporter
{
  public:
    /**
     * @param label short name printed before the counts ("census").
     * @param total number of work items expected.
     * @param enabled when false, tick() only counts (no output) —
     *        callers thread one reporter through unconditionally and
     *        let the flag decide.
     * @param interval_ms minimum milliseconds between repaints.
     */
    ProgressReporter(std::string label, uint64_t total,
                     bool enabled = true, unsigned interval_ms = 200);

    ProgressReporter(const ProgressReporter &) = delete;
    ProgressReporter &operator=(const ProgressReporter &) = delete;

    /** finish()es if the caller has not. */
    ~ProgressReporter();

    /** Mark n items complete; repaints when the throttle allows. */
    void tick(uint64_t n = 1);

    /** Paint the final line and a newline; idempotent. */
    void finish();

    uint64_t done() const;
    uint64_t total() const { return total_; }

    /** Items per second since construction. */
    double ratePerSec() const;

    /** The current progress line (exposed for tests). */
    std::string renderLine() const;

  private:
    double elapsedSec() const;
    void paint(bool final_line);

    const std::string label_;
    const uint64_t total_;
    const bool enabled_;
    const int64_t interval_ms_;
    const std::chrono::steady_clock::time_point start_;
    std::atomic<uint64_t> done_{0};
    std::atomic<int64_t> last_paint_ms_{-1};
    std::atomic<bool> finished_{false};
    // Serializes repaints and the final-newline latch; ticks stay
    // lock-free.  The latch is tied to it by guarded_by (enforced
    // by the lock-discipline rule).
    std::mutex paint_mu_;
    /** True once the final line went out. */
    // guarded_by(paint_mu_)
    bool final_painted_ = false;
};

} // namespace obs
} // namespace gpuscale

#endif // GPUSCALE_OBS_PROGRESS_HH
