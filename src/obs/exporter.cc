/**
 * @file
 * Periodic metrics exporter implementation.
 */

#include "exporter.hh"

#include <chrono>
#include <condition_variable>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include "base/logging.hh"
#include "json.hh"
#include "metrics.hh"

namespace gpuscale {
namespace obs {

namespace {

/** Wall-clock milliseconds since the Unix epoch. */
uint64_t
wallMs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

struct ExporterState {
    // gpuscale-lint: allow(concurrency): exporter owns its flusher
    // thread; obs has no pool to borrow and harness sits above it.
    std::mutex mu;
    // gpuscale-lint: allow(concurrency): paired with mu for the
    // interruptible interval sleep in the flusher loop.
    std::condition_variable cv;
    // gpuscale-lint: allow(concurrency): the background flusher.
    std::thread flusher;

    bool running = false;
    bool stopping = false;
    unsigned interval_ms = 0;
    uint64_t seq = 0;
    std::ofstream out;

    /** Previous absolute values, for delta computation. */
    std::map<std::string, double> prev_counters;
    std::map<std::string, double> prev_hist_counts;
};

ExporterState &
state()
{
    static ExporterState s;
    return s;
}

/** Append one JSONL line; caller holds the state mutex. */
void
flushLocked(ExporterState &s)
{
    if (!s.running || !s.out)
        return;

    // Round-trip the registry's own snapshot through the JSON parser;
    // deltas come from comparing parsed numbers, not internal state.
    const JsonValue doc =
        parseJson(Registry::instance().snapshotJson());

    std::ostringstream line;
    JsonWriter w(line);
    w.beginObject();
    w.key("ts_ms").value(wallMs());
    w.key("seq").value(++s.seq);

    w.key("counters").beginObject();
    if (const JsonValue *counters = doc.find("counters")) {
        for (const auto &[name, v] : counters->object) {
            double &prev = s.prev_counters[name];
            w.key(name).value(v.number - prev);
            prev = v.number;
        }
    }
    w.endObject();

    w.key("gauges").beginObject();
    if (const JsonValue *gauges = doc.find("gauges")) {
        for (const auto &[name, v] : gauges->object)
            w.key(name).value(v.number);
    }
    w.endObject();

    w.key("histograms").beginObject();
    if (const JsonValue *hists = doc.find("histograms")) {
        for (const auto &[name, h] : hists->object) {
            const double count = h.at("count").number;
            double &prev = s.prev_hist_counts[name];
            w.key(name).beginObject();
            w.key("count").value(count - prev);
            prev = count;
            for (const char *stat : {"mean", "p50", "p90", "p99"}) {
                const JsonValue &v = h.at(stat);
                if (v.isNumber())
                    w.key(stat).value(v.number);
                else
                    w.key(stat).valueNull();
            }
            w.endObject();
        }
    }
    w.endObject();

    w.endObject();
    s.out << line.str() << '\n';
    s.out.flush();
}

void
flusherLoop()
{
    ExporterState &s = state();
    std::unique_lock<std::mutex> lock(s.mu);
    while (!s.stopping) {
        s.cv.wait_for(lock,
                      std::chrono::milliseconds(s.interval_ms),
                      [&s] { return s.stopping; });
        if (s.stopping)
            break;
        flushLocked(s);
    }
}

} // namespace

bool
MetricsExporter::start(const std::string &path, unsigned interval_ms)
{
    ExporterState &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.running) {
        warn("metrics exporter already running; ignoring start(%s)",
             path.c_str());
        return false;
    }
    // gpuscale-lint: allow(fault-coverage): the exporter is
    // best-effort telemetry; an unopenable sink is warned about and
    // the run proceeds without streaming metrics.
    s.out.open(path, std::ios::app);
    if (!s.out) {
        warn("metrics exporter: cannot open '%s'", path.c_str());
        return false;
    }
    s.interval_ms = interval_ms == 0 ? 1000 : interval_ms;
    s.stopping = false;
    s.running = true;
    s.seq = 0;
    s.prev_counters.clear();
    s.prev_hist_counts.clear();
    // gpuscale-lint: allow(concurrency): spawns the flusher thread.
    s.flusher = std::thread(flusherLoop);
    return true;
}

bool
MetricsExporter::active()
{
    ExporterState &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    return s.running;
}

void
MetricsExporter::flushNow()
{
    ExporterState &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    flushLocked(s);
}

void
MetricsExporter::stop()
{
    ExporterState &s = state();
    {
        std::lock_guard<std::mutex> lock(s.mu);
        if (!s.running)
            return;
        s.stopping = true;
    }
    s.cv.notify_all();
    if (s.flusher.joinable())
        s.flusher.join();
    std::lock_guard<std::mutex> lock(s.mu);
    flushLocked(s); // Final line so short runs export at least once.
    s.out.close();
    s.running = false;
    s.stopping = false;
}

} // namespace obs
} // namespace gpuscale
