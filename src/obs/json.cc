/**
 * @file
 * JSON writer and parser implementation.
 */

#include "json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <system_error>

#include "base/logging.hh"

namespace gpuscale {
namespace obs {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

JsonWriter::JsonWriter(std::ostream &os)
    : os_(os)
{
}

void
JsonWriter::preValue()
{
    panic_if(done_, "JsonWriter: document already complete");
    if (stack_.empty())
        return;
    Frame &top = stack_.back();
    panic_if(top.is_object && !key_pending_,
             "JsonWriter: value inside object requires key()");
    if (!top.is_object && top.count > 0)
        os_ << ',';
    ++top.count;
    key_pending_ = false;
}

JsonWriter &
JsonWriter::beginObject()
{
    preValue();
    os_ << '{';
    stack_.push_back(Frame{true, 0});
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    panic_if(stack_.empty() || !stack_.back().is_object,
             "JsonWriter: endObject outside object");
    panic_if(key_pending_, "JsonWriter: endObject with dangling key");
    os_ << '}';
    stack_.pop_back();
    if (stack_.empty())
        done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    preValue();
    os_ << '[';
    stack_.push_back(Frame{false, 0});
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    panic_if(stack_.empty() || stack_.back().is_object,
             "JsonWriter: endArray outside array");
    os_ << ']';
    stack_.pop_back();
    if (stack_.empty())
        done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    panic_if(stack_.empty() || !stack_.back().is_object,
             "JsonWriter: key() outside object");
    panic_if(key_pending_, "JsonWriter: consecutive key() calls");
    if (stack_.back().count > 0)
        os_ << ',';
    os_ << '"' << jsonEscape(k) << "\":";
    key_pending_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    preValue();
    os_ << '"' << jsonEscape(v) << '"';
    if (stack_.empty())
        done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    preValue();
    if (!std::isfinite(v)) {
        // JSON has no NaN/Inf; null keeps the document valid.
        os_ << "null";
    } else {
        // std::to_chars is locale-independent ("%g" under an
        // LC_NUMERIC locale with a comma decimal separator would emit
        // invalid JSON).  No precision argument: shortest
        // round-trippable form, so a parse of the emitted text
        // recovers the bitwise-identical double — the service's
        // resume proof compares classifications through this path.
        char buf[40];
        const auto res = std::to_chars(buf, buf + sizeof(buf), v,
                                       std::chars_format::general);
        panic_if(res.ec != std::errc(),
                 "JsonWriter: double formatting failed");
        os_.write(buf, res.ptr - buf);
    }
    if (stack_.empty())
        done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    preValue();
    os_ << v;
    if (stack_.empty())
        done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(int64_t v)
{
    preValue();
    os_ << v;
    if (stack_.empty())
        done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    return value(static_cast<int64_t>(v));
}

JsonWriter &
JsonWriter::value(bool v)
{
    preValue();
    os_ << (v ? "true" : "false");
    if (stack_.empty())
        done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::valueNull()
{
    preValue();
    os_ << "null";
    if (stack_.empty())
        done_ = true;
    return *this;
}

bool
JsonWriter::complete() const
{
    return done_ && stack_.empty();
}

const JsonValue *
JsonValue::find(const std::string &k) const
{
    if (type != Type::Object)
        return nullptr;
    const auto it = object.find(k);
    return it == object.end() ? nullptr : &it->second;
}

const JsonValue &
JsonValue::at(const std::string &k) const
{
    const JsonValue *v = find(k);
    panic_if(v == nullptr, "JsonValue: missing key '%s'", k.c_str());
    return *v;
}

namespace {

/** Recursive-descent JSON parser over a string view. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue
    parseDocument()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw std::runtime_error("JSON parse error at offset " +
                                 std::to_string(pos_) + ": " + why);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        const size_t len = std::char_traits<char>::length(lit);
        if (text_.compare(pos_, len, lit) != 0)
            return false;
        pos_ += len;
        return true;
    }

    JsonValue
    parseValue()
    {
        skipWs();
        const char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"') {
            JsonValue v;
            v.type = JsonValue::Type::String;
            v.str = parseString();
            return v;
        }
        if (c == 't' || c == 'f') {
            JsonValue v;
            v.type = JsonValue::Type::Bool;
            if (consumeLiteral("true"))
                v.boolean = true;
            else if (consumeLiteral("false"))
                v.boolean = false;
            else
                fail("bad literal");
            return v;
        }
        if (c == 'n') {
            if (!consumeLiteral("null"))
                fail("bad literal");
            return JsonValue{};
        }
        return parseNumber();
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v;
        v.type = JsonValue::Type::Object;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            v.object[key] = parseValue();
            skipWs();
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == '}') {
                ++pos_;
                return v;
            }
            fail("expected ',' or '}' in object");
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v;
        v.type = JsonValue::Type::Array;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array.push_back(parseValue());
            skipWs();
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == ']') {
                ++pos_;
                return v;
            }
            fail("expected ',' or ']' in array");
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                // Encode as UTF-8 (no surrogate-pair handling; the
                // telemetry emitters only escape control characters).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                fail("bad escape character");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        const size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start)
            fail("expected a value");
        const std::string tok = text_.substr(start, pos_ - start);
        // std::from_chars always parses the C-locale (i.e. JSON)
        // number grammar; strtod would reject "1.5" under a
        // comma-decimal LC_NUMERIC locale.
        double d = 0.0;
        const auto res =
            std::from_chars(tok.data(), tok.data() + tok.size(), d);
        if (res.ec != std::errc() ||
            res.ptr != tok.data() + tok.size()) {
            fail("malformed number '" + tok + "'");
        }
        JsonValue v;
        v.type = JsonValue::Type::Number;
        v.number = d;
        return v;
    }

    const std::string &text_;
    size_t pos_ = 0;
};

} // namespace

JsonValue
parseJson(const std::string &text)
{
    return Parser(text).parseDocument();
}

} // namespace obs
} // namespace gpuscale
