/**
 * @file
 * Telemetry bridge for the base-layer fault injector, plus the
 * process-wide degradation ledger.
 *
 * base/fault cannot include the metrics registry (layering: base sits
 * below obs), so the injector exposes an observer hook instead;
 * installFaultTelemetry() plugs the fault.injected.* counters into it.
 *
 * Degradations — operations that failed permanently but were absorbed
 * (cache read served as a miss, CSV row skipped, checkpoint record
 * dropped) — are tallied centrally in degradation.events so drivers
 * can distinguish "clean run" from "completed with degradations" (the
 * CLI maps the latter to exit code 4).
 */

#ifndef GPUSCALE_OBS_FAULT_TELEMETRY_HH
#define GPUSCALE_OBS_FAULT_TELEMETRY_HH

#include <cstdint>

namespace gpuscale {
namespace obs {

/**
 * Install the fault.injected.{throw,io,delay} counters as the
 * injector's observer.  Idempotent; call once at process start (the
 * CLI and bench mains do) or from any test asserting those metrics.
 */
void installFaultTelemetry();

/**
 * Install telemetry, then arm the injector from GPUSCALE_FAULTS /
 * GPUSCALE_FAULT_SEED (exits 2 on a malformed plan).  One-call setup
 * for binaries.
 */
void armFaultsFromEnv();

/**
 * Record one absorbed permanent failure.  `what` names the site for
 * the debug log; the counter is shared.
 */
void noteDegradation(const char *what);

/** Degradations recorded so far in this process. */
uint64_t degradationCount();

} // namespace obs
} // namespace gpuscale

#endif // GPUSCALE_OBS_FAULT_TELEMETRY_HH
