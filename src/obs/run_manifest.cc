/**
 * @file
 * Run-manifest writer implementation.
 */

#include "run_manifest.hh"

#include <fstream>
#include <sstream>

#include "base/logging.hh"
#include "json.hh"
#include "metrics.hh"

namespace gpuscale {
namespace obs {

ManifestTimer::ManifestTimer()
    : wall_start_(std::chrono::steady_clock::now()),
      cpu_start_(std::clock()),
      started_at_(std::time(nullptr))
{
}

void
ManifestTimer::finalize(RunManifest &m) const
{
    m.wall_time_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - wall_start_)
                        .count();
    m.cpu_time_s = static_cast<double>(std::clock() - cpu_start_) /
                   CLOCKS_PER_SEC;

    std::tm tm_utc{};
    gmtime_r(&started_at_, &tm_utc);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
    m.started_at = buf;
}

std::string
renderManifestJson(const RunManifest &m, bool include_metrics)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.key("schema_version").value(1);
    w.key("tool").value(m.tool);
    w.key("command").value(m.command);
    w.key("argv").beginArray();
    for (const auto &a : m.argv)
        w.value(a);
    w.endArray();
    w.key("model").value(m.model);
    w.key("seed").value(m.seed);
    w.key("threads").value(static_cast<uint64_t>(m.threads));
    w.key("started_at").value(m.started_at);
    w.key("wall_time_s").value(m.wall_time_s);
    w.key("cpu_time_s").value(m.cpu_time_s);

    w.key("config_space").beginObject();
    w.key("cu_values").beginArray();
    for (const int v : m.cu_values)
        w.value(v);
    w.endArray();
    w.key("core_clks_mhz").beginArray();
    for (const double v : m.core_clks_mhz)
        w.value(v);
    w.endArray();
    w.key("mem_clks_mhz").beginArray();
    for (const double v : m.mem_clks_mhz)
        w.value(v);
    w.endArray();
    w.key("num_configs").value(static_cast<uint64_t>(m.num_configs));
    w.endObject();

    w.key("workload").beginObject();
    w.key("num_kernels").value(static_cast<uint64_t>(m.num_kernels));
    w.key("num_estimates")
        .value(static_cast<uint64_t>(m.num_estimates));
    w.endObject();

    w.key("extra").beginObject();
    for (const auto &[k, v] : m.extra)
        w.key(k).value(v);
    w.endObject();

    if (include_metrics) {
        w.key("metrics");
        Registry::instance().writeJson(w);
    }

    w.endObject();
    os << '\n';
    return os.str();
}

void
writeManifest(const RunManifest &m, const std::string &path,
              bool include_metrics)
{
    // gpuscale-lint: allow(fault-coverage): the manifest rides next
    // to an output the CLI already wrote; failure here is a fatal
    // usage error (bad path), not a degradable mid-run fault.
    std::ofstream os(path);
    fatal_if(!os, "cannot write run manifest %s", path.c_str());
    os << renderManifestJson(m, include_metrics);
}

std::string
manifestPathFor(const std::string &output_path)
{
    const size_t slash = output_path.find_last_of('/');
    const size_t dot = output_path.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash)) {
        return output_path + ".manifest.json";
    }
    return output_path.substr(0, dot) + ".manifest.json";
}

} // namespace obs
} // namespace gpuscale
