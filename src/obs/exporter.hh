/**
 * @file
 * Periodic metrics exporter: a background flusher appending the
 * registry's values as a JSONL time series.
 *
 * Each tick appends one line:
 *
 *   {"ts_ms":<wall-clock ms>,"seq":N,
 *    "counters":{name:delta,...},      // change since previous line
 *    "gauges":{name:value,...},        // absolute
 *    "histograms":{name:{count:delta,mean,p50,p90,p99},...}}
 *
 * Counters and histogram counts are exported as deltas so each line
 * is a self-contained rate sample; gauges and percentile statistics
 * are instantaneous.  Deltas are computed by round-tripping the
 * registry's own JSON snapshot through obs::parseJson — the same
 * locale-safe serialize/parse pair every other artifact uses, so the
 * exporter doubles as a continuous round-trip check on it.
 *
 * The interval comes from --metrics-interval=MS on the CLI or the
 * GPUSCALE_METRICS_INTERVAL environment variable.  stop() performs a
 * final flush so short runs still produce at least one line.
 */

#ifndef GPUSCALE_OBS_EXPORTER_HH
#define GPUSCALE_OBS_EXPORTER_HH

#include <string>

namespace gpuscale {
namespace obs {

class MetricsExporter
{
  public:
    /**
     * Start the background flusher appending to `path` every
     * `interval_ms` milliseconds.  Returns false (with a warning) if
     * the file cannot be opened or an exporter is already running.
     */
    static bool start(const std::string &path, unsigned interval_ms);

    /** True while the flusher thread is running. */
    static bool active();

    /**
     * Synchronously append one line now (also what the background
     * thread calls each tick).  No-op unless the exporter started.
     * Exposed so tests can drive ticks deterministically.
     */
    static void flushNow();

    /** Final flush, then join and shut down the flusher. */
    static void stop();
};

} // namespace obs
} // namespace gpuscale

#endif // GPUSCALE_OBS_EXPORTER_HH
