/**
 * @file
 * Process-wide run-telemetry metrics registry.
 *
 * Distinct from base/stats (per-simulation, gem5-style, single-
 * threaded): obs metrics instrument the *toolkit itself* — how many
 * model estimates a sweep issued, how long each took, how balanced
 * the parallelFor workers were — and are safe to update from many
 * threads at once.
 *
 * Three instrument kinds:
 *  - Counter:   monotonically increasing uint64 (relaxed atomic).
 *  - Gauge:     last-written double (atomic store).
 *  - Histogram: log-scale latency histogram with lock-free bucket
 *               updates and percentile extraction.
 *
 * Instruments are owned by the Registry singleton and live for the
 * process; references returned by counter()/gauge()/histogram() are
 * stable, so hot paths cache them in function-local statics and pay
 * no lookup per event.  Snapshots render to JSON (for --metrics
 * files and run manifests) or to a base/table TextTable (for
 * human-readable bench output).
 */

#ifndef GPUSCALE_OBS_METRICS_HH
#define GPUSCALE_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

#include "base/table.hh"

namespace gpuscale {
namespace obs {

class JsonWriter;
class ShardedCounter;
class ShardedHistogram;

/** Monotonic event counter; inc() is wait-free. */
class Counter
{
  public:
    Counter() = default;
    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

    void
    inc(uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Last-value instrument (levels, ratios); set() is wait-free. */
class Gauge
{
  public:
    Gauge() = default;
    Gauge(const Gauge &) = delete;
    Gauge &operator=(const Gauge &) = delete;

    void
    set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    /** Atomic accumulate (CAS loop); for sums built across threads. */
    void add(double delta);

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Log-scale histogram for latency-like values.
 *
 * Covers [1 ns, 1000 s) with kBucketsPerDecade buckets per factor of
 * ten plus underflow/overflow bins; record() is two relaxed atomic
 * RMWs plus CAS loops for min/max, so concurrent recording never
 * blocks.  Percentiles are reconstructed from bucket boundaries
 * (geometric midpoint), i.e. accurate to about half a bucket width
 * (~15% with 8 buckets/decade) — ample for telemetry.
 */
class Histogram
{
  public:
    static constexpr double kLo = 1e-9;
    static constexpr double kHi = 1e3;
    static constexpr size_t kDecades = 12;
    static constexpr size_t kBucketsPerDecade = 8;
    /** Scale buckets plus underflow (front) and overflow (back). */
    static constexpr size_t kNumBuckets =
        kDecades * kBucketsPerDecade + 2;

    Histogram();
    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    /** Record one sample (thread-safe, non-blocking). */
    void record(double v);

    uint64_t count() const;
    double sum() const;
    double mean() const;

    /** True while no sample has been recorded (or since reset()). */
    bool empty() const { return count() == 0; }

    /**
     * Smallest / largest recorded sample.  While empty() these return
     * NaN — not 0.0, which a genuine record(0.0) would also produce;
     * JSON snapshots serialize the NaN as null, so "no samples" and
     * "a zero-valued sample" stay distinguishable downstream.
     */
    double minSample() const;
    double maxSample() const;

    /**
     * Value at the given percentile (p in [0, 100]), reconstructed
     * from the bucket a snapshot of the counts lands in; 0 when
     * empty.
     */
    double percentile(double p) const;

    void reset();

    /** Bucket index a value lands in (exposed for tests). */
    static size_t bucketIndex(double v);

  private:
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets_;
    std::atomic<uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    // Seeded at +/-infinity (the identity of min/max), never 0.0 — a
    // 0.0 seed would pin minSample() below every positive sample.
    std::atomic<double> min_{std::numeric_limits<double>::infinity()};
    std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

namespace detail {

/** Relaxed CAS accumulate for atomic doubles (sums across threads). */
void atomicAdd(std::atomic<double> &slot, double delta);

/** Relaxed CAS lower/raise of an atomic double extreme. */
void atomicMin(std::atomic<double> &slot, double v);
void atomicMax(std::atomic<double> &slot, double v);

/**
 * Percentile reconstruction from a merged bucket snapshot, shared by
 * Histogram and ShardedHistogram; clamps to [min_sample, max_sample].
 * Returns 0 when the snapshot is empty.
 */
double percentileFromBuckets(
    const std::array<uint64_t, Histogram::kNumBuckets> &snap, double p,
    double min_sample, double max_sample);

} // namespace detail

/**
 * The process-wide instrument registry.
 *
 * Lookup/creation takes a mutex; the returned reference is stable for
 * the life of the process.  The description passed at first
 * registration wins.
 */
class Registry
{
  public:
    static Registry &instance();

    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    Counter &counter(const std::string &name,
                     const std::string &desc = "");
    Gauge &gauge(const std::string &name, const std::string &desc = "");
    Histogram &histogram(const std::string &name,
                         const std::string &desc = "");

    /**
     * Sharded (striped) variants for instruments updated from many
     * threads on hot paths (see sharded.hh).  A name owns one kind
     * for the process lifetime: re-registering a plain instrument's
     * name as sharded (or vice versa) is a panic, since snapshots
     * would otherwise carry duplicate keys.
     */
    ShardedCounter &shardedCounter(const std::string &name,
                                   const std::string &desc = "");
    ShardedHistogram &shardedHistogram(const std::string &name,
                                       const std::string &desc = "");

    bool empty() const;

    /**
     * Process-wide telemetry quiesce switch: while set, sharded
     * instruments drop inc()/record() after one relaxed load.  The
     * telemetry bench measures its instrumentation-overhead gate
     * against this baseline; production code never sets it.
     */
    static void
    setQuiesced(bool q)
    {
        quiesced_.store(q, std::memory_order_relaxed);
    }

    static bool
    quiesced()
    {
        return quiesced_.load(std::memory_order_relaxed);
    }

    /**
     * Write the current values as a JSON object value:
     * {"counters": {...}, "gauges": {...}, "histograms": {name:
     * {count,mean,min,max,p50,p90,p99}}}.
     */
    void writeJson(JsonWriter &w) const;

    /** writeJson() into a standalone document string. */
    std::string snapshotJson() const;

    /**
     * Prometheus text-exposition rendering of the current values
     * (one "# HELP"/"# TYPE" pair per instrument; histograms as
     * summaries with 0.5/0.9/0.99 quantiles).  Metric names are
     * prefixed "gpuscale_" with dots mapped to underscores.  This is
     * the endpoint body a resident gpuscaled will serve.
     */
    void writeExposition(std::ostream &os) const;

    /** Human-readable snapshot via base/table. */
    TextTable snapshotTable() const;

    /** Zero every instrument (tests); registrations persist. */
    void resetAll();

  private:
    Registry() = default;

    template <typename T>
    struct Entry {
        std::string desc;
        std::unique_ptr<T> instrument;
    };

    // Guards instrument registration only; hot-path updates are
    // lock-free atomics.  The registration maps are tied to it by
    // guarded_by (enforced by the lock-discipline rule).
    mutable std::mutex mu_;
    // guarded_by(mu_)
    std::map<std::string, Entry<Counter>> counters_;
    // guarded_by(mu_)
    std::map<std::string, Entry<Gauge>> gauges_;
    // guarded_by(mu_)
    std::map<std::string, Entry<Histogram>> histograms_;
    // guarded_by(mu_)
    std::map<std::string, Entry<ShardedCounter>> sharded_counters_;
    // guarded_by(mu_)
    std::map<std::string, Entry<ShardedHistogram>> sharded_histograms_;

    static inline std::atomic<bool> quiesced_{false};
};

} // namespace obs
} // namespace gpuscale

#endif // GPUSCALE_OBS_METRICS_HH
