/**
 * @file
 * Crash flight recorder: a bounded lock-free ring of recent telemetry
 * events backed by an mmap'd file.
 *
 * The recorder keeps the last N spans/events/degradations in a ring
 * whose storage is a MAP_SHARED file, so the history survives any
 * process death — including SIGKILL, which no handler can observe.
 * Three ways the "black box" gets read:
 *
 *  - Fatal signals (SIGSEGV/SIGBUS/SIGILL/SIGFPE/SIGABRT, the last
 *    covering panic() and fault-injection aborts): an async-signal-safe
 *    handler renders the ring to a JSON dump before re-raising.
 *  - Degraded exits: the CLI dumps explicitly before returning exit
 *    code 4.
 *  - Post-mortem: renderRingFile() parses a ring file left behind by
 *    a killed process (`gpuscale-stat blackbox` wraps it).
 *
 * Writers claim a slot with one relaxed fetch_add and stamp the slot's
 * sequence twice (open before the payload, commit after), so readers
 * detect and skip torn slots without any lock.  record() while the
 * recorder is inactive is one relaxed load.
 */

#ifndef GPUSCALE_OBS_FLIGHT_RECORDER_HH
#define GPUSCALE_OBS_FLIGHT_RECORDER_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace gpuscale {
namespace obs {

namespace detail {

extern std::atomic<bool> g_flight_active;

} // namespace detail

class FlightRecorder
{
  public:
    /** Ring capacity when the caller does not choose one. */
    static constexpr size_t kDefaultSlots = 256;
    /** Fixed per-slot text capacities (NUL included). */
    static constexpr size_t kKindBytes = 16;
    static constexpr size_t kNameBytes = 64;
    static constexpr size_t kDetailBytes = 64;

    /** Cheap check used by every instrumentation point. */
    static bool
    active()
    {
        return detail::g_flight_active.load(std::memory_order_relaxed);
    }

    /**
     * Create (truncating) the mmap-backed ring at `ring_path` and
     * start recording.  Returns false (with a warning) if the file
     * cannot be created or mapped; starting while active is a
     * warn-and-ignore.
     */
    static bool start(const std::string &ring_path,
                      size_t slots = kDefaultSlots);

    /**
     * Arrange for fatal signals (SEGV/BUS/ILL/FPE/ABRT) to render the
     * ring as a black-box JSON document at `json_path` before the
     * default action runs.  Requires an active recorder.
     */
    static void installCrashDump(const std::string &json_path);

    /**
     * Append one event.  `kind` is a short tag ("span", "event",
     * "degradation", "fault"); strings are truncated to the slot
     * capacities and sanitized to a JSON-safe charset at record time
     * so the signal-handler dump needs no escaping.
     */
    static void record(const char *kind, const std::string &name,
                       const std::string &detail = "",
                       uint64_t ts_us = 0, uint64_t dur_us = 0);

    /** record() shim for completed trace spans (see TraceScope). */
    static void recordSpan(const std::string &name, double start_us,
                           double dur_us);

    /**
     * Render the live ring as a black-box JSON document at
     * `json_path` (the non-signal path: degraded exits, tests).
     *
     * @return number of events dumped (0 if inactive).
     */
    static size_t dump(const std::string &json_path,
                       const std::string &reason);

    /** Stop recording and release the mapping; the file remains. */
    static void stop();
};

/**
 * Post-mortem rendering: parse a ring file written by a (possibly
 * SIGKILLed) process and return the same black-box JSON document the
 * crash handler would have produced, with reason "post-mortem".
 *
 * @throw std::runtime_error when the file is missing or not a ring.
 */
std::string renderRingFile(const std::string &ring_path);

} // namespace obs
} // namespace gpuscale

#endif // GPUSCALE_OBS_FLIGHT_RECORDER_HH
