/**
 * @file
 * Run manifests: a JSON record of what a run actually did.
 *
 * Every report a sweep produces (classifications.csv, a bench table)
 * is only reproducible if the conditions that produced it are written
 * down; the manifest captures the command, the configuration space,
 * the RNG seed, the thread count, wall/CPU time, and a final metrics
 * snapshot, and is written next to the report output
 * (report.csv -> report.manifest.json).
 *
 * Schema (docs/observability.md documents it in full):
 * {
 *   "schema_version": 1,
 *   "tool": "gpuscale", "command": "census", "argv": [...],
 *   "model": "analytic", "seed": 0, "threads": 16,
 *   "started_at": "2015-10-04T12:00:00Z",
 *   "wall_time_s": 1.9, "cpu_time_s": 28.1,
 *   "config_space": {"cu_values": [...], "core_clks_mhz": [...],
 *                    "mem_clks_mhz": [...], "num_configs": 891},
 *   "workload": {"num_kernels": 267, "num_estimates": 237897},
 *   "extra": {...},
 *   "metrics": { ...Registry snapshot... }
 * }
 */

#ifndef GPUSCALE_OBS_RUN_MANIFEST_HH
#define GPUSCALE_OBS_RUN_MANIFEST_HH

#include <chrono>
#include <cstdint>
#include <ctime>
#include <map>
#include <string>
#include <vector>

namespace gpuscale {
namespace obs {

/** Everything a run needs to write down to be reproducible. */
struct RunManifest {
    std::string tool = "gpuscale";
    std::string command;
    std::vector<std::string> argv;
    std::string model;       ///< perf-model name ("analytic", ...)
    uint64_t seed = 0;       ///< RNG seed (0 = deterministic/no noise)
    unsigned threads = 0;    ///< worker threads (0 = hw concurrency)
    std::string started_at;  ///< ISO-8601 UTC wall-clock start
    double wall_time_s = 0.0;
    double cpu_time_s = 0.0;
    size_t num_kernels = 0;
    size_t num_configs = 0;
    size_t num_estimates = 0;
    std::vector<int> cu_values;
    std::vector<double> core_clks_mhz;
    std::vector<double> mem_clks_mhz;
    /** Free-form additions (output files, sigma, ...). */
    std::map<std::string, std::string> extra;
};

/**
 * Captures start times at construction; finalize() stamps started_at
 * and the wall/CPU durations into a manifest.
 */
class ManifestTimer
{
  public:
    ManifestTimer();

    void finalize(RunManifest &m) const;

  private:
    std::chrono::steady_clock::time_point wall_start_;
    std::clock_t cpu_start_;
    std::time_t started_at_;
};

/**
 * Render the manifest as a JSON document.
 *
 * @param include_metrics embed the current Registry snapshot.
 */
std::string renderManifestJson(const RunManifest &m,
                               bool include_metrics = true);

/** Write the manifest to a file; fatal on I/O failure. */
void writeManifest(const RunManifest &m, const std::string &path,
                   bool include_metrics = true);

/**
 * Conventional manifest path for a report file:
 * "report.csv" -> "report.manifest.json"; a path without an extension
 * gets ".manifest.json" appended.
 */
std::string manifestPathFor(const std::string &output_path);

} // namespace obs
} // namespace gpuscale

#endif // GPUSCALE_OBS_RUN_MANIFEST_HH
