/**
 * @file
 * Flight recorder implementation: mmap-backed ring, crash-time JSON
 * rendering, and the post-mortem ring-file reader.
 */

#include "flight_recorder.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include <csignal>
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include "base/logging.hh"
#include "json.hh"
#include "trace.hh"

namespace gpuscale {
namespace obs {

namespace detail {

std::atomic<bool> g_flight_active{false};

} // namespace detail

namespace {

constexpr char kRingMagic[8] = {'G', 'P', 'U', 'S',
                                'F', 'R', '0', '1'};

/** File header at offset 0 of the ring file. */
struct RingHeader {
    char magic[8];
    uint64_t slot_count;
    /** Next 1-based sequence number to hand out. */
    std::atomic<uint64_t> next_seq;
    uint64_t reserved;
};

/**
 * One ring slot.  A writer stamps seq_open, fills the payload, then
 * stamps seq_commit; a reader accepts the slot only when both stamps
 * agree and are nonzero, so a slot torn by a crash or a concurrent
 * rewrite is silently skipped.
 */
struct RingSlot {
    std::atomic<uint64_t> seq_open;
    std::atomic<uint64_t> seq_commit;
    uint64_t ts_us;
    uint64_t dur_us;
    char kind[FlightRecorder::kKindBytes];
    char name[FlightRecorder::kNameBytes];
    char detail[FlightRecorder::kDetailBytes];
};

RingHeader *g_header = nullptr;
RingSlot *g_slots = nullptr;
size_t g_map_bytes = 0;

/** Crash-dump destination; fixed storage so the handler needs no
 * allocation.  Empty first byte means no dump path installed. */
char g_dump_path[4096] = {0};

size_t
ringBytes(size_t slots)
{
    return sizeof(RingHeader) + slots * sizeof(RingSlot);
}

/**
 * Copy `src` into a fixed slot field, truncating and replacing every
 * character outside a JSON-safe telemetry charset with '_' so dumps
 * never need escaping (the signal handler cannot afford any).
 */
template <size_t N>
void
sanitizeInto(char (&dst)[N], const std::string &src)
{
    size_t n = 0;
    for (const char c : src) {
        if (n == N - 1)
            break;
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' ||
                        c == '_' || c == '/' || c == '-' ||
                        c == ':' || c == '=' || c == ' ';
        dst[n++] = ok ? c : '_';
    }
    dst[n] = '\0';
}

/** A decoded, validated slot ready for rendering. */
struct Event {
    uint64_t seq;
    uint64_t ts_us;
    uint64_t dur_us;
    std::string kind;
    std::string name;
    std::string detail;
};

/** Decode committed slots (torn ones skipped), oldest first. */
std::vector<Event>
collectEvents(const RingHeader *header, const RingSlot *slots)
{
    std::vector<Event> events;
    for (uint64_t i = 0; i < header->slot_count; ++i) {
        const RingSlot &s = slots[i];
        const uint64_t commit =
            s.seq_commit.load(std::memory_order_acquire);
        if (commit == 0)
            continue;
        Event e;
        e.seq = commit;
        e.ts_us = s.ts_us;
        e.dur_us = s.dur_us;
        e.kind.assign(s.kind,
                      strnlen(s.kind, FlightRecorder::kKindBytes));
        e.name.assign(s.name,
                      strnlen(s.name, FlightRecorder::kNameBytes));
        e.detail.assign(
            s.detail, strnlen(s.detail, FlightRecorder::kDetailBytes));
        if (s.seq_open.load(std::memory_order_relaxed) != commit)
            continue; // Torn: writer was mid-overwrite.
        events.push_back(std::move(e));
    }
    std::sort(events.begin(), events.end(),
              [](const Event &a, const Event &b) {
                  return a.seq < b.seq;
              });
    return events;
}

/** Render the black-box document with the normal JSON writer. */
std::string
renderEvents(const std::vector<Event> &events,
             const std::string &reason)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.key("reason").value(reason);
    w.key("events").beginArray();
    for (const Event &e : events) {
        w.beginObject();
        w.key("seq").value(e.seq);
        w.key("ts_us").value(e.ts_us);
        w.key("dur_us").value(e.dur_us);
        w.key("kind").value(e.kind);
        w.key("name").value(e.name);
        w.key("detail").value(e.detail);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return os.str();
}

/** write() the whole buffer, tolerating short writes. */
void
writeAll(int fd, const char *buf, size_t len)
{
    while (len > 0) {
        // gpuscale-lint: allow(fault-coverage): this runs on the
        // crash path (signal handler); it must not call back into
        // the fault harness it is recording the death of.
        const ssize_t n = ::write(fd, buf, len);
        if (n <= 0)
            return;
        buf += n;
        len -= static_cast<size_t>(n);
    }
}

/**
 * Async-signal-safe black-box dump: only open/write/snprintf over the
 * already-sanitized slot text, no allocation, no locks.
 */
void
signalSafeDump(const char *path, const char *reason)
{
    if (g_header == nullptr)
        return;
    const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return;

    char buf[512];
    int n = std::snprintf(buf, sizeof(buf),
                          "{\"reason\":\"%s\",\"events\":[", reason);
    writeAll(fd, buf, static_cast<size_t>(n));

    // Emit slots in sequence order by scanning for the next-smallest
    // committed sequence each pass: O(slots^2) but allocation-free,
    // and the ring is small by construction.
    uint64_t last_seq = 0;
    bool first = true;
    for (uint64_t emitted = 0; emitted < g_header->slot_count;
         ++emitted)
    {
        const RingSlot *best = nullptr;
        uint64_t best_seq = 0;
        for (uint64_t i = 0; i < g_header->slot_count; ++i) {
            const RingSlot &s = g_slots[i];
            const uint64_t commit =
                s.seq_commit.load(std::memory_order_acquire);
            if (commit == 0 || commit <= last_seq)
                continue;
            if (s.seq_open.load(std::memory_order_relaxed) != commit)
                continue;
            if (best == nullptr || commit < best_seq) {
                best = &s;
                best_seq = commit;
            }
        }
        if (best == nullptr)
            break;
        last_seq = best_seq;
        n = std::snprintf(
            buf, sizeof(buf),
            "%s{\"seq\":%llu,\"ts_us\":%llu,\"dur_us\":%llu,"
            "\"kind\":\"%s\",\"name\":\"%s\",\"detail\":\"%s\"}",
            first ? "" : ",",
            static_cast<unsigned long long>(best_seq),
            static_cast<unsigned long long>(best->ts_us),
            static_cast<unsigned long long>(best->dur_us), best->kind,
            best->name, best->detail);
        writeAll(fd, buf, static_cast<size_t>(n));
        first = false;
    }

    writeAll(fd, "]}\n", 3);
    ::close(fd);
}

void
crashHandler(int signo)
{
    const char *reason = "signal:unknown";
    switch (signo) {
      case SIGSEGV: reason = "signal:SIGSEGV"; break;
      case SIGBUS:  reason = "signal:SIGBUS"; break;
      case SIGILL:  reason = "signal:SIGILL"; break;
      case SIGFPE:  reason = "signal:SIGFPE"; break;
      case SIGABRT: reason = "signal:SIGABRT"; break;
    }
    if (g_dump_path[0] != '\0')
        signalSafeDump(g_dump_path, reason);

    // Restore the default action and re-raise so the exit status
    // still reports the signal (and cores still drop if enabled).
    ::signal(signo, SIG_DFL);
    ::raise(signo);
}

} // namespace

bool
FlightRecorder::start(const std::string &ring_path, size_t slots)
{
    if (active()) {
        warn("flight recorder already active; ignoring start(%s)",
             ring_path.c_str());
        return false;
    }
    if (slots == 0)
        slots = kDefaultSlots;

    const int fd = ::open(ring_path.c_str(),
                          O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        warn("flight recorder: cannot create ring '%s'",
             ring_path.c_str());
        return false;
    }
    const size_t bytes = ringBytes(slots);
    if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
        warn("flight recorder: cannot size ring '%s'",
             ring_path.c_str());
        ::close(fd);
        return false;
    }
    void *map = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                       MAP_SHARED, fd, 0);
    ::close(fd); // The mapping keeps the file alive.
    if (map == MAP_FAILED) {
        warn("flight recorder: cannot map ring '%s'",
             ring_path.c_str());
        return false;
    }

    std::memset(map, 0, bytes);
    g_header = static_cast<RingHeader *>(map);
    g_slots = reinterpret_cast<RingSlot *>(
        static_cast<char *>(map) + sizeof(RingHeader));
    g_map_bytes = bytes;
    std::memcpy(g_header->magic, kRingMagic, sizeof(kRingMagic));
    g_header->slot_count = slots;
    g_header->next_seq.store(1, std::memory_order_relaxed);

    detail::g_flight_active.store(true, std::memory_order_release);
    return true;
}

void
FlightRecorder::installCrashDump(const std::string &json_path)
{
    if (!active()) {
        warn("flight recorder inactive; crash dump not installed");
        return;
    }
    if (json_path.size() >= sizeof(g_dump_path)) {
        warn("flight recorder: dump path too long, not installed");
        return;
    }
    std::memcpy(g_dump_path, json_path.c_str(), json_path.size() + 1);

    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = crashHandler;
    sigemptyset(&sa.sa_mask);
    for (const int signo :
         {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT})
    {
        ::sigaction(signo, &sa, nullptr);
    }
}

void
FlightRecorder::record(const char *kind, const std::string &name,
                       const std::string &detail, uint64_t ts_us,
                       uint64_t dur_us)
{
    if (!active())
        return;
    if (ts_us == 0)
        ts_us = static_cast<uint64_t>(obs::detail::traceNowUs());

    const uint64_t seq =
        g_header->next_seq.fetch_add(1, std::memory_order_relaxed);
    RingSlot &s = g_slots[(seq - 1) % g_header->slot_count];
    // Invalidate, fill, commit: readers only trust matching stamps.
    s.seq_commit.store(0, std::memory_order_relaxed);
    s.seq_open.store(seq, std::memory_order_relaxed);
    s.ts_us = ts_us;
    s.dur_us = dur_us;
    sanitizeInto(s.kind, kind);
    sanitizeInto(s.name, name);
    sanitizeInto(s.detail, detail);
    s.seq_commit.store(seq, std::memory_order_release);
}

void
FlightRecorder::recordSpan(const std::string &name, double start_us,
                           double dur_us)
{
    record("span", name, "", static_cast<uint64_t>(start_us),
           static_cast<uint64_t>(dur_us < 0 ? 0 : dur_us));
}

size_t
FlightRecorder::dump(const std::string &json_path,
                     const std::string &reason)
{
    if (!active())
        return 0;
    const std::vector<Event> events = collectEvents(g_header, g_slots);
    // gpuscale-lint: allow(fault-coverage): post-mortem dump; the
    // process is already past the point where injected faults are
    // being modelled, and failure degrades to a warning.
    std::ofstream out(json_path);
    if (!out) {
        warn("flight recorder: cannot write dump '%s'",
             json_path.c_str());
        return 0;
    }
    out << renderEvents(events, reason) << '\n';
    return events.size();
}

void
FlightRecorder::stop()
{
    if (!active())
        return;
    detail::g_flight_active.store(false, std::memory_order_release);
    g_dump_path[0] = '\0';
    ::munmap(g_header, g_map_bytes);
    g_header = nullptr;
    g_slots = nullptr;
    g_map_bytes = 0;
}

std::string
renderRingFile(const std::string &ring_path)
{
    // gpuscale-lint: allow(fault-coverage): offline reader for a
    // ring file left by a dead process; not a crash-consistency
    // surface of the writing run.
    std::ifstream in(ring_path, std::ios::binary);
    if (!in) {
        throw std::runtime_error("flight ring not readable: " +
                                 ring_path);
    }
    std::vector<char> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (bytes.size() < sizeof(RingHeader)) {
        throw std::runtime_error("flight ring truncated: " +
                                 ring_path);
    }
    const auto *header =
        reinterpret_cast<const RingHeader *>(bytes.data());
    if (std::memcmp(header->magic, kRingMagic, sizeof(kRingMagic)) !=
        0)
    {
        throw std::runtime_error("not a flight ring: " + ring_path);
    }
    if (bytes.size() < ringBytes(header->slot_count)) {
        throw std::runtime_error("flight ring truncated: " +
                                 ring_path);
    }
    const auto *slots = reinterpret_cast<const RingSlot *>(
        bytes.data() + sizeof(RingHeader));
    return renderEvents(collectEvents(header, slots), "post-mortem");
}

} // namespace obs
} // namespace gpuscale
