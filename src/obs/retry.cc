/**
 * @file
 * Retry-with-backoff implementation.
 */

#include "retry.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "base/logging.hh"
#include "base/random.hh"
#include "base/string_util.hh"
#include "metrics.hh"

namespace gpuscale {
namespace obs {

namespace {

/** Cached instrument references for the retry path. */
struct RetryMetrics {
    Counter &attempts;
    Counter &exhausted;
    Counter &deadline_capped;

    static RetryMetrics &
    get()
    {
        static RetryMetrics m{
            Registry::instance().counter(
                "retry.attempts", "operations re-attempted after a "
                                  "transient failure"),
            Registry::instance().counter(
                "retry.exhausted", "operations that failed every "
                                   "retry attempt"),
            Registry::instance().counter(
                "retry.deadline.capped",
                "retry loops ended by the elapsed-time budget before "
                "the attempt count ran out"),
        };
        return m;
    }
};

/** Jitter draws; deterministic stream, shared across call sites. */
double
jitterFactor(double jitter)
{
    if (jitter <= 0.0)
        return 1.0;
    // gpuscale-lint: allow(concurrency): one short-held lock per
    // backoff sleep; retries are cold paths by definition.
    static std::mutex mutex;
    static Rng rng(0x7265747279ull); // "retry"
    std::lock_guard<std::mutex> lock(mutex);
    return rng.uniform(std::max(0.0, 1.0 - jitter), 1.0 + jitter);
}

struct PolicyState {
    // gpuscale-lint: allow(concurrency): guards the process-wide
    // policy; read from parallelFor workers, set by tests.
    std::mutex mutex;
    RetryPolicy policy;
    bool initialized = false;
};

PolicyState &
policyState()
{
    static PolicyState state;
    return state;
}

} // namespace

RetryPolicy
RetryPolicy::fromEnv()
{
    RetryPolicy policy;
    const char *text = std::getenv("GPUSCALE_RETRY");
    if (text == nullptr || *text == '\0')
        return policy;

    const auto fields = split(text, ':');
    bool ok = fields.size() >= 1 && fields.size() <= 3;
    if (ok) {
        const auto attempts = parseDouble(fields[0]);
        ok = attempts && *attempts >= 1 &&
             *attempts == static_cast<int>(*attempts);
        if (ok)
            policy.max_attempts = static_cast<int>(*attempts);
    }
    if (ok && fields.size() >= 2) {
        const auto base = parseDouble(fields[1]);
        ok = base && *base >= 0;
        if (ok)
            policy.base_backoff_ms = *base;
    }
    if (ok && fields.size() == 3) {
        const auto cap = parseDouble(fields[2]);
        ok = cap && *cap >= 0;
        if (ok)
            policy.max_backoff_ms = *cap;
    }
    if (!ok) {
        warn("GPUSCALE_RETRY: '%s' is not "
             "attempts[:base_ms[:max_ms]]; using defaults",
             text);
        return RetryPolicy{};
    }
    return policy;
}

RetryPolicy
retryPolicy()
{
    PolicyState &state = policyState();
    std::lock_guard<std::mutex> lock(state.mutex);
    if (!state.initialized) {
        state.policy = RetryPolicy::fromEnv();
        state.initialized = true;
    }
    return state.policy;
}

void
setRetryPolicy(const RetryPolicy &policy)
{
    PolicyState &state = policyState();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.policy = policy;
    state.initialized = true;
}

bool
retryWithBackoff(const RetryPolicy &policy, const char *what,
                 const std::function<bool()> &op)
{
    RetryMetrics &metrics = RetryMetrics::get();
    const int attempts = std::max(1, policy.max_attempts);
    double backoff_ms = policy.base_backoff_ms;
    for (int attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0) {
            metrics.attempts.inc();
            const double capped =
                std::min(backoff_ms, policy.max_backoff_ms);
            const double sleep_ms =
                capped * jitterFactor(policy.jitter);
            if (sleep_ms > 0.0) {
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(
                        sleep_ms));
            }
            backoff_ms *= policy.multiplier;
        }
        if (op())
            return true;
    }
    metrics.exhausted.inc();
    warn("%s: still failing after %d attempt(s); degrading", what,
         attempts);
    return false;
}

bool
retryWithBackoff(const RetryPolicy &policy, const char *what,
                 std::chrono::steady_clock::time_point deadline,
                 const std::function<bool()> &op)
{
    using fp_ms = std::chrono::duration<double, std::milli>;
    RetryMetrics &metrics = RetryMetrics::get();
    const int attempts = std::max(1, policy.max_attempts);
    double backoff_ms = policy.base_backoff_ms;
    for (int attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0) {
            const double remaining_ms =
                fp_ms(deadline - std::chrono::steady_clock::now())
                    .count();
            if (remaining_ms <= 0.0) {
                // The budget, not the attempt count, ended the loop.
                metrics.deadline_capped.inc();
                metrics.exhausted.inc();
                warn("%s: still failing after %d attempt(s) and an "
                     "exhausted deadline budget; degrading",
                     what, attempt);
                return false;
            }
            metrics.attempts.inc();
            const double capped =
                std::min(backoff_ms, policy.max_backoff_ms);
            // Clip the sleep to the remaining budget so the loop
            // wakes at the deadline, not past it.
            const double sleep_ms = std::min(
                capped * jitterFactor(policy.jitter), remaining_ms);
            if (sleep_ms > 0.0)
                std::this_thread::sleep_for(fp_ms(sleep_ms));
            backoff_ms *= policy.multiplier;
        }
        if (op())
            return true;
    }
    metrics.exhausted.inc();
    warn("%s: still failing after %d attempt(s); degrading", what,
         attempts);
    return false;
}

} // namespace obs
} // namespace gpuscale
