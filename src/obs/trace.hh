/**
 * @file
 * Chrome trace-event / Perfetto-compatible span tracing.
 *
 * A TraceSession captures RAII spans (GPUSCALE_TRACE_SCOPE) into
 * per-thread buffers and, at stop(), writes a single JSON document in
 * the Trace Event Format ("traceEvents" array of complete "X" events
 * with microsecond timestamps).  The file loads directly in
 * chrome://tracing or https://ui.perfetto.dev.
 *
 * Costs when no session is active: one relaxed atomic load per scope
 * — instrumentation can stay on in production code.  While active,
 * each scope appends one event to its thread's buffer; the buffer
 * mutex is only ever contended at flush time, so recording is
 * effectively uncontended.
 */

#ifndef GPUSCALE_OBS_TRACE_HH
#define GPUSCALE_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>

#include "flight_recorder.hh"

namespace gpuscale {
namespace obs {

namespace detail {

/** Microseconds on the steady clock since process start. */
double traceNowUs();

/** Append a completed span to the calling thread's buffer. */
void traceRecordComplete(std::string name, double ts_us, double dur_us);

extern std::atomic<bool> g_trace_active;

} // namespace detail

/** Global trace capture control (one session at a time). */
class TraceSession
{
  public:
    /** Cheap check used by every instrumentation point. */
    static bool
    active()
    {
        return detail::g_trace_active.load(std::memory_order_relaxed);
    }

    /**
     * Begin capturing spans; the file is written at stop() (or at
     * process exit if the caller never stops).  Starting while active
     * is a warn-and-ignore.
     */
    static void start(const std::string &path);

    /**
     * Stop capturing, drain every thread buffer, and write the trace
     * file.
     *
     * @return number of span events written (0 if not active).
     */
    static size_t stop();
};

/**
 * RAII span: measures construction-to-destruction on the steady clock
 * and records a complete event into the trace session and/or the
 * flight recorder, whichever is active (two relaxed loads when
 * neither is).
 */
class TraceScope
{
  public:
    explicit TraceScope(std::string name)
    {
        trace_armed_ = TraceSession::active();
        flight_armed_ = FlightRecorder::active();
        if (trace_armed_ || flight_armed_) {
            name_ = std::move(name);
            start_us_ = detail::traceNowUs();
        }
    }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

    ~TraceScope()
    {
        if (trace_armed_ || flight_armed_) {
            const double end_us = detail::traceNowUs();
            if (flight_armed_) {
                FlightRecorder::recordSpan(name_, start_us_,
                                           end_us - start_us_);
            }
            if (trace_armed_) {
                detail::traceRecordComplete(std::move(name_),
                                            start_us_,
                                            end_us - start_us_);
            }
        }
    }

  private:
    std::string name_;
    double start_us_ = 0.0;
    bool trace_armed_ = false;
    bool flight_armed_ = false;
};

} // namespace obs
} // namespace gpuscale

#define GPUSCALE_TRACE_CONCAT2(a, b) a##b
#define GPUSCALE_TRACE_CONCAT(a, b) GPUSCALE_TRACE_CONCAT2(a, b)

/** Open a traced span covering the rest of the enclosing scope. */
#define GPUSCALE_TRACE_SCOPE(name)                                     \
    ::gpuscale::obs::TraceScope GPUSCALE_TRACE_CONCAT(                 \
        gpuscale_trace_scope_, __LINE__)(name)

#endif // GPUSCALE_OBS_TRACE_HH
