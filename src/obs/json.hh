/**
 * @file
 * Minimal JSON support for the telemetry subsystem.
 *
 * Two halves:
 *  - JsonWriter: a streaming writer that handles escaping, nesting,
 *    and comma placement, used by the metrics snapshot, the trace
 *    emitter, and the run-manifest writer.
 *  - parseJson(): a small recursive-descent parser producing a
 *    JsonValue DOM, so tests (and the classify path) can validate
 *    emitted artifacts without an external dependency.
 *
 * Deliberately not a general-purpose JSON library: no comments, no
 * NaN/Inf (written as null), numbers are doubles.
 */

#ifndef GPUSCALE_OBS_JSON_HH
#define GPUSCALE_OBS_JSON_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace gpuscale {
namespace obs {

/** Escape a string's contents for inclusion between JSON quotes. */
std::string jsonEscape(const std::string &s);

/**
 * Streaming JSON writer.
 *
 * Usage:
 *   JsonWriter w(os);
 *   w.beginObject().key("n").value(3).key("xs").beginArray()
 *       .value(1.5).endArray().endObject();
 *
 * Nesting and commas are tracked internally; misuse (a value where a
 * key is required, unbalanced end calls) is a panic, since the writer
 * is only driven by gpuscale code.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os);

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; must be inside an object. */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(uint64_t v);
    JsonWriter &value(int64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(bool v);
    JsonWriter &valueNull();

    /** True once a single complete top-level value has been written. */
    bool complete() const;

  private:
    /** Called before any value/beginX: commas and key bookkeeping. */
    void preValue();

    struct Frame {
        bool is_object = false;
        size_t count = 0;
    };

    std::ostream &os_;
    std::vector<Frame> stack_;
    bool key_pending_ = false;
    bool done_ = false;
};

/** A parsed JSON document node. */
struct JsonValue {
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isNull() const { return type == Type::Null; }
    bool isBool() const { return type == Type::Bool; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &k) const;

    /** find() that panics when the key is missing. */
    const JsonValue &at(const std::string &k) const;
};

/**
 * Parse a complete JSON document.
 *
 * @throw std::runtime_error on malformed input (with offset info).
 */
JsonValue parseJson(const std::string &text);

} // namespace obs
} // namespace gpuscale

#endif // GPUSCALE_OBS_JSON_HH
