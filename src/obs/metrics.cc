/**
 * @file
 * Metrics registry implementation.
 */

#include "metrics.hh"

#include <cmath>
#include <limits>
#include <sstream>

#include "base/logging.hh"
#include "base/string_util.hh"
#include "json.hh"

namespace gpuscale {
namespace obs {

void
Gauge::add(double delta)
{
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
}

namespace {

/** CAS-update an atomic double with a monotone min/max combiner. */
template <typename Cmp>
void
atomicExtreme(std::atomic<double> &slot, double v, Cmp better)
{
    double cur = slot.load(std::memory_order_relaxed);
    while (better(v, cur)) {
        if (slot.compare_exchange_weak(cur, v,
                                       std::memory_order_relaxed)) {
            return;
        }
    }
}

} // namespace

Histogram::Histogram()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    min_.store(std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
    max_.store(-std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
}

size_t
Histogram::bucketIndex(double v)
{
    if (!(v >= kLo)) // NaN, negatives, and tiny values: underflow bin.
        return 0;
    if (v >= kHi)
        return kNumBuckets - 1;
    const double decades = std::log10(v / kLo);
    const auto idx = static_cast<size_t>(decades * kBucketsPerDecade);
    return 1 + std::min(idx, kDecades * kBucketsPerDecade - 1);
}

void
Histogram::record(double v)
{
    buckets_[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
    }
    atomicExtreme(min_, v, [](double a, double b) { return a < b; });
    atomicExtreme(max_, v, [](double a, double b) { return a > b; });
}

uint64_t
Histogram::count() const
{
    return count_.load(std::memory_order_relaxed);
}

double
Histogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

double
Histogram::mean() const
{
    const uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double
Histogram::minSample() const
{
    const double v = min_.load(std::memory_order_relaxed);
    return std::isinf(v) ? 0.0 : v;
}

double
Histogram::maxSample() const
{
    const double v = max_.load(std::memory_order_relaxed);
    return std::isinf(v) ? 0.0 : v;
}

double
Histogram::percentile(double p) const
{
    std::array<uint64_t, kNumBuckets> snap;
    uint64_t total = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
        snap[i] = buckets_[i].load(std::memory_order_relaxed);
        total += snap[i];
    }
    if (total == 0)
        return 0.0;

    p = std::min(100.0, std::max(0.0, p));
    // Rank of the sample we want (1-based, ceil) within the snapshot.
    const auto target = static_cast<uint64_t>(
        std::max(1.0, std::ceil(p / 100.0 * static_cast<double>(total))));

    uint64_t cum = 0;
    size_t bucket = kNumBuckets - 1;
    for (size_t i = 0; i < kNumBuckets; ++i) {
        cum += snap[i];
        if (cum >= target) {
            bucket = i;
            break;
        }
    }

    double rep;
    if (bucket == 0) {
        rep = kLo;
    } else if (bucket == kNumBuckets - 1) {
        rep = kHi;
    } else {
        const double lo_edge =
            kLo * std::pow(10.0, static_cast<double>(bucket - 1) /
                                     kBucketsPerDecade);
        const double hi_edge =
            kLo * std::pow(10.0, static_cast<double>(bucket) /
                                     kBucketsPerDecade);
        rep = std::sqrt(lo_edge * hi_edge);
    }
    // Clamp to the observed range so tiny sample counts do not report
    // values outside what was actually recorded.
    return std::min(maxSample(), std::max(minSample(), rep));
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
    max_.store(-std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
}

Registry &
Registry::instance()
{
    static Registry registry;
    return registry;
}

Counter &
Registry::counter(const std::string &name, const std::string &desc)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &entry = counters_[name];
    if (!entry.instrument) {
        entry.desc = desc;
        entry.instrument = std::make_unique<Counter>();
    }
    return *entry.instrument;
}

Gauge &
Registry::gauge(const std::string &name, const std::string &desc)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &entry = gauges_[name];
    if (!entry.instrument) {
        entry.desc = desc;
        entry.instrument = std::make_unique<Gauge>();
    }
    return *entry.instrument;
}

Histogram &
Registry::histogram(const std::string &name, const std::string &desc)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &entry = histograms_[name];
    if (!entry.instrument) {
        entry.desc = desc;
        entry.instrument = std::make_unique<Histogram>();
    }
    return *entry.instrument;
}

bool
Registry::empty() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_.empty() && gauges_.empty() && histograms_.empty();
}

void
Registry::writeJson(JsonWriter &w) const
{
    std::lock_guard<std::mutex> lock(mu_);
    w.beginObject();

    w.key("counters").beginObject();
    for (const auto &[name, entry] : counters_)
        w.key(name).value(entry.instrument->value());
    w.endObject();

    w.key("gauges").beginObject();
    for (const auto &[name, entry] : gauges_)
        w.key(name).value(entry.instrument->value());
    w.endObject();

    w.key("histograms").beginObject();
    for (const auto &[name, entry] : histograms_) {
        const Histogram &h = *entry.instrument;
        w.key(name).beginObject();
        w.key("count").value(h.count());
        w.key("mean").value(h.mean());
        w.key("min").value(h.minSample());
        w.key("max").value(h.maxSample());
        w.key("p50").value(h.percentile(50));
        w.key("p90").value(h.percentile(90));
        w.key("p99").value(h.percentile(99));
        w.endObject();
    }
    w.endObject();

    w.endObject();
}

std::string
Registry::snapshotJson() const
{
    std::ostringstream os;
    JsonWriter w(os);
    writeJson(w);
    return os.str();
}

TextTable
Registry::snapshotTable() const
{
    std::lock_guard<std::mutex> lock(mu_);
    TextTable t;
    t.addColumn("metric");
    t.addColumn("kind");
    t.addColumn("value", TextTable::Align::Right);
    t.addColumn("description");

    for (const auto &[name, entry] : counters_) {
        t.beginRow();
        t.cell(name);
        t.cell("counter");
        t.cell(static_cast<int64_t>(entry.instrument->value()));
        t.cell(entry.desc);
    }
    for (const auto &[name, entry] : gauges_) {
        t.beginRow();
        t.cell(name);
        t.cell("gauge");
        t.cell(entry.instrument->value());
        t.cell(entry.desc);
    }
    for (const auto &[name, entry] : histograms_) {
        const Histogram &h = *entry.instrument;
        t.beginRow();
        t.cell(name);
        t.cell("histogram");
        t.cell(strprintf("n=%llu mean=%s p50=%s p90=%s p99=%s",
                         static_cast<unsigned long long>(h.count()),
                         formatDoubleGeneral(h.mean(), 3).c_str(),
                         formatDoubleGeneral(h.percentile(50),
                                             3).c_str(),
                         formatDoubleGeneral(h.percentile(90),
                                             3).c_str(),
                         formatDoubleGeneral(h.percentile(99),
                                             3).c_str()));
        t.cell(entry.desc);
    }
    return t;
}

void
Registry::resetAll()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &[name, entry] : counters_)
        entry.instrument->reset();
    for (auto &[name, entry] : gauges_)
        entry.instrument->reset();
    for (auto &[name, entry] : histograms_)
        entry.instrument->reset();
}

} // namespace obs
} // namespace gpuscale
