/**
 * @file
 * Metrics registry implementation.
 */

#include "metrics.hh"

#include <cmath>
#include <limits>
#include <sstream>

#include "base/logging.hh"
#include "base/string_util.hh"
#include "json.hh"
#include "sharded.hh"

namespace gpuscale {
namespace obs {

void
Gauge::add(double delta)
{
    detail::atomicAdd(value_, delta);
}

namespace detail {

namespace {

/** CAS-update an atomic double with a monotone min/max combiner. */
template <typename Cmp>
void
atomicExtreme(std::atomic<double> &slot, double v, Cmp better)
{
    double cur = slot.load(std::memory_order_relaxed);
    while (better(v, cur)) {
        if (slot.compare_exchange_weak(cur, v,
                                       std::memory_order_relaxed)) {
            return;
        }
    }
}

} // namespace

void
atomicAdd(std::atomic<double> &slot, double delta)
{
    double cur = slot.load(std::memory_order_relaxed);
    while (!slot.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
    }
}

void
atomicMin(std::atomic<double> &slot, double v)
{
    atomicExtreme(slot, v, [](double a, double b) { return a < b; });
}

void
atomicMax(std::atomic<double> &slot, double v)
{
    atomicExtreme(slot, v, [](double a, double b) { return a > b; });
}

double
percentileFromBuckets(
    const std::array<uint64_t, Histogram::kNumBuckets> &snap, double p,
    double min_sample, double max_sample)
{
    constexpr size_t kNumBuckets = Histogram::kNumBuckets;
    uint64_t total = 0;
    for (size_t i = 0; i < kNumBuckets; ++i)
        total += snap[i];
    if (total == 0)
        return 0.0;

    p = std::min(100.0, std::max(0.0, p));
    // Rank of the sample we want (1-based, ceil) within the snapshot.
    const auto target = static_cast<uint64_t>(
        std::max(1.0, std::ceil(p / 100.0 * static_cast<double>(total))));

    uint64_t cum = 0;
    size_t bucket = kNumBuckets - 1;
    for (size_t i = 0; i < kNumBuckets; ++i) {
        cum += snap[i];
        if (cum >= target) {
            bucket = i;
            break;
        }
    }

    double rep;
    if (bucket == 0) {
        rep = Histogram::kLo;
    } else if (bucket == kNumBuckets - 1) {
        rep = Histogram::kHi;
    } else {
        const double lo_edge =
            Histogram::kLo *
            std::pow(10.0, static_cast<double>(bucket - 1) /
                               Histogram::kBucketsPerDecade);
        const double hi_edge =
            Histogram::kLo *
            std::pow(10.0, static_cast<double>(bucket) /
                               Histogram::kBucketsPerDecade);
        rep = std::sqrt(lo_edge * hi_edge);
    }
    // Clamp to the observed range so tiny sample counts do not report
    // values outside what was actually recorded.  A concurrent
    // recorder may have bumped a bucket before publishing min/max
    // (still NaN); skip the clamp rather than poison the result.
    if (std::isnan(min_sample) || std::isnan(max_sample))
        return rep;
    return std::min(max_sample, std::max(min_sample, rep));
}

} // namespace detail

Histogram::Histogram()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    min_.store(std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
    max_.store(-std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
}

size_t
Histogram::bucketIndex(double v)
{
    if (!(v >= kLo)) // NaN, negatives, and tiny values: underflow bin.
        return 0;
    if (v >= kHi)
        return kNumBuckets - 1;
    const double decades = std::log10(v / kLo);
    const auto idx = static_cast<size_t>(decades * kBucketsPerDecade);
    return 1 + std::min(idx, kDecades * kBucketsPerDecade - 1);
}

void
Histogram::record(double v)
{
    buckets_[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    detail::atomicAdd(sum_, v);
    detail::atomicMin(min_, v);
    detail::atomicMax(max_, v);
}

uint64_t
Histogram::count() const
{
    return count_.load(std::memory_order_relaxed);
}

double
Histogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

double
Histogram::mean() const
{
    const uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double
Histogram::minSample() const
{
    // +infinity is the untouched seed, i.e. no samples yet; report
    // that as NaN so an empty histogram is never mistaken for one
    // that recorded 0.0 (JSON serializes the NaN as null).
    const double v = min_.load(std::memory_order_relaxed);
    return std::isinf(v) ? std::numeric_limits<double>::quiet_NaN()
                         : v;
}

double
Histogram::maxSample() const
{
    const double v = max_.load(std::memory_order_relaxed);
    return std::isinf(v) ? std::numeric_limits<double>::quiet_NaN()
                         : v;
}

double
Histogram::percentile(double p) const
{
    std::array<uint64_t, kNumBuckets> snap;
    for (size_t i = 0; i < kNumBuckets; ++i)
        snap[i] = buckets_[i].load(std::memory_order_relaxed);
    return detail::percentileFromBuckets(snap, p, minSample(),
                                         maxSample());
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
    max_.store(-std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
}

Registry &
Registry::instance()
{
    // Intentionally leaked: the registry is touched by pool workers
    // and detached threads right up to process exit, so running its
    // destructor from the atexit chain races any late increment
    // (use-after-free on the instrument maps).  An immortal instance
    // makes shutdown-order safe by construction; the OS reclaims the
    // memory.
    static Registry &registry = *new Registry();
    return registry;
}

Counter &
Registry::counter(const std::string &name, const std::string &desc)
{
    std::lock_guard<std::mutex> lock(mu_);
    panic_if(sharded_counters_.count(name) != 0,
             "metric '%s' is already a sharded counter", name.c_str());
    auto &entry = counters_[name];
    if (!entry.instrument) {
        entry.desc = desc;
        entry.instrument = std::make_unique<Counter>();
    }
    return *entry.instrument;
}

Gauge &
Registry::gauge(const std::string &name, const std::string &desc)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &entry = gauges_[name];
    if (!entry.instrument) {
        entry.desc = desc;
        entry.instrument = std::make_unique<Gauge>();
    }
    return *entry.instrument;
}

Histogram &
Registry::histogram(const std::string &name, const std::string &desc)
{
    std::lock_guard<std::mutex> lock(mu_);
    panic_if(sharded_histograms_.count(name) != 0,
             "metric '%s' is already a sharded histogram",
             name.c_str());
    auto &entry = histograms_[name];
    if (!entry.instrument) {
        entry.desc = desc;
        entry.instrument = std::make_unique<Histogram>();
    }
    return *entry.instrument;
}

ShardedCounter &
Registry::shardedCounter(const std::string &name,
                         const std::string &desc)
{
    std::lock_guard<std::mutex> lock(mu_);
    panic_if(counters_.count(name) != 0,
             "metric '%s' is already a plain counter", name.c_str());
    auto &entry = sharded_counters_[name];
    if (!entry.instrument) {
        entry.desc = desc;
        entry.instrument = std::make_unique<ShardedCounter>();
    }
    return *entry.instrument;
}

ShardedHistogram &
Registry::shardedHistogram(const std::string &name,
                           const std::string &desc)
{
    std::lock_guard<std::mutex> lock(mu_);
    panic_if(histograms_.count(name) != 0,
             "metric '%s' is already a plain histogram", name.c_str());
    auto &entry = sharded_histograms_[name];
    if (!entry.instrument) {
        entry.desc = desc;
        entry.instrument = std::make_unique<ShardedHistogram>();
    }
    return *entry.instrument;
}

bool
Registry::empty() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_.empty() && gauges_.empty() &&
           histograms_.empty() && sharded_counters_.empty() &&
           sharded_histograms_.empty();
}

namespace {

/** Histogram-like stats block shared by plain and sharded kinds. */
template <typename H>
void
writeHistogramStats(JsonWriter &w, const H &h)
{
    w.beginObject();
    w.key("count").value(h.count());
    w.key("mean").value(h.mean());
    w.key("min").value(h.minSample());
    w.key("max").value(h.maxSample());
    w.key("p50").value(h.percentile(50));
    w.key("p90").value(h.percentile(90));
    w.key("p99").value(h.percentile(99));
    w.endObject();
}

} // namespace

void
Registry::writeJson(JsonWriter &w) const
{
    std::lock_guard<std::mutex> lock(mu_);
    w.beginObject();

    // Sharded instruments snapshot as their merged totals under the
    // same "counters"/"histograms" groups: consumers see one value
    // space, and sharding stays an implementation detail of the hot
    // path.  Cross-kind name collisions are rejected at registration.
    w.key("counters").beginObject();
    for (const auto &[name, entry] : counters_)
        w.key(name).value(entry.instrument->value());
    for (const auto &[name, entry] : sharded_counters_)
        w.key(name).value(entry.instrument->value());
    w.endObject();

    w.key("gauges").beginObject();
    for (const auto &[name, entry] : gauges_)
        w.key(name).value(entry.instrument->value());
    w.endObject();

    w.key("histograms").beginObject();
    for (const auto &[name, entry] : histograms_) {
        w.key(name);
        writeHistogramStats(w, *entry.instrument);
    }
    for (const auto &[name, entry] : sharded_histograms_) {
        w.key(name);
        writeHistogramStats(w, *entry.instrument);
    }
    w.endObject();

    // Per-shard breakdowns of the sharded instruments (event counts
    // per stripe), so balance across worker threads can be audited
    // from a snapshot file (`gpuscale-stat balance`).
    w.key("shards").beginObject();
    for (const auto &[name, entry] : sharded_counters_) {
        w.key(name).beginArray();
        for (const uint64_t v : entry.instrument->shardValues())
            w.value(v);
        w.endArray();
    }
    for (const auto &[name, entry] : sharded_histograms_) {
        w.key(name).beginArray();
        for (const uint64_t v : entry.instrument->shardCounts())
            w.value(v);
        w.endArray();
    }
    w.endObject();

    w.endObject();
}

std::string
Registry::snapshotJson() const
{
    std::ostringstream os;
    JsonWriter w(os);
    writeJson(w);
    return os.str();
}

namespace {

/** "sweep.cache.hits" -> "gpuscale_sweep_cache_hits". */
std::string
expositionName(const std::string &name)
{
    std::string out = "gpuscale_";
    for (const char c : name)
        out += c == '.' ? '_' : c;
    return out;
}

void
expositionHeader(std::ostream &os, const std::string &name,
                 const std::string &desc, const char *type)
{
    if (!desc.empty())
        os << "# HELP " << name << ' ' << desc << '\n';
    os << "# TYPE " << name << ' ' << type << '\n';
}

/** Summary block (quantiles, _sum, _count) for either histogram. */
template <typename H>
void
expositionSummary(std::ostream &os, const std::string &name,
                  const std::string &desc, const H &h)
{
    expositionHeader(os, name, desc, "summary");
    if (!h.empty()) {
        for (const auto &[label, p] :
             {std::pair<const char *, double>{"0.5", 50},
              {"0.9", 90},
              {"0.99", 99}})
        {
            os << name << "{quantile=\"" << label << "\"} "
               << formatDoubleShortest(h.percentile(p)) << '\n';
        }
    }
    os << name << "_sum " << formatDoubleShortest(h.sum()) << '\n';
    os << name << "_count " << h.count() << '\n';
}

} // namespace

void
Registry::writeExposition(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[name, entry] : counters_) {
        const std::string ename = expositionName(name);
        expositionHeader(os, ename, entry.desc, "counter");
        os << ename << ' ' << entry.instrument->value() << '\n';
    }
    for (const auto &[name, entry] : sharded_counters_) {
        const std::string ename = expositionName(name);
        expositionHeader(os, ename, entry.desc, "counter");
        os << ename << ' ' << entry.instrument->value() << '\n';
    }
    for (const auto &[name, entry] : gauges_) {
        const std::string ename = expositionName(name);
        expositionHeader(os, ename, entry.desc, "gauge");
        os << ename << ' '
           << formatDoubleShortest(entry.instrument->value()) << '\n';
    }
    for (const auto &[name, entry] : histograms_) {
        expositionSummary(os, expositionName(name), entry.desc,
                          *entry.instrument);
    }
    for (const auto &[name, entry] : sharded_histograms_) {
        expositionSummary(os, expositionName(name), entry.desc,
                          *entry.instrument);
    }
}

TextTable
Registry::snapshotTable() const
{
    std::lock_guard<std::mutex> lock(mu_);
    TextTable t;
    t.addColumn("metric");
    t.addColumn("kind");
    t.addColumn("value", TextTable::Align::Right);
    t.addColumn("description");

    // Sharded instruments list under the same kind labels as their
    // plain siblings; the table shows merged totals (see writeJson).
    for (const auto &[name, entry] : counters_) {
        t.beginRow();
        t.cell(name);
        t.cell("counter");
        t.cell(static_cast<int64_t>(entry.instrument->value()));
        t.cell(entry.desc);
    }
    for (const auto &[name, entry] : sharded_counters_) {
        t.beginRow();
        t.cell(name);
        t.cell("counter");
        t.cell(static_cast<int64_t>(entry.instrument->value()));
        t.cell(entry.desc);
    }
    for (const auto &[name, entry] : gauges_) {
        t.beginRow();
        t.cell(name);
        t.cell("gauge");
        t.cell(entry.instrument->value());
        t.cell(entry.desc);
    }
    const auto histogramRow = [&t](const std::string &name,
                                   const auto &h,
                                   const std::string &desc) {
        t.beginRow();
        t.cell(name);
        t.cell("histogram");
        t.cell(strprintf("n=%llu mean=%s p50=%s p90=%s p99=%s",
                         static_cast<unsigned long long>(h.count()),
                         formatDoubleGeneral(h.mean(), 3).c_str(),
                         formatDoubleGeneral(h.percentile(50),
                                             3).c_str(),
                         formatDoubleGeneral(h.percentile(90),
                                             3).c_str(),
                         formatDoubleGeneral(h.percentile(99),
                                             3).c_str()));
        t.cell(desc);
    };
    for (const auto &[name, entry] : histograms_)
        histogramRow(name, *entry.instrument, entry.desc);
    for (const auto &[name, entry] : sharded_histograms_)
        histogramRow(name, *entry.instrument, entry.desc);
    return t;
}

void
Registry::resetAll()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &[name, entry] : counters_)
        entry.instrument->reset();
    for (auto &[name, entry] : gauges_)
        entry.instrument->reset();
    for (auto &[name, entry] : histograms_)
        entry.instrument->reset();
    for (auto &[name, entry] : sharded_counters_)
        entry.instrument->reset();
    for (auto &[name, entry] : sharded_histograms_)
        entry.instrument->reset();
}

} // namespace obs
} // namespace gpuscale
