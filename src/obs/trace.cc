/**
 * @file
 * Trace emitter implementation.
 */

#include "trace.hh"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "base/logging.hh"
#include "json.hh"

namespace gpuscale {
namespace obs {

namespace detail {

std::atomic<bool> g_trace_active{false};

namespace {

struct TraceEvent {
    std::string name;
    double ts_us;
    double dur_us;
};

/**
 * One buffer per thread that ever recorded a span.  The owning thread
 * appends under the buffer mutex, which is uncontended except while
 * stop() drains; shared_ptr ownership keeps buffers of exited threads
 * alive in the global list until they are drained.
 */
struct ThreadBuffer {
    // gpuscale-lint: allow(concurrency): per-thread span buffer;
    // contended only when stop() drains a still-recording thread.
    std::mutex mu;
    std::vector<TraceEvent> events;
    uint32_t tid;
};

struct TraceState {
    // gpuscale-lint: allow(concurrency): guards path, buffer list,
    // and tid allocation — session control, never the record path.
    std::mutex mu;
    std::string path;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    uint32_t next_tid = 1;
    bool atexit_registered = false;
};

TraceState &
state()
{
    static TraceState *s = new TraceState; // leaked: usable at exit
    return *s;
}

ThreadBuffer &
threadBuffer()
{
    thread_local std::shared_ptr<ThreadBuffer> tl_buffer;
    if (!tl_buffer) {
        tl_buffer = std::make_shared<ThreadBuffer>();
        TraceState &s = state();
        std::lock_guard<std::mutex> lock(s.mu);
        tl_buffer->tid = s.next_tid++;
        s.buffers.push_back(tl_buffer);
    }
    return *tl_buffer;
}

std::chrono::steady_clock::time_point
processEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

void
atexitFlush()
{
    TraceSession::stop();
}

} // namespace

double
traceNowUs()
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - processEpoch())
        .count();
}

void
traceRecordComplete(std::string name, double ts_us, double dur_us)
{
    if (!g_trace_active.load(std::memory_order_relaxed))
        return; // session stopped while the span was open
    ThreadBuffer &buf = threadBuffer();
    std::lock_guard<std::mutex> lock(buf.mu);
    buf.events.push_back(TraceEvent{std::move(name), ts_us, dur_us});
}

} // namespace detail

void
TraceSession::start(const std::string &path)
{
    using detail::state;
    detail::TraceState &s = state();
    {
        std::lock_guard<std::mutex> lock(s.mu);
        if (detail::g_trace_active.load(std::memory_order_relaxed)) {
            warn("trace session already active; ignoring start(%s)",
                 path.c_str());
            return;
        }
        s.path = path;
        if (!s.atexit_registered) {
            std::atexit(detail::atexitFlush);
            s.atexit_registered = true;
        }
    }
    detail::g_trace_active.store(true, std::memory_order_release);
}

size_t
TraceSession::stop()
{
    using detail::state;
    if (!detail::g_trace_active.exchange(false,
                                         std::memory_order_acq_rel)) {
        return 0;
    }

    detail::TraceState &s = state();
    std::string path;
    std::vector<std::shared_ptr<detail::ThreadBuffer>> buffers;
    {
        std::lock_guard<std::mutex> lock(s.mu);
        path = s.path;
        buffers = s.buffers; // keep registrations for a later session
    }

    // gpuscale-lint: allow(fault-coverage): trace export is
    // best-effort telemetry; a failed write degrades to a warning
    // and never gates census results.
    std::ofstream os(path);
    if (!os) {
        warn("cannot write trace file %s", path.c_str());
        return 0;
    }

    size_t written = 0;
    JsonWriter w(os);
    w.beginObject();
    w.key("displayTimeUnit").value("ms");
    w.key("traceEvents").beginArray();
    for (const auto &buf : buffers) {
        std::vector<detail::TraceEvent> events;
        {
            std::lock_guard<std::mutex> lock(buf->mu);
            events.swap(buf->events);
        }
        if (events.empty())
            continue;
        // Thread-name metadata row so viewers label the track.
        w.beginObject();
        w.key("name").value("thread_name");
        w.key("ph").value("M");
        w.key("pid").value(1);
        w.key("tid").value(static_cast<uint64_t>(buf->tid));
        w.key("args").beginObject();
        w.key("name").value(strprintf("gpuscale-thread-%u", buf->tid));
        w.endObject();
        w.endObject();
        for (const auto &ev : events) {
            w.beginObject();
            w.key("name").value(ev.name);
            w.key("cat").value("gpuscale");
            w.key("ph").value("X");
            w.key("ts").value(ev.ts_us);
            w.key("dur").value(ev.dur_us);
            w.key("pid").value(1);
            w.key("tid").value(static_cast<uint64_t>(buf->tid));
            w.endObject();
            ++written;
        }
    }
    w.endArray();
    w.endObject();
    return written;
}

} // namespace obs
} // namespace gpuscale
