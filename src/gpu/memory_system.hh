/**
 * @file
 * DRAM subsystem model: achievable bandwidth and loaded latency.
 *
 * Bandwidth scales linearly with the memory clock (the paper's 8.3x
 * knob).  Loaded latency follows an M/D/1-style queueing inflation:
 * as demanded bandwidth approaches the sustainable peak, the average
 * access latency grows sharply.  The latency component is what makes
 * low-occupancy kernels plateau: they cannot queue enough requests to
 * saturate the interface, so their runtime is governed by (mostly
 * clock-invariant) access latency rather than bandwidth.
 */

#ifndef GPUSCALE_GPU_MEMORY_SYSTEM_HH
#define GPUSCALE_GPU_MEMORY_SYSTEM_HH

namespace gpuscale {
namespace gpu {

struct GpuConfig;

/** Snapshot of the DRAM model for a given demand level. */
struct DramState {
    /** Sustainable bandwidth (bytes/s) at this configuration. */
    double peak_bw = 0.0;

    /** Bandwidth actually delivered to the workload (bytes/s). */
    double achieved_bw = 0.0;

    /** Utilization = achieved / peak, in [0, 1). */
    double utilization = 0.0;

    /** Average loaded access latency in seconds. */
    double loaded_latency_s = 0.0;
};

/**
 * DRAM interface model.
 *
 * Stateless aside from the configuration; evaluate() maps a bandwidth
 * demand to the achieved bandwidth and loaded latency.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const GpuConfig &cfg);

    /**
     * Evaluate the interface under a demand.
     *
     * @param demand_bw bytes/s the workload would consume if the
     *        interface were infinitely fast.
     * @return achieved bandwidth (capped at the sustainable peak) and
     *         the queueing-inflated average latency.
     */
    DramState evaluate(double demand_bw) const;

    /** Unloaded access latency in seconds (clock invariant). */
    double unloadedLatency() const;

    /** Sustainable peak bandwidth in bytes/s. */
    double peakBandwidth() const;

  private:
    double peak_bw_;
    double unloaded_latency_s_;
};

} // namespace gpu
} // namespace gpuscale

#endif // GPUSCALE_GPU_MEMORY_SYSTEM_HH
