/**
 * @file
 * Occupancy model: how many workgroups/wavefronts a CU can hold.
 *
 * Occupancy is the binding constraint behind several taxonomy classes:
 * latency-bound kernels are those whose occupancy is too low to hide
 * memory latency, and parallelism-starved kernels are those whose
 * launch has too few workgroups to fill a large GPU at any occupancy.
 */

#ifndef GPUSCALE_GPU_OCCUPANCY_HH
#define GPUSCALE_GPU_OCCUPANCY_HH

#include <cstdint>
#include <string>

namespace gpuscale {
namespace gpu {

struct GpuConfig;
struct KernelDesc;

/** Which resource bounds the per-CU occupancy. */
enum class OccupancyLimiter {
    WavefrontSlots,
    WorkgroupSlots,
    Registers,
    Lds,
    LaunchSize, ///< fewer workgroups than the machine can hold
};

/** Resolved occupancy for one (kernel, config) pair. */
struct Occupancy {
    /** Workgroups resident per CU (>= 1 whenever the kernel fits). */
    int wgs_per_cu = 0;

    /** Wavefronts resident per CU. */
    int waves_per_cu = 0;

    /** Workgroups actually resident machine-wide (launch-capped). */
    int64_t active_wgs = 0;

    /** Wavefronts actually resident machine-wide. */
    int64_t active_waves = 0;

    /** CUs with at least one workgroup. */
    int used_cus = 0;

    /** The binding constraint. */
    OccupancyLimiter limiter = OccupancyLimiter::WavefrontSlots;

    /** Residency as a fraction of the wavefront-slot ceiling, [0,1]. */
    double waveSlotFraction(const GpuConfig &cfg) const;
};

/**
 * Compute occupancy for a kernel on a configuration.
 *
 * fatal()s if the kernel cannot fit at all (e.g., LDS request larger
 * than a CU's LDS), matching runtime behaviour of a real driver.
 */
Occupancy computeOccupancy(const KernelDesc &kernel, const GpuConfig &cfg);

/** Human-readable limiter name. */
std::string limiterName(OccupancyLimiter limiter);

} // namespace gpu
} // namespace gpuscale

#endif // GPUSCALE_GPU_OCCUPANCY_HH
