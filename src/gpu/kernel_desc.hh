/**
 * @file
 * Kernel descriptors: the static resource profile of a GPGPU kernel.
 *
 * A KernelDesc is the model's stand-in for an OpenCL kernel binary plus
 * its launch parameters.  It captures everything the timing models need
 * to reproduce the scaling behaviours catalogued by the paper: launch
 * geometry, per-work-item instruction mix, memory locality, occupancy
 * limiters, dependency structure, and host-side overheads.
 */

#ifndef GPUSCALE_GPU_KERNEL_DESC_HH
#define GPUSCALE_GPU_KERNEL_DESC_HH

#include <cstdint>
#include <string>

namespace gpuscale {
namespace gpu {

struct GpuConfig;

/**
 * Static description of one GPGPU kernel and its launch.
 *
 * All "per work-item" quantities are averages over the launch; the
 * models multiply them back up by the launch geometry.  Values are
 * doubles so suite definitions can express fractional averages (e.g.,
 * 0.25 atomics per work-item).
 */
struct KernelDesc {
    /** Identifier, conventionally "suite/program/kernel". */
    std::string name;

    //
    // Launch geometry.
    //

    /** Workgroups per kernel launch. */
    int64_t num_workgroups = 1024;

    /** Work-items per workgroup (1..1024). */
    int work_items_per_wg = 256;

    /** Host-side launches of this kernel per program run. */
    int64_t launches = 1;

    //
    // Per-work-item instruction mix.
    //

    /** Vector-ALU instructions per work-item. */
    double valu_ops = 100.0;

    /** Scalar-ALU instructions per wavefront (amortized control). */
    double salu_ops_per_wave = 20.0;

    /** Transcendental ops per work-item (quarter-rate on the SIMD). */
    double sfu_ops = 0.0;

    /** Vector-memory load instructions per work-item. */
    double mem_loads = 10.0;

    /** Vector-memory store instructions per work-item. */
    double mem_stores = 2.0;

    /** Useful bytes touched per lane per memory instruction. */
    double bytes_per_access = 4.0;

    /**
     * Coalescing efficiency in (0, 1]: the fraction of each fetched
     * 64B line that is useful.  1.0 = perfectly coalesced unit-stride;
     * 4/64 = one 4-byte word used per line (gather/scatter).
     */
    double coalescing = 1.0;

    /** LDS accesses per work-item. */
    double lds_ops = 0.0;

    //
    // Occupancy limiters.
    //

    /** LDS bytes statically allocated per workgroup. */
    double lds_bytes_per_wg = 0.0;

    /** Vector registers per work-item (1..256). */
    int vgprs = 32;

    //
    // Control behaviour.
    //

    /**
     * Branch divergence in [0, 1): the fraction of issued vector
     * cycles wasted on inactive lanes.  0 = fully convergent.
     */
    double branch_divergence = 0.0;

    /** Workgroup barriers executed per work-item. */
    double barriers = 0.0;

    //
    // Memory locality.
    //

    /**
     * Fraction of memory accesses that *could* hit the L1 when the
     * per-workgroup working set fits (intra-workgroup temporal reuse).
     */
    double l1_reuse = 0.5;

    /**
     * Fraction of L1 misses that *could* hit the L2 when the aggregate
     * working set fits (inter-workgroup / read-shared reuse).
     */
    double l2_reuse = 0.5;

    /** Private working-set bytes per workgroup. */
    double footprint_bytes_per_wg = 64.0 * 1024;

    /** Read-shared bytes touched by all workgroups (tables, halos). */
    double shared_footprint_bytes = 0.0;

    //
    // Dependency structure.
    //

    /**
     * Memory-level parallelism: independent outstanding memory
     * requests per wavefront.  1.0 = strict pointer chasing.
     */
    double mlp = 4.0;

    /**
     * Fraction of a launch's work that is effectively serialized on
     * one CU (single-workgroup reduction phases, ordered sections).
     */
    double serial_fraction = 0.0;

    /** Global atomic operations per work-item. */
    double atomic_ops = 0.0;

    /**
     * Contention exponent for atomics in [0, 1]: 0 = atomics to
     * disjoint addresses (no retries), 1 = all atomics hammer one
     * address (retry cost grows with the number of active waves).
     */
    double atomic_contention = 0.0;

    //
    // Host-side behaviour.
    //

    /** Host + runtime + dispatch overhead per launch, microseconds. */
    double host_overhead_us = 8.0;

    //
    // Derived quantities.
    //

    /** Wavefronts per workgroup on the given machine. */
    int wavesPerWg(const GpuConfig &cfg) const;

    /** Total wavefronts in one launch. */
    int64_t totalWaves(const GpuConfig &cfg) const;

    /** Total work-items in one launch. */
    int64_t totalWorkItems() const;

    /** Total vector-memory instructions in one launch. */
    double totalMemInsts() const;

    /** Useful bytes requested by one launch. */
    double totalBytesRequested() const;

    /** fatal() with a descriptive message if the descriptor is bad. */
    void validate() const;

    /** One-line human-readable summary. */
    std::string describe() const;
};

/**
 * Classification helpers used by the workload suites to sanity-check
 * that a descriptor lands in the regime its archetype intends.
 *
 * @param desc the kernel.
 * @return flops per DRAM byte assuming zero cache reuse.
 */
double arithmeticIntensity(const KernelDesc &desc);

} // namespace gpu
} // namespace gpuscale

#endif // GPUSCALE_GPU_KERNEL_DESC_HH
