/**
 * @file
 * The stage-3 census kernel: a flat, branch-light clock-domain loop.
 *
 * This translation unit is compiled separately so the optional
 * vectorization-report flags (GPUSCALE_VEC_REPORT) apply to it alone,
 * and so ci/check_vectorization.sh can compile just this file and
 * assert the marked loop below auto-vectorizes.  Keep the inner loop
 * free of branches, virtual calls, and struct indirection: only
 * t_dram varies with the memory clock, so everything else is hoisted
 * to the (CU, core clock) level and the loop is division + max +
 * multiply-add on plain double arrays.
 */

#include "analytic_batch.hh"

namespace gpuscale {
namespace gpu {
namespace batch {

namespace {

/**
 * The serial/non-serial variants are split at compile time so the
 * common case (no Amdahl phase) pays nothing and the serial case
 * stays branch-free inside the loop.
 */
template <bool kHasSerial>
void
runBatchImpl(const BatchPlan &plan, double *out)
{
    const size_t n_core = plan.core_clk_hz.size();
    const size_t n_mem = plan.dram_bw.size();
    const double *__restrict__ dram_bw = plan.dram_bw.data();

    // Hoist the scalar plan fields: `out` could legally alias the
    // plan's storage as far as the compiler knows, and reloading them
    // per point would defeat vectorization.
    const double launches = plan.launches;
    const double launch_overhead_s = plan.launch_overhead_s;
    const double parallel_fraction = plan.parallel_fraction;
    const double serial_fraction = plan.serial_fraction;
    const double s_bytes = plan.serial_cu.dram_bytes;

    // The Amdahl phase always runs on the one-CU machine, so its
    // core-domain max is CU-invariant: hoist it per core clock.
    std::vector<double> serial_base(kHasSerial ? n_core : 0);
    if constexpr (kHasSerial) {
        for (size_t c = 0; c < n_core; ++c) {
            serial_base[c] = computeCoreTerms(
                                 plan.kernel, plan.serial_cu,
                                 plan.core_clk_hz[c],
                                 plan.core_time_s[c], plan.l2_hop_s[c],
                                 plan.dram_hop_s[c],
                                 plan.atomic_rate[c])
                                 .base_max;
        }
    }

    double *__restrict__ row = out;
    for (const CuTerms &cu : plan.cu) {
        const double bytes = cu.dram_bytes;
        for (size_t c = 0; c < n_core; ++c) {
            const CoreTerms ct = computeCoreTerms(
                plan.kernel, cu, plan.core_clk_hz[c],
                plan.core_time_s[c], plan.l2_hop_s[c],
                plan.dram_hop_s[c], plan.atomic_rate[c]);
            const double base = ct.base_max;
            const double s_base = kHasSerial ? serial_base[c] : 0.0;
            // GPUSCALE_STAGE3_LOOP: the flat memory-clock sweep the
            // vectorization gate asserts on (marker consumed by
            // ci/check_vectorization.sh; keep it on the line above
            // the `for`).
            for (size_t m = 0; m < n_mem; ++m) {
                const double t_dram = bytes / dram_bw[m];
                double kernel_time = std::max(base, t_dram);
                if constexpr (kHasSerial) {
                    const double s_core =
                        std::max(s_base, s_bytes / dram_bw[m]);
                    kernel_time = parallel_fraction * kernel_time +
                                  serial_fraction * s_core;
                }
                row[m] = launches * (kernel_time + launch_overhead_s);
            }
            row += n_mem;
        }
    }
}

} // namespace

void
runBatch(const BatchPlan &plan, double *out)
{
    if (plan.has_serial)
        runBatchImpl<true>(plan, out);
    else
        runBatchImpl<false>(plan, out);
}

} // namespace batch
} // namespace gpu
} // namespace gpuscale
