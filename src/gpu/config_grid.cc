/**
 * @file
 * ConfigGrid implementation.
 */

#include "config_grid.hh"

#include "base/logging.hh"
#include "base/string_util.hh"

namespace gpuscale {
namespace gpu {

namespace {

template <typename T>
void
checkGridAxis(const std::vector<T> &axis, const char *name)
{
    fatal_if(axis.empty(), "config-grid axis '%s' is empty", name);
    for (size_t i = 1; i < axis.size(); ++i) {
        fatal_if(axis[i] <= axis[i - 1],
                 "config-grid axis '%s' is not strictly increasing",
                 name);
    }
}

void
appendField(std::string &out, double v)
{
    out += formatDoubleShortest(v);
    out += ',';
}

void
appendField(std::string &out, int v)
{
    out += std::to_string(v);
    out += ',';
}

} // namespace

size_t
ConfigGrid::flatten(size_t cu_i, size_t core_i, size_t mem_i) const
{
    panic_if(cu_i >= numCu() || core_i >= numCoreClk() ||
                 mem_i >= numMemClk(),
             "config-grid index (%zu, %zu, %zu) out of range",
             cu_i, core_i, mem_i);
    return (cu_i * numCoreClk() + core_i) * numMemClk() + mem_i;
}

GpuConfig
ConfigGrid::at(size_t cu_i, size_t core_i, size_t mem_i) const
{
    panic_if(cu_i >= numCu() || core_i >= numCoreClk() ||
                 mem_i >= numMemClk(),
             "config-grid index (%zu, %zu, %zu) out of range",
             cu_i, core_i, mem_i);
    GpuConfig cfg = base;
    cfg.num_cus = cu_values[cu_i];
    cfg.core_clk_mhz = core_clks_mhz[core_i];
    cfg.mem_clk_mhz = mem_clks_mhz[mem_i];
    return cfg;
}

void
ConfigGrid::validate() const
{
    checkGridAxis(cu_values, "compute-units");
    checkGridAxis(core_clks_mhz, "core-clock");
    checkGridAxis(mem_clks_mhz, "memory-clock");
    // The extreme points cover every axis bound; interior points share
    // the same fixed parameters.
    at(0, 0, 0).validate();
    at(numCu() - 1, numCoreClk() - 1, numMemClk() - 1).validate();
}

std::string
ConfigGrid::fingerprint() const
{
    std::string out = "grid:cu=";
    for (const int cu : cu_values)
        appendField(out, cu);
    out += "core=";
    for (const double clk : core_clks_mhz)
        appendField(out, clk);
    out += "mem=";
    for (const double clk : mem_clks_mhz)
        appendField(out, clk);

    // Every fixed microarchitecture parameter shifts the model's
    // output, so all of them are part of the identity.  The three
    // swept knobs of `base` are overwritten by the axes and excluded.
    out += "arch=";
    appendField(out, base.simds_per_cu);
    appendField(out, base.lanes_per_simd);
    appendField(out, base.wavefront_size);
    appendField(out, base.max_waves_per_simd);
    appendField(out, base.vgprs_per_simd);
    appendField(out, base.max_wgs_per_cu);
    appendField(out, base.lds_bytes_per_cu);
    appendField(out, base.l1_bytes_per_cu);
    appendField(out, base.l2_slices);
    appendField(out, base.l2_bytes_per_slice);
    appendField(out, base.l2_bytes_per_cycle_per_slice);
    appendField(out, base.l1_bytes_per_cycle);
    appendField(out, base.lds_lanes_per_cycle);
    appendField(out, base.dram_bus_bytes);
    appendField(out, base.dram_transfers_per_clk);
    appendField(out, base.dram_efficiency);
    appendField(out, base.dram_latency_ns);
    appendField(out, base.l1_latency_cycles);
    appendField(out, base.l2_latency_cycles);
    appendField(out, base.atomic_ops_per_cycle);
    return out;
}

} // namespace gpu
} // namespace gpuscale
