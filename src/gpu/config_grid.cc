/**
 * @file
 * ConfigGrid implementation.
 */

#include "config_grid.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/string_util.hh"
#include "interconnect.hh"
#include "memory_system.hh"

namespace gpuscale {
namespace gpu {

CuUnits
computeCuUnits(int num_cus, const GpuConfig &arch)
{
    // Each product mirrors a scalar-path peak rate with the clock
    // factored out: simd_units * clk is the t_compute denominator,
    // l1_units * clk is GpuConfig::peakL1Bw(), l2_units * clk is
    // peakL2Bw(), and xbar_units * clk is XbarState::effective_bw.
    // All operands are small integers, so the products are exact and
    // the deferred clock multiply rounds exactly as the scalar path's
    // does.
    CuUnits u;
    u.cus = static_cast<double>(num_cus);
    u.simd_units = u.cus * arch.simds_per_cu;
    u.lds_units = u.cus * arch.lds_lanes_per_cycle;
    u.l1_units = u.cus * arch.l1_bytes_per_cycle;
    const double l2_units = static_cast<double>(arch.l2_slices) *
                            arch.l2_bytes_per_cycle_per_slice;
    u.xbar_units = std::min(l2_units, u.l1_units);
    return u;
}

ClockTerms
computeClockTerms(const GpuConfig &cfg)
{
    // The hops reuse computeXbar() and MemorySystem so the crossbar
    // traversal constant and the unloaded-latency conversion live in
    // exactly one place each.
    ClockTerms t;
    t.clk_hz = cfg.coreClkHz();
    t.atomic_rate = cfg.atomic_ops_per_cycle * t.clk_hz;
    const XbarState xbar = computeXbar(cfg);
    t.l2_hop_s = cfg.l2_latency_cycles / t.clk_hz + xbar.latency_s;
    const MemorySystem mem(cfg);
    t.dram_hop_s =
        cfg.l2_latency_cycles / t.clk_hz + mem.unloadedLatency();
    return t;
}

namespace {

template <typename T>
void
checkGridAxis(const std::vector<T> &axis, const char *name)
{
    fatal_if(axis.empty(), "config-grid axis '%s' is empty", name);
    for (size_t i = 1; i < axis.size(); ++i) {
        fatal_if(axis[i] <= axis[i - 1],
                 "config-grid axis '%s' is not strictly increasing",
                 name);
    }
}

void
appendField(std::string &out, double v)
{
    out += formatDoubleShortest(v);
    out += ',';
}

void
appendField(std::string &out, int v)
{
    out += std::to_string(v);
    out += ',';
}

} // namespace

size_t
ConfigGrid::flatten(size_t cu_i, size_t core_i, size_t mem_i) const
{
    panic_if(cu_i >= numCu() || core_i >= numCoreClk() ||
                 mem_i >= numMemClk(),
             "config-grid index (%zu, %zu, %zu) out of range",
             cu_i, core_i, mem_i);
    return (cu_i * numCoreClk() + core_i) * numMemClk() + mem_i;
}

GpuConfig
ConfigGrid::at(size_t cu_i, size_t core_i, size_t mem_i) const
{
    panic_if(cu_i >= numCu() || core_i >= numCoreClk() ||
                 mem_i >= numMemClk(),
             "config-grid index (%zu, %zu, %zu) out of range",
             cu_i, core_i, mem_i);
    GpuConfig cfg = base;
    cfg.num_cus = cu_values[cu_i];
    cfg.core_clk_mhz = core_clks_mhz[core_i];
    cfg.mem_clk_mhz = mem_clks_mhz[mem_i];
    return cfg;
}

void
ConfigGrid::validate() const
{
    checkGridAxis(cu_values, "compute-units");
    checkGridAxis(core_clks_mhz, "core-clock");
    checkGridAxis(mem_clks_mhz, "memory-clock");
    // The extreme points cover every axis bound; interior points share
    // the same fixed parameters.
    at(0, 0, 0).validate();
    at(numCu() - 1, numCoreClk() - 1, numMemClk() - 1).validate();
}

GridPlanes
ConfigGrid::planes() const
{
    GridPlanes p;
    p.cu.reserve(numCu());
    for (const int cu : cu_values)
        p.cu.push_back(computeCuUnits(cu, base));

    p.core_clk_hz.reserve(numCoreClk());
    p.atomic_rate.reserve(numCoreClk());
    p.l2_hop_s.reserve(numCoreClk());
    p.dram_hop_s.reserve(numCoreClk());
    for (const double mhz : core_clks_mhz) {
        GpuConfig cfg = base;
        cfg.core_clk_mhz = mhz;
        const ClockTerms t = computeClockTerms(cfg);
        p.core_clk_hz.push_back(t.clk_hz);
        p.atomic_rate.push_back(t.atomic_rate);
        p.l2_hop_s.push_back(t.l2_hop_s);
        p.dram_hop_s.push_back(t.dram_hop_s);
    }

    p.mem_clk_hz.reserve(numMemClk());
    p.dram_bw.reserve(numMemClk());
    for (const double mhz : mem_clks_mhz) {
        GpuConfig cfg = base;
        cfg.mem_clk_mhz = mhz;
        p.mem_clk_hz.push_back(cfg.memClkHz());
        p.dram_bw.push_back(cfg.effectiveDramBw());
    }
    return p;
}

std::string
ConfigGrid::fingerprint() const
{
    std::string out = "grid:cu=";
    for (const int cu : cu_values)
        appendField(out, cu);
    out += "core=";
    for (const double clk : core_clks_mhz)
        appendField(out, clk);
    out += "mem=";
    for (const double clk : mem_clks_mhz)
        appendField(out, clk);

    // Every fixed microarchitecture parameter shifts the model's
    // output, so all of them are part of the identity.  The three
    // swept knobs of `base` are overwritten by the axes and excluded.
    out += "arch=";
    appendField(out, base.simds_per_cu);
    appendField(out, base.lanes_per_simd);
    appendField(out, base.wavefront_size);
    appendField(out, base.max_waves_per_simd);
    appendField(out, base.vgprs_per_simd);
    appendField(out, base.max_wgs_per_cu);
    appendField(out, base.lds_bytes_per_cu);
    appendField(out, base.l1_bytes_per_cu);
    appendField(out, base.l2_slices);
    appendField(out, base.l2_bytes_per_slice);
    appendField(out, base.l2_bytes_per_cycle_per_slice);
    appendField(out, base.l1_bytes_per_cycle);
    appendField(out, base.lds_lanes_per_cycle);
    appendField(out, base.dram_bus_bytes);
    appendField(out, base.dram_transfers_per_clk);
    appendField(out, base.dram_efficiency);
    appendField(out, base.dram_latency_ns);
    appendField(out, base.l1_latency_cycles);
    appendField(out, base.l2_latency_cycles);
    appendField(out, base.atomic_ops_per_cycle);
    return out;
}

} // namespace gpu
} // namespace gpuscale
