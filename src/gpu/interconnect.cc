/**
 * @file
 * Crossbar model implementation.
 */

#include "interconnect.hh"

#include <algorithm>

#include "gpu_config.hh"

namespace gpuscale {
namespace gpu {

XbarState
computeXbar(const GpuConfig &cfg)
{
    XbarState state;
    state.l2_bw = cfg.peakL2Bw();

    // Each CU owns one 64B/cycle request port into the crossbar.
    state.cu_port_bw = static_cast<double>(cfg.num_cus) *
                       cfg.l1_bytes_per_cycle * cfg.coreClkHz();

    state.effective_bw = std::min(state.l2_bw, state.cu_port_bw);

    // Traversal cost is folded into the L2 latency parameter; the
    // crossbar adds a small fixed number of core cycles.
    state.latency_s = 8.0 * cfg.coreCycleSec();
    return state;
}

} // namespace gpu
} // namespace gpuscale
