/**
 * @file
 * PerfModel defaults: the scalar grid walk.
 */

#include "perf_model.hh"

#include "gpu_config.hh"
#include "kernel_desc.hh"

namespace gpuscale {
namespace gpu {

std::vector<KernelPerf>
PerfModel::evaluateGrid(const KernelDesc &kernel,
                        const ConfigGrid &grid) const
{
    grid.validate();
    std::vector<KernelPerf> out(grid.size());
    for (size_t cu_i = 0; cu_i < grid.numCu(); ++cu_i) {
        for (size_t core_i = 0; core_i < grid.numCoreClk(); ++core_i) {
            for (size_t mem_i = 0; mem_i < grid.numMemClk(); ++mem_i) {
                out[grid.flatten(cu_i, core_i, mem_i)] =
                    estimate(kernel, grid.at(cu_i, core_i, mem_i));
            }
        }
    }
    return out;
}

std::vector<double>
PerfModel::evaluateGridRuntimes(const KernelDesc &kernel,
                                const ConfigGrid &grid) const
{
    const std::vector<KernelPerf> perfs = evaluateGrid(kernel, grid);
    std::vector<double> out(perfs.size());
    for (size_t i = 0; i < perfs.size(); ++i)
        out[i] = perfs[i].time_s;
    return out;
}

} // namespace gpu
} // namespace gpuscale
