/**
 * @file
 * CU <-> L2 crossbar model.
 *
 * The crossbar and the L2 slices run in the *core* clock domain.  A
 * kernel whose traffic is absorbed by the L2 therefore scales with
 * core frequency and is indifferent to the memory clock — one of the
 * paper's "intuitive once you see it" behaviours.  The crossbar also
 * imposes a per-CU port limit, so very small CU counts can be
 * link-limited even when aggregate L2 bandwidth is ample.
 */

#ifndef GPUSCALE_GPU_INTERCONNECT_HH
#define GPUSCALE_GPU_INTERCONNECT_HH

namespace gpuscale {
namespace gpu {

struct GpuConfig;

/** Resolved crossbar capability for a configuration. */
struct XbarState {
    /** Aggregate L2-side bandwidth in bytes/s. */
    double l2_bw = 0.0;

    /** Aggregate CU-side (port-limited) bandwidth in bytes/s. */
    double cu_port_bw = 0.0;

    /** The binding aggregate bandwidth in bytes/s. */
    double effective_bw = 0.0;

    /** Crossbar traversal latency in seconds. */
    double latency_s = 0.0;
};

/** Evaluate the crossbar for a configuration. */
XbarState computeXbar(const GpuConfig &cfg);

} // namespace gpu
} // namespace gpuscale

#endif // GPUSCALE_GPU_INTERCONNECT_HH
