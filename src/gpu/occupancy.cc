/**
 * @file
 * Occupancy model implementation.
 */

#include "occupancy.hh"

#include <algorithm>

#include "base/logging.hh"
#include "gpu_config.hh"
#include "kernel_desc.hh"

namespace gpuscale {
namespace gpu {

double
Occupancy::waveSlotFraction(const GpuConfig &cfg) const
{
    return static_cast<double>(waves_per_cu) /
           static_cast<double>(cfg.maxWavesPerCu());
}

Occupancy
computeOccupancy(const KernelDesc &kernel, const GpuConfig &cfg)
{
    const int waves_per_wg = kernel.wavesPerWg(cfg);

    // Wavefront-slot limit: each SIMD holds max_waves_per_simd waves;
    // a workgroup's waves are distributed across the CU's SIMDs.
    const int wg_by_waves = cfg.maxWavesPerCu() / waves_per_wg;

    // Hardware workgroup-slot limit.
    const int wg_by_slots = cfg.max_wgs_per_cu;

    // Register-file limit: waves per SIMD with this register demand,
    // times SIMDs, divided by waves per workgroup.
    const int waves_per_simd_by_regs =
        std::min(cfg.max_waves_per_simd, cfg.vgprs_per_simd / kernel.vgprs);
    fatal_if(waves_per_simd_by_regs < 1,
             "%s: %d vgprs/work-item exceeds the register file",
             kernel.name.c_str(), kernel.vgprs);
    const int wg_by_regs =
        waves_per_simd_by_regs * cfg.simds_per_cu / waves_per_wg;

    // LDS limit.
    int wg_by_lds = wg_by_slots;
    if (kernel.lds_bytes_per_wg > 0) {
        fatal_if(kernel.lds_bytes_per_wg > cfg.lds_bytes_per_cu,
                 "%s: workgroup LDS demand %.0f exceeds the CU's %d bytes",
                 kernel.name.c_str(), kernel.lds_bytes_per_wg,
                 cfg.lds_bytes_per_cu);
        wg_by_lds = static_cast<int>(
            static_cast<double>(cfg.lds_bytes_per_cu) /
            kernel.lds_bytes_per_wg);
    }

    fatal_if(wg_by_waves < 1,
             "%s: a single workgroup (%d waves) exceeds the CU's %d "
             "wavefront slots",
             kernel.name.c_str(), waves_per_wg, cfg.maxWavesPerCu());

    Occupancy occ;
    occ.wgs_per_cu = std::min({wg_by_waves, wg_by_slots, wg_by_regs,
                               wg_by_lds});
    fatal_if(occ.wgs_per_cu < 1,
             "%s: a single workgroup exceeds the CU's resources "
             "(waves %d, slots %d, regs %d, lds %d)",
             kernel.name.c_str(), wg_by_waves, wg_by_slots, wg_by_regs,
             wg_by_lds);

    if (occ.wgs_per_cu == wg_by_waves)
        occ.limiter = OccupancyLimiter::WavefrontSlots;
    if (occ.wgs_per_cu == wg_by_regs && wg_by_regs < wg_by_waves)
        occ.limiter = OccupancyLimiter::Registers;
    if (occ.wgs_per_cu == wg_by_lds && wg_by_lds < wg_by_regs &&
        wg_by_lds < wg_by_waves) {
        occ.limiter = OccupancyLimiter::Lds;
    }
    if (occ.wgs_per_cu == wg_by_slots && wg_by_slots < wg_by_waves &&
        wg_by_slots < wg_by_regs && wg_by_lds >= wg_by_slots) {
        occ.limiter = OccupancyLimiter::WorkgroupSlots;
    }

    occ.waves_per_cu = occ.wgs_per_cu * waves_per_wg;

    const int64_t machine_capacity =
        static_cast<int64_t>(occ.wgs_per_cu) * cfg.num_cus;
    occ.active_wgs = std::min<int64_t>(machine_capacity,
                                       kernel.num_workgroups);
    occ.active_waves = occ.active_wgs * waves_per_wg;
    if (kernel.num_workgroups < machine_capacity)
        occ.limiter = OccupancyLimiter::LaunchSize;

    occ.used_cus = static_cast<int>(
        std::min<int64_t>(cfg.num_cus, kernel.num_workgroups));

    return occ;
}

std::string
limiterName(OccupancyLimiter limiter)
{
    switch (limiter) {
      case OccupancyLimiter::WavefrontSlots: return "wave-slots";
      case OccupancyLimiter::WorkgroupSlots: return "wg-slots";
      case OccupancyLimiter::Registers:      return "registers";
      case OccupancyLimiter::Lds:            return "lds";
      case OccupancyLimiter::LaunchSize:     return "launch-size";
    }
    panic("unknown occupancy limiter %d", static_cast<int>(limiter));
}

} // namespace gpu
} // namespace gpuscale
