/**
 * @file
 * Capacity-driven cache hit-rate model.
 *
 * Hit rates are derived from the kernel's declared reuse potential
 * (how much locality the access stream *has*) scaled by how much of
 * the relevant working set actually fits in the cache.  Because the
 * L2 is shared, its resident footprint grows with the number of
 * concurrently active workgroups — which grows with the number of
 * enabled CUs.  This is the mechanism behind the paper's "kernels
 * that lose performance when compute units are added": enabling more
 * CUs inflates the aggregate working set past the L2 capacity, hit
 * rate collapses, and DRAM traffic rises faster than compute
 * throughput.
 */

#ifndef GPUSCALE_GPU_CACHE_MODEL_HH
#define GPUSCALE_GPU_CACHE_MODEL_HH

namespace gpuscale {
namespace gpu {

struct GpuConfig;
struct KernelDesc;
struct Occupancy;

/** Resolved hit rates and traffic multipliers for one launch. */
struct CacheBehavior {
    /** Fraction of vector-memory accesses served by the L1. */
    double l1_hit_rate = 0.0;

    /** Fraction of L1 misses served by the L2. */
    double l2_hit_rate = 0.0;

    /** Bytes crossing L1<->L2 per useful requested byte. */
    double l2_traffic_per_byte = 0.0;

    /** Bytes crossing L2<->DRAM per useful requested byte. */
    double dram_traffic_per_byte = 0.0;

    /** Aggregate L2-resident footprint used by the capacity model. */
    double l2_footprint_bytes = 0.0;
};

/**
 * Evaluate the cache model.
 *
 * @param kernel the kernel descriptor.
 * @param cfg the hardware configuration.
 * @param occ occupancy previously computed for (kernel, cfg).
 */
CacheBehavior computeCacheBehavior(const KernelDesc &kernel,
                                   const GpuConfig &cfg,
                                   const Occupancy &occ);

/**
 * Smooth capacity factor in [0, 1]: how much of the reuse potential
 * survives when a working set of `footprint` bytes contends for
 * `capacity` bytes.  1 when the set fits comfortably; decays toward
 * capacity/footprint when oversubscribed (LRU-like thrashing).
 */
double capacityFactor(double capacity, double footprint);

} // namespace gpu
} // namespace gpuscale

#endif // GPUSCALE_GPU_CACHE_MODEL_HH
