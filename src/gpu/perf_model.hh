/**
 * @file
 * Abstract timing-model interface.
 *
 * Two implementations exist: AnalyticModel (fast interval analysis,
 * used for the 267-kernel x 891-config sweeps) and EventModel
 * (wavefront-granularity discrete-event simulation, used to validate
 * the analytic model's shapes).  The taxonomy engine is written
 * against this interface, so it is oblivious to which fidelity — or a
 * real GPU — produced the measurements.
 */

#ifndef GPUSCALE_GPU_PERF_MODEL_HH
#define GPUSCALE_GPU_PERF_MODEL_HH

#include <string>

#include "perf_result.hh"

namespace gpuscale {
namespace gpu {

struct GpuConfig;
struct KernelDesc;

/** Interface implemented by every timing model. */
class PerfModel
{
  public:
    virtual ~PerfModel() = default;

    /**
     * Estimate the runtime of one kernel on one configuration.
     *
     * Both arguments are validated; a malformed kernel or
     * configuration is a fatal() user error.
     */
    virtual KernelPerf estimate(const KernelDesc &kernel,
                                const GpuConfig &cfg) const = 0;

    /** Model name for reports ("analytic", "event"). */
    virtual std::string name() const = 0;
};

} // namespace gpu
} // namespace gpuscale

#endif // GPUSCALE_GPU_PERF_MODEL_HH
