/**
 * @file
 * Abstract timing-model interface.
 *
 * Two implementations exist: AnalyticModel (fast interval analysis,
 * used for the 267-kernel x 891-config sweeps) and EventModel
 * (wavefront-granularity discrete-event simulation, used to validate
 * the analytic model's shapes).  The taxonomy engine is written
 * against this interface, so it is oblivious to which fidelity — or a
 * real GPU — produced the measurements.
 */

#ifndef GPUSCALE_GPU_PERF_MODEL_HH
#define GPUSCALE_GPU_PERF_MODEL_HH

#include <string>
#include <vector>

#include "config_grid.hh"
#include "perf_result.hh"

namespace gpuscale {
namespace gpu {

struct GpuConfig;
struct KernelDesc;

/** Interface implemented by every timing model. */
class PerfModel
{
  public:
    virtual ~PerfModel() = default;

    /**
     * Estimate the runtime of one kernel on one configuration.
     *
     * Both arguments are validated; a malformed kernel or
     * configuration is a fatal() user error.
     */
    virtual KernelPerf estimate(const KernelDesc &kernel,
                                const GpuConfig &cfg) const = 0;

    /**
     * Estimate the kernel on every grid point, returned in
     * ConfigGrid::flatten order.
     *
     * The base implementation is the scalar oracle: one estimate()
     * call per point, so any override is checkable against it
     * point-for-point (the differential tests assert bitwise-equal
     * runtimes).  Models with structure to exploit (AnalyticModel)
     * override this with a batched walk that hoists kernel- and
     * CU-invariant work out of the clock loops.
     */
    virtual std::vector<KernelPerf> evaluateGrid(
        const KernelDesc &kernel, const ConfigGrid &grid) const;

    /**
     * Estimate only the end-to-end runtime (KernelPerf::time_s) of
     * every grid point, in ConfigGrid::flatten order.
     *
     * This is the census hot path: the sweep harness keys its cache
     * on exactly this vector, so overrides must return bitwise the
     * same doubles evaluateGrid() reports in time_s (the differential
     * tests assert it).  The base implementation extracts the field
     * from evaluateGrid(); AnalyticModel overrides it with a flat
     * structure-of-arrays kernel that skips KernelPerf
     * materialization entirely (see analytic_batch.hh).
     */
    virtual std::vector<double> evaluateGridRuntimes(
        const KernelDesc &kernel, const ConfigGrid &grid) const;

    /** Model name for reports ("analytic", "event"). */
    virtual std::string name() const = 0;

    /**
     * Identity string for sweep-cache keys: two models with equal,
     * non-empty fingerprints must produce identical estimates for
     * identical inputs.  An empty string marks the model uncacheable,
     * and is the default — a model must opt in by folding its name
     * and *every* tunable parameter into the string, because a stale
     * hit served across models with different parameters is silent
     * data corruption.
     */
    virtual std::string fingerprint() const { return ""; }
};

} // namespace gpu
} // namespace gpuscale

#endif // GPUSCALE_GPU_PERF_MODEL_HH
