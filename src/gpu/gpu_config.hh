/**
 * @file
 * GPU hardware configuration.
 *
 * A GpuConfig captures the three knobs the study sweeps — active
 * compute units, core clock, and memory clock — plus the fixed
 * GCN-like microarchitecture parameters shared by every configuration.
 * Derived peak rates (FLOP/s, cache and DRAM bandwidth) are computed
 * here so every model consumes one consistent view of the machine.
 *
 * Clock domains, which drive several of the paper's "non-obvious"
 * behaviours:
 *  - core clock:   CUs (SIMDs, LDS, L1), the CU<->L2 crossbar, and the
 *                  L2 slices.  Raising only the memory clock does not
 *                  speed up an L2-bandwidth-bound kernel.
 *  - memory clock: the GDDR interface only.
 */

#ifndef GPUSCALE_GPU_GPU_CONFIG_HH
#define GPUSCALE_GPU_GPU_CONFIG_HH

#include <string>

namespace gpuscale {
namespace gpu {

/**
 * One hardware configuration of the modelled GPU.
 *
 * Value-semantic; cheap to copy.  Invalid combinations are rejected by
 * validate(), which is called by the models before use.
 */
struct GpuConfig {
    //
    // The three swept knobs.
    //

    /** Active compute units (paper range: 4..44, an 11x span). */
    int num_cus = 44;

    /** Core/engine clock in MHz (paper range: 200..1000, a 5x span). */
    double core_clk_mhz = 1000.0;

    /** Memory clock in MHz (paper range: 150..1250, an 8.33x span). */
    double mem_clk_mhz = 1250.0;

    //
    // Fixed GCN-like microarchitecture parameters.
    //

    /** SIMD units per CU. */
    int simds_per_cu = 4;

    /** Lanes per SIMD; a 64-wide wavefront issues over 4 cycles. */
    int lanes_per_simd = 16;

    /** Work-items per wavefront. */
    int wavefront_size = 64;

    /** Wavefront contexts per SIMD (occupancy ceiling). */
    int max_waves_per_simd = 10;

    /** Architected vector registers available per SIMD lane. */
    int vgprs_per_simd = 256;

    /** Hardware workgroup slots per CU. */
    int max_wgs_per_cu = 16;

    /** LDS (local data share) bytes per CU. */
    int lds_bytes_per_cu = 64 * 1024;

    /** Vector L1 data cache bytes per CU. */
    int l1_bytes_per_cu = 16 * 1024;

    /** Shared L2 slices (fixed, independent of active CUs). */
    int l2_slices = 8;

    /** Capacity per L2 slice in bytes. */
    int l2_bytes_per_slice = 128 * 1024;

    /** Bytes an L2 slice can deliver per core-clock cycle. */
    int l2_bytes_per_cycle_per_slice = 64;

    /** Bytes the L1 can deliver per core-clock cycle (per CU). */
    int l1_bytes_per_cycle = 64;

    /** LDS lanes serviced per core-clock cycle (per CU). */
    int lds_lanes_per_cycle = 32;

    /** DRAM bus width in bytes (384-bit GDDR5-class interface). */
    int dram_bus_bytes = 48;

    /** Data transfers per memory-clock cycle (GDDR quad pumping). */
    int dram_transfers_per_clk = 4;

    /** Fraction of the pin bandwidth a real controller sustains. */
    double dram_efficiency = 0.80;

    /** Unloaded DRAM access latency in nanoseconds (clock invariant). */
    double dram_latency_ns = 220.0;

    /** L1 hit latency in core cycles. */
    double l1_latency_cycles = 28.0;

    /** L2 hit latency in core cycles (includes crossbar hop). */
    double l2_latency_cycles = 150.0;

    /** Global atomic throughput in operations per core cycle. */
    double atomic_ops_per_cycle = 1.0;

    //
    // Derived quantities.
    //

    /** Core clock in Hz. */
    double coreClkHz() const { return core_clk_mhz * 1e6; }

    /** Memory clock in Hz. */
    double memClkHz() const { return mem_clk_mhz * 1e6; }

    /** Total wavefront contexts per CU. */
    int maxWavesPerCu() const { return simds_per_cu * max_waves_per_simd; }

    /** Peak single-precision FLOP/s (FMA counted as 2 flops). */
    double peakGflops() const;

    /** Peak raw DRAM pin bandwidth in bytes/s (before efficiency). */
    double peakDramBw() const;

    /** Sustainable DRAM bandwidth in bytes/s (after efficiency). */
    double effectiveDramBw() const;

    /** Aggregate L2 bandwidth in bytes/s (core-clock domain). */
    double peakL2Bw() const;

    /** Aggregate L1 bandwidth in bytes/s across active CUs. */
    double peakL1Bw() const;

    /** Total L2 capacity in bytes. */
    double l2CapacityBytes() const;

    /** Seconds per core-clock cycle. */
    double coreCycleSec() const { return 1.0 / coreClkHz(); }

    //
    // Utilities.
    //

    /** fatal() with a descriptive message if the config is malformed. */
    void validate() const;

    /** Short identifier such as "cu44_c1000_m1250". */
    std::string id() const;

    /** Human-readable one-line summary. */
    std::string describe() const;

    bool operator==(const GpuConfig &other) const = default;
};

/**
 * Named presets.
 *
 * @{
 */

/** The largest studied configuration (stands in for a flagship card). */
GpuConfig makeMaxConfig();

/** The smallest studied configuration (embedded-class GPU). */
GpuConfig makeMinConfig();

/** A mid-range configuration (half the CUs, mid clocks). */
GpuConfig makeMidConfig();

/** @} */

} // namespace gpu
} // namespace gpuscale

#endif // GPUSCALE_GPU_GPU_CONFIG_HH
