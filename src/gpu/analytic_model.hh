/**
 * @file
 * Fast analytic (interval-analysis) GPU timing model.
 *
 * The model bounds a launch's runtime by each hardware resource in
 * turn — SIMD issue, LDS, L1 ports, the core-clocked L2/crossbar,
 * DRAM bandwidth, serialized atomics, and exposed memory latency
 * under limited wavefront concurrency — and takes the maximum,
 * roofline style.  The latency bound is the closed-queueing-network
 * asymptote (unloaded latency; the bandwidth terms cap throughput at
 * saturation).  Workgroup quantization (ceil(num_wgs / num_cus)
 * imbalance), Amdahl serial fractions, and per-launch host overhead
 * complete the picture.
 *
 * Each term maps onto one of the paper's observed scaling behaviours;
 * see DESIGN.md for the table.  The model evaluates in ~1 us, which
 * is what makes the full 267-kernel x 891-configuration census
 * (238k estimates) practical on a laptop.
 */

#ifndef GPUSCALE_GPU_ANALYTIC_MODEL_HH
#define GPUSCALE_GPU_ANALYTIC_MODEL_HH

#include "perf_model.hh"

namespace gpuscale {
namespace gpu {

/** Tunable calibration constants for the analytic model. */
struct AnalyticParams {
    /** Core cycles to resynchronize one barrier per extra wave. */
    double barrier_cycles_per_wave = 4.0;

    /** Fixed core cycles per barrier. */
    double barrier_base_cycles = 20.0;

    /**
     * Retry cost scale for contended atomics: the extra cost factor a
     * fully contended kernel (atomic_contention = 1) pays when the
     * whole reference machine's wavefronts hammer one address.
     */
    double atomic_retry_scale = 2.5;

    /** Reference wavefront population the retry scale is quoted at. */
    double atomic_reference_waves = 1760.0;
};

/** The fast interval-analysis model. */
class AnalyticModel : public PerfModel
{
  public:
    AnalyticModel() = default;
    explicit AnalyticModel(AnalyticParams params);

    KernelPerf estimate(const KernelDesc &kernel,
                        const GpuConfig &cfg) const override;

    std::string name() const override { return "analytic"; }

    const AnalyticParams &params() const { return params_; }

  private:
    /**
     * Device time for the parallel phase of one launch on the given
     * configuration (no host overhead, no serial fraction).
     */
    KernelPerf estimateParallelPhase(const KernelDesc &kernel,
                                     const GpuConfig &cfg) const;

    AnalyticParams params_;
};

} // namespace gpu
} // namespace gpuscale

#endif // GPUSCALE_GPU_ANALYTIC_MODEL_HH
