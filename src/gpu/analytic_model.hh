/**
 * @file
 * Fast analytic (interval-analysis) GPU timing model.
 *
 * The model bounds a launch's runtime by each hardware resource in
 * turn — SIMD issue, LDS, L1 ports, the core-clocked L2/crossbar,
 * DRAM bandwidth, serialized atomics, and exposed memory latency
 * under limited wavefront concurrency — and takes the maximum,
 * roofline style.  The latency bound is the closed-queueing-network
 * asymptote (unloaded latency; the bandwidth terms cap throughput at
 * saturation).  Workgroup quantization (ceil(num_wgs / num_cus)
 * imbalance), Amdahl serial fractions, and per-launch host overhead
 * complete the picture.
 *
 * Each term maps onto one of the paper's observed scaling behaviours;
 * see DESIGN.md for the table.  The model evaluates in ~1 us, which
 * is what makes the full 267-kernel x 891-configuration census
 * (238k estimates) practical on a laptop.
 */

#ifndef GPUSCALE_GPU_ANALYTIC_MODEL_HH
#define GPUSCALE_GPU_ANALYTIC_MODEL_HH

#include "analytic_batch.hh"
#include "perf_model.hh"

namespace gpuscale {
namespace gpu {

/** Tunable calibration constants for the analytic model. */
struct AnalyticParams {
    /** Core cycles to resynchronize one barrier per extra wave. */
    double barrier_cycles_per_wave = 4.0;

    /** Fixed core cycles per barrier. */
    double barrier_base_cycles = 20.0;

    /**
     * Retry cost scale for contended atomics: the extra cost factor a
     * fully contended kernel (atomic_contention = 1) pays when the
     * whole reference machine's wavefronts hammer one address.
     */
    double atomic_retry_scale = 2.5;

    /** Reference wavefront population the retry scale is quoted at. */
    double atomic_reference_waves = 1760.0;
};

/** The fast interval-analysis model. */
class AnalyticModel : public PerfModel
{
  public:
    AnalyticModel() = default;
    explicit AnalyticModel(AnalyticParams params);

    KernelPerf estimate(const KernelDesc &kernel,
                        const GpuConfig &cfg) const override;

    /**
     * Batched census walk.  The evaluation is staged by how often
     * each quantity changes across the grid:
     *
     *  - per kernel:  launch geometry, instruction mix, byte counts,
     *    barrier cost — everything depending only on the kernel and
     *    the fixed microarchitecture (Invariants);
     *  - per CU value:  occupancy, cache behaviour (the expensive
     *    exp() calls), workgroup quantization, dispatch — the
     *    clock-independent machine state (CuState, 11 evaluations
     *    instead of 891 on the paper grid);
     *  - per (CU, core clock, memory clock):  only the clock-domain
     *    arithmetic and the roofline max, on the flat SoA operands of
     *    batch::BatchPlan (see analytic_batch.hh).
     *
     * Every stage runs the same arithmetic as the scalar estimate()
     * path — the shared helpers in analytic_batch.hh are called by
     * both — so the two are bitwise identical point-for-point; the
     * differential tests assert exactly that.
     */
    std::vector<KernelPerf> evaluateGrid(
        const KernelDesc &kernel,
        const ConfigGrid &grid) const override;

    /**
     * The runtimes-only hot path: stages 1-2 via prepareBatch(),
     * stage 3 via batch::runBatch() straight into the flat result —
     * no KernelPerf materialization at all.  This is what the sweep
     * harness calls and what the >= 8x single-core bench gate
     * measures.
     */
    std::vector<double> evaluateGridRuntimes(
        const KernelDesc &kernel,
        const ConfigGrid &grid) const override;

    /**
     * Stages 1-2: validate, hoist the kernel invariants and per-CU
     * state, and lay them out flat for batch::runBatch().  Public so
     * the bench harness can time the stages separately.
     */
    batch::BatchPlan prepareBatch(const KernelDesc &kernel,
                                  const ConfigGrid &grid) const;

    std::string name() const override { return "analytic"; }

    /** name() plus every calibration constant. */
    std::string fingerprint() const override;

    const AnalyticParams &params() const { return params_; }

  private:
    /** Grid-invariant derived quantities for one kernel. */
    struct Invariants;

    /** Clock-independent machine state for one (kernel, CU count). */
    struct CuState;

    /**
     * Hoist everything depending only on the kernel and the fixed
     * microarchitecture; `arch` supplies the fixed parameters (any
     * grid point works — the swept knobs are not read).
     */
    Invariants computeInvariants(const KernelDesc &kernel,
                                 const GpuConfig &arch) const;

    /** Hoist the clock-independent state for cfg.num_cus. */
    CuState computeCuState(const KernelDesc &kernel,
                           const GpuConfig &cfg,
                           const Invariants &inv) const;

    /** Copy the stage-1 operands flat (batch::KernelTerms). */
    batch::KernelTerms kernelTerms(const Invariants &inv) const;

    /** Flatten one CuState into stage-2 operands (batch::CuTerms). */
    batch::CuTerms makeCuTerms(const Invariants &inv, const CuState &cu,
                               const CuUnits &units,
                               const GpuConfig &arch) const;

    /**
     * Stages 1-2 with the CuStates kept: evaluateGrid() needs the
     * occupancy/cache snapshots for the reconstituted KernelPerf
     * rows, prepareBatch() discards them.
     */
    batch::BatchPlan buildPlan(const KernelDesc &kernel,
                               const ConfigGrid &grid,
                               const Invariants &inv,
                               std::vector<CuState> *states) const;

    /**
     * Full single-point estimate from precomputed stages.  `serial_cu`
     * is the CuState for the one-CU machine the Amdahl phase runs on;
     * unused when the kernel has no serial fraction.
     */
    KernelPerf estimatePoint(const KernelDesc &kernel,
                             const GpuConfig &cfg,
                             const Invariants &inv,
                             const CuState &cu,
                             const CuState &serial_cu) const;

    AnalyticParams params_;
};

} // namespace gpu
} // namespace gpuscale

#endif // GPUSCALE_GPU_ANALYTIC_MODEL_HH
